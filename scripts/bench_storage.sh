#!/usr/bin/env bash
# Collects the tiered-storage numbers the PR claims:
#
#   1. runs `experiments storage-ablation`, which sweeps the 13 paper
#      benchmarks x paper eviction rates x {flat, +cache, +compression,
#      +composed-prefetch} under delta K=16 (paired seeds, so cells
#      differing only in arm replay identical inputs) and writes
#      results/storage_ablation.csv plus results/BENCH_storage.json
#      (per-arm restore bytes / median restore / cache and wire
#      counters, plus the both-axes win count vs the flat baseline).
#
# Usage: scripts/bench_storage.sh [--quick]
#   --quick  forwards the experiments harness's reduced-size mode
#            (fewer invocations per cell).

set -euo pipefail
cd "$(dirname "$0")/.."

mkdir -p results

echo "== experiments storage-ablation (writes results/storage_ablation.csv + BENCH_storage.json) =="
cargo run -q --release -p pronghorn-experiments -- storage-ablation "$@"

echo
echo "== artifacts =="
ls -l results/storage_ablation.csv results/BENCH_storage.json

#!/usr/bin/env bash
# Run every lint gate CI runs, in the same order, failing fast.
#
# Usage: scripts/lint.sh
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== pronglint (determinism & invariant rules)"
cargo run -q -p analysis --bin pronglint

echo "lint: all gates passed"

#!/usr/bin/env bash
# Collects the delta-checkpointing numbers the PR claims:
#
#   1. runs `experiments delta-ablation`, which sweeps the 13 paper
#      benchmarks x {full, delta-K4, delta-K16} x the paper eviction
#      rates under the request-centric policy (paired seeds AND a
#      shared RNG draw-count, so the arms of a cell have byte-identical
#      latencies — only the byte accounting moves) and writes
#      results/delta_ablation.csv plus results/BENCH_delta.json
#      (pooled per-arm uploaded bytes, chain shape, >=5x byte wins,
#      median-latency regressions — the last must be 0).
#
# Usage: scripts/bench_delta.sh [--quick]
#   --quick  forwards the experiments harness's reduced-size mode.

set -euo pipefail
cd "$(dirname "$0")/.."

mkdir -p results

echo "== experiments delta-ablation (writes results/delta_ablation.csv + BENCH_delta.json) =="
cargo run -q --release -p pronghorn-experiments -- delta-ablation "$@"

echo
echo "== artifacts =="
ls -l results/delta_ablation.csv results/BENCH_delta.json

#!/usr/bin/env bash
# Collects the cluster-mode numbers the PR claims:
#
#   1. runs `experiments cluster-ablation`, which sweeps the 13 paper
#      benchmarks x {1, 4, 8} nodes x {hash, load-aware} gateway
#      routing under the request-centric policy at a saturating 1 ms
#      request gap (paired seeds across the routing arms of a cell) and
#      writes results/cluster_ablation.csv plus
#      results/BENCH_cluster.json (per-arm locality hit rates, remote
#      transfer bytes, per-node cold/hot-start breakdowns, and the
#      load-aware p99 win counts vs pure hashing).
#
# Usage: scripts/bench_cluster.sh [--quick]
#   --quick  forwards the experiments harness's reduced-size mode.

set -euo pipefail
cd "$(dirname "$0")/.."

mkdir -p results

echo "== experiments cluster-ablation (writes results/cluster_ablation.csv + BENCH_cluster.json) =="
cargo run -q --release -p pronghorn-experiments -- cluster-ablation "$@"

echo
echo "== artifacts =="
ls -l results/cluster_ablation.csv results/BENCH_cluster.json

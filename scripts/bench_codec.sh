#!/usr/bin/env bash
# Collects the codec performance numbers the PR claims:
#
#   1. runs the codec_throughput bench with PRONGHORN_BENCH_JSON set, so
#      every result is also appended to results/codec_throughput.jsonl
#      (one JSON object per line: group, bench, ns_per_iter, MB/s);
#   2. runs `experiments summary`, which writes results/BENCH_grid.json
#      (grid wall-clock + merged codec counters + the inline
#      legacy-vs-fast micro-bench at 10/32/64 MiB).
#
# Usage: scripts/bench_codec.sh [--quick]
#   --quick  forwards the experiments harness's reduced-size mode.

set -euo pipefail
cd "$(dirname "$0")/.."

mkdir -p results
JSONL=results/codec_throughput.jsonl
: > "$JSONL"

echo "== codec_throughput bench (JSON -> $JSONL) =="
# Absolute path: cargo runs the bench binary from the package directory.
PRONGHORN_BENCH_JSON="$PWD/$JSONL" cargo bench -q -p pronghorn-bench --bench codec_throughput

echo
echo "== experiments summary (writes results/BENCH_grid.json) =="
cargo run -q --release -p pronghorn-experiments -- summary "$@"

echo
echo "== artifacts =="
ls -l "$JSONL" results/BENCH_grid.json

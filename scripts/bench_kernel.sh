#!/usr/bin/env bash
# Collects the simulation-kernel numbers the PR claims:
#
#   1. runs `experiments kernel-bench`, which
#      - replays a production-scale arrival stream (>= 1e6 arrivals at
#        paper scale) through the binary-heap and timer-wheel kernels
#        with completions/timeouts scheduled on the fly, cross-checks an
#        FNV checksum over the exact pop order, and reports events/sec,
#        peak pending events and wall-clock per kernel;
#      - replays the same production trace end to end (run_production)
#        under both kernels and asserts identical ProductionStats;
#      - runs a paired-seed closed-loop grid under both kernels and
#        asserts byte-identical cells;
#      and writes results/BENCH_kernel.json.
#
# Usage: scripts/bench_kernel.sh [--quick]
#   --quick  forwards the experiments harness's reduced-size mode.

set -euo pipefail
cd "$(dirname "$0")/.."

mkdir -p results

echo "== experiments kernel-bench (writes results/BENCH_kernel.json) =="
cargo run -q --release -p pronghorn-experiments -- kernel-bench "$@"

echo
echo "== artifacts =="
ls -l results/BENCH_kernel.json

#!/usr/bin/env bash
# Collects the predictive-provisioning numbers the PR claims:
#
#   1. runs `experiments provision-ablation`, which sweeps the 13 paper
#      benchmarks x {reactive, sliding-window, ewma, mpc} over a sparse
#      bursty production trace (paired seeds, so cells differing only in
#      arm replay identical arrivals) and writes
#      results/provision_ablation.csv plus results/BENCH_provision.json
#      (per-arm win counts, pre-restores issued/used/wasted, keep-alive
#      byte-seconds).
#
# Usage: scripts/bench_provision.sh [--quick]
#   --quick  forwards the experiments harness's reduced-size mode
#            (shorter simulated trace).

set -euo pipefail
cd "$(dirname "$0")/.."

mkdir -p results

echo "== experiments provision-ablation (writes results/provision_ablation.csv + BENCH_provision.json) =="
cargo run -q --release -p pronghorn-experiments -- provision-ablation "$@"

echo
echo "== artifacts =="
ls -l results/provision_ablation.csv results/BENCH_provision.json

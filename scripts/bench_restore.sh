#!/usr/bin/env bash
# Collects the restore-path numbers the PR claims:
#
#   1. runs `experiments restore-ablation`, which sweeps the 13 paper
#      benchmarks x {eager, lazy, record-prefetch} x the paper eviction
#      rates under the request-centric policy (paired seeds, so cells
#      differing only in strategy see identical inputs) and writes
#      results/restore_ablation.csv plus results/BENCH_restore.json
#      (pooled per-strategy median/mean restore time, bytes moved,
#      faults, prefetched pages).
#
# Usage: scripts/bench_restore.sh [--quick]
#   --quick  forwards the experiments harness's reduced-size mode.

set -euo pipefail
cd "$(dirname "$0")/.."

mkdir -p results

echo "== experiments restore-ablation (writes results/restore_ablation.csv + BENCH_restore.json) =="
cargo run -q --release -p pronghorn-experiments -- restore-ablation "$@"

echo
echo "== artifacts =="
ls -l results/restore_ablation.csv results/BENCH_restore.json

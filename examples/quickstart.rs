//! Quickstart: compare the three orchestration policies on one benchmark.
//!
//! ```text
//! cargo run --release --example quickstart [benchmark] [eviction_rate]
//! ```
//!
//! Runs the paper's closed-loop protocol (500 invocations, §5.1 input
//! variance) for the cold-start, checkpoint-after-1st, and request-centric
//! policies, and prints their median latencies and the Pronghorn
//! improvement.

#![forbid(unsafe_code)]

use pronghorn::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let bench = args.next().unwrap_or_else(|| "DynamicHTML".to_string());
    let rate: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(1);

    let Some(workload) = by_name(&bench) else {
        eprintln!("unknown benchmark: {bench}");
        eprintln!("available:");
        for b in evaluation_benchmarks() {
            eprintln!("  {}", b.name());
        }
        std::process::exit(1);
    };

    println!("benchmark: {bench} ({})", workload.kind().label());
    println!("eviction : every {rate} request(s)");
    println!("protocol : 500 invocations, paper input variance\n");

    let mut medians = Vec::new();
    for policy in [
        PolicyKind::Cold,
        PolicyKind::AfterFirst,
        PolicyKind::RequestCentric,
    ] {
        let cfg = RunConfig::paper(policy, rate, 0xFEED);
        let result = run_closed_loop(&workload, &cfg);
        println!(
            "{:<16} median {:>9.0}µs   p90 {:>9.0}µs   cold-starts {:>3}   restores {:>3}   checkpoints {:>3}",
            policy.label(),
            result.median_us(),
            result.percentile_us(90.0),
            result.cold_starts(),
            result.restores(),
            result.checkpoint_ms.len(),
        );
        medians.push((policy, result.median_us()));
    }

    let after_first = medians[1].1;
    let request_centric = medians[2].1;
    if let Some(imp) = pronghorn::metrics::median_improvement_pct(after_first, request_centric) {
        println!("\nrequest-centric vs state-of-the-art (after-1st): {imp:+.1}% median latency");
    }
}

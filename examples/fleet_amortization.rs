//! Exploration amortization across a worker fleet — §5.3 as a runnable
//! demo.
//!
//! ```text
//! cargo run --release --example fleet_amortization [benchmark] [fleet_size]
//! ```
//!
//! "Only a nonempty subset of containers running a given application need
//! to be exploring in order to realize performance benefits — the
//! remaining containers can simply restore from the best snapshots found
//! so far." This example runs the same open-loop load against a fleet with
//! 0, 1, and all workers exploring, showing that one explorer buys the
//! whole fleet the hot-start benefit at a fraction of the checkpointing
//! cost.

#![forbid(unsafe_code)]

use pronghorn::platform::{run_fleet, FleetConfig};
use pronghorn::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let bench = args.next().unwrap_or_else(|| "PageRank".to_string());
    let fleet_size: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let Some(workload) = by_name(&bench) else {
        eprintln!("unknown benchmark: {bench}");
        std::process::exit(1);
    };

    println!(
        "fleet: {fleet_size} workers of {bench} sharing one orchestrator; \
         eviction every 4 requests; 600 arrivals\n"
    );
    let cfg = RunConfig::paper(PolicyKind::RequestCentric, 4, 0xF1EE7).with_invocations(600);

    println!(
        "{:<26} {:>12} {:>12} {:>13} {:>10}",
        "explorers", "median (µs)", "p90 (µs)", "checkpoints", "restores"
    );
    for explorers in [0usize, 1, fleet_size] {
        let result = run_fleet(
            &workload,
            &cfg,
            &FleetConfig {
                fleet_size,
                explorers,
            },
        );
        let label = match explorers {
            0 => "none (no snapshots)".to_string(),
            1 => "one explorer".to_string(),
            n if n == fleet_size => "every worker".to_string(),
            n => format!("{n} explorers"),
        };
        println!(
            "{label:<26} {:>12.0} {:>12.0} {:>13} {:>10}",
            result.median_us(),
            result.percentile_us(90.0),
            result.checkpoint_ms.len(),
            result.restores(),
        );
    }
    println!(
        "\none explorer gets nearly the full-fleet latency at ~1/{fleet_size} of the\n\
         checkpointing cost — the provider picks the amortization degree (§5.3)"
    );
}

//! Replay Azure-like production traces against the orchestrator — the
//! Figure 6 scenario as a runnable tool.
//!
//! ```text
//! cargo run --release --example trace_replay [percentile] [benchmark]
//! ```
//!
//! Synthesizes a 15-minute invocation trace for a function at the given
//! popularity percentile (default 75), replays it under all three
//! orchestration policies with idle-timeout eviction, and prints per-policy
//! latency distributions plus live pool statistics.

#![forbid(unsafe_code)]

use pronghorn::prelude::*;
use pronghorn::traces::Trace;

fn replay(workload: &dyn Workload, policy: PolicyKind, trace: &Trace, seed: u64) -> RunResult {
    let cfg = RunConfig::paper(policy, 4, seed).with_variance(InputVariance::low());
    run_trace(workload, &cfg, trace)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let percentile: f64 = args
        .next()
        .and_then(|s| s.parse().ok())
        .map(|p: f64| if p > 1.0 { p / 100.0 } else { p })
        .unwrap_or(0.75);
    let bench = args.next().unwrap_or_else(|| "MST".to_string());
    let Some(workload) = by_name(&bench) else {
        eprintln!("unknown benchmark: {bench}");
        std::process::exit(1);
    };

    let factory = RngFactory::new(2024);
    let trace = TraceSpec::percentile(percentile).generate(&mut factory.stream("trace"));
    println!(
        "trace: {} invocations in a 15-minute window ({}th-percentile function)",
        trace.len(),
        (percentile * 100.0) as u32
    );
    if let Some(gap) = trace.mean_gap() {
        println!("mean inter-arrival gap: {gap}");
    }
    if trace.is_empty() {
        println!("(an idle function — nothing to replay)");
        return;
    }
    println!("workload: {bench} on {}\n", workload.kind().label());

    let mut medians = Vec::new();
    for policy in [
        PolicyKind::Cold,
        PolicyKind::AfterFirst,
        PolicyKind::RequestCentric,
    ] {
        let result = replay(&workload, policy, &trace, 2024);
        println!("policy {:<16}", policy.label());
        println!(
            "  latency: median {:>9.0}µs   p90 {:>9.0}µs   max {:>9.0}µs",
            result.median_us(),
            result.percentile_us(90.0),
            result.percentile_us(100.0),
        );
        println!(
            "  workers: {:>2} provisioned ({} cold, {} restored)   checkpoints: {}   pool blobs: {}",
            result.provisions.len(),
            result.cold_starts(),
            result.restores(),
            result.checkpoint_ms.len(),
            result.store_stats.objects,
        );
        medians.push((policy, result.median_us()));
        println!();
    }

    if trace.len() < 10 {
        println!(
            "note: with only {} requests this is the paper's pathological\n\
             regime (§5.2: a 50th-percentile MST trace with 3 requests) —\n\
             the policy cannot learn anything useful in one window.",
            trace.len()
        );
    } else if let Some(imp) = pronghorn::metrics::median_improvement_pct(medians[1].1, medians[2].1)
    {
        println!("request-centric vs after-1st: {imp:+.1}% median");
    }
}

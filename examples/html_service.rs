//! A dynamic-HTML rendering service on two runtimes — the paper's
//! motivating workload (Figure 1), end to end.
//!
//! ```text
//! cargo run --release --example html_service
//! ```
//!
//! Part 1 reproduces the warm-up observation: a single long-lived worker
//! renders pages for 2 500 requests on PyPy and on the JVM, showing how
//! many requests each runtime needs to converge and how much latency the
//! JIT removes. Part 2 deploys the same service behind the Pronghorn
//! orchestrator under aggressive eviction and shows the hot-start benefit
//! materializing.

#![forbid(unsafe_code)]

use pronghorn::experiments::fig1::warmup_curve;
use pronghorn::prelude::*;

fn main() {
    println!("== Part 1: why checkpoint timing matters =====================\n");
    for bench in ["DynamicHTML", "HTMLRendering"] {
        let workload = by_name(bench).expect("bundled benchmark");
        let curve = warmup_curve(&workload, 2_500, 7);
        println!(
            "{bench} on {}:",
            if workload.kind() == RuntimeKind::PyPy {
                "PyPy"
            } else {
                "OpenJDK-like JVM"
            }
        );
        println!(
            "  latency right after request 1 (where SnapStart & friends checkpoint): {:>8.0}µs",
            curve.premature_us
        );
        println!(
            "  latency once the JIT has converged (where Pronghorn aims):            {:>8.0}µs",
            curve.converged_us
        );
        println!(
            "  -> {:.1}% of every future invocation wasted by the premature snapshot",
            curve.reduction_pct
        );
        println!(
            "  -> convergence took ~{} requests — far beyond any worker's lifetime\n",
            curve
                .convergence_request
                .map(|c| c.to_string())
                .unwrap_or_else(|| ">2500".into())
        );
    }

    println!("== Part 2: the orchestrator recovers that loss ===============\n");
    let workload = by_name("DynamicHTML").expect("bundled benchmark");
    for rate in [1u32, 4, 20] {
        let baseline = run_closed_loop(
            &workload,
            &RunConfig::paper(PolicyKind::AfterFirst, rate, 11),
        );
        let pronghorn = run_closed_loop(
            &workload,
            &RunConfig::paper(PolicyKind::RequestCentric, rate, 11),
        );
        let imp =
            pronghorn::metrics::median_improvement_pct(baseline.median_us(), pronghorn.median_us())
                .unwrap_or(f64::NAN);
        println!(
            "eviction every {rate:>2} request(s): after-1st {:>7.0}µs  ->  request-centric {:>7.0}µs  ({imp:+.1}%)",
            baseline.median_us(),
            pronghorn.median_us(),
        );
    }
    println!("\n(the benefit is largest exactly where serverless hurts most: rate 1,");
    println!(" the ~75% of production functions that see at most one request per");
    println!(" 10-minute eviction window)");
}

//! Sweep the request-centric policy's tuning knobs — §6's "Tuning
//! Pronghorn" discussion as a runnable experiment.
//!
//! ```text
//! cargo run --release --example policy_tuning [benchmark]
//! ```
//!
//! Sweeps, one at a time around the paper's defaults: the snapshot-pool
//! capacity `C`, the search-space bound `W`, the EWMA proportion `α`, and
//! the eviction fractions `(p, γ)`, printing the median latency each
//! configuration achieves. Shows the cost/performance trade-off a cloud
//! provider navigates ("the cloud provider can also directly lower the
//! storage overhead used by simply reducing the size of the snapshot
//! pool, e.g., setting C = 2 instead of C = 12").

#![forbid(unsafe_code)]

use pronghorn::prelude::*;

fn median_with(workload: &dyn Workload, config: PolicyConfig) -> f64 {
    let cfg = RunConfig::paper(PolicyKind::RequestCentric, 1, 77)
        .with_invocations(400)
        .with_policy_config(config);
    run_closed_loop(workload, &cfg).median_us()
}

fn base_config(kind: RuntimeKind) -> PolicyConfig {
    match kind {
        RuntimeKind::PyPy => PolicyConfig::paper_pypy(),
        RuntimeKind::Jvm => PolicyConfig::paper_jvm(),
    }
}

fn main() {
    let bench = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "PageRank".to_string());
    let Some(workload) = by_name(&bench) else {
        eprintln!("unknown benchmark: {bench}");
        std::process::exit(1);
    };
    let base = base_config(workload.kind());
    println!("tuning {bench} (eviction rate 1, 400 invocations per point)\n");

    let baseline = {
        let cfg = RunConfig::paper(PolicyKind::AfterFirst, 1, 77).with_invocations(400);
        run_closed_loop(&workload, &cfg).median_us()
    };
    println!("state-of-the-art (after-1st) median: {baseline:>9.0}µs\n");

    println!("pool capacity C (paper: 12) — smaller pools cut storage cost:");
    for c in [2usize, 4, 8, 12, 24] {
        let m = median_with(&workload, base.with_capacity(c));
        println!(
            "  C = {c:<3} median {m:>9.0}µs   storage bound ~{:>5.1} MB/snapshot x {c}",
            55.0
        );
    }

    println!("\nsearch-space bound W (paper: 100 PyPy / 200 JVM):");
    for w in [25u32, 50, base.w, base.w * 2] {
        let m = median_with(&workload, base.with_w(w));
        println!("  W = {w:<4} median {m:>9.0}µs");
    }

    println!("\nEWMA proportion α (recency weighting of latency knowledge):");
    for alpha in [0.05, 0.1, 0.3, 0.6, 0.9] {
        let m = median_with(&workload, base.with_alpha(alpha));
        println!("  α = {alpha:<4} median {m:>9.0}µs");
    }

    println!("\neviction fractions (p, γ) (paper: 40%, 10%):");
    for (p, g) in [(0.4, 0.1), (0.4, 0.0), (0.2, 0.1), (0.8, 0.1), (0.2, 0.5)] {
        let m = median_with(&workload, base.with_eviction_fracs(p, g));
        println!("  p = {p:.1}, γ = {g:.1}   median {m:>9.0}µs");
    }

    println!("\n(γ = 0 removes the random-survivor exploration; very small W or C");
    println!(" limits which optimization states the pool can ever capture)");
}

//! Cross-crate end-to-end tests through the `pronghorn` facade.

#![forbid(unsafe_code)]

use pronghorn::prelude::*;

#[test]
fn facade_quickstart_compiles_and_runs() {
    let workload = by_name("DynamicHTML").expect("bundled benchmark");
    let config = RunConfig::paper(PolicyKind::RequestCentric, 1, 42).with_invocations(80);
    let result = run_closed_loop(&workload, &config);
    assert_eq!(result.latencies_us.len(), 80);
    assert!(result.median_us() > 0.0);
}

#[test]
fn every_benchmark_runs_under_every_policy() {
    for workload in evaluation_benchmarks() {
        for policy in [
            PolicyKind::Cold,
            PolicyKind::AfterFirst,
            PolicyKind::RequestCentric,
        ] {
            let cfg = RunConfig::paper(policy, 4, 1)
                .with_invocations(24)
                .with_variance(InputVariance::paper());
            let result = run_closed_loop(&workload, &cfg);
            assert_eq!(
                result.latencies_us.len(),
                24,
                "{} under {:?}",
                workload.name(),
                policy
            );
            assert!(
                result
                    .latencies_us
                    .iter()
                    .all(|&l| l.is_finite() && l > 0.0),
                "{} produced a non-finite latency",
                workload.name()
            );
        }
    }
}

#[test]
fn full_runs_are_bit_reproducible() {
    let workload = by_name("PageRank").expect("bundled benchmark");
    let cfg = RunConfig::paper(PolicyKind::RequestCentric, 1, 0xD00D).with_invocations(150);
    let a = run_closed_loop(&workload, &cfg);
    let b = run_closed_loop(&workload, &cfg);
    assert_eq!(a.latencies_us, b.latencies_us);
    assert_eq!(a.provisions, b.provisions);
    assert_eq!(a.checkpoint_ms, b.checkpoint_ms);
    assert_eq!(a.snapshot_mb, b.snapshot_mb);
}

#[test]
fn snapshot_pool_capacity_bounds_blobs_for_all_benchmarks() {
    for workload in [by_name("BFS").unwrap(), by_name("Hash").unwrap()] {
        let cfg = RunConfig::paper(PolicyKind::RequestCentric, 1, 3).with_invocations(200);
        let result = run_closed_loop(&workload, &cfg);
        assert!(
            result.store_stats.objects <= 12,
            "{}: {} blobs pooled",
            workload.name(),
            result.store_stats.objects
        );
        // Evicted blobs must actually be deleted from the store.
        assert!(result.store_stats.deletes > 0);
    }
}

#[test]
fn trace_replay_through_facade() {
    let workload = by_name("Thumbnailer").expect("bundled benchmark");
    let factory = RngFactory::new(5);
    let trace = TraceSpec::percentile(0.75).generate(&mut factory.stream("t"));
    let cfg = RunConfig::paper(PolicyKind::RequestCentric, 4, 5);
    let result = run_trace(&workload, &cfg, &trace);
    assert_eq!(result.latencies_us.len(), trace.len());
}

#[test]
fn virtual_time_and_metrics_interoperate() {
    // The kind of analysis a downstream user writes: run, build a CDF,
    // read percentiles.
    let workload = by_name("WordCount").expect("bundled benchmark");
    let cfg = RunConfig::paper(PolicyKind::AfterFirst, 4, 9).with_invocations(120);
    let result = run_closed_loop(&workload, &cfg);
    let cdf = result.cdf().expect("non-empty latencies");
    let p50 = cdf.inverse(0.5);
    let p99 = cdf.inverse(0.99);
    assert!(p50 <= p99);
    assert!(cdf.eval(p99) >= 0.99);
    let q = Quantiles::new(result.latencies_us.clone()).unwrap();
    assert!((q.median() - result.median_us()).abs() < 1e-9);
}

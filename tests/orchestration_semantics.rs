//! Integration tests pinning the orchestration semantics the paper
//! describes, across crate boundaries.

#![forbid(unsafe_code)]

use pronghorn::checkpoint::{Checkpointable, SimCriuEngine, SnapshotMeta};
use pronghorn::jit::{MethodWork, RequestWork, Runtime};
use pronghorn::prelude::*;

fn simple_request() -> RequestWork {
    RequestWork::new(vec![
        MethodWork {
            method: 0,
            units: 500.0,
            calls: 1.0,
        },
        MethodWork {
            method: 1,
            units: 500.0,
            calls: 100.0,
        },
        MethodWork {
            method: 2,
            units: 500.0,
            calls: 200.0,
        },
        MethodWork {
            method: 3,
            units: 500.0,
            calls: 400.0,
        },
    ])
}

/// A restored runtime must behave as if it had never been evicted: the
/// "requests to convergence" counted across snapshot generations equals a
/// single long-lived worker's.
#[test]
fn snapshot_chains_preserve_warmup_progress() {
    let workload = by_name("BFS").expect("bundled benchmark");
    let engine = SimCriuEngine::new();
    let factory = RngFactory::new(21);
    let mut rng = factory.stream("chain");

    // Continuous worker: 120 requests straight.
    let (mut continuous, _) = Runtime::cold_start(
        workload.runtime_profile(),
        workload.method_profiles(),
        &mut rng,
    );
    let mut rng_a = factory.stream("exec");
    for _ in 0..120 {
        continuous.execute(&simple_request(), &mut rng_a);
    }

    // Chained worker: checkpoint/restore every 10 requests.
    let (mut chained, _) = Runtime::cold_start(
        workload.runtime_profile(),
        workload.method_profiles(),
        &mut rng,
    );
    let mut rng_b = factory.stream("exec"); // same stream seed as rng_a
    for generation in 0..12 {
        for _ in 0..10 {
            chained.execute(&simple_request(), &mut rng_b);
        }
        let meta = SnapshotMeta {
            function: "chain".into(),
            request_number: (generation + 1) * 10,
            runtime: "pypy".into(),
        };
        let (snapshot, _) = engine.checkpoint(&mut rng, &chained, meta);
        let (restored, _): (Runtime, _) = engine.restore(&mut rng, &snapshot).unwrap();
        chained = restored;
    }

    assert_eq!(continuous.requests_executed(), chained.requests_executed());
    // Same tiers reached (checkpointing is transparent to JIT progress).
    let tiers = |r: &Runtime| -> Vec<_> { r.method_states().iter().map(|m| m.tier).collect() };
    assert_eq!(tiers(&continuous), tiers(&chained));
}

/// Checkpoint request numbers never exceed `W` ("Largest request number
/// at which checkpointing is permitted", Table 2), and the provider's
/// §5.3 cost bound — stop checkpointing after `W + 100` invocations —
/// caps the checkpoint count without hurting the latency benefit.
#[test]
fn checkpointing_is_bounded_by_w_and_the_provider_stop() {
    let workload = by_name("DFS").expect("bundled benchmark");

    // Faithful evaluation setup: checkpointing continues (one per
    // lifetime at eviction rate 1) but only inside [0, W].
    let cfg = RunConfig::paper(PolicyKind::RequestCentric, 1, 77).with_invocations(500);
    let unbounded = run_closed_loop(&workload, &cfg);
    assert!(
        unbounded.snapshot_requests.iter().all(|&r| r <= 100),
        "snapshot beyond W taken"
    );

    // Provider stop at W + 100 = 200 invocations.
    let stopped_cfg = cfg.with_checkpoint_stop(200);
    let stopped = run_closed_loop(&workload, &stopped_cfg);
    assert!(
        stopped.checkpoint_ms.len() <= 201,
        "{} checkpoints despite the stop",
        stopped.checkpoint_ms.len()
    );
    assert!(stopped.checkpoint_ms.len() < unbounded.checkpoint_ms.len());
    // The latency benefit survives: medians within 15% of each other.
    let ratio = stopped.median_us() / unbounded.median_us();
    assert!((0.85..=1.15).contains(&ratio), "stop cost ratio {ratio}");
}

/// The image a checkpoint produces must grow as the runtime optimizes
/// (more machine code in the image) — Table 4's size gradient.
#[test]
fn snapshot_size_grows_with_optimization_state() {
    let workload = by_name("Hash").expect("bundled benchmark");
    let factory = RngFactory::new(8);
    let mut rng = factory.stream("x");
    let (mut runtime, _) = Runtime::cold_start(
        workload.runtime_profile(),
        workload.method_profiles(),
        &mut rng,
    );
    let cold_size = runtime.image_size_bytes();
    let mut exec = factory.stream("exec");
    for i in 0..3_000u64 {
        let mut input = factory.stream_indexed("input", i);
        let request = workload.generate(&mut input, InputVariance::none());
        runtime.execute(&request, &mut exec);
    }
    let warm_size = runtime.image_size_bytes();
    assert!(
        warm_size > cold_size,
        "warm image {warm_size} <= cold image {cold_size}"
    );
}

/// Baselines restore from exactly one snapshot forever; the request-centric
/// policy restores from a spread of request numbers (its pool).
#[test]
fn policies_differ_in_restore_diversity() {
    use pronghorn::platform::ProvisionKind;
    let workload = by_name("MST").expect("bundled benchmark");
    let distinct_resumes = |policy: PolicyKind| -> usize {
        let cfg = RunConfig::paper(policy, 1, 13).with_invocations(300);
        let result = run_closed_loop(&workload, &cfg);
        let mut resumes: Vec<u32> = result
            .provisions
            .iter()
            .filter_map(|p| match p {
                ProvisionKind::Restored(r) => Some(*r),
                ProvisionKind::Cold => None,
            })
            .collect();
        resumes.sort_unstable();
        resumes.dedup();
        resumes.len()
    };
    assert_eq!(distinct_resumes(PolicyKind::AfterFirst), 1);
    assert!(distinct_resumes(PolicyKind::RequestCentric) > 20);
}

/// A custom Checkpointable type works with the engine — the "agnostic to
/// the underlying checkpoint engine and runtime" claim, inverted: the
/// engine is agnostic to the process.
#[test]
fn engine_is_process_agnostic() {
    use pronghorn::checkpoint::codec::{CodecError, Decoder, Encoder};

    #[derive(Debug, PartialEq)]
    struct KvProcess {
        entries: Vec<(String, u64)>,
    }

    impl Checkpointable for KvProcess {
        fn encode_state(&self, enc: &mut Encoder) {
            enc.put_seq(&self.entries, |e, (k, v)| {
                e.put_str(k);
                e.put_u64(*v);
            });
        }
        fn decode_state(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
            Ok(KvProcess {
                entries: dec.take_seq(16, |d| {
                    let k = d.take_str()?.to_string();
                    let v = d.take_u64()?;
                    Ok((k, v))
                })?,
            })
        }
        fn image_size_bytes(&self) -> u64 {
            1024 * 1024
        }
    }

    let engine = SimCriuEngine::new();
    let mut rng = RngFactory::new(3).stream("engine");
    let process = KvProcess {
        entries: vec![("a".into(), 1), ("b".into(), 2)],
    };
    let meta = SnapshotMeta {
        function: "kv".into(),
        request_number: 0,
        runtime: "custom".into(),
    };
    let (snapshot, _) = engine.checkpoint(&mut rng, &process, meta);
    let (restored, _): (KvProcess, _) = engine.restore(&mut rng, &snapshot).unwrap();
    assert_eq!(restored, process);
}

/// A 1-node cluster is the single-node runner: same client latencies, same
/// provision sequence, same restore telemetry, and no remote traffic —
/// the gateway is a no-op when there is nowhere else to route.
#[test]
fn one_node_cluster_is_the_closed_loop_runner() {
    let workload = by_name("Uploader").expect("bundled benchmark");
    let cfg = RunConfig::paper(PolicyKind::RequestCentric, 4, 99).with_invocations(200);
    let single = run_closed_loop(&workload, &cfg);
    let cluster = run_cluster(&workload, &cfg.with_cluster(ClusterSpec::single_node()));

    assert_eq!(single.latencies_us, cluster.result.latencies_us);
    assert_eq!(single.provisions, cluster.result.provisions);
    assert_eq!(single.restore_infos, cluster.result.restore_infos);
    assert_eq!(cluster.locality.remote_misses, 0);
    assert_eq!(cluster.locality.remote_bytes, 0);
    assert_eq!(cluster.spillovers(), 0);
}

/// The gateway only spills a request off its ring owner when the owner is
/// saturated: at the paper's 60 s request gap every worker slot is free by
/// the next arrival, so load-aware routing degenerates to pure hashing;
/// only a gap far below the service time produces spillover.
#[test]
fn spillover_requires_owner_saturation() {
    let workload = by_name("Hash").expect("bundled benchmark");
    let spec = ClusterSpec::new(4)
        .with_capacity(1)
        .with_routing(RoutingPolicy::LoadAware);
    let cfg = RunConfig::paper(PolicyKind::RequestCentric, 1, 42)
        .with_invocations(150)
        .with_cluster(spec);

    // Paper gap: 60 s between arrivals, no saturation, no spillover.
    let relaxed = run_cluster(&workload, &cfg);
    assert_eq!(relaxed.spillovers(), 0);
    assert_eq!(relaxed.locality.remote_misses, 0);

    // Contended gap: the owner's one slot is still busy when the next
    // request lands, so the gateway walks the ring.
    let mut contended_cfg = cfg;
    contended_cfg.request_gap = SimDuration::from_millis(1);
    let contended = run_cluster(&workload, &contended_cfg);
    assert!(contended.spillovers() > 0);
}

/// Cross-node transfer bytes surface in `RestoreInfo::bytes_transferred`
/// exactly when a restore misses node-local residency: total restore
/// traffic decomposes into the nominal download plus the remote bytes.
#[test]
fn remote_restore_penalty_is_accounted_only_on_locality_misses() {
    let workload = by_name("MatrixMult").expect("bundled benchmark");
    let base = RunConfig::paper(PolicyKind::RequestCentric, 1, 7).with_invocations(150);

    // Single node: every restore is node-local; restore traffic is the
    // nominal snapshot downloads alone.
    let local = run_cluster(&workload, &base.with_cluster(ClusterSpec::single_node()));
    assert_eq!(
        local.result.restore_bytes(),
        local.result.overheads.nominal_bytes_downloaded
    );
    assert_eq!(local.locality.remote_bytes, 0);

    // Contended 4-node load-aware cluster: spilled restores fetch the
    // snapshot from its checkpointing node and the surcharge lands in
    // `bytes_transferred`.
    let mut cfg = base.with_cluster(
        ClusterSpec::new(4)
            .with_capacity(1)
            .with_routing(RoutingPolicy::LoadAware),
    );
    cfg.request_gap = SimDuration::from_millis(1);
    let remote = run_cluster(&workload, &cfg);
    assert!(remote.locality.remote_misses > 0);
    assert!(remote.locality.remote_bytes > 0);
    assert_eq!(
        remote.result.restore_bytes(),
        remote.result.overheads.nominal_bytes_downloaded + remote.locality.remote_bytes
    );
}

//! Table 4's convergence-request detector.
//!
//! The paper computes "the requests taken by Pronghorn to find the optimal
//! snapshot" by *sliding a window of size 20 across the recorded latencies
//! to find the interval whose median is within 2% of the final value*; the
//! reported number is the start of the first such window. This module
//! implements that criterion verbatim, parameterized so ablations can vary
//! the window and tolerance.

/// Parameters of the window-median convergence criterion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConvergenceCriteria {
    /// Sliding window length (paper: 20).
    pub window: usize,
    /// Relative tolerance around the final value (paper: 0.02).
    pub tolerance: f64,
    /// Samples over which the "final value" reference median is computed.
    /// The paper's criterion uses the last window (`window`); a larger
    /// reference makes the detector robust to a deoptimization landing in
    /// the very last requests of a run.
    pub reference_window: usize,
}

impl Default for ConvergenceCriteria {
    fn default() -> Self {
        ConvergenceCriteria {
            window: 20,
            tolerance: 0.02,
            reference_window: 20,
        }
    }
}

impl ConvergenceCriteria {
    /// The paper's criterion but with the final value referenced over the
    /// last `reference` samples.
    pub fn with_reference_window(mut self, reference: usize) -> Self {
        self.reference_window = reference.max(self.window);
        self
    }
}

/// Median of a small window via O(n) selection rather than a full sort.
/// The detector calls this once per sliding-window position, so it is the
/// hot inner loop of [`convergence_request`].
fn window_median(window: &[f64]) -> f64 {
    let mut w = window.to_vec();
    let n = w.len();
    // Selecting the upper-middle element partitions everything smaller
    // into the left slice, so for even windows the lower-middle value is
    // the left slice's maximum — no second selection pass needed.
    let (left, upper_mid, _) =
        w.select_nth_unstable_by(n / 2, |a, b| a.partial_cmp(b).expect("finite latencies"));
    if n % 2 == 1 {
        *upper_mid
    } else {
        // pronglint: det-order — max over the partition (max is associative).
        let lower_mid = left.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        (lower_mid + *upper_mid) / 2.0
    }
}

/// Returns the request index (0-based start of the first window) at which
/// the latency series converged, per the paper's Table 4 criterion.
///
/// The "final value" is the median of the last full window. Returns `None`
/// when the series is shorter than one window, contains non-finite values,
/// or never converges under the tolerance.
///
/// # Examples
///
/// ```
/// use pronghorn_metrics::{convergence_request, ConvergenceCriteria};
///
/// // 100 slow requests, then 200 fast ones: converges at the first window
/// // in which fast samples hold the median (start 91 of a 20-wide window).
/// let mut lat = vec![1000.0; 100];
/// lat.extend(vec![100.0; 200]);
/// let c = convergence_request(&lat, ConvergenceCriteria::default());
/// assert_eq!(c, Some(91));
/// ```
pub fn convergence_request(latencies: &[f64], criteria: ConvergenceCriteria) -> Option<usize> {
    let w = criteria.window;
    if w == 0 || latencies.len() < w || latencies.iter().any(|x| !x.is_finite()) {
        return None;
    }
    if !(criteria.tolerance.is_finite() && criteria.tolerance >= 0.0) {
        return None;
    }
    let reference = criteria.reference_window.max(w).min(latencies.len());
    let final_median = window_median(&latencies[latencies.len() - reference..]);
    let lo = final_median * (1.0 - criteria.tolerance);
    let hi = final_median * (1.0 + criteria.tolerance);
    latencies.windows(w).position(|win| {
        let m = window_median(win);
        m >= lo && m <= hi
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn default() -> ConvergenceCriteria {
        ConvergenceCriteria::default()
    }

    #[test]
    fn constant_series_converges_immediately() {
        let lat = vec![50.0; 40];
        assert_eq!(convergence_request(&lat, default()), Some(0));
    }

    #[test]
    fn short_series_returns_none() {
        let lat = vec![50.0; 19];
        assert_eq!(convergence_request(&lat, default()), None);
    }

    #[test]
    fn step_function_converges_when_fast_samples_take_the_median() {
        let mut lat = vec![1000.0; 150];
        lat.extend(vec![100.0; 150]);
        // A 20-wide window starting at 141 holds 9 slow + 11 fast samples,
        // so its median is already the final 100µs value.
        assert_eq!(convergence_request(&lat, default()), Some(141));
    }

    #[test]
    fn outliers_within_window_do_not_delay_convergence() {
        // Median-based: up to 9 outliers in a window of 20 are absorbed.
        let mut lat = vec![100.0; 200];
        for i in (0..200).step_by(23) {
            lat[i] = 10_000.0;
        }
        assert_eq!(convergence_request(&lat, default()), Some(0));
    }

    #[test]
    fn slow_ramp_converges_near_plateau() {
        // Linear descent over 400 requests then flat.
        let mut lat: Vec<f64> = (0..400).map(|i| 1000.0 - 2.0 * i as f64).collect();
        lat.extend(vec![200.0; 100]);
        let c = convergence_request(&lat, default()).unwrap();
        // 2% of 200 is +/-4, reached when 1000-2i ~ 204 => i ~ 398.
        assert!((380..=410).contains(&c), "converged at {c}");
    }

    #[test]
    fn non_finite_poison_returns_none() {
        let mut lat = vec![10.0; 40];
        lat[5] = f64::NAN;
        assert_eq!(convergence_request(&lat, default()), None);
    }

    #[test]
    fn custom_window_and_tolerance() {
        let mut lat = vec![110.0; 50];
        lat.extend(vec![100.0; 50]);
        // 10% tolerance: 110 is within 10% of 100.
        let loose = ConvergenceCriteria {
            window: 10,
            tolerance: 0.10,
            reference_window: 10,
        };
        assert_eq!(convergence_request(&lat, loose), Some(0));
        // 2% tolerance: must wait until fast samples hold the window median
        // (start 46 of a 10-wide window: 4 slow + 6 fast).
        let tight = ConvergenceCriteria {
            window: 10,
            tolerance: 0.02,
            reference_window: 10,
        };
        assert_eq!(convergence_request(&lat, tight), Some(46));
    }

    #[test]
    fn zero_window_is_invalid() {
        let crit = ConvergenceCriteria {
            window: 0,
            tolerance: 0.02,
            reference_window: 0,
        };
        assert_eq!(convergence_request(&[1.0, 2.0], crit), None);
    }

    #[test]
    fn even_window_median_averages() {
        assert_eq!(window_median(&[1.0, 2.0, 3.0, 4.0]), 2.5);
        assert_eq!(window_median(&[3.0, 1.0, 2.0]), 2.0);
    }
}

//! Log-bucketed streaming histogram.
//!
//! Latencies in the evaluation span four orders of magnitude (1e3–1e7 µs on
//! the Figure 4/5 x-axes), so the histogram buckets values geometrically:
//! each bucket covers a fixed ratio, giving constant *relative* resolution.
//! Used for cheap latency sketches when the full sample vector is not
//! retained (long trace replays) and for rendering ASCII CDF plots.

/// A histogram with geometric bucket boundaries.
///
/// Values below `min` clamp into the first bucket; values above the last
/// boundary go to an overflow bucket. Relative error of any reconstructed
/// quantile is bounded by the per-bucket growth factor.
///
/// # Examples
///
/// ```
/// use pronghorn_metrics::Histogram;
///
/// // 1% relative resolution between 1µs and 10s.
/// let mut h = Histogram::new(1.0, 1e7, 1.01).unwrap();
/// for x in [100.0, 200.0, 400.0, 800.0] {
///     h.record(x);
/// }
/// assert_eq!(h.count(), 4);
/// let median = h.quantile(0.5);
/// assert!(median >= 200.0 * 0.99 && median <= 400.0 * 1.01);
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    min: f64,
    log_growth: f64,
    counts: Vec<u64>,
    total: u64,
    sum: f64,
}

impl Histogram {
    /// Creates a histogram covering `[min, max]` with buckets growing by
    /// factor `growth` (> 1).
    ///
    /// Returns `None` if the parameters do not describe a valid positive
    /// geometric range.
    pub fn new(min: f64, max: f64, growth: f64) -> Option<Self> {
        let geometry_valid = min > 0.0 && max > min && growth > 1.0;
        if !geometry_valid || !min.is_finite() || !max.is_finite() || !growth.is_finite() {
            return None;
        }
        let log_growth = growth.ln();
        let buckets = ((max / min).ln() / log_growth).ceil() as usize + 1;
        // +1 for overflow bucket.
        Some(Histogram {
            min,
            log_growth,
            counts: vec![0; buckets + 1],
            total: 0,
            sum: 0.0,
        })
    }

    fn bucket_of(&self, x: f64) -> usize {
        if x <= self.min {
            return 0;
        }
        let idx = ((x / self.min).ln() / self.log_growth).floor() as usize;
        idx.min(self.counts.len() - 1)
    }

    /// Lower boundary of bucket `i`.
    fn bucket_lo(&self, i: usize) -> f64 {
        self.min * (self.log_growth * i as f64).exp()
    }

    /// Records one sample; non-finite or non-positive samples are ignored.
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() || x <= 0.0 {
            return;
        }
        let b = self.bucket_of(x);
        self.counts[b] += 1;
        self.total += 1;
        self.sum += x;
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean of recorded samples (exact, not bucketed), 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// Approximate `q`-quantile: the geometric midpoint of the bucket in
    /// which the `q`-th sample falls. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let lo = self.bucket_lo(i);
                let hi = self.bucket_lo(i + 1);
                return (lo * hi).sqrt();
            }
        }
        // Unreachable while total > 0, but stay total.
        self.bucket_lo(self.counts.len())
    }

    /// Merges another histogram with identical geometry.
    ///
    /// Returns `false` (and leaves `self` unchanged) when geometries differ.
    pub fn merge(&mut self, other: &Histogram) -> bool {
        if self.min != other.min
            || self.log_growth != other.log_growth
            || self.counts.len() != other.counts.len()
        {
            return false;
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        true
    }

    /// Iterates non-empty buckets as `(lower_bound, upper_bound, count)`.
    pub fn buckets(&self) -> impl Iterator<Item = (f64, f64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(move |(i, &c)| (self.bucket_lo(i), self.bucket_lo(i + 1), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist() -> Histogram {
        Histogram::new(1.0, 1e6, 1.05).unwrap()
    }

    #[test]
    fn rejects_bad_geometry() {
        assert!(Histogram::new(0.0, 10.0, 1.5).is_none());
        assert!(Histogram::new(10.0, 1.0, 1.5).is_none());
        assert!(Histogram::new(1.0, 10.0, 1.0).is_none());
        assert!(Histogram::new(1.0, f64::INFINITY, 2.0).is_none());
    }

    #[test]
    fn counts_and_mean_are_exact() {
        let mut h = hist();
        for x in [10.0, 20.0, 30.0] {
            h.record(x);
        }
        assert_eq!(h.count(), 3);
        assert!((h.mean() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn ignores_invalid_samples() {
        let mut h = hist();
        h.record(-1.0);
        h.record(0.0);
        h.record(f64::NAN);
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0.0);
    }

    #[test]
    fn quantile_relative_error_is_bounded() {
        let mut h = Histogram::new(1.0, 1e7, 1.02).unwrap();
        let samples: Vec<f64> = (1..=10_000).map(|i| i as f64).collect();
        for &x in &samples {
            h.record(x);
        }
        for &q in &[0.1, 0.5, 0.9, 0.99] {
            let exact = samples[((q * 10_000.0) as usize).max(1) - 1];
            let approx = h.quantile(q);
            let rel = (approx - exact).abs() / exact;
            assert!(rel < 0.03, "q={q} exact={exact} approx={approx}");
        }
    }

    #[test]
    fn overflow_and_underflow_clamp() {
        let mut h = Histogram::new(10.0, 100.0, 2.0).unwrap();
        h.record(1.0); // below min -> first bucket
        h.record(1e9); // above max -> overflow bucket
        assert_eq!(h.count(), 2);
        assert!(h.quantile(0.0) <= 20.0);
        assert!(h.quantile(1.0) >= 100.0);
    }

    #[test]
    fn merge_requires_same_geometry() {
        let mut a = hist();
        let b = Histogram::new(2.0, 1e6, 1.05).unwrap();
        assert!(!a.merge(&b));
        let mut c = hist();
        c.record(5.0);
        assert!(a.merge(&c));
        assert_eq!(a.count(), 1);
    }

    #[test]
    fn buckets_iterates_only_nonempty() {
        let mut h = Histogram::new(1.0, 1e3, 10.0).unwrap();
        h.record(5.0);
        h.record(500.0);
        let buckets: Vec<_> = h.buckets().collect();
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0].2, 1);
        assert!(buckets[0].0 <= 5.0 && 5.0 <= buckets[0].1);
    }
}

//! One-pass summary statistics.
//!
//! Uses Welford's online algorithm for numerically stable mean/variance so
//! summaries can be accumulated sample-by-sample during a simulation run
//! without retaining the sample vector.

use std::fmt;

/// Streaming count/mean/std/min/max accumulator.
///
/// # Examples
///
/// ```
/// use pronghorn_metrics::Summary;
///
/// let mut s = Summary::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.record(x);
/// }
/// assert_eq!(s.mean(), 5.0);
/// assert!((s.population_std() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Builds a summary from a slice in one call.
    pub fn of(samples: &[f64]) -> Self {
        let mut s = Summary::new();
        for &x in samples {
            s.record(x);
        }
        s
    }

    /// Records one sample. Non-finite samples are ignored (and not counted),
    /// keeping the accumulator well-defined.
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another summary into this one (parallel Welford combine).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of (finite) samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or 0 for an empty summary.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (divide by N), or 0 when fewer than one sample.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (divide by N-1), or 0 when fewer than two samples.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn population_std(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Sample standard deviation.
    pub fn sample_std(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Smallest sample, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Sum of samples.
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count == 0 {
            return write!(f, "n=0");
        }
        write!(
            f,
            "n={} mean={:.3} std={:.3} min={:.3} max={:.3}",
            self.count,
            self.mean(),
            self.sample_std(),
            self.min,
            self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_sane() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
        assert!(s.min().is_none());
        assert!(s.max().is_none());
    }

    #[test]
    fn matches_two_pass_computation() {
        let xs: Vec<f64> = (1..=1000).map(|i| (i as f64).sqrt() * 3.7).collect();
        let s = Summary::of(&xs);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((s.mean() - mean).abs() < 1e-9);
        assert!((s.population_variance() - var).abs() < 1e-9);
    }

    #[test]
    fn ignores_non_finite() {
        let mut s = Summary::new();
        s.record(1.0);
        s.record(f64::NAN);
        s.record(f64::INFINITY);
        s.record(3.0);
        assert_eq!(s.count(), 2);
        assert_eq!(s.mean(), 2.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64 * 0.37).collect();
        let (left, right) = xs.split_at(37);
        let mut a = Summary::of(left);
        let b = Summary::of(right);
        a.merge(&b);
        let all = Summary::of(&xs);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.sample_variance() - all.sample_variance()).abs() < 1e-9);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Summary::of(&[1.0, 2.0]);
        let before = a;
        a.merge(&Summary::new());
        assert_eq!(a, before);

        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn sample_variance_guards_small_n() {
        let s = Summary::of(&[5.0]);
        assert_eq!(s.sample_variance(), 0.0);
    }

    #[test]
    fn sum_recovers_total() {
        let s = Summary::of(&[1.5, 2.5, 6.0]);
        assert!((s.sum() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Summary::new().to_string(), "n=0");
        let s = Summary::of(&[1.0, 3.0]);
        assert!(s.to_string().starts_with("n=2 mean=2.000"));
    }
}

//! Latency time-series utilities: bucketing and smoothing.
//!
//! Warm-up curves (Figure 1) are noisy per-request series spanning
//! thousands of points; rendering and analysis both want bucketed medians
//! (robust to deopt spikes) and running quantiles. These helpers are the
//! series-side complement of the distribution-side tools in
//! [`crate::quantile`].

/// Downsamples a series into `buckets` equal-width buckets, taking the
/// median of each — the robust smoother behind the ASCII warm-up plots.
///
/// Returns fewer buckets when the series is shorter than `buckets`.
pub fn bucket_medians(series: &[f64], buckets: usize) -> Vec<f64> {
    if series.is_empty() || buckets == 0 {
        return Vec::new();
    }
    let width = series.len().div_ceil(buckets);
    series
        .chunks(width.max(1))
        .map(|chunk| {
            let mut v: Vec<f64> = chunk.to_vec();
            v.sort_by(|a, b| a.partial_cmp(b).expect("finite series"));
            if v.len() % 2 == 1 {
                v[v.len() / 2]
            } else {
                (v[v.len() / 2 - 1] + v[v.len() / 2]) / 2.0
            }
        })
        .collect()
}

/// Centered moving median with the given half-window (window = `2h + 1`,
/// truncated at the edges). Robust to isolated spikes, unlike a moving
/// mean.
pub fn moving_median(series: &[f64], half_window: usize) -> Vec<f64> {
    if series.is_empty() {
        return Vec::new();
    }
    (0..series.len())
        .map(|i| {
            let lo = i.saturating_sub(half_window);
            let hi = (i + half_window + 1).min(series.len());
            let mut w: Vec<f64> = series[lo..hi].to_vec();
            w.sort_by(|a, b| a.partial_cmp(b).expect("finite series"));
            if w.len() % 2 == 1 {
                w[w.len() / 2]
            } else {
                (w[w.len() / 2 - 1] + w[w.len() / 2]) / 2.0
            }
        })
        .collect()
}

/// The relative improvement trajectory of a warm-up series: for each
/// bucket, the reduction (in percent) of its median versus the first
/// bucket's median — how Figure 1's "latency reduction" accrues over time.
pub fn reduction_trajectory(series: &[f64], buckets: usize) -> Vec<f64> {
    let medians = bucket_medians(series, buckets);
    let Some(&first) = medians.first() else {
        return Vec::new();
    };
    if first <= 0.0 {
        return vec![0.0; medians.len()];
    }
    medians
        .iter()
        .map(|&m| (first - m) / first * 100.0)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_medians_downsample() {
        let series: Vec<f64> = (0..100).map(f64::from).collect();
        let medians = bucket_medians(&series, 10);
        assert_eq!(medians.len(), 10);
        // First bucket covers 0..=9: median 4.5.
        assert_eq!(medians[0], 4.5);
        assert_eq!(medians[9], 94.5);
    }

    #[test]
    fn bucket_medians_handle_edge_cases() {
        assert!(bucket_medians(&[], 5).is_empty());
        assert!(bucket_medians(&[1.0], 0).is_empty());
        // Fewer samples than buckets: one bucket per sample.
        assert_eq!(bucket_medians(&[3.0, 1.0], 10), vec![3.0, 1.0]);
    }

    #[test]
    fn bucket_medians_resist_spikes() {
        let mut series = vec![10.0; 50];
        series[25] = 1e9;
        let medians = bucket_medians(&series, 5);
        assert!(medians.iter().all(|&m| m == 10.0));
    }

    #[test]
    fn moving_median_smooths_isolated_spikes() {
        let mut series = vec![5.0; 21];
        series[10] = 1e6;
        let smooth = moving_median(&series, 2);
        assert_eq!(smooth.len(), series.len());
        assert!(smooth.iter().all(|&v| v == 5.0));
    }

    #[test]
    fn moving_median_truncates_at_edges() {
        let series = [1.0, 2.0, 3.0];
        let smooth = moving_median(&series, 5);
        // Every window is the whole series: median 2.
        assert_eq!(smooth, vec![2.0, 2.0, 2.0]);
        assert!(moving_median(&[], 2).is_empty());
    }

    #[test]
    fn reduction_trajectory_tracks_warmup() {
        // 1000µs dropping to 250µs: final reduction 75%.
        let mut series = vec![1_000.0; 100];
        series.extend(vec![250.0; 100]);
        let traj = reduction_trajectory(&series, 4);
        assert_eq!(traj.len(), 4);
        assert_eq!(traj[0], 0.0);
        assert_eq!(traj[3], 75.0);
    }

    #[test]
    fn reduction_trajectory_degenerate_inputs() {
        assert!(reduction_trajectory(&[], 4).is_empty());
        let flat = reduction_trajectory(&[0.0, 0.0, 0.0, 0.0], 2);
        assert_eq!(flat, vec![0.0, 0.0]);
    }
}

//! Aggregation helpers used by the evaluation (§5.2).
//!
//! The paper aggregates per-benchmark median improvements with a geometric
//! mean ("a geometric mean of improvement (based on percentage improvement
//! in median) of 37.2%"), and classifies a policy as "on-par" when within 5%
//! of the baseline. These helpers implement those conventions.

/// Geometric mean of strictly positive values.
///
/// Computed in log space for numerical robustness. Returns `None` for an
/// empty slice or any non-positive / non-finite element.
///
/// # Examples
///
/// ```
/// use pronghorn_metrics::geometric_mean;
///
/// assert_eq!(geometric_mean(&[2.0, 8.0]), Some(4.0));
/// assert_eq!(geometric_mean(&[]), None);
/// ```
pub fn geometric_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut acc = 0.0;
    for &v in values {
        if !(v.is_finite() && v > 0.0) {
            return None;
        }
        acc += v.ln();
    }
    Some((acc / values.len() as f64).exp())
}

/// Arithmetic mean and (population) standard deviation of `values`.
///
/// Returns `None` for an empty slice or any non-finite element. A single
/// sample has zero deviation.
///
/// # Examples
///
/// ```
/// use pronghorn_metrics::mean_and_std;
///
/// let (mean, std) = mean_and_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
/// assert_eq!(mean, 5.0);
/// assert_eq!(std, 2.0);
/// assert_eq!(mean_and_std(&[]), None);
/// ```
pub fn mean_and_std(values: &[f64]) -> Option<(f64, f64)> {
    if values.is_empty() || values.iter().any(|v| !v.is_finite()) {
        return None;
    }
    let n = values.len() as f64;
    // pronglint: det-order — slice iteration, fixed caller-supplied order.
    let mean = values.iter().sum::<f64>() / n;
    // pronglint: det-order — slice iteration, fixed caller-supplied order.
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    Some((mean, var.sqrt()))
}

/// Percentage change from `baseline` to `new`: positive means `new` is
/// *smaller* (an improvement, in latency terms).
///
/// Returns `None` when `baseline` is non-positive or either value is
/// non-finite.
pub fn percent_change(baseline: f64, new: f64) -> Option<f64> {
    if !(baseline.is_finite() && new.is_finite()) || baseline <= 0.0 {
        return None;
    }
    Some((baseline - new) / baseline * 100.0)
}

/// Median-latency improvement of a candidate over a baseline, in percent,
/// following §5.2's convention (positive = candidate faster).
pub fn median_improvement_pct(baseline_median: f64, candidate_median: f64) -> Option<f64> {
    percent_change(baseline_median, candidate_median)
}

/// §5.2 classification of a policy cell against the baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Median improved by more than the on-par band.
    Better,
    /// Within ±5% of the baseline median ("on-par performance (within 5% of
    /// state-of-the-art)").
    OnPar,
    /// Median regressed by more than the on-par band.
    Worse,
}

/// Classifies a median improvement percentage with the paper's ±5% band.
pub fn classify(improvement_pct: f64) -> Verdict {
    if improvement_pct > 5.0 {
        Verdict::Better
    } else if improvement_pct < -5.0 {
        Verdict::Worse
    } else {
        Verdict::OnPar
    }
}

/// Geometric mean of the *positive* improvements among cells, mirroring the
/// paper's "geometric mean of improvement" over the benchmarks where
/// Pronghorn provides better median performance.
///
/// Returns `None` if no cell improved.
pub fn geo_mean_of_improvements(improvements_pct: &[f64]) -> Option<f64> {
    let winners: Vec<f64> = improvements_pct
        .iter()
        .copied()
        .filter(|&x| x > 0.0 && x.is_finite())
        .collect();
    geometric_mean(&winners)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_mean_basics() {
        assert_eq!(geometric_mean(&[4.0]), Some(4.0));
        let gm = geometric_mean(&[1.0, 10.0, 100.0]).unwrap();
        assert!((gm - 10.0).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean_rejects_invalid() {
        assert_eq!(geometric_mean(&[1.0, 0.0]), None);
        assert_eq!(geometric_mean(&[1.0, -2.0]), None);
        assert_eq!(geometric_mean(&[f64::NAN]), None);
    }

    #[test]
    fn geometric_mean_is_scale_equivariant() {
        let xs = [3.0, 7.0, 11.0];
        let scaled: Vec<f64> = xs.iter().map(|x| x * 5.0).collect();
        let a = geometric_mean(&xs).unwrap();
        let b = geometric_mean(&scaled).unwrap();
        assert!((b / a - 5.0).abs() < 1e-12);
    }

    #[test]
    fn mean_and_std_handles_edges() {
        assert_eq!(mean_and_std(&[3.0]), Some((3.0, 0.0)));
        assert_eq!(mean_and_std(&[1.0, f64::NAN]), None);
        assert_eq!(mean_and_std(&[1.0, f64::INFINITY]), None);
        let (m, s) = mean_and_std(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(m, 2.0);
        assert!((s - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn percent_change_sign_convention() {
        // Latency 100 -> 60 is a 40% improvement.
        assert_eq!(percent_change(100.0, 60.0), Some(40.0));
        // Latency 100 -> 150 is a -50% "improvement" (regression).
        assert_eq!(percent_change(100.0, 150.0), Some(-50.0));
    }

    #[test]
    fn percent_change_rejects_bad_baseline() {
        assert_eq!(percent_change(0.0, 10.0), None);
        assert_eq!(percent_change(-5.0, 10.0), None);
        assert_eq!(percent_change(f64::NAN, 10.0), None);
    }

    #[test]
    fn verdict_band_is_five_percent() {
        assert_eq!(classify(20.0), Verdict::Better);
        assert_eq!(classify(5.0), Verdict::OnPar);
        assert_eq!(classify(0.0), Verdict::OnPar);
        assert_eq!(classify(-5.0), Verdict::OnPar);
        assert_eq!(classify(-5.1), Verdict::Worse);
    }

    #[test]
    fn improvements_geo_mean_filters_losers() {
        // Only the positive improvements participate, like the paper's
        // "of the benchmarks where Pronghorn provides better median
        // performance, the geometric mean of improvement was ...".
        let gm = geo_mean_of_improvements(&[20.0, 45.0, -10.0, 0.0]).unwrap();
        assert!((gm - 30.0).abs() < 1e-9);
        assert_eq!(geo_mean_of_improvements(&[-1.0, 0.0]), None);
    }
}

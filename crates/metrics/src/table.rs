//! Plain-text and CSV table rendering.
//!
//! The experiment harness prints paper-style rows ("Table 4. For each
//! benchmark, ...") and writes CSV files mirroring the artifact's
//! `results/` directory. This module is a minimal column-aligned table
//! builder — no dependency needed.

use std::fmt::Write as _;

/// Visual style of a rendered table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TableStyle {
    /// Column-aligned with a header separator (for terminals).
    #[default]
    Plain,
    /// GitHub-flavoured Markdown.
    Markdown,
}

/// A rows-and-columns table with a header.
///
/// # Examples
///
/// ```
/// use pronghorn_metrics::{Table, TableStyle};
///
/// let mut t = Table::new(vec!["Benchmark", "Median (µs)"]);
/// t.row(vec!["BFS".into(), "10432".into()]);
/// let text = t.render(TableStyle::Plain);
/// assert!(text.contains("Benchmark"));
/// assert!(text.contains("BFS"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Short rows are padded with empty cells; long rows are
    /// truncated to the header width.
    pub fn row(&mut self, mut cells: Vec<String>) {
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        widths
    }

    /// Renders the table as text in the requested style.
    pub fn render(&self, style: TableStyle) -> String {
        let widths = self.widths();
        let mut out = String::new();
        let sep = match style {
            TableStyle::Plain => "  ",
            TableStyle::Markdown => " | ",
        };
        let (prefix, suffix) = match style {
            TableStyle::Plain => ("", ""),
            TableStyle::Markdown => ("| ", " |"),
        };
        let emit = |out: &mut String, cells: &[String]| {
            let _ = write!(out, "{prefix}");
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    let _ = write!(out, "{sep}");
                }
                let pad = w.saturating_sub(cell.chars().count());
                let _ = write!(out, "{cell}{}", " ".repeat(pad));
            }
            let _ = writeln!(out, "{suffix}");
        };
        emit(&mut out, &self.header);
        match style {
            TableStyle::Plain => {
                let total: usize =
                    widths.iter().sum::<usize>() + sep.len() * widths.len().saturating_sub(1);
                let _ = writeln!(out, "{}", "-".repeat(total));
            }
            TableStyle::Markdown => {
                let dashes: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
                emit(&mut out, &dashes);
            }
        }
        for row in &self.rows {
            emit(&mut out, row);
        }
        out
    }

    /// Renders the table as RFC-4180-style CSV (quoting cells that contain
    /// commas, quotes, or newlines).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let escape = |cell: &str| -> String {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let emit = |out: &mut String, cells: &[String]| {
            let line: Vec<String> = cells.iter().map(|c| escape(c)).collect();
            let _ = writeln!(out, "{}", line.join(","));
        };
        emit(&mut out, &self.header);
        for row in &self.rows {
            emit(&mut out, row);
        }
        out
    }
}

/// Formats a float with `digits` decimal places, rendering NaN as `-`.
pub fn fmt_f64(x: f64, digits: usize) -> String {
    if x.is_nan() {
        "-".to_string()
    } else {
        format!("{x:.digits$}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["b".into(), "22".into()]);
        t
    }

    #[test]
    fn plain_render_aligns_columns() {
        let text = sample().render(TableStyle::Plain);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], "name   value");
        assert_eq!(lines[2], "alpha  1    ");
    }

    #[test]
    fn markdown_render_has_separator_row() {
        let text = sample().render(TableStyle::Markdown);
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("| name"));
        assert!(lines[1].contains("---"));
    }

    #[test]
    fn short_rows_are_padded_long_rows_truncated() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only".into()]);
        t.row(vec!["x".into(), "y".into(), "z".into()]);
        let csv = t.to_csv();
        assert_eq!(csv.lines().nth(1).unwrap(), "only,");
        assert_eq!(csv.lines().nth(2).unwrap(), "x,y");
    }

    #[test]
    fn csv_escapes_special_cells() {
        let mut t = Table::new(vec!["c"]);
        t.row(vec!["has,comma".into()]);
        t.row(vec!["has\"quote".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"has,comma\""));
        assert!(csv.contains("\"has\"\"quote\""));
    }

    #[test]
    fn fmt_f64_handles_nan() {
        assert_eq!(fmt_f64(1.23456, 2), "1.23");
        assert_eq!(fmt_f64(f64::NAN, 2), "-");
    }

    #[test]
    fn len_and_is_empty() {
        assert!(Table::new(vec!["x"]).is_empty());
        assert_eq!(sample().len(), 2);
    }
}

//! Exponentially-weighted moving average.
//!
//! Algorithm 1 part 3 of the paper: the weight vector entry for a request
//! number is initialized with the first observed latency and thereafter
//! updated as `θ ← α·L + (1−α)·θ`, weighting recent samples higher while
//! retaining earlier knowledge — the mechanism behind the policy's
//! "continuous learning" design principle (§3.3).

/// An EWMA cell with first-sample initialization.
///
/// # Examples
///
/// ```
/// use pronghorn_metrics::Ewma;
///
/// let mut e = Ewma::new(0.5);
/// e.update(100.0); // first sample initializes
/// e.update(200.0);
/// assert_eq!(e.value(), Some(150.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Creates an empty EWMA with smoothing factor `alpha`, clamped to
    /// `(0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not finite.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha.is_finite(), "EWMA alpha must be finite");
        Ewma {
            alpha: alpha.clamp(f64::MIN_POSITIVE, 1.0),
            value: None,
        }
    }

    /// The smoothing factor.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Current estimate, `None` before the first sample.
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// Current estimate, or `default` before the first sample.
    pub fn value_or(&self, default: f64) -> f64 {
        self.value.unwrap_or(default)
    }

    /// Feeds one sample. The first sample initializes the estimate directly
    /// (paper's `θ[R] ← L` branch); later samples blend exponentially.
    /// Non-finite samples are ignored.
    pub fn update(&mut self, sample: f64) {
        if !sample.is_finite() {
            return;
        }
        self.value = Some(match self.value {
            None => sample,
            Some(v) => self.alpha * sample + (1.0 - self.alpha) * v,
        });
    }

    /// Resets to the empty state.
    pub fn reset(&mut self) {
        self.value = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_initializes() {
        let mut e = Ewma::new(0.1);
        assert_eq!(e.value(), None);
        e.update(42.0);
        assert_eq!(e.value(), Some(42.0));
    }

    #[test]
    fn blends_with_alpha() {
        let mut e = Ewma::new(0.25);
        e.update(100.0);
        e.update(0.0);
        assert_eq!(e.value(), Some(75.0));
    }

    #[test]
    fn converges_to_constant_input() {
        let mut e = Ewma::new(0.3);
        e.update(500.0);
        for _ in 0..100 {
            e.update(10.0);
        }
        assert!((e.value().unwrap() - 10.0).abs() < 1e-6);
    }

    #[test]
    fn recent_samples_dominate_with_high_alpha() {
        let mut hi = Ewma::new(0.9);
        let mut lo = Ewma::new(0.1);
        for &x in &[100.0, 100.0, 100.0, 0.0] {
            hi.update(x);
            lo.update(x);
        }
        assert!(hi.value().unwrap() < lo.value().unwrap());
    }

    #[test]
    fn ignores_non_finite() {
        let mut e = Ewma::new(0.5);
        e.update(10.0);
        e.update(f64::NAN);
        e.update(f64::NEG_INFINITY);
        assert_eq!(e.value(), Some(10.0));
    }

    #[test]
    fn alpha_is_clamped() {
        assert_eq!(Ewma::new(5.0).alpha(), 1.0);
        assert!(Ewma::new(0.0).alpha() > 0.0);
    }

    #[test]
    #[should_panic(expected = "alpha must be finite")]
    fn rejects_nan_alpha() {
        let _ = Ewma::new(f64::NAN);
    }

    #[test]
    fn reset_clears_state() {
        let mut e = Ewma::new(0.5);
        e.update(1.0);
        e.reset();
        assert_eq!(e.value(), None);
        assert_eq!(e.value_or(7.0), 7.0);
    }
}

//! Statistics substrate for the Pronghorn reproduction.
//!
//! Everything the paper's evaluation reports is a statistic over end-to-end
//! request latencies: CDFs (Figures 4–6), medians and geometric means of
//! median improvement (§5.2), EWMA latency estimates (Algorithm 1 part 3),
//! and the window-20 convergence criterion of Table 4. This crate implements
//! each of those from scratch, dependency-free:
//!
//! - [`Quantiles`] / [`Cdf`]: exact quantiles with linear interpolation and
//!   an empirical CDF representation;
//! - [`Summary`]: one-pass count/mean/std/min/max summaries;
//! - [`Ewma`]: the exponentially-weighted moving average used by the
//!   request-centric policy's weight vector;
//! - [`Histogram`]: a log-bucketed streaming histogram for latency ranges
//!   spanning orders of magnitude (the paper's CDF x-axes are log scale);
//! - [`convergence`]: Table 4's "window of 20, median within 2% of final"
//!   convergence-request detector;
//! - [`geometric_mean`] and friends: the improvement aggregation of §5.2;
//! - [`table`]: plain-text and CSV table rendering for the experiment
//!   harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod convergence;
pub mod ewma;
pub mod histogram;
pub mod quantile;
pub mod stats;
pub mod summary;
pub mod table;
pub mod timeseries;

pub use convergence::{convergence_request, ConvergenceCriteria};
pub use ewma::Ewma;
pub use histogram::Histogram;
pub use quantile::{Cdf, Quantiles};
pub use stats::{
    classify, geo_mean_of_improvements, geometric_mean, mean_and_std, median_improvement_pct,
    percent_change, Verdict,
};
pub use summary::Summary;
pub use table::{Table, TableStyle};
pub use timeseries::{bucket_medians, moving_median, reduction_trajectory};

//! Exact quantiles and empirical CDFs.
//!
//! The evaluation reports full latency CDFs (Figures 4–6) and medians /
//! arbitrary percentiles of request-latency distributions (§5.2). Sample
//! counts are small (500 invocations per cell), so exact sorted-sample
//! quantiles are both feasible and preferable to sketches.

/// A set of samples prepared for quantile queries.
///
/// Construction sorts the samples once; every query is then O(1).
/// Non-finite samples are rejected at construction so that downstream
/// statistics can never be poisoned by a NaN.
///
/// # Examples
///
/// ```
/// use pronghorn_metrics::Quantiles;
///
/// let q = Quantiles::new(vec![4.0, 1.0, 3.0, 2.0]).unwrap();
/// assert_eq!(q.median(), 2.5);
/// assert_eq!(q.quantile(0.0), 1.0);
/// assert_eq!(q.quantile(1.0), 4.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Quantiles {
    sorted: Vec<f64>,
}

impl Quantiles {
    /// Builds a quantile set from raw samples.
    ///
    /// Returns `None` if `samples` is empty or contains a non-finite value.
    pub fn new(mut samples: Vec<f64>) -> Option<Self> {
        if samples.is_empty() || samples.iter().any(|x| !x.is_finite()) {
            return None;
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare totally"));
        Some(Quantiles { sorted: samples })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the set is empty (never true for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The `q`-th quantile, `q` in `[0, 1]`, with linear interpolation
    /// between order statistics (the "R-7" rule used by NumPy's default).
    ///
    /// `q` outside `[0, 1]` is clamped.
    pub fn quantile(&self, q: f64) -> f64 {
        let q = q.clamp(0.0, 1.0);
        let n = self.sorted.len();
        if n == 1 {
            return self.sorted[0];
        }
        let pos = q * (n - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        if lo == hi {
            self.sorted[lo]
        } else {
            let frac = pos - lo as f64;
            self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
        }
    }

    /// The `p`-th percentile, `p` in `[0, 100]`.
    pub fn percentile(&self, p: f64) -> f64 {
        self.quantile(p / 100.0)
    }

    /// The median (50th percentile).
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Interquartile range, `p75 - p25`.
    pub fn iqr(&self) -> f64 {
        self.quantile(0.75) - self.quantile(0.25)
    }

    /// Minimum sample.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Maximum sample.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty by construction")
    }

    /// The sorted samples.
    pub fn sorted(&self) -> &[f64] {
        &self.sorted
    }

    /// Converts into an empirical CDF.
    pub fn into_cdf(self) -> Cdf {
        Cdf {
            sorted: self.sorted,
        }
    }
}

/// An empirical cumulative distribution function.
///
/// This is the representation behind the paper's Figure 4–6 plots: for each
/// latency `x`, `F(x)` is the fraction of requests completing within `x`.
#[derive(Debug, Clone, PartialEq)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from raw samples; same validity rules as
    /// [`Quantiles::new`].
    pub fn new(samples: Vec<f64>) -> Option<Self> {
        Quantiles::new(samples).map(Quantiles::into_cdf)
    }

    /// Number of underlying samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the CDF holds no samples (never true for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Evaluates `F(x)`: the fraction of samples `<= x`.
    pub fn eval(&self, x: f64) -> f64 {
        // partition_point gives the number of samples <= x.
        let count = self.sorted.partition_point(|&s| s <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Inverse CDF: the smallest sample `x` with `F(x) >= q`.
    pub fn inverse(&self, q: f64) -> f64 {
        let q = q.clamp(0.0, 1.0);
        let n = self.sorted.len();
        let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
        self.sorted[idx]
    }

    /// Renders the CDF as `(x, F(x))` step points, one per sample.
    pub fn points(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        let n = self.sorted.len() as f64;
        self.sorted
            .iter()
            .enumerate()
            .map(move |(i, &x)| (x, (i + 1) as f64 / n))
    }

    /// Samples the CDF at `n` log-spaced x positions between min and max —
    /// the shape used to print Figure 4/5-style series on a log axis.
    ///
    /// Requires all samples to be strictly positive (latencies are);
    /// returns an empty vector otherwise.
    pub fn log_series(&self, n: usize) -> Vec<(f64, f64)> {
        let lo = self.sorted[0];
        let hi = *self.sorted.last().expect("non-empty");
        if lo <= 0.0 || n == 0 {
            return Vec::new();
        }
        if lo == hi {
            return vec![(lo, 1.0)];
        }
        let (llo, lhi) = (lo.ln(), hi.ln());
        (0..n)
            .map(|i| {
                let x = (llo + (lhi - llo) * i as f64 / (n - 1) as f64).exp();
                (x, self.eval(x))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty_and_nonfinite() {
        assert!(Quantiles::new(vec![]).is_none());
        assert!(Quantiles::new(vec![1.0, f64::NAN]).is_none());
        assert!(Quantiles::new(vec![f64::INFINITY]).is_none());
    }

    #[test]
    fn single_sample_quantiles() {
        let q = Quantiles::new(vec![7.0]).unwrap();
        assert_eq!(q.quantile(0.0), 7.0);
        assert_eq!(q.quantile(0.5), 7.0);
        assert_eq!(q.quantile(1.0), 7.0);
    }

    #[test]
    fn interpolates_between_order_statistics() {
        let q = Quantiles::new(vec![0.0, 10.0]).unwrap();
        assert_eq!(q.quantile(0.25), 2.5);
        assert_eq!(q.median(), 5.0);
    }

    #[test]
    fn percentile_matches_quantile() {
        let q = Quantiles::new((0..=100).map(f64::from).collect()).unwrap();
        assert_eq!(q.percentile(90.0), q.quantile(0.9));
        assert_eq!(q.percentile(90.0), 90.0);
    }

    #[test]
    fn clamps_out_of_range_q() {
        let q = Quantiles::new(vec![1.0, 2.0, 3.0]).unwrap();
        assert_eq!(q.quantile(-0.5), 1.0);
        assert_eq!(q.quantile(1.5), 3.0);
    }

    #[test]
    fn iqr_of_uniform_grid() {
        let q = Quantiles::new((0..=100).map(f64::from).collect()).unwrap();
        assert_eq!(q.iqr(), 50.0);
    }

    #[test]
    fn cdf_eval_counts_inclusive() {
        let c = Cdf::new(vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(c.eval(0.5), 0.0);
        assert_eq!(c.eval(1.0), 0.25);
        assert_eq!(c.eval(2.5), 0.5);
        assert_eq!(c.eval(4.0), 1.0);
        assert_eq!(c.eval(9.0), 1.0);
    }

    #[test]
    fn cdf_inverse_is_smallest_sample_reaching_q() {
        let c = Cdf::new(vec![10.0, 20.0, 30.0, 40.0]).unwrap();
        assert_eq!(c.inverse(0.0), 10.0);
        assert_eq!(c.inverse(0.25), 10.0);
        assert_eq!(c.inverse(0.26), 20.0);
        assert_eq!(c.inverse(1.0), 40.0);
    }

    #[test]
    fn cdf_points_step_to_one() {
        let c = Cdf::new(vec![5.0, 1.0]).unwrap();
        let pts: Vec<_> = c.points().collect();
        assert_eq!(pts, vec![(1.0, 0.5), (5.0, 1.0)]);
    }

    #[test]
    fn log_series_spans_range_and_is_monotone() {
        let c = Cdf::new(vec![100.0, 1_000.0, 10_000.0, 100_000.0]).unwrap();
        let series = c.log_series(16);
        assert_eq!(series.len(), 16);
        assert!((series[0].0 - 100.0).abs() < 1e-9);
        assert!((series[15].0 - 100_000.0).abs() < 1e-6);
        for w in series.windows(2) {
            assert!(w[1].0 > w[0].0);
            assert!(w[1].1 >= w[0].1);
        }
        assert_eq!(series[15].1, 1.0);
    }

    #[test]
    fn log_series_degenerate_single_value() {
        let c = Cdf::new(vec![3.0, 3.0]).unwrap();
        assert_eq!(c.log_series(8), vec![(3.0, 1.0)]);
    }

    #[test]
    fn inverse_and_eval_are_consistent() {
        let samples: Vec<f64> = (1..=500).map(|i| i as f64 * 3.0).collect();
        let c = Cdf::new(samples).unwrap();
        for &q in &[0.1, 0.5, 0.9, 0.99] {
            let x = c.inverse(q);
            assert!(c.eval(x) >= q - 1e-12);
        }
    }
}

//! Property-based tests for the statistics substrate.

#![forbid(unsafe_code)]

use pronghorn_metrics::{
    convergence_request, geometric_mean, Cdf, ConvergenceCriteria, Ewma, Histogram, Quantiles,
    Summary,
};
use proptest::prelude::*;

fn finite_samples() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(1.0f64..1e7, 1..200)
}

proptest! {
    #[test]
    fn quantiles_are_monotone_in_q(samples in finite_samples(), qa in 0.0f64..1.0, qb in 0.0f64..1.0) {
        let q = Quantiles::new(samples).unwrap();
        let (lo, hi) = if qa <= qb { (qa, qb) } else { (qb, qa) };
        prop_assert!(q.quantile(lo) <= q.quantile(hi) + 1e-9);
    }

    #[test]
    fn quantiles_are_bounded_by_min_max(samples in finite_samples(), qq in 0.0f64..1.0) {
        let q = Quantiles::new(samples).unwrap();
        prop_assert!(q.quantile(qq) >= q.min() - 1e-9);
        prop_assert!(q.quantile(qq) <= q.max() + 1e-9);
    }

    #[test]
    fn cdf_eval_is_monotone_and_within_unit(samples in finite_samples(), xa in 0.0f64..2e7, xb in 0.0f64..2e7) {
        let c = Cdf::new(samples).unwrap();
        let (lo, hi) = if xa <= xb { (xa, xb) } else { (xb, xa) };
        let (fl, fh) = (c.eval(lo), c.eval(hi));
        prop_assert!((0.0..=1.0).contains(&fl));
        prop_assert!((0.0..=1.0).contains(&fh));
        prop_assert!(fl <= fh);
    }

    #[test]
    fn cdf_inverse_inverts_eval(samples in finite_samples(), qq in 0.01f64..1.0) {
        let c = Cdf::new(samples).unwrap();
        let x = c.inverse(qq);
        prop_assert!(c.eval(x) >= qq - 1e-12);
    }

    #[test]
    fn summary_mean_between_min_and_max(samples in finite_samples()) {
        let s = Summary::of(&samples);
        prop_assert!(s.mean() >= s.min().unwrap() - 1e-9);
        prop_assert!(s.mean() <= s.max().unwrap() + 1e-9);
        prop_assert!(s.population_variance() >= 0.0);
    }

    #[test]
    fn summary_merge_is_associative_enough(a in finite_samples(), b in finite_samples()) {
        let mut merged = Summary::of(&a);
        merged.merge(&Summary::of(&b));
        let mut all = a.clone();
        all.extend_from_slice(&b);
        let direct = Summary::of(&all);
        prop_assert_eq!(merged.count(), direct.count());
        prop_assert!((merged.mean() - direct.mean()).abs() < 1e-6 * direct.mean().abs().max(1.0));
    }

    #[test]
    fn ewma_stays_in_sample_hull(samples in finite_samples(), alpha in 0.01f64..1.0) {
        let mut e = Ewma::new(alpha);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &x in &samples {
            e.update(x);
            lo = lo.min(x);
            hi = hi.max(x);
            let v = e.value().unwrap();
            prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
        }
    }

    #[test]
    fn geometric_mean_in_hull(samples in prop::collection::vec(0.1f64..1e6, 1..50)) {
        let gm = geometric_mean(&samples).unwrap();
        let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(gm >= lo * (1.0 - 1e-12) && gm <= hi * (1.0 + 1e-12));
    }

    #[test]
    fn histogram_quantile_tracks_exact_order_statistic(samples in prop::collection::vec(1.0f64..1e6, 20..300)) {
        let mut h = Histogram::new(1.0, 1e6, 1.01).unwrap();
        for &x in &samples {
            h.record(x);
        }
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let n = sorted.len();
        for &p in &[0.25, 0.5, 0.75] {
            // The histogram reports the bucket midpoint of the ceil-rank
            // order statistic; compare against that exact statistic.
            let rank = ((p * n as f64).ceil() as usize).clamp(1, n);
            let exact = sorted[rank - 1];
            let approx = h.quantile(p);
            // Bucket growth 1% => midpoint within ~0.5% of any member.
            prop_assert!(approx >= exact / 1.02, "p={p} exact={exact} approx={approx}");
            prop_assert!(approx <= exact * 1.02, "p={p} exact={exact} approx={approx}");
        }
    }

    #[test]
    fn convergence_never_reports_past_last_window(samples in prop::collection::vec(1.0f64..1e5, 20..200)) {
        if let Some(idx) = convergence_request(&samples, ConvergenceCriteria::default()) {
            prop_assert!(idx + 20 <= samples.len());
        }
    }

    #[test]
    fn convergence_of_constant_series_is_zero(value in 1.0f64..1e6, len in 20usize..100) {
        let series = vec![value; len];
        prop_assert_eq!(convergence_request(&series, ConvergenceCriteria::default()), Some(0));
    }
}

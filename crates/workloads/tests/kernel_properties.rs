//! Property-based tests for the benchmark kernels.
//!
//! The kernels are real algorithms whose outputs feed the latency model;
//! these properties pin their correctness on arbitrary inputs, not just
//! the unit-test vectors.

#![forbid(unsafe_code)]

use pronghorn_workloads::kernels::{compress, graph, hashing, html, json, media, text};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::HashMap;

proptest! {
    /// LZ77 compression is lossless on arbitrary byte strings.
    #[test]
    fn compression_round_trips_arbitrary_bytes(data in prop::collection::vec(any::<u8>(), 0..4096)) {
        let (packed, stats) = compress::compress(&data);
        let unpacked = compress::decompress(&packed).unwrap();
        prop_assert_eq!(unpacked, data);
        prop_assert!(stats.literals <= stats.bytes_in);
        prop_assert_eq!(stats.bytes_out, packed.len());
        // Worst-case expansion is bounded: 2 framing bytes per 255-byte
        // literal run.
        prop_assert!(stats.bytes_out <= stats.bytes_in + stats.bytes_in / 128 + 4);
    }

    /// Compression is lossless on highly repetitive inputs (the match-heavy
    /// path) and actually compresses them.
    #[test]
    fn compression_shrinks_repetitive_input(byte in any::<u8>(), len in 256usize..4096) {
        let data = vec![byte; len];
        let (packed, _) = compress::compress(&data);
        prop_assert_eq!(compress::decompress(&packed).unwrap(), data);
        prop_assert!(packed.len() < len / 4);
    }

    /// The decompressor never panics on arbitrary (mostly invalid) streams.
    #[test]
    fn decompressor_never_panics(stream in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = compress::decompress(&stream);
    }

    /// SHA-256 incremental hashing equals one-shot for any chunking.
    #[test]
    fn sha256_chunking_is_invisible(
        data in prop::collection::vec(any::<u8>(), 0..2048),
        chunk in 1usize..97,
    ) {
        let mut h = hashing::Sha256::new();
        for c in data.chunks(chunk) {
            h.update(c);
        }
        prop_assert_eq!(h.finalize().0, hashing::sha256(&data));
    }

    /// The JSON parser never panics on arbitrary input strings.
    #[test]
    fn json_parser_never_panics(input in ".{0,256}") {
        let _ = json::parse(&input);
    }

    /// Randomly generated JSON documents serialize and re-parse exactly.
    #[test]
    fn json_documents_round_trip(seed in any::<u64>(), size in 1usize..400) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let doc = json::random_document(&mut rng, size);
        let (serialized, _) = json::serialize(&doc);
        let (parsed, stats) = json::parse(&serialized).unwrap();
        prop_assert_eq!(parsed, doc);
        prop_assert!(stats.nodes >= 1);
        prop_assert_eq!(stats.bytes, serialized.len());
    }

    /// The template engine never panics: parse errors are values, and any
    /// template that parses renders against any flat context.
    #[test]
    fn template_engine_never_panics(source in ".{0,128}", key in "[a-z]{1,6}", value in ".{0,16}") {
        if let Ok(template) = html::Template::parse(&source) {
            let mut ctx = HashMap::new();
            ctx.insert(key, html::Value::Text(value));
            let _ = template.render(&ctx);
        }
    }

    /// Rendered variable substitution always escapes the dangerous four.
    #[test]
    fn rendered_text_is_escaped(value in ".{0,64}") {
        let template = html::Template::parse("{{ v }}").unwrap();
        let mut ctx = HashMap::new();
        ctx.insert("v".to_string(), html::Value::Text(value));
        let (out, _) = template.render(&ctx).unwrap();
        prop_assert!(!out.contains('<'));
        prop_assert!(!out.contains('>'));
        prop_assert!(!out.contains('"'));
    }

    /// Random graphs are connected and traversals agree on coverage.
    #[test]
    fn traversals_cover_connected_graphs(seed in any::<u64>(), n in 1usize..400, extra in 0usize..400) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = graph::Graph::random(&mut rng, n, extra);
        let (dist, bfs_stats) = graph::bfs(&g);
        let (order, dfs_stats) = graph::dfs(&g);
        prop_assert_eq!(bfs_stats.nodes_visited, g.node_count());
        prop_assert_eq!(dfs_stats.nodes_visited, g.node_count());
        prop_assert_eq!(order.len(), g.node_count());
        prop_assert!(dist.iter().all(|&d| d != u32::MAX));
    }

    /// Kruskal produces a spanning tree: n-1 edges, weight no larger than
    /// any spanning structure implied by the tree-plus-extras construction.
    #[test]
    fn mst_spans_with_minimal_edge_count(seed in any::<u64>(), n in 2usize..300) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = graph::Graph::random(&mut rng, n, n / 2);
        let result = graph::mst_kruskal(&g);
        prop_assert_eq!(result.tree_edges, n - 1);
        prop_assert!(result.edges_examined <= g.edge_count());
        // Total weight is bounded by (n-1) * max edge weight.
        prop_assert!(result.total_weight <= (n as u64 - 1) * 1_000);
    }

    /// PageRank is a probability distribution on any graph.
    #[test]
    fn pagerank_is_a_distribution(seed in any::<u64>(), n in 1usize..200) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = graph::Graph::random(&mut rng, n, n);
        let result = graph::pagerank(&g, 50, 1e-9);
        let sum: f64 = result.ranks.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-6, "sum {sum}");
        prop_assert!(result.ranks.iter().all(|&r| r >= 0.0));
    }

    /// Word counting conserves tokens: the sum of all counts equals the
    /// token count, and generation produces exactly the requested words.
    #[test]
    fn word_count_conserves_tokens(seed in any::<u64>(), words in 0usize..2000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let prose = text::generate_text(&mut rng, words);
        let wc = text::word_count(&prose);
        prop_assert_eq!(wc.tokens, words);
        if words > 0 {
            let (_, top_count) = wc.top.unwrap();
            prop_assert!(top_count <= words);
            prop_assert!(wc.distinct <= words);
        }
    }

    /// Thumbnailing preserves the dynamic range: every output channel lies
    /// within the input's min/max (box filtering is an average).
    #[test]
    fn thumbnail_stays_in_range(seed in any::<u64>(), w in 8usize..64, h in 8usize..64) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let img = media::Image::random(&mut rng, w, h);
        let (mut lo, mut hi) = (255u8, 0u8);
        for y in 0..h {
            for x in 0..w {
                for c in img.get(x, y) {
                    lo = lo.min(c);
                    hi = hi.max(c);
                }
            }
        }
        let (thumb, _) = media::thumbnail(&img, (w / 2).max(1), (h / 2).max(1)).unwrap();
        for y in 0..thumb.height() {
            for x in 0..thumb.width() {
                for c in thumb.get(x, y) {
                    prop_assert!(c >= lo && c <= hi);
                }
            }
        }
    }
}

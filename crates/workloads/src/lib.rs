//! The paper's serverless benchmark suite, implemented for real.
//!
//! Table 3 lists thirteen benchmarks (four Java, nine Python) drawn from
//! ServerlessBench, FaaSDom, SeBS, and the authors' HotOS'21 study; Table 1
//! adds a JSON workload. Every one of them is implemented here as an actual
//! algorithm (graph traversals, a template engine, SHA-256, a JSON parser,
//! an LZ77 compressor, image pipelines, ...) running on randomized inputs.
//! Kernels return work counters that the JIT runtime simulator prices by
//! compilation tier, so:
//!
//! - request latency scales with the random input size ("the execution
//!   latency directly scales with the size of the random graph", §5.1);
//! - the Gaussian input noise of §5.1 produces the order-of-magnitude
//!   latency IQRs visible in Figures 4–5;
//! - IO-bound benchmarks get most of their latency from un-JIT-able IO,
//!   reproducing §5.2's compute/IO split (and the Uploader regression).
//!
//! # Examples
//!
//! ```
//! use pronghorn_workloads::{by_name, InputVariance, Workload};
//! use rand::rngs::SmallRng;
//! use rand::SeedableRng;
//!
//! let bfs = by_name("BFS").unwrap();
//! let mut rng = SmallRng::seed_from_u64(7);
//! let request = bfs.generate(&mut rng, InputVariance::paper());
//! assert!(request.interpreted_compute_us() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod benches;
pub mod input;
pub mod kernels;
pub mod spec;

pub use input::InputVariance;
pub use spec::{MethodSpec, SpecWorkload, Workload, WorkloadSpec};

/// All nine Python (PyPy) benchmarks, Figure 4 row order.
pub fn python_benchmarks() -> Vec<SpecWorkload> {
    benches::python::all()
}

/// All five Java (JVM) benchmarks.
pub fn java_benchmarks() -> Vec<SpecWorkload> {
    benches::java::all()
}

/// The thirteen benchmarks of the end-to-end evaluation (Figures 4 and 5).
pub fn evaluation_benchmarks() -> Vec<SpecWorkload> {
    let mut all = python_benchmarks();
    all.extend(benches::java::figure5());
    all
}

/// The four Java benchmarks of Figure 5, row order.
pub fn figure5_benchmarks() -> Vec<SpecWorkload> {
    benches::java::figure5()
}

/// The four Table 1 benchmarks, column order (Hash, HTML, WordCount, JSON).
pub fn table1_benchmarks() -> Vec<SpecWorkload> {
    benches::java::table1()
}

/// Looks up any benchmark by its paper name (case-sensitive).
pub fn by_name(name: &str) -> Option<SpecWorkload> {
    let mut all = python_benchmarks();
    all.extend(java_benchmarks());
    all.into_iter().find(|b| b.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluation_suite_has_thirteen_benchmarks() {
        let benches = evaluation_benchmarks();
        assert_eq!(benches.len(), 13);
        let names: Vec<&str> = benches.iter().map(|b| b.name()).collect();
        for expected in [
            "BFS",
            "DFS",
            "MST",
            "DynamicHTML",
            "PageRank",
            "Uploader",
            "Thumbnailer",
            "Video",
            "Compression",
            "HTMLRendering",
            "MatrixMult",
            "Hash",
            "WordCount",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
    }

    #[test]
    fn lookup_by_name_works() {
        assert!(by_name("PageRank").is_some());
        assert!(by_name("JSON").is_some());
        assert!(by_name("NoSuchBench").is_none());
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<String> = python_benchmarks()
            .iter()
            .chain(java_benchmarks().iter())
            .map(|b| b.name().to_string())
            .collect();
        let before = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), before);
    }
}

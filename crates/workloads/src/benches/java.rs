//! The Java (JVM) benchmarks: Figure 5's four plus Table 1's JSON.
//!
//! First-request targets reproduce Table 1's baselines: Hash 27 ms,
//! HTML(Rendering) 650 ms, WordCount 64 ms, JSON 360 ms — each split into
//! a workload-specific lazy-initialization share (framework class loading)
//! and an interpreted execution share, because the JVM "lazily initializes
//! many internal data structures inside the interpreter and JIT compiler"
//! on the first request (§5.1).

use crate::kernels::{hashing, html, json, matrix, text};
use crate::spec::{MethodSpec, SpecWorkload, WorkloadSpec};
use pronghorn_jit::RuntimeKind;
use rand::Rng;
use std::collections::HashMap;

/// Standard JVM method table, shaped like HotSpot warm-up in three phases:
/// steep early C1 gains (the hot/mid loops cross the low C1 threshold
/// within the first handful of requests — so long-lived workers self-warm
/// and the improvement over the state of the art shrinks at slow eviction
/// rates), C2 for the hottest loop inside the policy's `W = 200` search
/// space (the part a well-placed snapshot captures), and a long tail —
/// the setup path's C2 at ~2 400 and the driver's C1 at ~250 produce
/// Figure 1b's ~2 500-request convergence.
fn jvm_methods(driver: &'static str, mid: &'static str, hot: &'static str) -> Vec<MethodSpec> {
    vec![
        MethodSpec {
            name: driver,
            base_calls: 1.0,
            share: 0.10,
        },
        MethodSpec {
            name: "setup_path",
            base_calls: 5.0,
            share: 0.15,
        },
        MethodSpec {
            name: mid,
            base_calls: 45.0,
            share: 0.35,
        },
        MethodSpec {
            name: hot,
            base_calls: 140.0,
            share: 0.40,
        },
    ]
}

/// `HTMLRendering`: HTML template rendering with random numbers — the
/// Figure 1b workload (75.6% reduction, ~2 500-request convergence) and
/// Table 1's "HTML" column (650 ms first request).
pub fn html_rendering() -> SpecWorkload {
    SpecWorkload::new(WorkloadSpec {
        name: "HTMLRendering",
        kind: RuntimeKind::Jvm,
        lazy_init_us: 400_000.0,
        interp_exec_us: 250_000.0,
        full_speedup: 4.2,
        io_base_us: 0.0,
        io_rel_jitter: 0.0,
        io_stale_sensitivity: 1.0,
        methods: jvm_methods("render_template", "render_block", "write_escaped"),
        kernel: Box::new(|rng, f| {
            let rows = ((120.0 * f) as usize).max(1);
            let template = html::Template::parse(
                "<table>{% for row in rows %}<tr><td>{{ row }}</td>\
                 <td>{% if hot %}{{ label }}{% end %}</td></tr>{% end %}</table>",
            )
            .expect("static template parses");
            let mut ctx = HashMap::new();
            ctx.insert("hot".to_string(), html::Value::Number(1.0));
            ctx.insert("label".to_string(), html::Value::Text("r&d".into()));
            ctx.insert(
                "rows".to_string(),
                html::Value::List(
                    (0..rows)
                        .map(|_| html::Value::Number(f64::from(rng.gen_range(0..1_000_000))))
                        .collect(),
                ),
            );
            let (_, stats) = template.render(&ctx).expect("static template renders");
            (stats.nodes_rendered + stats.lookups + stats.chars_escaped) as f64
                + stats.bytes_out as f64 / 8.0
        }),
    })
}

/// `MatrixMult`: square matrix multiplication with random sizes.
pub fn matrix_mult() -> SpecWorkload {
    SpecWorkload::new(WorkloadSpec {
        name: "MatrixMult",
        kind: RuntimeKind::Jvm,
        lazy_init_us: 90_000.0,
        interp_exec_us: 150_000.0,
        full_speedup: 3.3,
        io_base_us: 0.0,
        io_rel_jitter: 0.0,
        io_stale_sensitivity: 1.0,
        methods: jvm_methods("multiply", "row_pass", "dot_product"),
        kernel: Box::new(|rng, f| {
            // Latency scales with f (cube of the linear dimension).
            let n = ((24.0 * f.cbrt()) as usize).max(2);
            let a = matrix::Matrix::random(rng, n, n);
            let b = matrix::Matrix::random(rng, n, n);
            let (_, flops) = a.multiply(&b).expect("square matrices multiply");
            flops as f64
        }),
    })
}

/// `Hash`: checksum of a large random byte array — Table 1's 27 ms
/// first-request baseline.
pub fn hash() -> SpecWorkload {
    SpecWorkload::new(WorkloadSpec {
        name: "Hash",
        kind: RuntimeKind::Jvm,
        lazy_init_us: 8_000.0,
        interp_exec_us: 19_000.0,
        full_speedup: 2.4,
        io_base_us: 0.0,
        io_rel_jitter: 0.0,
        io_stale_sensitivity: 1.0,
        methods: jvm_methods("digest", "compress_block", "schedule_words"),
        kernel: Box::new(|rng, f| {
            let bytes = ((8_192.0 * f) as usize).max(64);
            let mut data = vec![0u8; bytes];
            rng.fill_bytes(&mut data);
            let mut h = hashing::Sha256::new();
            h.update(&data);
            let (_, blocks) = h.finalize();
            let _ = hashing::adler32(&data);
            blocks as f64 * 64.0 + bytes as f64 / 8.0
        }),
    })
}

/// `WordCount`: word counting over random-length excerpts — Table 1's
/// 64 ms first-request baseline.
pub fn word_count() -> SpecWorkload {
    SpecWorkload::new(WorkloadSpec {
        name: "WordCount",
        kind: RuntimeKind::Jvm,
        lazy_init_us: 20_000.0,
        interp_exec_us: 44_000.0,
        full_speedup: 3.2,
        io_base_us: 0.0,
        io_rel_jitter: 0.0,
        io_stale_sensitivity: 1.0,
        methods: jvm_methods("count_words", "tokenize", "update_map"),
        kernel: Box::new(|rng, f| {
            let words = ((800.0 * f) as usize).max(1);
            let text = text::generate_text(rng, words);
            let wc = text::word_count(&text);
            (4 * wc.tokens) as f64 + wc.bytes as f64 / 4.0
        }),
    })
}

/// `JSON`: serialize and re-parse a random document — Table 1's 360 ms
/// first-request baseline (from the authors' HotOS'21 benchmark set).
pub fn json_bench() -> SpecWorkload {
    SpecWorkload::new(WorkloadSpec {
        name: "JSON",
        kind: RuntimeKind::Jvm,
        lazy_init_us: 150_000.0,
        interp_exec_us: 210_000.0,
        full_speedup: 4.3,
        io_base_us: 0.0,
        io_rel_jitter: 0.0,
        io_stale_sensitivity: 1.0,
        methods: jvm_methods("handle_document", "parse_value", "lex_token"),
        kernel: Box::new(|rng, f| {
            let nodes = ((300.0 * f) as usize).max(4);
            let doc = json::random_document(rng, nodes);
            let (serialized, ser_nodes) = json::serialize(&doc);
            let (_, stats) = json::parse(&serialized).expect("round trip parses");
            (6 * stats.nodes + 2 * ser_nodes + stats.string_chars) as f64 + stats.bytes as f64 / 8.0
        }),
    })
}

/// The four Java benchmarks of Figure 5, in row order.
pub fn figure5() -> Vec<SpecWorkload> {
    vec![matrix_mult(), hash(), html_rendering(), word_count()]
}

/// The four Table 1 benchmarks, in column order.
pub fn table1() -> Vec<SpecWorkload> {
    vec![hash(), html_rendering(), word_count(), json_bench()]
}

/// All five Java benchmarks.
pub fn all() -> Vec<SpecWorkload> {
    vec![
        html_rendering(),
        matrix_mult(),
        hash(),
        word_count(),
        json_bench(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::InputVariance;
    use crate::spec::Workload;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn all_java_benchmarks_construct() {
        let benches = all();
        assert_eq!(benches.len(), 5);
        for b in &benches {
            assert_eq!(b.kind(), RuntimeKind::Jvm);
            assert!(!b.io_bound());
        }
    }

    #[test]
    fn table1_first_request_baselines() {
        // Table 1: lazy init + interpreted execution should approximate the
        // paper's first-request latencies (27 / 650 / 64 / 360 ms).
        let targets_ms = [27.0, 650.0, 64.0, 360.0];
        for (b, target) in table1().into_iter().zip(targets_ms) {
            let spec_first_ms = (b.spec().lazy_init_us + b.spec().interp_exec_us) / 1_000.0;
            let rel = (spec_first_ms - target).abs() / target;
            assert!(
                rel < 0.05,
                "{}: {spec_first_ms} ms vs {target} ms",
                b.name()
            );
        }
    }

    #[test]
    fn html_rendering_speedup_matches_figure1b() {
        // 4.2x ≈ the 75.6% latency reduction of Figure 1b.
        let b = html_rendering();
        for m in b.method_profiles() {
            assert!((m.tier2_speedup - 4.2).abs() < 1e-12);
            assert!((1.0 - 1.0 / m.tier2_speedup - 0.762).abs() < 0.01);
        }
    }

    #[test]
    fn matrix_latency_scales_linearly_with_factor() {
        let b = matrix_mult();
        let mut rng = SmallRng::seed_from_u64(5);
        let mut at = |f: f64| -> f64 {
            let spec = b.spec();
            (spec.kernel)(&mut rng, f)
        };
        let small = at(0.5);
        let large = at(8.0);
        // flops ~ n^3 ~ f, so the ratio should be ~16 (quantization aside).
        let ratio = large / small;
        assert!((8.0..=40.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn generated_requests_reference_valid_methods() {
        for b in all() {
            let mut rng = SmallRng::seed_from_u64(6);
            let req = b.generate(&mut rng, InputVariance::paper());
            let n = b.method_profiles().len();
            for e in &req.entries {
                assert!(e.method < n);
                assert!(e.units >= 0.0);
                assert!(e.calls >= 0.0);
            }
        }
    }

    #[test]
    fn interp_target_calibration_holds() {
        let b = word_count();
        let mut rng = SmallRng::seed_from_u64(7);
        let mean: f64 = (0..30)
            .map(|_| {
                b.generate(&mut rng, InputVariance::none())
                    .interpreted_compute_us()
            })
            .sum::<f64>()
            / 30.0;
        let rel = (mean - 44_000.0).abs() / 44_000.0;
        assert!(rel < 0.2, "mean {mean}");
    }
}

//! Benchmark definitions, split by runtime as in Table 3.

pub mod java;
pub mod python;

//! The nine Python (PyPy) benchmarks of Table 3.
//!
//! Calibration targets (lazy-init, interpreted execution, full JIT speedup,
//! IO share) place each benchmark's latency distribution in the range its
//! Figure 4 panel spans, and split compute- from IO-bound benchmarks the
//! way §5.2 does: the five graph/HTML benchmarks are pure compute (big JIT
//! wins), Compression/Thumbnailer/Video are IO-dominated (on-par), and
//! Uploader is almost entirely IO ("the actual computation is performed by
//! calling out to a native C library"), the benchmark Pronghorn loses.

use crate::kernels::{compress, graph, html, media};
use crate::spec::{MethodSpec, SpecWorkload, WorkloadSpec};
use pronghorn_jit::RuntimeKind;
use rand::Rng;
use std::collections::HashMap;

/// Standard PyPy method table. The warm-up shape the evaluation needs has
/// three phases: a steep early phase (the hot loops cross PyPy's
/// 1 039-call trace threshold within the first ~3–10 requests, so even a
/// 20-request worker lifetime self-warms substantially — this is why the
/// paper's improvements shrink at slower eviction rates), a middle phase
/// with the refined-trace (tier 2) promotions landing inside the policy's
/// `W = 100` search space (what Pronghorn's snapshots capture and the
/// state-of-the-art's request-1 snapshot misses), and a long tail: the
/// once-per-request driver traces only around request ~1 000, Figure 1a's
/// convergence point.
fn pypy_methods(driver: &'static str, mid: &'static str, hot: &'static str) -> Vec<MethodSpec> {
    vec![
        MethodSpec {
            name: driver,
            base_calls: 1.05,
            share: 0.10,
        },
        MethodSpec {
            name: mid,
            base_calls: 100.0,
            share: 0.35,
        },
        MethodSpec {
            name: "loop_body",
            base_calls: 200.0,
            share: 0.20,
        },
        MethodSpec {
            name: hot,
            base_calls: 400.0,
            share: 0.35,
        },
    ]
}

/// `BFS`: breadth-first search on a random graph.
pub fn bfs() -> SpecWorkload {
    SpecWorkload::new(WorkloadSpec {
        name: "BFS",
        kind: RuntimeKind::PyPy,
        lazy_init_us: 60_000.0,
        interp_exec_us: 45_000.0,
        full_speedup: 2.5,
        io_base_us: 0.0,
        io_rel_jitter: 0.0,
        io_stale_sensitivity: 1.0,
        methods: pypy_methods("parse_graph", "pop_frontier", "scan_edges"),
        kernel: Box::new(|rng, f| {
            let n = ((600.0 * f) as usize).max(2);
            let g = graph::Graph::random(rng, n, n);
            let (_, stats) = graph::bfs(&g);
            (stats.edges_scanned + 2 * stats.nodes_visited) as f64
        }),
    })
}

/// `DFS`: depth-first search on a random graph.
pub fn dfs() -> SpecWorkload {
    SpecWorkload::new(WorkloadSpec {
        name: "DFS",
        kind: RuntimeKind::PyPy,
        lazy_init_us: 55_000.0,
        interp_exec_us: 18_000.0,
        full_speedup: 2.6,
        io_base_us: 0.0,
        io_rel_jitter: 0.0,
        io_stale_sensitivity: 1.0,
        methods: pypy_methods("parse_graph", "push_stack", "scan_edges"),
        kernel: Box::new(|rng, f| {
            let n = ((500.0 * f) as usize).max(2);
            let g = graph::Graph::random(rng, n, n);
            let (_, stats) = graph::dfs(&g);
            (stats.edges_scanned + stats.nodes_visited) as f64
        }),
    })
}

/// `MST`: Kruskal minimum spanning tree of a random graph.
pub fn mst() -> SpecWorkload {
    SpecWorkload::new(WorkloadSpec {
        name: "MST",
        kind: RuntimeKind::PyPy,
        lazy_init_us: 65_000.0,
        interp_exec_us: 35_000.0,
        full_speedup: 2.3,
        io_base_us: 0.0,
        io_rel_jitter: 0.0,
        io_stale_sensitivity: 1.0,
        methods: pypy_methods("sort_edges", "union", "find_root"),
        kernel: Box::new(|rng, f| {
            let n = ((400.0 * f) as usize).max(2);
            let g = graph::Graph::random(rng, n, 2 * n);
            let r = graph::mst_kruskal(&g);
            let m = r.edges_examined.max(2) as f64;
            m * m.log2() + 3.0 * r.find_steps as f64
        }),
    })
}

/// `PageRank`: power iteration on a random graph.
pub fn pagerank() -> SpecWorkload {
    SpecWorkload::new(WorkloadSpec {
        name: "PageRank",
        kind: RuntimeKind::PyPy,
        lazy_init_us: 70_000.0,
        interp_exec_us: 70_000.0,
        full_speedup: 2.5,
        io_base_us: 0.0,
        io_rel_jitter: 0.0,
        io_stale_sensitivity: 1.0,
        methods: pypy_methods("build_matrix", "iterate", "spread_rank"),
        kernel: Box::new(|rng, f| {
            let n = ((250.0 * f) as usize).max(2);
            let g = graph::Graph::random(rng, n, 3 * n);
            let r = graph::pagerank(&g, 25, 1e-7);
            (r.edge_updates + r.iterations * n) as f64
        }),
    })
}

/// `DynamicHTML`: SeBS HTML generation with randomized content — the
/// Figure 1a workload (PyPy: 33.3% reduction, ~1 000-request convergence).
pub fn dynamic_html() -> SpecWorkload {
    SpecWorkload::new(WorkloadSpec {
        name: "DynamicHTML",
        kind: RuntimeKind::PyPy,
        lazy_init_us: 50_000.0,
        interp_exec_us: 12_000.0,
        full_speedup: 1.5,
        io_base_us: 0.0,
        io_rel_jitter: 0.0,
        io_stale_sensitivity: 1.0,
        methods: pypy_methods("render_page", "render_row", "escape"),
        kernel: Box::new(|rng, f| {
            let rows = ((40.0 * f) as usize).max(1);
            let template = html::Template::parse(
                "<html><body><h1>{{ title }}</h1><ul>\
                 {% for r in rows %}<li class=\"row\">{{ r }}</li>{% end %}\
                 </ul>{% if footer %}<footer>{{ footer }}</footer>{% end %}</body></html>",
            )
            .expect("static template parses");
            let mut ctx = HashMap::new();
            ctx.insert(
                "title".to_string(),
                html::Value::Text("Random numbers".into()),
            );
            ctx.insert("footer".to_string(), html::Value::Text("generated".into()));
            ctx.insert(
                "rows".to_string(),
                html::Value::List(
                    (0..rows)
                        .map(|_| html::Value::Number(f64::from(rng.gen_range(0..100_000))))
                        .collect(),
                ),
            );
            let (_, stats) = template.render(&ctx).expect("static template renders");
            (stats.nodes_rendered + stats.lookups) as f64 + stats.bytes_out as f64 / 8.0
        }),
    })
}

/// `Compression`: zip a group of generated files — IO-dominated.
pub fn compression() -> SpecWorkload {
    SpecWorkload::new(WorkloadSpec {
        name: "Compression",
        kind: RuntimeKind::PyPy,
        lazy_init_us: 60_000.0,
        interp_exec_us: 220_000.0,
        full_speedup: 2.0,
        io_base_us: 2_800_000.0,
        io_rel_jitter: 0.25,
        io_stale_sensitivity: 1.0,
        methods: pypy_methods("walk_files", "emit_tokens", "match_window"),
        kernel: Box::new(|rng, f| {
            let bytes = ((8_192.0 * f) as usize).max(64);
            let mut data = Vec::with_capacity(bytes);
            while data.len() < bytes {
                if rng.gen_bool(0.6) {
                    data.extend_from_slice(b"the quick serverless function jumped over the jit ");
                } else {
                    data.extend((0..48).map(|_| rng.gen::<u8>()));
                }
            }
            data.truncate(bytes);
            let (_, stats) = compress::compress(&data);
            stats.probes as f64 + (stats.bytes_in + stats.bytes_out) as f64 / 4.0
        }),
    })
}

/// `Uploader`: upload a file from a URL to cloud storage — "entirely IO
/// and network bound since the actual computation is performed by calling
/// out to a native C library" (§5.2). The one benchmark Pronghorn loses.
pub fn uploader() -> SpecWorkload {
    SpecWorkload::new(WorkloadSpec {
        name: "Uploader",
        kind: RuntimeKind::PyPy,
        lazy_init_us: 45_000.0,
        interp_exec_us: 8_000.0,
        full_speedup: 1.3,
        io_base_us: 450_000.0,
        io_rel_jitter: 0.3,
        // The uploader's process state is almost entirely long-lived
        // network sessions (source + storage connections held by the
        // native library); restored snapshots re-establish all of it.
        io_stale_sensitivity: 2.4,
        methods: pypy_methods("handle_request", "stream_chunks", "update_digest"),
        kernel: Box::new(|_rng, f| 400.0 * f),
    })
}

/// `Thumbnailer`: downscale an image — IO-dominated.
pub fn thumbnailer() -> SpecWorkload {
    SpecWorkload::new(WorkloadSpec {
        name: "Thumbnailer",
        kind: RuntimeKind::PyPy,
        lazy_init_us: 55_000.0,
        interp_exec_us: 25_000.0,
        full_speedup: 2.1,
        io_base_us: 300_000.0,
        io_rel_jitter: 0.25,
        io_stale_sensitivity: 1.0,
        methods: pypy_methods("decode_image", "box_filter", "accumulate_pixel"),
        kernel: Box::new(|rng, f| {
            let scale = f.sqrt();
            let (w, h) = (
                ((96.0 * scale) as usize).max(8),
                ((72.0 * scale) as usize).max(8),
            );
            let img = media::Image::random(rng, w, h);
            let (_, stats) =
                media::thumbnail(&img, (w / 3).max(1), (h / 3).max(1)).expect("valid downscale");
            (stats.pixels_read + 4 * stats.pixels_written) as f64
        }),
    })
}

/// `Video`: watermark frames and build a GIF — IO-dominated.
pub fn video() -> SpecWorkload {
    SpecWorkload::new(WorkloadSpec {
        name: "Video",
        kind: RuntimeKind::PyPy,
        lazy_init_us: 60_000.0,
        interp_exec_us: 300_000.0,
        full_speedup: 2.1,
        io_base_us: 2_500_000.0,
        io_rel_jitter: 0.25,
        io_stale_sensitivity: 1.0,
        methods: pypy_methods("demux_frames", "blend_watermark", "quantize_pixel"),
        kernel: Box::new(|rng, f| {
            let scale = f.sqrt();
            let (w, h) = (
                ((40.0 * scale) as usize).max(8),
                ((24.0 * scale) as usize).max(8),
            );
            let mut frames: Vec<media::Image> =
                (0..6).map(|_| media::Image::random(rng, w, h)).collect();
            let mark = media::Image::random(rng, 4, 4);
            let (bytes, stats) = media::gif_pipeline(&mut frames, &mark);
            (stats.pixels_read + stats.pixels_written) as f64 + bytes as f64 / 16.0
        }),
    })
}

/// All nine Python benchmarks, in Figure 4's row order.
pub fn all() -> Vec<SpecWorkload> {
    vec![
        bfs(),
        dfs(),
        dynamic_html(),
        mst(),
        pagerank(),
        compression(),
        uploader(),
        thumbnailer(),
        video(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::InputVariance;
    use crate::spec::Workload;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn all_python_benchmarks_construct() {
        let benches = all();
        assert_eq!(benches.len(), 9);
        for b in &benches {
            assert_eq!(b.kind(), RuntimeKind::PyPy);
            assert_eq!(b.method_profiles().len(), 4);
        }
    }

    #[test]
    fn compute_benchmarks_have_no_io() {
        for b in [bfs(), dfs(), mst(), pagerank(), dynamic_html()] {
            assert!(!b.io_bound(), "{} should be compute-bound", b.name());
            let mut rng = SmallRng::seed_from_u64(1);
            let req = b.generate(&mut rng, InputVariance::none());
            assert_eq!(req.io_us, 0.0);
        }
    }

    #[test]
    fn io_benchmarks_are_io_dominated() {
        for b in [compression(), uploader(), thumbnailer(), video()] {
            assert!(b.io_bound(), "{} should be IO-bound", b.name());
            let mut rng = SmallRng::seed_from_u64(2);
            let req = b.generate(&mut rng, InputVariance::none());
            assert!(req.io_us > req.interpreted_compute_us());
        }
    }

    #[test]
    fn interp_targets_are_calibrated() {
        for (b, target) in [(bfs(), 45_000.0), (dynamic_html(), 12_000.0)] {
            let mut rng = SmallRng::seed_from_u64(3);
            // Kernels have internal randomness; average a few draws.
            let mean: f64 = (0..30)
                .map(|_| {
                    b.generate(&mut rng, InputVariance::none())
                        .interpreted_compute_us()
                })
                .sum::<f64>()
                / 30.0;
            let rel = (mean - target).abs() / target;
            assert!(rel < 0.25, "{}: mean {mean} vs target {target}", b.name());
        }
    }

    #[test]
    fn dynamic_html_full_speedup_matches_figure1a() {
        let b = dynamic_html();
        for m in b.method_profiles() {
            assert!((m.tier2_speedup - 1.5).abs() < 1e-12);
        }
    }

    #[test]
    fn uploader_is_most_staleness_sensitive() {
        // The uploader's process state is dominated by long-lived network
        // sessions; everything else uses the default sensitivity.
        assert!(uploader().io_stale_sensitivity() > 2.0);
        for b in [bfs(), compression(), thumbnailer(), video(), dynamic_html()] {
            assert_eq!(b.io_stale_sensitivity(), 1.0, "{}", b.name());
        }
    }

    #[test]
    fn variance_produces_wide_latency_spread() {
        let b = bfs();
        let mut rng = SmallRng::seed_from_u64(4);
        let costs: Vec<f64> = (0..300)
            .map(|_| {
                b.generate(&mut rng, InputVariance::paper())
                    .interpreted_compute_us()
            })
            .collect();
        let mut sorted = costs;
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let iqr_ratio = sorted[225] / sorted[75];
        assert!(iqr_ratio > 2.0, "IQR ratio {iqr_ratio}");
    }
}

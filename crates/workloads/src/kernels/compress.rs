//! An LZ77-style compressor/decompressor.
//!
//! Backs the `Compression` benchmark (Table 3: "create a .zip file for a
//! group of files in storage"). The format is a simple token stream —
//! literal runs and `(distance, length)` back-references found through a
//! hash-chained window search — with a lossless decompressor used to
//! verify round trips. Match-search probe counts are the work units.

/// Compression work counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompressStats {
    /// Input bytes consumed.
    pub bytes_in: usize,
    /// Output bytes produced.
    pub bytes_out: usize,
    /// Back-reference matches emitted.
    pub matches: usize,
    /// Literal bytes emitted.
    pub literals: usize,
    /// Hash-chain probes performed (inner-loop work).
    pub probes: usize,
}

const MIN_MATCH: usize = 4;
const MAX_MATCH: usize = 255;
const WINDOW: usize = 8 * 1024;
const HASH_BITS: usize = 12;

fn hash4(bytes: &[u8]) -> usize {
    let v = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    (v.wrapping_mul(2_654_435_761) >> (32 - HASH_BITS)) as usize
}

/// Compresses `input`, returning the token stream and work counters.
///
/// Token format: `0x00 len <len literal bytes>` or
/// `0x01 dist_hi dist_lo len` (big-endian 16-bit distance).
pub fn compress(input: &[u8]) -> (Vec<u8>, CompressStats) {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    let mut stats = CompressStats {
        bytes_in: input.len(),
        ..CompressStats::default()
    };
    let mut head = vec![usize::MAX; 1 << HASH_BITS];
    let mut prev = vec![usize::MAX; input.len()];
    let mut literals: Vec<u8> = Vec::new();
    let mut pos = 0usize;

    let flush_literals = |literals: &mut Vec<u8>, out: &mut Vec<u8>, stats: &mut CompressStats| {
        let mut start = 0;
        while start < literals.len() {
            let chunk = (literals.len() - start).min(255);
            out.push(0x00);
            out.push(chunk as u8);
            out.extend_from_slice(&literals[start..start + chunk]);
            start += chunk;
        }
        stats.literals += literals.len();
        literals.clear();
    };

    while pos < input.len() {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if pos + MIN_MATCH <= input.len() {
            let h = hash4(&input[pos..]);
            let mut candidate = head[h];
            let mut chain = 0;
            while candidate != usize::MAX && pos - candidate <= WINDOW && chain < 32 {
                stats.probes += 1;
                let mut len = 0;
                let max = (input.len() - pos).min(MAX_MATCH);
                while len < max && input[candidate + len] == input[pos + len] {
                    len += 1;
                }
                if len > best_len {
                    best_len = len;
                    best_dist = pos - candidate;
                }
                candidate = prev[candidate];
                chain += 1;
            }
            // Chain maintenance: current position becomes the new head.
            prev[pos] = head[h];
            head[h] = pos;
        }
        if best_len >= MIN_MATCH {
            flush_literals(&mut literals, &mut out, &mut stats);
            out.push(0x01);
            out.push((best_dist >> 8) as u8);
            out.push((best_dist & 0xff) as u8);
            out.push(best_len as u8);
            stats.matches += 1;
            // Insert hash entries for skipped positions to keep chains rich.
            for p in pos + 1..(pos + best_len).min(input.len().saturating_sub(MIN_MATCH)) {
                let h = hash4(&input[p..]);
                prev[p] = head[h];
                head[h] = p;
            }
            pos += best_len;
        } else {
            // Position was already inserted into the chain by the search.
            literals.push(input[pos]);
            pos += 1;
        }
    }
    flush_literals(&mut literals, &mut out, &mut stats);
    stats.bytes_out = out.len();
    (out, stats)
}

/// Decompression errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecompressError {
    /// The token stream ended mid-token.
    Truncated,
    /// A back-reference points before the start of the output.
    BadDistance {
        /// The offending distance.
        distance: usize,
        /// Output length at that point.
        have: usize,
    },
    /// Unknown token tag.
    BadTag(u8),
}

/// Decompresses a stream produced by [`compress`].
pub fn decompress(input: &[u8]) -> Result<Vec<u8>, DecompressError> {
    let mut out = Vec::with_capacity(input.len() * 2);
    let mut pos = 0usize;
    while pos < input.len() {
        match input[pos] {
            0x00 => {
                let len = *input.get(pos + 1).ok_or(DecompressError::Truncated)? as usize;
                let start = pos + 2;
                let end = start + len;
                if end > input.len() {
                    return Err(DecompressError::Truncated);
                }
                out.extend_from_slice(&input[start..end]);
                pos = end;
            }
            0x01 => {
                if pos + 4 > input.len() {
                    return Err(DecompressError::Truncated);
                }
                let dist = ((input[pos + 1] as usize) << 8) | input[pos + 2] as usize;
                let len = input[pos + 3] as usize;
                if dist == 0 || dist > out.len() {
                    return Err(DecompressError::BadDistance {
                        distance: dist,
                        have: out.len(),
                    });
                }
                let start = out.len() - dist;
                // Overlapping copies are legal (RLE-style), byte by byte.
                for i in 0..len {
                    let byte = out[start + i];
                    out.push(byte);
                }
                pos += 4;
            }
            tag => return Err(DecompressError::BadTag(tag)),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn round_trip(data: &[u8]) -> CompressStats {
        let (packed, stats) = compress(data);
        let unpacked = decompress(&packed).unwrap();
        assert_eq!(unpacked, data, "round trip mismatch");
        stats
    }

    #[test]
    fn empty_and_tiny_inputs_round_trip() {
        round_trip(b"");
        round_trip(b"a");
        round_trip(b"abc");
    }

    #[test]
    fn repetitive_input_compresses_well() {
        let data = b"serverless ".repeat(500);
        let stats = round_trip(&data);
        assert!(stats.matches > 0);
        assert!(
            stats.bytes_out < stats.bytes_in / 4,
            "ratio {} / {}",
            stats.bytes_out,
            stats.bytes_in
        );
    }

    #[test]
    fn random_input_stays_lossless() {
        let mut rng = SmallRng::seed_from_u64(5);
        let data: Vec<u8> = (0..50_000).map(|_| rng.gen()).collect();
        let stats = round_trip(&data);
        // Incompressible data should not blow up unreasonably.
        assert!(stats.bytes_out < stats.bytes_in + stats.bytes_in / 64 + 64);
    }

    #[test]
    fn overlapping_matches_round_trip() {
        // Classic RLE case: one literal then long self-referencing run.
        let data = vec![b'x'; 4_000];
        let stats = round_trip(&data);
        assert!(stats.matches > 0);
        assert!(stats.bytes_out < 200);
    }

    #[test]
    fn mixed_content_round_trips() {
        let mut rng = SmallRng::seed_from_u64(6);
        let mut data = Vec::new();
        for _ in 0..50 {
            if rng.gen_bool(0.5) {
                data.extend_from_slice(b"checkpoint-orchestration-policy");
            } else {
                data.extend((0..rng.gen_range(1..100)).map(|_| rng.gen::<u8>()));
            }
        }
        round_trip(&data);
    }

    #[test]
    fn decompress_rejects_corrupt_streams() {
        assert_eq!(decompress(&[0x00]), Err(DecompressError::Truncated));
        assert_eq!(
            decompress(&[0x00, 5, 1, 2]),
            Err(DecompressError::Truncated)
        );
        assert_eq!(decompress(&[0x01, 0, 1]), Err(DecompressError::Truncated));
        assert!(matches!(
            decompress(&[0x01, 0, 9, 3]),
            Err(DecompressError::BadDistance { .. })
        ));
        assert_eq!(decompress(&[0x7f]), Err(DecompressError::BadTag(0x7f)));
    }

    #[test]
    fn probe_work_scales_with_input() {
        let small = b"abcd".repeat(100);
        let large = b"abcd".repeat(4_000);
        let (_, s) = compress(&small);
        let (_, l) = compress(&large);
        assert!(l.probes > s.probes);
    }
}

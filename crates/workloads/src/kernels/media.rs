//! Media kernels: synthetic images, thumbnailing, watermarking, and GIF
//! frame assembly.
//!
//! Backs three IO-heavy Python benchmarks (Table 3): `Thumbnailer`
//! ("generate a thumbnail of an image"), `Video` ("add a watermark and
//! generate gif of a video file"), and indirectly `Uploader`. Images are
//! synthetic RGB bitmaps; the pixel-operation counts are the (modest) JIT
//! work units — these benchmarks are dominated by IO in the paper, and the
//! compute share here is deliberately small for the same reason.

use rand::Rng;

/// An RGB bitmap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    width: usize,
    height: usize,
    /// Row-major RGB triples.
    pixels: Vec<[u8; 3]>,
}

impl Image {
    /// Creates a black image.
    pub fn new(width: usize, height: usize) -> Image {
        Image {
            width,
            height,
            pixels: vec![[0, 0, 0]; width * height],
        }
    }

    /// Creates an image of random noise.
    pub fn random<R: Rng + ?Sized>(rng: &mut R, width: usize, height: usize) -> Image {
        Image {
            width,
            height,
            pixels: (0..width * height)
                .map(|_| [rng.gen(), rng.gen(), rng.gen()])
                .collect(),
        }
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Pixel accessor (row-major).
    pub fn get(&self, x: usize, y: usize) -> [u8; 3] {
        self.pixels[y * self.width + x]
    }

    /// Pixel mutator.
    pub fn set(&mut self, x: usize, y: usize, rgb: [u8; 3]) {
        self.pixels[y * self.width + x] = rgb;
    }

    /// Size of the raw bitmap in bytes.
    pub fn byte_size(&self) -> usize {
        self.pixels.len() * 3
    }
}

/// Work counters for media operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MediaStats {
    /// Source pixels read.
    pub pixels_read: usize,
    /// Destination pixels written.
    pub pixels_written: usize,
    /// Frames processed (video path).
    pub frames: usize,
}

/// Downscales `src` to `(out_w, out_h)` with box filtering.
///
/// Returns `None` for degenerate target sizes or upscaling requests.
pub fn thumbnail(src: &Image, out_w: usize, out_h: usize) -> Option<(Image, MediaStats)> {
    if out_w == 0 || out_h == 0 || out_w > src.width || out_h > src.height {
        return None;
    }
    let mut out = Image::new(out_w, out_h);
    let mut stats = MediaStats::default();
    for oy in 0..out_h {
        let y0 = oy * src.height / out_h;
        let y1 = ((oy + 1) * src.height / out_h).max(y0 + 1);
        for ox in 0..out_w {
            let x0 = ox * src.width / out_w;
            let x1 = ((ox + 1) * src.width / out_w).max(x0 + 1);
            let mut acc = [0u32; 3];
            let mut count = 0u32;
            for y in y0..y1 {
                for x in x0..x1 {
                    let p = src.get(x, y);
                    acc[0] += u32::from(p[0]);
                    acc[1] += u32::from(p[1]);
                    acc[2] += u32::from(p[2]);
                    count += 1;
                    stats.pixels_read += 1;
                }
            }
            out.set(
                ox,
                oy,
                [
                    (acc[0] / count) as u8,
                    (acc[1] / count) as u8,
                    (acc[2] / count) as u8,
                ],
            );
            stats.pixels_written += 1;
        }
    }
    Some((out, stats))
}

/// Alpha-blends `mark` onto `frame` at `(x, y)` with 50% opacity.
pub fn watermark(frame: &mut Image, mark: &Image, x: usize, y: usize) -> MediaStats {
    let mut stats = MediaStats::default();
    for my in 0..mark.height {
        for mx in 0..mark.width {
            let (fx, fy) = (x + mx, y + my);
            if fx >= frame.width || fy >= frame.height {
                continue;
            }
            let m = mark.get(mx, my);
            let f = frame.get(fx, fy);
            let blended = [
                ((u16::from(f[0]) + u16::from(m[0])) / 2) as u8,
                ((u16::from(f[1]) + u16::from(m[1])) / 2) as u8,
                ((u16::from(f[2]) + u16::from(m[2])) / 2) as u8,
            ];
            frame.set(fx, fy, blended);
            stats.pixels_read += 2;
            stats.pixels_written += 1;
        }
    }
    stats
}

/// Watermarks `frames` and quantizes each to a 216-color web palette — the
/// "add a watermark and generate gif" pipeline. Returns total pseudo-GIF
/// bytes and the combined work counters.
pub fn gif_pipeline(frames: &mut [Image], mark: &Image) -> (usize, MediaStats) {
    let mut stats = MediaStats::default();
    let mut bytes = 0usize;
    for frame in frames.iter_mut() {
        let w = watermark(frame, mark, 4, 4);
        stats.pixels_read += w.pixels_read;
        stats.pixels_written += w.pixels_written;
        // 6-level-per-channel quantization (web-safe palette).
        for y in 0..frame.height {
            for x in 0..frame.width {
                let p = frame.get(x, y);
                let q = [
                    (u16::from(p[0]) * 5 / 255 * 51) as u8,
                    (u16::from(p[1]) * 5 / 255 * 51) as u8,
                    (u16::from(p[2]) * 5 / 255 * 51) as u8,
                ];
                frame.set(x, y, q);
                stats.pixels_read += 1;
                stats.pixels_written += 1;
            }
        }
        // One palette index per pixel plus a small frame header.
        bytes += frame.width * frame.height + 16;
        stats.frames += 1;
    }
    (bytes, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn thumbnail_has_requested_size() {
        let mut rng = SmallRng::seed_from_u64(1);
        let src = Image::random(&mut rng, 64, 48);
        let (thumb, stats) = thumbnail(&src, 16, 12).unwrap();
        assert_eq!(thumb.width(), 16);
        assert_eq!(thumb.height(), 12);
        assert_eq!(stats.pixels_written, 16 * 12);
        assert_eq!(stats.pixels_read, 64 * 48);
    }

    #[test]
    fn thumbnail_of_uniform_image_is_uniform() {
        let mut src = Image::new(32, 32);
        for y in 0..32 {
            for x in 0..32 {
                src.set(x, y, [100, 150, 200]);
            }
        }
        let (thumb, _) = thumbnail(&src, 8, 8).unwrap();
        for y in 0..8 {
            for x in 0..8 {
                assert_eq!(thumb.get(x, y), [100, 150, 200]);
            }
        }
    }

    #[test]
    fn thumbnail_rejects_degenerate_targets() {
        let src = Image::new(10, 10);
        assert!(thumbnail(&src, 0, 5).is_none());
        assert!(thumbnail(&src, 20, 5).is_none());
    }

    #[test]
    fn watermark_blends_in_bounds_only() {
        let mut frame = Image::new(8, 8);
        let mut mark = Image::new(4, 4);
        for y in 0..4 {
            for x in 0..4 {
                mark.set(x, y, [200, 200, 200]);
            }
        }
        let stats = watermark(&mut frame, &mark, 6, 6); // half off-frame
        assert_eq!(stats.pixels_written, 4);
        assert_eq!(frame.get(6, 6), [100, 100, 100]);
        assert_eq!(frame.get(0, 0), [0, 0, 0]);
    }

    #[test]
    fn gif_pipeline_processes_every_frame() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut frames: Vec<Image> = (0..5).map(|_| Image::random(&mut rng, 20, 10)).collect();
        let mark = Image::random(&mut rng, 4, 4);
        let (bytes, stats) = gif_pipeline(&mut frames, &mark);
        assert_eq!(stats.frames, 5);
        assert_eq!(bytes, 5 * (20 * 10 + 16));
        // Every channel value must be on the web-safe lattice.
        for f in &frames {
            for y in 0..f.height() {
                for x in 0..f.width() {
                    for c in f.get(x, y) {
                        assert_eq!(c % 51, 0, "non-quantized channel {c}");
                    }
                }
            }
        }
    }

    #[test]
    fn work_scales_with_image_size() {
        let mut rng = SmallRng::seed_from_u64(3);
        let small = Image::random(&mut rng, 16, 16);
        let large = Image::random(&mut rng, 64, 64);
        let (_, s) = thumbnail(&small, 8, 8).unwrap();
        let (_, l) = thumbnail(&large, 8, 8).unwrap();
        assert!(l.pixels_read > s.pixels_read);
    }
}

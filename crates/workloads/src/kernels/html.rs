//! A miniature HTML template engine.
//!
//! Backs two benchmarks: `DynamicHTML` (PyPy; SeBS "HTML generation with
//! randomized content" — the workload of Figure 1) and `HTMLRendering`
//! (JVM; "HTML template rendering with random numbers"). The engine
//! supports variable substitution with HTML escaping, `{% for %}` loops,
//! and `{% if %}` conditionals — enough structure that rendering exercises
//! parse/dispatch/escape "methods" whose work counters scale with the
//! randomized model data.

use std::collections::HashMap;
use std::fmt;

/// A value bound into a template context.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A text value (HTML-escaped on output).
    Text(String),
    /// A numeric value.
    Number(f64),
    /// A list (iterable by `{% for %}`).
    List(Vec<Value>),
}

impl Value {
    fn truthy(&self) -> bool {
        match self {
            Value::Text(s) => !s.is_empty(),
            Value::Number(n) => *n != 0.0,
            Value::List(l) => !l.is_empty(),
        }
    }
}

/// Template parse/render errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TemplateError {
    /// `{% for %}`/`{% if %}` without a matching `{% end %}`.
    UnclosedBlock(&'static str),
    /// `{% end %}` without an open block.
    UnexpectedEnd,
    /// A tag that the engine does not know.
    UnknownTag(String),
    /// `{{ ... }}` or `{% ... %}` without a closing delimiter.
    UnclosedDelimiter,
    /// A `{% for %}` over a non-list value.
    NotIterable(String),
}

impl fmt::Display for TemplateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TemplateError::UnclosedBlock(kind) => write!(f, "unclosed {{% {kind} %}} block"),
            TemplateError::UnexpectedEnd => write!(f, "unexpected {{% end %}}"),
            TemplateError::UnknownTag(t) => write!(f, "unknown tag: {t}"),
            TemplateError::UnclosedDelimiter => write!(f, "unclosed template delimiter"),
            TemplateError::NotIterable(name) => write!(f, "variable {name} is not a list"),
        }
    }
}

impl std::error::Error for TemplateError {}

/// Parsed template node.
#[derive(Debug, Clone, PartialEq)]
enum Node {
    Literal(String),
    Var(String),
    For {
        var: String,
        list: String,
        body: Vec<Node>,
    },
    If {
        cond: String,
        body: Vec<Node>,
    },
}

/// A compiled template.
#[derive(Debug, Clone, PartialEq)]
pub struct Template {
    nodes: Vec<Node>,
}

/// Render-side work counters (JIT work units for the HTML benchmarks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RenderStats {
    /// Template nodes evaluated (loop bodies count per iteration).
    pub nodes_rendered: usize,
    /// Variable lookups performed.
    pub lookups: usize,
    /// Characters escaped.
    pub chars_escaped: usize,
    /// Output bytes produced.
    pub bytes_out: usize,
}

impl Template {
    /// Parses template source.
    ///
    /// Syntax: `{{ name }}` substitution, `{% for item in list %}` ...
    /// `{% end %}`, `{% if name %}` ... `{% end %}`.
    pub fn parse(source: &str) -> Result<Template, TemplateError> {
        let mut stack: Vec<(Option<Node>, Vec<Node>)> = vec![(None, Vec::new())];
        let mut rest = source;
        while !rest.is_empty() {
            if let Some(start) = rest
                .find("{{")
                .map(|v| (v, true))
                .into_iter()
                .chain(rest.find("{%").map(|v| (v, false)))
                .min_by_key(|&(pos, _)| pos)
            {
                let (pos, is_var) = start;
                if pos > 0 {
                    stack
                        .last_mut()
                        .expect("stack never empty")
                        .1
                        .push(Node::Literal(rest[..pos].to_string()));
                }
                let closer = if is_var { "}}" } else { "%}" };
                let tail = &rest[pos + 2..];
                let end = tail.find(closer).ok_or(TemplateError::UnclosedDelimiter)?;
                let inner = tail[..end].trim().to_string();
                rest = &tail[end + 2..];
                if is_var {
                    stack
                        .last_mut()
                        .expect("stack never empty")
                        .1
                        .push(Node::Var(inner));
                    continue;
                }
                let words: Vec<&str> = inner.split_whitespace().collect();
                match words.as_slice() {
                    ["for", var, "in", list] => {
                        stack.push((
                            Some(Node::For {
                                var: (*var).to_string(),
                                list: (*list).to_string(),
                                body: Vec::new(),
                            }),
                            Vec::new(),
                        ));
                    }
                    ["if", cond] => {
                        stack.push((
                            Some(Node::If {
                                cond: (*cond).to_string(),
                                body: Vec::new(),
                            }),
                            Vec::new(),
                        ));
                    }
                    ["end"] => {
                        let (header, body) = stack.pop().expect("stack never empty");
                        let mut node = header.ok_or(TemplateError::UnexpectedEnd)?;
                        match &mut node {
                            Node::For { body: b, .. } | Node::If { body: b, .. } => *b = body,
                            _ => unreachable!("only blocks are pushed with headers"),
                        }
                        stack.last_mut().expect("stack never empty").1.push(node);
                    }
                    _ => return Err(TemplateError::UnknownTag(inner)),
                }
            } else {
                stack
                    .last_mut()
                    .expect("stack never empty")
                    .1
                    .push(Node::Literal(rest.to_string()));
                rest = "";
            }
        }
        if stack.len() != 1 {
            let kind = match stack.last().and_then(|(h, _)| h.as_ref()) {
                Some(Node::For { .. }) => "for",
                Some(Node::If { .. }) => "if",
                _ => "block",
            };
            return Err(TemplateError::UnclosedBlock(kind));
        }
        let (_, nodes) = stack.pop().expect("exactly one frame");
        Ok(Template { nodes })
    }

    /// Renders the template against `context`, returning the HTML and the
    /// work counters.
    pub fn render(
        &self,
        context: &HashMap<String, Value>,
    ) -> Result<(String, RenderStats), TemplateError> {
        let mut out = String::new();
        let mut stats = RenderStats::default();
        let mut scope = context.clone();
        render_nodes(&self.nodes, &mut scope, &mut out, &mut stats)?;
        stats.bytes_out = out.len();
        Ok((out, stats))
    }
}

fn render_nodes(
    nodes: &[Node],
    scope: &mut HashMap<String, Value>,
    out: &mut String,
    stats: &mut RenderStats,
) -> Result<(), TemplateError> {
    for node in nodes {
        stats.nodes_rendered += 1;
        match node {
            Node::Literal(text) => out.push_str(text),
            Node::Var(name) => {
                stats.lookups += 1;
                match scope.get(name) {
                    Some(Value::Text(s)) => escape_into(s, out, stats),
                    Some(Value::Number(n)) => {
                        if n.fract() == 0.0 && n.abs() < 1e15 {
                            out.push_str(&format!("{}", *n as i64));
                        } else {
                            out.push_str(&format!("{n}"));
                        }
                    }
                    Some(Value::List(l)) => out.push_str(&format!("[list:{}]", l.len())),
                    None => {} // missing variables render as empty, like Jinja
                }
            }
            Node::For { var, list, body } => {
                stats.lookups += 1;
                let items = match scope.get(list) {
                    Some(Value::List(items)) => items.clone(),
                    Some(_) => return Err(TemplateError::NotIterable(list.clone())),
                    None => Vec::new(),
                };
                let shadowed = scope.remove(var);
                for item in items {
                    scope.insert(var.clone(), item);
                    render_nodes(body, scope, out, stats)?;
                }
                match shadowed {
                    Some(v) => {
                        scope.insert(var.clone(), v);
                    }
                    None => {
                        scope.remove(var);
                    }
                }
            }
            Node::If { cond, body } => {
                stats.lookups += 1;
                let truthy = scope.get(cond).map(Value::truthy).unwrap_or(false);
                if truthy {
                    render_nodes(body, scope, out, stats)?;
                }
            }
        }
    }
    Ok(())
}

fn escape_into(s: &str, out: &mut String, stats: &mut RenderStats) {
    for c in s.chars() {
        match c {
            '<' => {
                out.push_str("&lt;");
                stats.chars_escaped += 1;
            }
            '>' => {
                out.push_str("&gt;");
                stats.chars_escaped += 1;
            }
            '&' => {
                out.push_str("&amp;");
                stats.chars_escaped += 1;
            }
            '"' => {
                out.push_str("&quot;");
                stats.chars_escaped += 1;
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(pairs: &[(&str, Value)]) -> HashMap<String, Value> {
        pairs
            .iter()
            .map(|(k, v)| ((*k).to_string(), v.clone()))
            .collect()
    }

    #[test]
    fn renders_literals_and_variables() {
        let t = Template::parse("<h1>{{ title }}</h1>").unwrap();
        let (html, stats) = t
            .render(&ctx(&[("title", Value::Text("Hot Starts".into()))]))
            .unwrap();
        assert_eq!(html, "<h1>Hot Starts</h1>");
        assert_eq!(stats.lookups, 1);
        assert!(stats.bytes_out > 0);
    }

    #[test]
    fn escapes_html_in_text_values() {
        let t = Template::parse("{{ v }}").unwrap();
        let (html, stats) = t
            .render(&ctx(&[("v", Value::Text("<b>&\"".into()))]))
            .unwrap();
        assert_eq!(html, "&lt;b&gt;&amp;&quot;");
        assert_eq!(stats.chars_escaped, 4);
    }

    #[test]
    fn numbers_render_without_escaping() {
        let t = Template::parse("{{ n }}/{{ f }}").unwrap();
        let (html, _) = t
            .render(&ctx(&[
                ("n", Value::Number(42.0)),
                ("f", Value::Number(2.5)),
            ]))
            .unwrap();
        assert_eq!(html, "42/2.5");
    }

    #[test]
    fn for_loop_iterates_list() {
        let t = Template::parse("<ul>{% for x in xs %}<li>{{ x }}</li>{% end %}</ul>").unwrap();
        let items = Value::List(vec![
            Value::Number(1.0),
            Value::Number(2.0),
            Value::Number(3.0),
        ]);
        let (html, stats) = t.render(&ctx(&[("xs", items)])).unwrap();
        assert_eq!(html, "<ul><li>1</li><li>2</li><li>3</li></ul>");
        // 1 for-node + 3 iterations x 3 body nodes.
        assert!(stats.nodes_rendered >= 10);
    }

    #[test]
    fn if_respects_truthiness() {
        let t = Template::parse("{% if flag %}yes{% end %}no").unwrap();
        let (html, _) = t.render(&ctx(&[("flag", Value::Number(1.0))])).unwrap();
        assert_eq!(html, "yesno");
        let (html, _) = t.render(&ctx(&[("flag", Value::Number(0.0))])).unwrap();
        assert_eq!(html, "no");
        let (html, _) = t.render(&ctx(&[])).unwrap();
        assert_eq!(html, "no");
    }

    #[test]
    fn nested_loops_render() {
        let t =
            Template::parse("{% for row in rows %}{% for c in cols %}{{ c }}{% end %};{% end %}")
                .unwrap();
        let (html, _) = t
            .render(&ctx(&[
                (
                    "rows",
                    Value::List(vec![Value::Number(0.0), Value::Number(1.0)]),
                ),
                (
                    "cols",
                    Value::List(vec![Value::Text("a".into()), Value::Text("b".into())]),
                ),
            ]))
            .unwrap();
        assert_eq!(html, "ab;ab;");
    }

    #[test]
    fn loop_variable_shadowing_is_restored() {
        let t = Template::parse("{% for x in xs %}{{ x }}{% end %}{{ x }}").unwrap();
        let (html, _) = t
            .render(&ctx(&[
                ("x", Value::Text("outer".into())),
                ("xs", Value::List(vec![Value::Text("inner".into())])),
            ]))
            .unwrap();
        assert_eq!(html, "innerouter");
    }

    #[test]
    fn missing_variable_renders_empty() {
        let t = Template::parse("[{{ nothing }}]").unwrap();
        let (html, _) = t.render(&ctx(&[])).unwrap();
        assert_eq!(html, "[]");
    }

    #[test]
    fn parse_errors_are_reported() {
        assert_eq!(
            Template::parse("{% for x in %}"),
            Err(TemplateError::UnknownTag("for x in".into()))
        );
        assert_eq!(
            Template::parse("{% end %}"),
            Err(TemplateError::UnexpectedEnd)
        );
        assert_eq!(
            Template::parse("{% if a %}x"),
            Err(TemplateError::UnclosedBlock("if"))
        );
        assert_eq!(
            Template::parse("{{ a "),
            Err(TemplateError::UnclosedDelimiter)
        );
    }

    #[test]
    fn iterating_non_list_is_an_error() {
        let t = Template::parse("{% for x in v %}{% end %}").unwrap();
        assert_eq!(
            t.render(&ctx(&[("v", Value::Number(3.0))])),
            Err(TemplateError::NotIterable("v".into()))
        );
    }

    #[test]
    fn work_scales_with_list_size() {
        let t = Template::parse("{% for x in xs %}{{ x }}{% end %}").unwrap();
        let small = Value::List(vec![Value::Number(1.0); 10]);
        let large = Value::List(vec![Value::Number(1.0); 100]);
        let (_, s) = t.render(&ctx(&[("xs", small)])).unwrap();
        let (_, l) = t.render(&ctx(&[("xs", large)])).unwrap();
        assert!(l.nodes_rendered > s.nodes_rendered * 5);
        assert!(l.bytes_out > s.bytes_out);
    }
}

//! Real algorithm kernels backing the benchmark suite.
//!
//! Every benchmark in Table 3 (plus Table 1's JSON workload) executes an
//! actual algorithm on randomized input; the work counters the kernels
//! return become JIT work units, so latency scales with input size the way
//! the paper's graph-based benchmarks do.

pub mod compress;
pub mod graph;
pub mod hashing;
pub mod html;
pub mod json;
pub mod matrix;
pub mod media;
pub mod text;

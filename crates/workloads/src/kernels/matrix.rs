//! Dense matrix kernels.
//!
//! Backs the `MatrixMult` benchmark (Table 3: "square matrices
//! multiplication with random sizes"). The multiply returns a flop count
//! that scales cubically with the random dimension — the strongest
//! input-size → latency coupling among the benchmarks.

use rand::Rng;

/// A dense row-major `f64` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix with uniform random entries in `[-1, 1)`.
    pub fn random<R: Rng + ?Sized>(rng: &mut R, rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect(),
        }
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// Matrix product, returning the result and the multiply-add count.
    ///
    /// Returns `None` when dimensions are incompatible.
    pub fn multiply(&self, other: &Matrix) -> Option<(Matrix, usize)> {
        if self.cols != other.rows {
            return None;
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        let mut flops = 0usize;
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    flops += other.cols;
                    continue;
                }
                for j in 0..other.cols {
                    out.data[i * other.cols + j] += a * other.data[k * other.cols + j];
                    flops += 1;
                }
            }
        }
        Some((out, flops))
    }

    /// Frobenius norm (used as a deterministic "answer" for checksums).
    pub fn frobenius(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn identity_is_multiplicative_unit() {
        let mut rng = SmallRng::seed_from_u64(1);
        let a = Matrix::random(&mut rng, 8, 8);
        let (prod, _) = a.multiply(&Matrix::identity(8)).unwrap();
        for i in 0..8 {
            for j in 0..8 {
                assert!((prod.get(i, j) - a.get(i, j)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn known_product_is_correct() {
        let mut a = Matrix::zeros(2, 3);
        let mut b = Matrix::zeros(3, 2);
        // a = [[1,2,3],[4,5,6]], b = [[7,8],[9,10],[11,12]]
        for (i, v) in [1.0, 2.0, 3.0, 4.0, 5.0, 6.0].iter().enumerate() {
            a.data[i] = *v;
        }
        for (i, v) in [7.0, 8.0, 9.0, 10.0, 11.0, 12.0].iter().enumerate() {
            b.data[i] = *v;
        }
        let (p, flops) = a.multiply(&b).unwrap();
        assert_eq!(p.rows(), 2);
        assert_eq!(p.cols(), 2);
        assert_eq!(p.get(0, 0), 58.0);
        assert_eq!(p.get(0, 1), 64.0);
        assert_eq!(p.get(1, 0), 139.0);
        assert_eq!(p.get(1, 1), 154.0);
        assert_eq!(flops, 2 * 3 * 2);
    }

    #[test]
    fn incompatible_dimensions_return_none() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.multiply(&b).is_none());
    }

    #[test]
    fn flops_scale_cubically() {
        let mut rng = SmallRng::seed_from_u64(2);
        let a = Matrix::random(&mut rng, 10, 10);
        let b = Matrix::random(&mut rng, 20, 20);
        let (_, fa) = a.multiply(&a).unwrap();
        let (_, fb) = b.multiply(&b).unwrap();
        assert_eq!(fa, 1000);
        assert_eq!(fb, 8000);
    }

    #[test]
    fn frobenius_of_identity() {
        assert!((Matrix::identity(9).frobenius() - 3.0).abs() < 1e-12);
        assert_eq!(Matrix::zeros(3, 3).frobenius(), 0.0);
    }
}

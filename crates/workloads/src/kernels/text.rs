//! Text kernels: random prose generation and word counting.
//!
//! The WordCount benchmark (Table 3: "word count for random-length
//! excerpts") tokenizes and tallies randomly generated text. The counters
//! it returns (tokens scanned, distinct words, bytes) become JIT work
//! units.

use rand::Rng;
use std::collections::HashMap;

/// A small vocabulary mixing short and long words, so tokenization work
/// varies realistically with text length.
const VOCAB: &[&str] = &[
    "the",
    "of",
    "serverless",
    "function",
    "latency",
    "snapshot",
    "worker",
    "request",
    "jit",
    "compile",
    "cold",
    "warm",
    "start",
    "pool",
    "policy",
    "orchestrator",
    "checkpoint",
    "restore",
    "runtime",
    "profile",
    "tier",
    "optimization",
    "speculative",
    "deoptimize",
    "container",
    "eviction",
    "and",
    "a",
    "to",
    "in",
    "is",
    "with",
    "for",
    "over",
    "under",
    "between",
];

/// Generates `words` words of pseudo-prose with sentence punctuation.
pub fn generate_text<R: Rng + ?Sized>(rng: &mut R, words: usize) -> String {
    let mut out = String::with_capacity(words * 7);
    let mut sentence_len = 0usize;
    for i in 0..words {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(VOCAB[rng.gen_range(0..VOCAB.len())]);
        sentence_len += 1;
        if sentence_len >= rng.gen_range(5..15) {
            out.push('.');
            sentence_len = 0;
        }
    }
    if !out.ends_with('.') {
        out.push('.');
    }
    out
}

/// Result of a word count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WordCountResult {
    /// Tokens scanned (total words).
    pub tokens: usize,
    /// Distinct words.
    pub distinct: usize,
    /// Bytes of input processed.
    pub bytes: usize,
    /// The most frequent word and its count, if any.
    pub top: Option<(String, usize)>,
}

/// Counts words (alphanumeric runs, case-insensitive).
pub fn word_count(text: &str) -> WordCountResult {
    let mut counts: HashMap<String, usize> = HashMap::new();
    let mut tokens = 0usize;
    for token in text.split(|c: char| !c.is_alphanumeric()) {
        if token.is_empty() {
            continue;
        }
        tokens += 1;
        *counts.entry(token.to_lowercase()).or_insert(0) += 1;
    }
    let top = counts
        .iter()
        // pronglint: det-order — `max_by` under a total (count, key) order:
        // the winner is independent of HashMap iteration order.
        .max_by(|a, b| a.1.cmp(b.1).then_with(|| b.0.cmp(a.0)))
        .map(|(w, c)| (w.clone(), *c));
    WordCountResult {
        tokens,
        distinct: counts.len(),
        bytes: text.len(),
        top,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn generated_text_has_requested_word_count() {
        let mut rng = SmallRng::seed_from_u64(1);
        let text = generate_text(&mut rng, 500);
        let wc = word_count(&text);
        assert_eq!(wc.tokens, 500);
        assert!(wc.distinct <= VOCAB.len());
        assert!(wc.bytes >= 500 * 2);
    }

    #[test]
    fn empty_and_zero_word_inputs() {
        let wc = word_count("");
        assert_eq!(wc.tokens, 0);
        assert_eq!(wc.distinct, 0);
        assert_eq!(wc.top, None);
        let mut rng = SmallRng::seed_from_u64(2);
        assert_eq!(generate_text(&mut rng, 0), ".");
    }

    #[test]
    fn counting_is_case_insensitive_and_punctuation_robust() {
        let wc = word_count("JIT jit, JIT! warm-warm.");
        assert_eq!(wc.tokens, 5);
        assert_eq!(wc.distinct, 2);
        assert_eq!(wc.top, Some(("jit".into(), 3)));
    }

    #[test]
    fn top_word_tie_breaks_deterministically() {
        let a = word_count("alpha beta");
        let b = word_count("alpha beta");
        assert_eq!(a.top, b.top);
        // Lexicographically smaller word wins a tie.
        assert_eq!(a.top, Some(("alpha".into(), 1)));
    }

    #[test]
    fn work_scales_with_length() {
        let mut rng = SmallRng::seed_from_u64(3);
        let small = word_count(&generate_text(&mut rng, 100));
        let large = word_count(&generate_text(&mut rng, 2_000));
        assert!(large.tokens > small.tokens);
        assert!(large.bytes > small.bytes);
    }
}

//! Graph kernels: random graphs, BFS, DFS, Kruskal MST, and PageRank.
//!
//! Four of the paper's Python benchmarks (Table 3) operate on random
//! graphs whose size is the noisy input: BFS, DFS, MST, and PageRank.
//! These are real implementations — the traversal/work counters they
//! return become the request's JIT work units, so request latency scales
//! with the random input exactly as in the paper ("the execution latency
//! directly scales with the size of the random graph").

use rand::Rng;

/// An undirected weighted graph in adjacency-list form.
#[derive(Debug, Clone)]
pub struct Graph {
    /// `adj[u]` lists `(v, weight)` edges.
    adj: Vec<Vec<(u32, u32)>>,
    edges: usize,
}

impl Graph {
    /// Generates a connected random graph with `n >= 1` nodes and roughly
    /// `extra_edges` additional non-tree edges.
    ///
    /// Construction first builds a random spanning tree (guaranteeing
    /// connectivity, so traversals visit every node), then sprinkles extra
    /// edges uniformly.
    pub fn random<R: Rng + ?Sized>(rng: &mut R, n: usize, extra_edges: usize) -> Graph {
        let n = n.max(1);
        let mut g = Graph {
            adj: vec![Vec::new(); n],
            edges: 0,
        };
        // Random spanning tree: attach node i to a random earlier node.
        for i in 1..n {
            let parent = rng.gen_range(0..i);
            let w = rng.gen_range(1..=1_000);
            g.add_edge(parent as u32, i as u32, w);
        }
        for _ in 0..extra_edges {
            let u = rng.gen_range(0..n) as u32;
            let v = rng.gen_range(0..n) as u32;
            if u != v {
                let w = rng.gen_range(1..=1_000);
                g.add_edge(u, v, w);
            }
        }
        g
    }

    fn add_edge(&mut self, u: u32, v: u32, w: u32) {
        self.adj[u as usize].push((v, w));
        self.adj[v as usize].push((u, w));
        self.edges += 1;
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of (undirected) edges.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Neighbors of `u`.
    pub fn neighbors(&self, u: u32) -> &[(u32, u32)] {
        &self.adj[u as usize]
    }

    /// All edges as `(u, v, w)` with `u <= v`, each once.
    pub fn edge_list(&self) -> Vec<(u32, u32, u32)> {
        let mut out = Vec::with_capacity(self.edges);
        for (u, nbrs) in self.adj.iter().enumerate() {
            for &(v, w) in nbrs {
                if (u as u32) <= v {
                    out.push((u as u32, v, w));
                }
            }
        }
        out
    }
}

/// Work counters produced by a traversal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraversalStats {
    /// Nodes visited.
    pub nodes_visited: usize,
    /// Directed edge relaxations performed.
    pub edges_scanned: usize,
}

/// Breadth-first search from node 0, returning per-node distance and work
/// counters.
pub fn bfs(g: &Graph) -> (Vec<u32>, TraversalStats) {
    let n = g.node_count();
    let mut dist = vec![u32::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    dist[0] = 0;
    queue.push_back(0u32);
    let mut stats = TraversalStats {
        nodes_visited: 0,
        edges_scanned: 0,
    };
    while let Some(u) = queue.pop_front() {
        stats.nodes_visited += 1;
        for &(v, _) in g.neighbors(u) {
            stats.edges_scanned += 1;
            if dist[v as usize] == u32::MAX {
                dist[v as usize] = dist[u as usize] + 1;
                queue.push_back(v);
            }
        }
    }
    (dist, stats)
}

/// Iterative depth-first search from node 0, returning preorder and work
/// counters.
pub fn dfs(g: &Graph) -> (Vec<u32>, TraversalStats) {
    let n = g.node_count();
    let mut seen = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut stack = vec![0u32];
    let mut stats = TraversalStats {
        nodes_visited: 0,
        edges_scanned: 0,
    };
    while let Some(u) = stack.pop() {
        if seen[u as usize] {
            continue;
        }
        seen[u as usize] = true;
        order.push(u);
        stats.nodes_visited += 1;
        for &(v, _) in g.neighbors(u) {
            stats.edges_scanned += 1;
            if !seen[v as usize] {
                stack.push(v);
            }
        }
    }
    (order, stats)
}

/// Disjoint-set forest with union by rank and path compression.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    /// `find` steps performed (work counter).
    pub find_steps: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            find_steps: 0,
        }
    }

    /// Finds the representative of `x`, compressing the path.
    pub fn find(&mut self, x: u32) -> u32 {
        let mut root = x;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
            self.find_steps += 1;
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    /// Unions the sets of `a` and `b`; returns `false` if already joined.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (ra, rb) = if self.rank[ra as usize] < self.rank[rb as usize] {
            (rb, ra)
        } else {
            (ra, rb)
        };
        self.parent[rb as usize] = ra;
        if self.rank[ra as usize] == self.rank[rb as usize] {
            self.rank[ra as usize] += 1;
        }
        true
    }
}

/// Result of Kruskal's minimum-spanning-tree computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MstResult {
    /// Total weight of the MST (or forest).
    pub total_weight: u64,
    /// Edges accepted into the tree.
    pub tree_edges: usize,
    /// Edges examined (sorted candidates).
    pub edges_examined: usize,
    /// Union-find `find` steps (inner-loop work).
    pub find_steps: usize,
}

/// Kruskal's algorithm over the graph's edge list.
pub fn mst_kruskal(g: &Graph) -> MstResult {
    let mut edges = g.edge_list();
    edges.sort_by_key(|&(_, _, w)| w);
    let mut uf = UnionFind::new(g.node_count());
    let mut total = 0u64;
    let mut tree_edges = 0;
    for &(u, v, w) in &edges {
        if uf.union(u, v) {
            total += u64::from(w);
            tree_edges += 1;
            if tree_edges + 1 == g.node_count() {
                break;
            }
        }
    }
    MstResult {
        total_weight: total,
        tree_edges,
        edges_examined: edges.len(),
        find_steps: uf.find_steps,
    }
}

/// Result of the PageRank power iteration.
#[derive(Debug, Clone)]
pub struct PageRankResult {
    /// Final rank per node (sums to ~1).
    pub ranks: Vec<f64>,
    /// Power iterations executed.
    pub iterations: usize,
    /// Directed edge updates performed (inner-loop work).
    pub edge_updates: usize,
}

/// PageRank with damping 0.85 until L1 change < `tol` or `max_iters`.
pub fn pagerank(g: &Graph, max_iters: usize, tol: f64) -> PageRankResult {
    const DAMPING: f64 = 0.85;
    let n = g.node_count();
    let mut ranks = vec![1.0 / n as f64; n];
    let mut edge_updates = 0;
    let mut iterations = 0;
    for _ in 0..max_iters {
        iterations += 1;
        let mut next = vec![(1.0 - DAMPING) / n as f64; n];
        for (u, &rank) in ranks.iter().enumerate() {
            let degree = g.neighbors(u as u32).len();
            if degree == 0 {
                // Dangling mass spreads uniformly.
                for r in next.iter_mut() {
                    *r += DAMPING * rank / n as f64;
                }
                continue;
            }
            let share = DAMPING * rank / degree as f64;
            for &(v, _) in g.neighbors(u as u32) {
                next[v as usize] += share;
                edge_updates += 1;
            }
        }
        let delta: f64 = ranks.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
        ranks = next;
        if delta < tol {
            break;
        }
    }
    PageRankResult {
        ranks,
        iterations,
        edge_updates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn graph(n: usize, extra: usize) -> Graph {
        let mut rng = SmallRng::seed_from_u64(7);
        Graph::random(&mut rng, n, extra)
    }

    #[test]
    fn random_graph_is_connected() {
        let g = graph(200, 100);
        let (dist, stats) = bfs(&g);
        assert_eq!(stats.nodes_visited, 200);
        assert!(dist.iter().all(|&d| d != u32::MAX));
    }

    #[test]
    fn single_node_graph_works() {
        let g = graph(1, 0);
        let (dist, stats) = bfs(&g);
        assert_eq!(dist, vec![0]);
        assert_eq!(stats.nodes_visited, 1);
        assert_eq!(dfs(&g).1.nodes_visited, 1);
        assert_eq!(mst_kruskal(&g).tree_edges, 0);
    }

    #[test]
    fn bfs_distances_are_shortest_in_hops() {
        // Path graph 0-1-2-3 built by hand via random with n small is not
        // deterministic; construct directly.
        let mut g = Graph {
            adj: vec![Vec::new(); 4],
            edges: 0,
        };
        g.add_edge(0, 1, 1);
        g.add_edge(1, 2, 1);
        g.add_edge(2, 3, 1);
        g.add_edge(0, 3, 1); // shortcut
        let (dist, _) = bfs(&g);
        assert_eq!(dist, vec![0, 1, 2, 1]);
    }

    #[test]
    fn dfs_visits_every_node_once() {
        let g = graph(150, 300);
        let (order, stats) = dfs(&g);
        assert_eq!(order.len(), 150);
        assert_eq!(stats.nodes_visited, 150);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 150);
    }

    #[test]
    fn edge_scans_bounded_by_directed_edges() {
        let g = graph(100, 200);
        let (_, b) = bfs(&g);
        let (_, d) = dfs(&g);
        // Each undirected edge appears twice in adjacency lists; self-loops
        // are impossible by construction.
        assert!(b.edges_scanned <= 2 * g.edge_count());
        assert!(d.edges_scanned <= 2 * g.edge_count());
    }

    #[test]
    fn mst_spans_connected_graph() {
        let g = graph(120, 400);
        let r = mst_kruskal(&g);
        assert_eq!(r.tree_edges, 119);
        assert!(r.total_weight > 0);
        assert!(r.edges_examined <= g.edge_count());
        assert!(r.find_steps > 0 || g.node_count() < 3);
    }

    #[test]
    fn mst_weight_is_minimal_on_known_graph() {
        let mut g = Graph {
            adj: vec![Vec::new(); 4],
            edges: 0,
        };
        g.add_edge(0, 1, 1);
        g.add_edge(1, 2, 2);
        g.add_edge(2, 3, 3);
        g.add_edge(0, 3, 10);
        g.add_edge(0, 2, 10);
        let r = mst_kruskal(&g);
        assert_eq!(r.total_weight, 6);
        assert_eq!(r.tree_edges, 3);
    }

    #[test]
    fn union_find_detects_cycles() {
        let mut uf = UnionFind::new(3);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2));
        assert_eq!(uf.find(0), uf.find(2));
    }

    #[test]
    fn pagerank_sums_to_one_and_converges() {
        let g = graph(100, 300);
        let r = pagerank(&g, 100, 1e-9);
        let sum: f64 = r.ranks.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "sum={sum}");
        assert!(r.iterations < 100, "should converge before the cap");
        assert!(r.edge_updates > 0);
    }

    #[test]
    fn pagerank_favors_high_degree_nodes() {
        // Star graph: hub 0 connected to 1..=5.
        let mut g = Graph {
            adj: vec![Vec::new(); 6],
            edges: 0,
        };
        for v in 1..6 {
            g.add_edge(0, v, 1);
        }
        let r = pagerank(&g, 200, 1e-12);
        for v in 1..6 {
            assert!(r.ranks[0] > r.ranks[v], "hub should outrank leaves");
        }
    }

    #[test]
    fn work_counters_scale_with_graph_size() {
        let small = graph(50, 50);
        let large = graph(500, 500);
        assert!(bfs(&large).1.edges_scanned > bfs(&small).1.edges_scanned);
        assert!(mst_kruskal(&large).edges_examined > mst_kruskal(&small).edges_examined);
    }
}

//! A miniature JSON implementation: value model, recursive-descent parser,
//! serializer, and random document generator.
//!
//! Backs the `JSON` benchmark of Table 1 (from the authors' earlier
//! HotOS'21 study): generate a random document, serialize it, and parse it
//! back. Parser token counts and serializer byte counts are the work
//! units.

use rand::Rng;
use std::collections::BTreeMap;
use std::fmt;

/// A JSON value (object keys sorted for deterministic serialization).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A finite number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object.
    Object(BTreeMap<String, Json>),
}

/// Parse errors with byte offsets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parser work counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ParseStats {
    /// Values (nodes) parsed.
    pub nodes: usize,
    /// String characters decoded.
    pub string_chars: usize,
    /// Bytes consumed.
    pub bytes: usize,
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    stats: ParseStats,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> ParseError {
        ParseError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8, message: &'static str) -> Result<(), ParseError> {
        if self.bump() == Some(byte) {
            Ok(())
        } else {
            self.pos = self.pos.saturating_sub(1);
            Err(self.err(message))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > 128 {
            return Err(self.err("nesting too deep"));
        }
        self.skip_ws();
        self.stats.nodes += 1;
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Json::Null),
            Some(b't') => self.parse_keyword("true", Json::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::String(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                loop {
                    items.push(self.parse_value(depth + 1)?);
                    self.skip_ws();
                    match self.bump() {
                        Some(b',') => continue,
                        Some(b']') => break,
                        _ => {
                            self.pos = self.pos.saturating_sub(1);
                            return Err(self.err("expected ',' or ']'"));
                        }
                    }
                }
                Ok(Json::Array(items))
            }
            Some(b'{') => {
                self.pos += 1;
                let mut map = BTreeMap::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':', "expected ':'")?;
                    let value = self.parse_value(depth + 1)?;
                    map.insert(key, value);
                    self.skip_ws();
                    match self.bump() {
                        Some(b',') => continue,
                        Some(b'}') => break,
                        _ => {
                            self.pos = self.pos.saturating_sub(1);
                            return Err(self.err("expected ',' or '}'"));
                        }
                    }
                }
                Ok(Json::Object(map))
            }
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, word: &'static str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid keyword"))
        }
    }

    fn parse_string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => break,
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.bump().ok_or_else(|| self.err("bad \\u escape"))?;
                            let v = (d as char)
                                .to_digit(16)
                                .ok_or_else(|| self.err("bad hex digit"))?;
                            code = code * 16 + v;
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(self.err("bad escape")),
                },
                Some(byte) if byte < 0x80 => out.push(byte as char),
                Some(byte) => {
                    // Re-assemble UTF-8 multibyte sequences.
                    let len = match byte {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        0xf0..=0xf7 => 4,
                        _ => return Err(self.err("invalid UTF-8")),
                    };
                    let start = self.pos - 1;
                    for _ in 1..len {
                        self.bump().ok_or_else(|| self.err("truncated UTF-8"))?;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                }
                None => return Err(self.err("unterminated string")),
            }
        }
        self.stats.string_chars += out.chars().count();
        Ok(out)
    }

    fn parse_number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let value: f64 = text.parse().map_err(|_| ParseError {
            offset: start,
            message: "invalid number",
        })?;
        if !value.is_finite() {
            return Err(ParseError {
                offset: start,
                message: "non-finite number",
            });
        }
        Ok(Json::Number(value))
    }
}

/// Parses a JSON document, returning the value and work counters.
pub fn parse(input: &str) -> Result<(Json, ParseStats), ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        stats: ParseStats::default(),
    };
    let value = p.parse_value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    p.stats.bytes = p.bytes.len();
    Ok((value, p.stats))
}

/// Serializes a value to compact JSON, returning the text and the node
/// count visited.
pub fn serialize(value: &Json) -> (String, usize) {
    let mut out = String::new();
    let mut nodes = 0;
    write_value(value, &mut out, &mut nodes);
    (out, nodes)
}

fn write_value(value: &Json, out: &mut String, nodes: &mut usize) {
    *nodes += 1;
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Number(n) => {
            if n.fract() == 0.0 && n.abs() < 1e15 {
                out.push_str(&format!("{}", *n as i64));
            } else {
                out.push_str(&format!("{n}"));
            }
        }
        Json::String(s) => write_string(s, out),
        Json::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out, nodes);
            }
            out.push(']');
        }
        Json::Object(map) => {
            out.push('{');
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(v, out, nodes);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Generates a random JSON document with roughly `target_nodes` values.
pub fn random_document<R: Rng + ?Sized>(rng: &mut R, target_nodes: usize) -> Json {
    fn gen<R: Rng + ?Sized>(rng: &mut R, budget: &mut isize, depth: usize) -> Json {
        *budget -= 1;
        if *budget <= 0 || depth >= 6 {
            return match rng.gen_range(0..4) {
                0 => Json::Null,
                1 => Json::Bool(rng.gen()),
                2 => Json::Number((rng.gen_range(-1e6..1e6f64) * 100.0).round() / 100.0),
                _ => Json::String(format!("field-{}", rng.gen_range(0..10_000))),
            };
        }
        match rng.gen_range(0..6) {
            0 => Json::Number(f64::from(rng.gen_range(-1_000_000..1_000_000))),
            1 => Json::String(format!("value-{}", rng.gen_range(0..100_000))),
            2 | 3 => {
                let len = rng.gen_range(1..8);
                Json::Array((0..len).map(|_| gen(rng, budget, depth + 1)).collect())
            }
            _ => {
                let len = rng.gen_range(1..6);
                Json::Object(
                    (0..len)
                        .map(|i| (format!("k{}_{}", depth, i), gen(rng, budget, depth + 1)))
                        .collect(),
                )
            }
        }
    }
    let mut budget = target_nodes as isize;
    let len = rng.gen_range(2..6);
    Json::Object(
        (0..len)
            .map(|i| (format!("root{i}"), gen(rng, &mut budget, 1)))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap().0, Json::Null);
        assert_eq!(parse("true").unwrap().0, Json::Bool(true));
        assert_eq!(parse("false").unwrap().0, Json::Bool(false));
        assert_eq!(parse("-12.5e2").unwrap().0, Json::Number(-1250.0));
        assert_eq!(parse("\"hi\"").unwrap().0, Json::String("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let (v, stats) = parse(r#"{"a": [1, {"b": null}], "c": "x"}"#).unwrap();
        if let Json::Object(map) = &v {
            assert_eq!(map.len(), 2);
            assert!(matches!(map["a"], Json::Array(_)));
        } else {
            panic!("expected object");
        }
        assert!(stats.nodes >= 5);
        assert!(stats.bytes > 0);
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = Json::String("line\nquote\"back\\slash\ttab".into());
        let (text, _) = serialize(&original);
        let (parsed, _) = parse(&text).unwrap();
        assert_eq!(parsed, original);
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(parse(r#""Aé""#).unwrap().0, Json::String("Aé".into()));
    }

    #[test]
    fn utf8_passthrough() {
        let (v, _) = parse("\"héllo ⚡\"").unwrap();
        assert_eq!(v, Json::String("héllo ⚡".into()));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "1 2",
            "\"unterminated",
            "[1]]",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn rejects_excessive_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        let err = parse(&deep).unwrap_err();
        assert_eq!(err.message, "nesting too deep");
    }

    #[test]
    fn random_documents_round_trip() {
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..20 {
            let doc = random_document(&mut rng, 200);
            let (text, nodes_out) = serialize(&doc);
            let (parsed, stats) = parse(&text).unwrap();
            assert_eq!(parsed, doc);
            assert!(nodes_out > 0);
            assert!(stats.nodes > 0);
        }
    }

    #[test]
    fn work_scales_with_document_size() {
        let mut rng = SmallRng::seed_from_u64(12);
        let small = serialize(&random_document(&mut rng, 20)).0;
        let large = serialize(&random_document(&mut rng, 2_000)).0;
        assert!(large.len() > small.len());
        let (_, s) = parse(&small).unwrap();
        let (_, l) = parse(&large).unwrap();
        assert!(l.nodes > s.nodes);
    }
}

//! Input-size noise — §5.1's perturbation model.
//!
//! "We made slight modifications to each benchmark, adding optional
//! zero-mean Gaussian noise in the inputs of up to an order of magnitude in
//! the input sizes." A zero-mean Gaussian on *log* size keeps sizes
//! positive and symmetric in ratio: the size factor is `exp(N(0, σ))`,
//! clamped to about an order of magnitude in each direction. Input novelty
//! — how far a draw sits from the typical size — feeds the JIT simulator's
//! speculation-failure probability.

use pronghorn_checkpoint::cost::gaussian;
use rand::RngCore;

/// Log-normal input-size noise, optionally bimodal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InputVariance {
    /// Standard deviation of the zero-mean Gaussian applied to `ln(size)`.
    pub sigma: f64,
    /// When set, the noise is centred on two modes at `1/b` and `b` times
    /// the base size (a function serving two distinct request populations,
    /// §6's input-awareness scenario) instead of on the base size.
    pub bimodal_spread: Option<f64>,
}

impl InputVariance {
    /// No perturbation: every request uses the base input size.
    pub const fn none() -> Self {
        InputVariance {
            sigma: 0.0,
            bimodal_spread: None,
        }
    }

    /// The paper's high-variance setting: latency interquartile ranges
    /// "span over an order of magnitude" for compute-bound benchmarks.
    pub const fn paper() -> Self {
        InputVariance {
            sigma: 1.0,
            bimodal_spread: None,
        }
    }

    /// A milder setting for the trace-driven experiments (Figure 6 ran at
    /// much smaller latency scales).
    pub const fn low() -> Self {
        InputVariance {
            sigma: 0.25,
            bimodal_spread: None,
        }
    }

    /// A two-population workload: half the requests ~3x smaller than the
    /// base size, half ~3x larger, each with mild local noise — the
    /// distinct-code-path scenario of §6's future-work discussion.
    pub const fn bimodal() -> Self {
        InputVariance {
            sigma: 0.25,
            bimodal_spread: Some(3.0),
        }
    }

    /// Samples a size factor, clamped to `[0.08, 12.0]` (roughly an order
    /// of magnitude around the base in each direction).
    pub fn sample_factor(&self, rng: &mut dyn RngCore) -> f64 {
        let centre = match self.bimodal_spread {
            Some(spread) => {
                let b = spread.abs().max(1.0);
                if rng.next_u32() & 1 == 0 {
                    1.0 / b
                } else {
                    b
                }
            }
            None => {
                if self.sigma <= 0.0 {
                    return 1.0;
                }
                1.0
            }
        };
        (centre * (gaussian(&mut *rng) * self.sigma).exp()).clamp(0.08, 12.0)
    }

    /// Novelty of a size factor: 0 at the typical size, 1 at an order of
    /// magnitude away.
    pub fn novelty_of(factor: f64) -> f64 {
        (factor.max(1e-9).ln().abs() / std::f64::consts::LN_10).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn zero_sigma_is_deterministic() {
        let mut rng = SmallRng::seed_from_u64(1);
        let v = InputVariance::none();
        for _ in 0..10 {
            assert_eq!(v.sample_factor(&mut rng), 1.0);
        }
    }

    #[test]
    fn factors_are_clamped() {
        let mut rng = SmallRng::seed_from_u64(2);
        let v = InputVariance {
            sigma: 5.0,
            bimodal_spread: None,
        };
        for _ in 0..1000 {
            let f = v.sample_factor(&mut rng);
            assert!((0.08..=12.0).contains(&f));
        }
    }

    #[test]
    fn paper_variance_spans_an_order_of_magnitude() {
        let mut rng = SmallRng::seed_from_u64(3);
        let v = InputVariance::paper();
        let factors: Vec<f64> = (0..5000).map(|_| v.sample_factor(&mut rng)).collect();
        let mut sorted = factors.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let p10 = sorted[500];
        let p90 = sorted[4500];
        assert!(p90 / p10 > 8.0, "p90/p10 = {}", p90 / p10);
        // Median stays near the base size.
        let median = sorted[2500];
        assert!((0.8..=1.25).contains(&median), "median {median}");
    }

    #[test]
    fn novelty_is_zero_at_base_and_one_at_decade() {
        assert_eq!(InputVariance::novelty_of(1.0), 0.0);
        assert!((InputVariance::novelty_of(10.0) - 1.0).abs() < 1e-12);
        assert!((InputVariance::novelty_of(0.1) - 1.0).abs() < 1e-12);
        let mid = InputVariance::novelty_of(3.0);
        assert!(mid > 0.3 && mid < 0.7);
    }

    #[test]
    fn novelty_handles_degenerate_factor() {
        assert_eq!(InputVariance::novelty_of(0.0), 1.0);
    }

    #[test]
    fn bimodal_variance_has_two_modes() {
        let mut rng = SmallRng::seed_from_u64(5);
        let v = InputVariance::bimodal();
        let factors: Vec<f64> = (0..2000).map(|_| v.sample_factor(&mut rng)).collect();
        let small = factors.iter().filter(|&&f| f < 1.0).count();
        let large = factors.len() - small;
        // Roughly half in each mode, and almost nothing near the base size.
        assert!((800..=1200).contains(&small), "small mode {small}");
        assert!((800..=1200).contains(&large), "large mode {large}");
        let near_base = factors
            .iter()
            .filter(|&&f| (0.8..1.25).contains(&f))
            .count();
        assert!(near_base < 200, "{near_base} samples near the base size");
    }
}

//! The [`Workload`] trait and its spec-driven implementation.
//!
//! Every benchmark is described declaratively by a [`WorkloadSpec`]: the
//! runtime it targets, calibration targets (first-request lazy init,
//! interpreted execution time, fully-optimized speedup, IO time), its
//! method table, and a *kernel* — a closure running the real algorithm and
//! returning raw work units. At construction the spec runs the kernel once
//! at the base input size and derives `µs-per-unit`, so the calibration
//! targets hold exactly regardless of kernel internals.

use crate::input::InputVariance;
use pronghorn_checkpoint::cost::gaussian;
use pronghorn_jit::{MethodProfile, MethodWork, RequestWork, RuntimeKind, RuntimeProfile};
use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// A serverless benchmark: everything the platform needs to run it.
pub trait Workload: Send + Sync {
    /// Benchmark name as the paper spells it, e.g. `"DynamicHTML"`.
    fn name(&self) -> &str;

    /// The runtime family the benchmark targets (Table 3's Java/Python
    /// split).
    fn kind(&self) -> RuntimeKind;

    /// Runtime profile, including this benchmark's lazy-init cost.
    fn runtime_profile(&self) -> RuntimeProfile;

    /// Static method table handed to the runtime at worker start.
    fn method_profiles(&self) -> Vec<MethodProfile>;

    /// Draws one randomized request.
    fn generate(&self, rng: &mut dyn RngCore, variance: InputVariance) -> RequestWork;

    /// Whether the benchmark is IO-bound (§5.2's compute/IO split).
    fn io_bound(&self) -> bool;

    /// Multiplier on the restored-process IO-staleness penalty (see the
    /// platform's `IoStaleModel`); 1.0 for typical workloads.
    fn io_stale_sensitivity(&self) -> f64 {
        1.0
    }
}

/// One method row of a [`WorkloadSpec`].
#[derive(Debug, Clone)]
pub struct MethodSpec {
    /// Method name.
    pub name: &'static str,
    /// Calls per request at the base input size.
    pub base_calls: f64,
    /// Fraction of the request's compute units this method executes.
    pub share: f64,
}

/// A benchmark kernel: `(rng, size_factor) -> raw work units`.
pub type KernelFn = Box<dyn Fn(&mut dyn RngCore, f64) -> f64 + Send + Sync>;

/// Declarative description of one benchmark.
pub struct WorkloadSpec {
    /// Benchmark name (paper spelling).
    pub name: &'static str,
    /// Target runtime family.
    pub kind: RuntimeKind,
    /// Mean lazy-initialization cost charged to a cold runtime's first
    /// request, µs (workload-specific: heavy frameworks load more classes).
    pub lazy_init_us: f64,
    /// Target interpreted execution time at the base input size, µs.
    pub interp_exec_us: f64,
    /// Target speedup of fully optimized over interpreted execution
    /// (e.g. Figure 1: 1.5 for DynamicHTML on PyPy, ~4.1 on the JVM).
    pub full_speedup: f64,
    /// Mean IO time at the base input size, µs (0 for compute-bound).
    pub io_base_us: f64,
    /// Relative jitter on IO time.
    pub io_rel_jitter: f64,
    /// How sensitive the benchmark's IO path is to restored-process state
    /// staleness (1.0 = typical; Uploader-style workloads whose entire job
    /// is long-lived network sessions are higher). Consumed by the
    /// platform's staleness model.
    pub io_stale_sensitivity: f64,
    /// Method table (shares should sum to ~1).
    pub methods: Vec<MethodSpec>,
    /// The real kernel: `(rng, size_factor) -> raw work units`.
    pub kernel: KernelFn,
}

/// A benchmark built from a spec, with derived calibration.
pub struct SpecWorkload {
    spec: WorkloadSpec,
    us_per_unit: f64,
}

impl SpecWorkload {
    /// Builds the workload, running the kernel once at the base size to
    /// calibrate `µs-per-unit`.
    ///
    /// # Panics
    ///
    /// Panics if the kernel returns non-positive units at the base size or
    /// the method shares are degenerate — both are table bugs that should
    /// fail loudly at registry construction, not mid-experiment.
    pub fn new(spec: WorkloadSpec) -> SpecWorkload {
        assert!(!spec.methods.is_empty(), "{}: no methods", spec.name);
        let share_sum: f64 = spec.methods.iter().map(|m| m.share).sum();
        assert!(
            (0.5..=1.5).contains(&share_sum),
            "{}: method shares sum to {share_sum}",
            spec.name
        );
        // Calibration run: median of a few draws at factor 1.0 for kernels
        // with internal randomness.
        let mut rng = SmallRng::seed_from_u64(0x5eed_ca1b);
        let mut samples: Vec<f64> = (0..5).map(|_| (spec.kernel)(&mut rng, 1.0)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).expect("kernel units are finite"));
        let base_units = samples[2];
        assert!(
            base_units > 0.0,
            "{}: kernel produced no work at base size",
            spec.name
        );
        // interpreted compute = raw_units * share_sum * us_per_unit, so:
        let us_per_unit = spec.interp_exec_us / (base_units * share_sum);
        SpecWorkload { us_per_unit, spec }
    }

    /// The spec this workload was built from.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Derived interpreted cost per work unit, µs.
    pub fn us_per_unit(&self) -> f64 {
        self.us_per_unit
    }
}

impl Workload for SpecWorkload {
    fn name(&self) -> &str {
        self.spec.name
    }

    fn kind(&self) -> RuntimeKind {
        self.spec.kind
    }

    fn runtime_profile(&self) -> RuntimeProfile {
        let mut profile = RuntimeProfile::for_kind(self.spec.kind);
        profile.lazy_init_us = self.spec.lazy_init_us;
        profile
    }

    fn method_profiles(&self) -> Vec<MethodProfile> {
        // Uniform per-method speedups make the converged overall speedup
        // equal the spec's `full_speedup` target exactly; tier 1 lands a
        // bit past halfway there in log space.
        let t2 = self.spec.full_speedup.max(1.0);
        let t1 = t2.powf(0.55);
        self.spec
            .methods
            .iter()
            .map(|m| {
                MethodProfile::new(m.name)
                    .calls_per_request(m.base_calls)
                    .tier_speedups(t1, t2)
                    .speculation(0.5)
            })
            .collect()
    }

    fn generate(&self, rng: &mut dyn RngCore, variance: InputVariance) -> RequestWork {
        let factor = variance.sample_factor(rng);
        let raw_units = (self.spec.kernel)(rng, factor).max(0.0);
        let entries: Vec<MethodWork> = self
            .spec
            .methods
            .iter()
            .enumerate()
            .map(|(i, m)| MethodWork {
                method: i,
                units: raw_units * m.share,
                calls: (m.base_calls * factor).max(0.0),
            })
            .collect();
        let io_us = if self.spec.io_base_us > 0.0 {
            let jitter = 1.0 + gaussian(&mut *rng) * self.spec.io_rel_jitter;
            (self.spec.io_base_us * factor * jitter.max(0.2)).max(0.0)
        } else {
            0.0
        };
        RequestWork::new(entries)
            .us_per_unit(self.us_per_unit)
            .io_us(io_us)
            .size_factor(factor)
            .novelty(InputVariance::novelty_of(factor))
    }

    fn io_bound(&self) -> bool {
        self.spec.io_base_us > self.spec.interp_exec_us
    }

    fn io_stale_sensitivity(&self) -> f64 {
        self.spec.io_stale_sensitivity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_spec() -> WorkloadSpec {
        WorkloadSpec {
            name: "Toy",
            kind: RuntimeKind::PyPy,
            lazy_init_us: 1_000.0,
            interp_exec_us: 10_000.0,
            full_speedup: 2.0,
            io_base_us: 0.0,
            io_rel_jitter: 0.0,
            io_stale_sensitivity: 1.0,
            methods: vec![
                MethodSpec {
                    name: "driver",
                    base_calls: 1.0,
                    share: 0.3,
                },
                MethodSpec {
                    name: "inner",
                    base_calls: 20.0,
                    share: 0.7,
                },
            ],
            kernel: Box::new(|_rng, factor| 500.0 * factor),
        }
    }

    #[test]
    fn calibration_hits_interp_target() {
        let w = SpecWorkload::new(toy_spec());
        let mut rng = SmallRng::seed_from_u64(1);
        let req = w.generate(&mut rng, InputVariance::none());
        let interp = req.interpreted_compute_us();
        assert!(
            (interp - 10_000.0).abs() < 1.0,
            "interp compute {interp} != 10000"
        );
    }

    #[test]
    fn runtime_profile_carries_lazy_init() {
        let w = SpecWorkload::new(toy_spec());
        assert_eq!(w.runtime_profile().lazy_init_us, 1_000.0);
        assert_eq!(w.runtime_profile().kind, RuntimeKind::PyPy);
    }

    #[test]
    fn method_profiles_hit_full_speedup() {
        let w = SpecWorkload::new(toy_spec());
        for m in w.method_profiles() {
            assert_eq!(m.tier2_speedup, 2.0);
            assert!(m.tier1_speedup > 1.0 && m.tier1_speedup < 2.0);
        }
    }

    #[test]
    fn variance_scales_units_and_calls_together() {
        let w = SpecWorkload::new(toy_spec());
        let mut rng = SmallRng::seed_from_u64(2);
        let reqs: Vec<RequestWork> = (0..200)
            .map(|_| w.generate(&mut rng, InputVariance::paper()))
            .collect();
        let units: Vec<f64> = reqs.iter().map(|r| r.entries[1].units).collect();
        let min = units.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = units.iter().cloned().fold(0.0, f64::max);
        assert!(max / min > 5.0, "variance too small: {min}..{max}");
        for r in &reqs {
            // calls scale linearly with the same factor as units.
            let ratio = r.entries[1].calls / 20.0;
            let unit_ratio = r.entries[1].units / 350.0;
            assert!((ratio - unit_ratio).abs() < 1e-9);
        }
    }

    #[test]
    fn novelty_tracks_size_deviation() {
        let w = SpecWorkload::new(toy_spec());
        let mut rng = SmallRng::seed_from_u64(3);
        let req = w.generate(&mut rng, InputVariance::none());
        assert_eq!(req.novelty, 0.0);
    }

    #[test]
    fn io_workload_reports_io_bound() {
        let mut spec = toy_spec();
        spec.io_base_us = 500_000.0;
        spec.io_rel_jitter = 0.1;
        let w = SpecWorkload::new(spec);
        assert!(w.io_bound());
        let mut rng = SmallRng::seed_from_u64(4);
        let req = w.generate(&mut rng, InputVariance::none());
        assert!(req.io_us > 100_000.0);
    }

    #[test]
    #[should_panic(expected = "no methods")]
    fn empty_method_table_panics() {
        let mut spec = toy_spec();
        spec.methods.clear();
        let _ = SpecWorkload::new(spec);
    }

    #[test]
    #[should_panic(expected = "shares sum")]
    fn bad_shares_panic() {
        let mut spec = toy_spec();
        spec.methods[0].share = 5.0;
        let _ = SpecWorkload::new(spec);
    }
}

//! Figure 6: trace-driven evaluation at Azure popularity percentiles.
//!
//! The paper replays 15-minute production traces of functions at the 50th,
//! 65th and 75th popularity percentiles against two compute-bound
//! workloads (MST, HTMLRendering) and one IO-bound workload (Thumbnailer),
//! finding Pronghorn superior in 6/9 scenarios, on-par in 2, and worse in
//! one pathological case: MST at the 50th percentile, whose trace carried
//! only 3 requests.

use crate::render::write_results_csv;
use crate::ExperimentContext;
use pronghorn_core::PolicyKind;
use pronghorn_metrics::Table;
use pronghorn_platform::{run_trace_with_history, RunConfig, RunResult};
use pronghorn_sim::RngFactory;
use pronghorn_traces::TraceSpec;
use pronghorn_workloads::{by_name, InputVariance};

/// Figure 6's benchmark rows.
pub const FIG6_BENCHMARKS: [&str; 3] = ["MST", "Thumbnailer", "HTMLRendering"];

/// Figure 6's popularity percentiles (columns).
pub const FIG6_PERCENTILES: [f64; 3] = [0.50, 0.65, 0.75];

/// One trace-driven cell.
#[derive(Debug, Clone)]
pub struct TraceCell {
    /// Benchmark name.
    pub workload: String,
    /// Popularity percentile.
    pub percentile: f64,
    /// Policy under test.
    pub policy: PolicyKind,
    /// Requests the trace carried.
    pub trace_len: usize,
    /// The run.
    pub result: RunResult,
}

/// Figure 6's full result.
#[derive(Debug, Clone)]
pub struct Fig6Result {
    /// All cells.
    pub cells: Vec<TraceCell>,
}

/// Prior production invocations replayed before the measured window: the
/// function is already deployed when the trace starts, but the policy is
/// still mid-exploration (the 50th-percentile MST case stays pathological,
/// as in the paper).
pub const DEPLOYMENT_HISTORY: u32 = 60;

/// Runs Figure 6. Each (benchmark, percentile) pair gets one synthetic
/// trace shared across the three policies (paired comparison), replayed
/// against an already-deployed function.
pub fn run(ctx: &ExperimentContext) -> Fig6Result {
    let mut cells = Vec::new();
    for &bench in &FIG6_BENCHMARKS {
        for &percentile in &FIG6_PERCENTILES {
            let trace_seed = ctx.cell_seed(&["fig6", bench, &format!("{percentile}")]);
            let factory = RngFactory::new(trace_seed);
            let trace = TraceSpec::percentile(percentile).generate(&mut factory.stream("trace"));
            let workload = by_name(bench).expect("figure benchmark exists");
            for policy in [
                PolicyKind::Cold,
                PolicyKind::AfterFirst,
                PolicyKind::RequestCentric,
            ] {
                let cfg =
                    RunConfig::paper(policy, 4, trace_seed).with_variance(InputVariance::low());
                let result = run_trace_with_history(&workload, &cfg, &trace, DEPLOYMENT_HISTORY);
                cells.push(TraceCell {
                    workload: bench.to_string(),
                    percentile,
                    policy,
                    trace_len: trace.len(),
                    result,
                });
            }
        }
    }
    Fig6Result { cells }
}

impl Fig6Result {
    /// Finds a cell.
    pub fn cell(&self, workload: &str, percentile: f64, policy: PolicyKind) -> Option<&TraceCell> {
        self.cells.iter().find(|c| {
            c.workload == workload && (c.percentile - percentile).abs() < 1e-9 && c.policy == policy
        })
    }

    /// Median improvement of request-centric over after-1st for a panel.
    pub fn improvement_pct(&self, workload: &str, percentile: f64) -> Option<f64> {
        let base = self.cell(workload, percentile, PolicyKind::AfterFirst)?;
        let rc = self.cell(workload, percentile, PolicyKind::RequestCentric)?;
        pronghorn_metrics::median_improvement_pct(base.result.median_us(), rc.result.median_us())
    }

    /// Counts panels where request-centric is better / on-par / worse
    /// (±5% band, §5.2's convention).
    pub fn verdict_counts(&self) -> (usize, usize, usize) {
        let (mut better, mut par, mut worse) = (0, 0, 0);
        for &bench in &FIG6_BENCHMARKS {
            for &p in &FIG6_PERCENTILES {
                if let Some(imp) = self.improvement_pct(bench, p) {
                    match pronghorn_metrics::classify(imp) {
                        pronghorn_metrics::Verdict::Better => better += 1,
                        pronghorn_metrics::Verdict::OnPar => par += 1,
                        pronghorn_metrics::Verdict::Worse => worse += 1,
                    }
                }
            }
        }
        (better, par, worse)
    }

    /// Paper-style rendering.
    pub fn render(&self) -> String {
        let mut table = Table::new(vec![
            "workload",
            "percentile",
            "trace reqs",
            "cold median µs",
            "after-1st median µs",
            "request-centric median µs",
            "improvement",
        ]);
        for &bench in &FIG6_BENCHMARKS {
            for &p in &FIG6_PERCENTILES {
                let m = |policy| {
                    self.cell(bench, p, policy)
                        .map(|c| format!("{:.0}", c.result.median_us()))
                        .unwrap_or_else(|| "-".into())
                };
                let len = self
                    .cell(bench, p, PolicyKind::Cold)
                    .map(|c| c.trace_len.to_string())
                    .unwrap_or_default();
                let imp = self
                    .improvement_pct(bench, p)
                    .map(|i| format!("{i:+.1}%"))
                    .unwrap_or_else(|| "-".into());
                table.row(vec![
                    bench.to_string(),
                    format!("{:.0}th", p * 100.0),
                    len,
                    m(PolicyKind::Cold),
                    m(PolicyKind::AfterFirst),
                    m(PolicyKind::RequestCentric),
                    imp,
                ]);
            }
        }
        let (b, o, w) = self.verdict_counts();
        format!(
            "Figure 6: Azure-like trace replay (15-minute windows)\n\n{}\nrequest-centric: better in {b}/9, on-par in {o}/9, worse in {w}/9 scenarios\n",
            table.render(pronghorn_metrics::TableStyle::Plain)
        )
    }

    /// CSV form.
    pub fn to_csv(&self) -> String {
        let mut table = Table::new(vec![
            "workload",
            "percentile",
            "policy",
            "trace_len",
            "median_us",
            "p90_us",
        ]);
        for c in &self.cells {
            table.row(vec![
                c.workload.clone(),
                format!("{:.2}", c.percentile),
                c.policy.label().to_string(),
                c.trace_len.to_string(),
                format!("{:.1}", c.result.median_us()),
                format!("{:.1}", c.result.percentile_us(90.0)),
            ]);
        }
        table.to_csv()
    }

    /// Writes `results/fig6.csv`.
    pub fn save(&self) -> std::io::Result<std::path::PathBuf> {
        write_results_csv("fig6.csv", &self.to_csv())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_nine_panels_with_three_policies() {
        let result = run(&ExperimentContext::quick());
        assert_eq!(result.cells.len(), 27);
        // Trace length is shared across policies of a panel.
        for &bench in &FIG6_BENCHMARKS {
            for &p in &FIG6_PERCENTILES {
                let lens: Vec<usize> = [
                    PolicyKind::Cold,
                    PolicyKind::AfterFirst,
                    PolicyKind::RequestCentric,
                ]
                .iter()
                .filter_map(|&k| result.cell(bench, p, k))
                .map(|c| c.trace_len)
                .collect();
                assert_eq!(lens.len(), 3);
                assert!(lens.windows(2).all(|w| w[0] == w[1]));
            }
        }
    }

    #[test]
    fn median_percentile_traces_are_sparse() {
        let result = run(&ExperimentContext::quick());
        let p50 = result.cell("MST", 0.50, PolicyKind::Cold).unwrap();
        let p75 = result.cell("MST", 0.75, PolicyKind::Cold).unwrap();
        assert!(
            p50.trace_len < p75.trace_len,
            "p50 {} vs p75 {}",
            p50.trace_len,
            p75.trace_len
        );
    }

    #[test]
    fn render_mentions_every_panel() {
        let result = run(&ExperimentContext::quick());
        let text = result.render();
        for needle in ["MST", "Thumbnailer", "HTMLRendering", "50th", "75th"] {
            assert!(text.contains(needle));
        }
    }
}

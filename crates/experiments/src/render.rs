//! Text rendering: ASCII CDF plots, warm-up series, and CSV output.

use pronghorn_metrics::{bucket_medians, Cdf};

/// Renders one or more CDFs on a shared log-x ASCII canvas — the textual
/// equivalent of a Figure 4/5/6 panel.
///
/// Each curve gets its own glyph; the legend is appended below the canvas.
pub fn ascii_cdf(curves: &[(&str, &Cdf)], width: usize, height: usize) -> String {
    const GLYPHS: &[char] = &['*', 'o', '+', 'x', '#', '@'];
    if curves.is_empty() || width < 8 || height < 3 {
        return String::new();
    }
    let lo = curves
        .iter()
        .map(|(_, c)| c.inverse(0.0))
        .fold(f64::INFINITY, f64::min)
        .max(1e-9);
    let hi = curves
        .iter()
        .map(|(_, c)| c.inverse(1.0))
        .fold(0.0f64, f64::max)
        .max(lo * 1.0001);
    let (llo, lhi) = (lo.ln(), hi.ln());
    let mut canvas = vec![vec![' '; width]; height];
    for (ci, (_, cdf)) in curves.iter().enumerate() {
        let glyph = GLYPHS[ci % GLYPHS.len()];
        #[allow(clippy::needless_range_loop)]
        for col in 0..width {
            let x = (llo + (lhi - llo) * col as f64 / (width - 1) as f64).exp();
            let f = cdf.eval(x);
            let row = ((1.0 - f) * (height - 1) as f64).round() as usize;
            canvas[row.min(height - 1)][col] = glyph;
        }
    }
    let mut out = String::new();
    for (i, row) in canvas.iter().enumerate() {
        let label = if i == 0 {
            "1.0 |"
        } else if i == height - 1 {
            "0.0 |"
        } else {
            "    |"
        };
        out.push_str(label);
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!(
        "    +{}\n     {:<12.0}µs{}{:>12.0}µs\n",
        "-".repeat(width),
        lo,
        " ".repeat(width.saturating_sub(26)),
        hi
    ));
    for (ci, (name, _)) in curves.iter().enumerate() {
        out.push_str(&format!("     {} {}\n", GLYPHS[ci % GLYPHS.len()], name));
    }
    out
}

/// Renders a latency-vs-request-number series as a downsampled ASCII sparkline
/// block — the textual Figure 1.
pub fn ascii_series(values: &[f64], width: usize, height: usize) -> String {
    if values.is_empty() || width < 4 || height < 2 {
        return String::new();
    }
    // Downsample by bucket medians to suppress noise.
    let points = bucket_medians(values, width);
    let lo = points.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = points.iter().cloned().fold(0.0f64, f64::max).max(lo + 1e-9);
    let mut canvas = vec![vec![' '; points.len()]; height];
    for (col, &v) in points.iter().enumerate() {
        let frac = (v - lo) / (hi - lo);
        let row = ((1.0 - frac) * (height - 1) as f64).round() as usize;
        canvas[row.min(height - 1)][col] = '*';
    }
    let mut out = String::new();
    for (i, row) in canvas.iter().enumerate() {
        let prefix = if i == 0 {
            format!("{hi:>9.0} |")
        } else if i == height - 1 {
            format!("{lo:>9.0} |")
        } else {
            format!("{:>9} |", "")
        };
        out.push_str(&prefix);
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!(
        "{:>9} +{}\n{:>10} request 1 .. {}\n",
        "",
        "-".repeat(points.len()),
        "",
        values.len()
    ));
    out
}

/// Writes a file under the `results/` directory (created on demand),
/// returning the path written.
pub fn write_results_file(name: &str, contents: &str) -> std::io::Result<std::path::PathBuf> {
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(name);
    std::fs::write(&path, contents)?;
    Ok(path)
}

/// Writes a CSV file under the `results/` directory (created on demand),
/// returning the path written.
pub fn write_results_csv(name: &str, csv: &str) -> std::io::Result<std::path::PathBuf> {
    write_results_file(name, csv)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_plot_contains_all_curves() {
        let a = Cdf::new(vec![1_000.0, 2_000.0, 4_000.0]).unwrap();
        let b = Cdf::new(vec![10_000.0, 20_000.0]).unwrap();
        let plot = ascii_cdf(&[("fast", &a), ("slow", &b)], 40, 10);
        assert!(plot.contains('*'));
        assert!(plot.contains('o'));
        assert!(plot.contains("fast"));
        assert!(plot.contains("slow"));
        assert!(plot.lines().count() > 10);
    }

    #[test]
    fn degenerate_plot_inputs_yield_empty() {
        assert!(ascii_cdf(&[], 40, 10).is_empty());
        let c = Cdf::new(vec![1.0]).unwrap();
        assert!(ascii_cdf(&[("x", &c)], 2, 10).is_empty());
    }

    #[test]
    fn series_plot_shows_descending_warmup() {
        let values: Vec<f64> = (0..500).map(|i| 10_000.0 - 15.0 * i as f64).collect();
        let plot = ascii_series(&values, 60, 8);
        assert!(plot.contains('*'));
        // First row is labeled with the (larger) max bucket median, last
        // canvas row with the min; both labels parse and are ordered.
        let labels: Vec<f64> = plot
            .lines()
            .filter_map(|l| l.split('|').next())
            .filter_map(|l| l.trim().parse::<f64>().ok())
            .collect();
        assert_eq!(labels.len(), 2, "{plot}");
        assert!(labels[0] > labels[1], "{plot}");
        // A descending series starts top-left: the first canvas row should
        // have its '*' before the last row's.
        let first_star = plot.lines().next().unwrap().find('*');
        assert!(first_star.is_some(), "{plot}");
    }

    #[test]
    fn series_plot_handles_empty() {
        assert!(ascii_series(&[], 40, 8).is_empty());
    }
}

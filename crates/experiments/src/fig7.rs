//! Figure 7: per-operation orchestrator overheads vs the baseline.
//!
//! For each benchmark, the paper normalizes Pronghorn's per-worker-startup,
//! per-request, and per-checkpoint orchestration overheads against the
//! checkpoint-after-1st baseline: startup stays below 2.5× (snapshot
//! selection needs the weight vector), per-request is on-par (a few extra
//! array operations dwarfed by network latency), and per-checkpoint stays
//! below ~2× (pool maintenance in the database). All of it is off the
//! critical path.

use crate::render::write_results_csv;
use crate::ExperimentContext;
use pronghorn_core::{OverheadTotals, PolicyKind};
use pronghorn_metrics::{Table, TableStyle};
use pronghorn_platform::{run_closed_loop, RunConfig};
use pronghorn_workloads::{evaluation_benchmarks, Workload};

/// One benchmark's normalized overheads.
#[derive(Debug, Clone)]
pub struct OverheadRow {
    /// Benchmark name.
    pub workload: String,
    /// Pronghorn per-operation overheads, µs.
    pub pronghorn: OverheadTotals,
    /// Baseline per-operation overheads, µs.
    pub baseline: OverheadTotals,
}

impl OverheadRow {
    /// Startup overhead ratio (Pronghorn / baseline).
    pub fn startup_ratio(&self) -> f64 {
        ratio(
            self.pronghorn.per_startup_us(),
            self.baseline.per_startup_us(),
        )
    }

    /// Per-request overhead ratio.
    pub fn request_ratio(&self) -> f64 {
        ratio(
            self.pronghorn.per_request_us(),
            self.baseline.per_request_us(),
        )
    }

    /// Per-checkpoint overhead ratio.
    pub fn checkpoint_ratio(&self) -> f64 {
        ratio(
            self.pronghorn.per_checkpoint_us(),
            self.baseline.per_checkpoint_us(),
        )
    }
}

fn ratio(a: f64, b: f64) -> f64 {
    if b > 0.0 {
        a / b
    } else {
        f64::NAN
    }
}

/// Figure 7's full result.
#[derive(Debug, Clone)]
pub struct Fig7Result {
    /// One row per benchmark.
    pub rows: Vec<OverheadRow>,
}

/// Runs Figure 7 at eviction rate 4.
pub fn run(ctx: &ExperimentContext) -> Fig7Result {
    const RATE: u32 = 4;
    let rows = evaluation_benchmarks()
        .iter()
        .map(|b| {
            let seed = ctx.cell_seed(&["fig7", b.name()]);
            let run_with = |policy: PolicyKind| {
                let cfg = RunConfig::paper(policy, RATE, seed).with_invocations(ctx.invocations);
                run_closed_loop(b, &cfg).overheads
            };
            OverheadRow {
                workload: b.name().to_string(),
                pronghorn: run_with(PolicyKind::RequestCentric),
                baseline: run_with(PolicyKind::AfterFirst),
            }
        })
        .collect();
    Fig7Result { rows }
}

impl Fig7Result {
    /// Paper-style rendering: normalized per-operation bars.
    pub fn render(&self) -> String {
        let mut table = Table::new(vec![
            "Benchmark",
            "Startup (×)",
            "Startup (ms)",
            "Request (×)",
            "Checkpoint (×)",
            "Checkpoint (ms)",
        ]);
        for r in &self.rows {
            table.row(vec![
                r.workload.clone(),
                format!("{:.2}", r.startup_ratio()),
                format!("{:.1}", r.pronghorn.per_startup_us() / 1_000.0),
                format!("{:.2}", r.request_ratio()),
                format!("{:.2}", r.checkpoint_ratio()),
                format!("{:.1}", r.pronghorn.per_checkpoint_us() / 1_000.0),
            ]);
        }
        format!(
            "Figure 7: per-operation orchestration overheads, normalized to the \
             checkpoint-after-1st baseline (all off the critical path)\n\n{}",
            table.render(TableStyle::Plain)
        )
    }

    /// CSV form.
    pub fn to_csv(&self) -> String {
        let mut table = Table::new(vec![
            "workload",
            "startup_ratio",
            "request_ratio",
            "checkpoint_ratio",
            "pronghorn_startup_us",
            "pronghorn_request_us",
            "pronghorn_checkpoint_us",
            "baseline_startup_us",
            "baseline_request_us",
            "baseline_checkpoint_us",
        ]);
        for r in &self.rows {
            table.row(vec![
                r.workload.clone(),
                format!("{:.3}", r.startup_ratio()),
                format!("{:.3}", r.request_ratio()),
                format!("{:.3}", r.checkpoint_ratio()),
                format!("{:.1}", r.pronghorn.per_startup_us()),
                format!("{:.1}", r.pronghorn.per_request_us()),
                format!("{:.1}", r.pronghorn.per_checkpoint_us()),
                format!("{:.1}", r.baseline.per_startup_us()),
                format!("{:.1}", r.baseline.per_request_us()),
                format!("{:.1}", r.baseline.per_checkpoint_us()),
            ]);
        }
        table.to_csv()
    }

    /// Writes `results/fig7.csv`.
    pub fn save(&self) -> std::io::Result<std::path::PathBuf> {
        write_results_csv("fig7.csv", &self.to_csv())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_ratios_match_figure7_bands() {
        let ctx = ExperimentContext {
            invocations: 200,
            ..ExperimentContext::quick()
        };
        let result = run(&ctx);
        assert_eq!(result.rows.len(), 13);
        for r in &result.rows {
            let s = r.startup_ratio();
            // Paper: startup higher than baseline but not exceeding 2.5x.
            assert!(s > 1.0, "{}: startup ratio {s}", r.workload);
            assert!(s < 2.6, "{}: startup ratio {s}", r.workload);
            // Per-request on-par (within ~2x; paper shows ~1x).
            let q = r.request_ratio();
            assert!((0.5..2.5).contains(&q), "{}: request ratio {q}", r.workload);
            // Checkpoint at most ~2x.
            let c = r.checkpoint_ratio();
            assert!(
                (0.5..2.5).contains(&c),
                "{}: checkpoint ratio {c}",
                r.workload
            );
        }
    }
}

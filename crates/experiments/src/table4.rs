//! Table 4: convergence requests, checkpoint/restore times, snapshot sizes.
//!
//! Per benchmark, the paper reports (a) the requests Pronghorn takes to
//! find the optimal snapshot — the window-20/2% criterion applied to the
//! recorded latencies, averaged "across all tested combinations of input
//! size variances and eviction rates" — and (b) checkpoint/restore timings
//! and snapshot sizes from checkpointing each benchmark 10 times after
//! startup.

use crate::render::write_results_csv;
use crate::ExperimentContext;
use pronghorn_checkpoint::{SimCriuEngine, SnapshotMeta};
use pronghorn_core::PolicyKind;
use pronghorn_jit::Runtime;
use pronghorn_metrics::{Summary, Table, TableStyle};
use pronghorn_platform::{run_closed_loop, RunConfig};
use pronghorn_sim::RngFactory;
use pronghorn_workloads::{evaluation_benchmarks, InputVariance, Workload};

/// One benchmark's Table 4 row.
#[derive(Debug, Clone)]
pub struct Table4Row {
    /// Benchmark name.
    pub workload: String,
    /// Runtime label.
    pub runtime: String,
    /// Mean convergence request number across variance × rate combos.
    pub convergence_request: Option<f64>,
    /// Checkpoint time, ms (mean, std over 10 repetitions).
    pub checkpoint_ms: (f64, f64),
    /// Restore time, ms (mean, std).
    pub restore_ms: (f64, f64),
    /// Snapshot size, MB.
    pub snapshot_mb: f64,
}

/// Table 4's full result.
#[derive(Debug, Clone)]
pub struct Table4Result {
    /// One row per benchmark.
    pub rows: Vec<Table4Row>,
}

/// Measures checkpoint/restore costs: boot, serve a few requests, then
/// checkpoint+restore 10 times (the paper's methodology).
pub fn measure_engine_costs(workload: &dyn Workload, seed: u64) -> ((f64, f64), (f64, f64), f64) {
    let factory = RngFactory::new(seed);
    let engine = SimCriuEngine::new();
    let mut boot_rng = factory.stream("boot");
    let (mut runtime, _) = Runtime::cold_start(
        workload.runtime_profile(),
        workload.method_profiles(),
        &mut boot_rng,
    );
    let mut exec_rng = factory.stream("exec");
    for i in 0..5u64 {
        let mut input_rng = factory.stream_indexed("input", i);
        let request = workload.generate(&mut input_rng, InputVariance::none());
        runtime.execute(&request, &mut exec_rng);
    }
    let mut engine_rng = factory.stream("engine");
    let mut ckpt = Summary::new();
    let mut rest = Summary::new();
    let mut size_mb = 0.0;
    for _ in 0..10 {
        let meta = SnapshotMeta {
            function: workload.name().to_string(),
            request_number: runtime.requests_executed() as u32,
            runtime: workload.kind().label().to_string(),
        };
        let (snapshot, ckpt_cost) = engine.checkpoint(&mut engine_rng, &runtime, meta);
        ckpt.record(ckpt_cost.as_millis_f64());
        size_mb = snapshot.nominal_size_mb();
        let (restored, rest_cost): (Runtime, _) = engine
            .restore(&mut engine_rng, &snapshot)
            .expect("self-produced snapshot restores");
        rest.record(rest_cost.as_millis_f64());
        runtime = restored;
    }
    (
        (ckpt.mean(), ckpt.sample_std()),
        (rest.mean(), rest.sample_std()),
        size_mb,
    )
}

/// Mean policy-convergence request across variance × eviction-rate combos.
pub fn measure_convergence(workload: &dyn Workload, ctx: &ExperimentContext) -> Option<f64> {
    let mut points = Vec::new();
    for variance in [InputVariance::none(), InputVariance::paper()] {
        for rate in [1u32, 4, 20] {
            let seed = ctx.cell_seed(&[
                "table4",
                workload.name(),
                &rate.to_string(),
                &format!("{:.2}", variance.sigma),
            ]);
            let cfg = RunConfig::paper(PolicyKind::RequestCentric, rate, seed)
                .with_invocations(ctx.invocations)
                .with_variance(variance);
            let result = run_closed_loop(workload, &cfg);
            if let Some(c) = result.convergence_request() {
                points.push(c as f64);
            }
        }
    }
    if points.is_empty() {
        None
    } else {
        Some(points.iter().sum::<f64>() / points.len() as f64)
    }
}

/// Runs Table 4 for all thirteen evaluation benchmarks.
pub fn run(ctx: &ExperimentContext) -> Table4Result {
    let rows = evaluation_benchmarks()
        .iter()
        .map(|b| {
            let (checkpoint_ms, restore_ms, snapshot_mb) =
                measure_engine_costs(b, ctx.cell_seed(&["table4-engine", b.name()]));
            Table4Row {
                workload: b.name().to_string(),
                runtime: b.kind().label().to_string(),
                convergence_request: measure_convergence(b, ctx),
                checkpoint_ms,
                restore_ms,
                snapshot_mb,
            }
        })
        .collect();
    Table4Result { rows }
}

impl Table4Result {
    /// Paper-style rendering.
    pub fn render(&self) -> String {
        let mut table = Table::new(vec![
            "Benchmark",
            "Runtime",
            "Req. #",
            "Checkpoint (ms)",
            "Restore (ms)",
            "Snapshot (MB)",
        ]);
        for row in &self.rows {
            table.row(vec![
                row.workload.clone(),
                row.runtime.clone(),
                row.convergence_request
                    .map(|c| format!("{c:.0}"))
                    .unwrap_or_else(|| "-".into()),
                format!("{:.1} ± {:.0}", row.checkpoint_ms.0, row.checkpoint_ms.1),
                format!("{:.1} ± {:.1}", row.restore_ms.0, row.restore_ms.1),
                format!("{:.1}", row.snapshot_mb),
            ]);
        }
        format!(
            "Table 4: convergence requests and checkpoint/restore overheads\n\n{}",
            table.render(TableStyle::Plain)
        )
    }

    /// CSV form.
    pub fn to_csv(&self) -> String {
        let mut table = Table::new(vec![
            "workload",
            "runtime",
            "convergence_request",
            "checkpoint_ms_mean",
            "checkpoint_ms_std",
            "restore_ms_mean",
            "restore_ms_std",
            "snapshot_mb",
        ]);
        for r in &self.rows {
            table.row(vec![
                r.workload.clone(),
                r.runtime.clone(),
                r.convergence_request
                    .map(|c| format!("{c:.1}"))
                    .unwrap_or_default(),
                format!("{:.2}", r.checkpoint_ms.0),
                format!("{:.2}", r.checkpoint_ms.1),
                format!("{:.2}", r.restore_ms.0),
                format!("{:.2}", r.restore_ms.1),
                format!("{:.2}", r.snapshot_mb),
            ]);
        }
        table.to_csv()
    }

    /// Writes `results/table4.csv`.
    pub fn save(&self) -> std::io::Result<std::path::PathBuf> {
        write_results_csv("table4.csv", &self.to_csv())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pronghorn_workloads::by_name;

    #[test]
    fn engine_costs_land_in_paper_bands() {
        // Paper: JVM snapshots ~10.5–13.3 MB, checkpoint 60–71 ms,
        // restore 50–56 ms; PyPy snapshots ~54–64 MB, checkpoint 74–105,
        // restore 30–81.
        let jvm = by_name("Hash").unwrap();
        let ((cm, _), (rm, _), mb) = measure_engine_costs(&jvm, 1);
        assert!((50.0..=85.0).contains(&cm), "jvm checkpoint {cm} ms");
        assert!((40.0..=70.0).contains(&rm), "jvm restore {rm} ms");
        assert!((9.0..=16.0).contains(&mb), "jvm snapshot {mb} MB");

        let pypy = by_name("BFS").unwrap();
        let ((cm, _), (rm, _), mb) = measure_engine_costs(&pypy, 1);
        assert!((65.0..=115.0).contains(&cm), "pypy checkpoint {cm} ms");
        assert!((55.0..=95.0).contains(&rm), "pypy restore {rm} ms");
        assert!((48.0..=70.0).contains(&mb), "pypy snapshot {mb} MB");
    }

    #[test]
    fn convergence_is_measurable_for_a_compute_benchmark() {
        let ctx = ExperimentContext {
            invocations: 200,
            ..ExperimentContext::quick()
        };
        let bench = by_name("DFS").unwrap();
        let c = measure_convergence(&bench, &ctx).expect("converges");
        assert!(c > 0.0 && c < 200.0, "convergence {c}");
    }

    #[test]
    fn render_has_thirteen_rows() {
        // Engine-only smoke of the render path (convergence is expensive,
        // covered above): build rows directly.
        let rows: Vec<Table4Row> = evaluation_benchmarks()
            .iter()
            .map(|b| {
                let (c, r, mb) = measure_engine_costs(b, 2);
                Table4Row {
                    workload: b.name().to_string(),
                    runtime: b.kind().label().to_string(),
                    convergence_request: Some(150.0),
                    checkpoint_ms: c,
                    restore_ms: r,
                    snapshot_mb: mb,
                }
            })
            .collect();
        let result = Table4Result { rows };
        let text = result.render();
        assert_eq!(text.lines().count(), 2 + 2 + 13);
        assert!(result.to_csv().contains("Uploader"));
    }
}

//! Ablation study: the design choices DESIGN.md §5 calls out, measured by
//! the *quality* they deliver (median end-to-end latency), not by runtime.
//!
//! Covers: snapshot-selection strategy (softmax vs greedy vs uniform),
//! the random-survivor fraction `γ`, pool capacity `C`, search bound `W`,
//! worker-lifetime misestimation (§6), fleet exploration amortization
//! (§5.3), and input-aware partitioning (§6).

use crate::render::write_results_csv;
use crate::ExperimentContext;
use pronghorn_core::{PolicyConfig, PolicyKind, SelectionStrategy};
use pronghorn_platform::{run_closed_loop, run_fleet, run_partitioned, FleetConfig, RunConfig};
use pronghorn_workloads::{by_name, InputVariance};

/// One ablation row.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Which knob group this row belongs to.
    pub group: &'static str,
    /// Configuration label.
    pub label: String,
    /// Median end-to-end latency, µs.
    pub median_us: f64,
    /// Checkpoints taken (cost proxy).
    pub checkpoints: usize,
}

/// The full ablation study.
#[derive(Debug, Clone)]
pub struct AblationResult {
    /// All rows, grouped.
    pub rows: Vec<AblationRow>,
}

fn closed(
    ctx: &ExperimentContext,
    bench: &str,
    config: Option<PolicyConfig>,
    beta_estimate: Option<u32>,
) -> (f64, usize) {
    let workload = by_name(bench).expect("ablation benchmark exists");
    let mut cfg = RunConfig::paper(
        PolicyKind::RequestCentric,
        1,
        ctx.cell_seed(&["ablation", bench]),
    )
    .with_invocations(ctx.invocations.max(300));
    if let Some(pc) = config {
        cfg = cfg.with_policy_config(pc);
    }
    if let Some(beta) = beta_estimate {
        cfg = cfg.with_beta_estimate(beta);
    }
    let r = run_closed_loop(&workload, &cfg);
    (r.median_us(), r.checkpoint_ms.len())
}

/// Runs the ablation study on one compute-bound benchmark (DFS).
pub fn run(ctx: &ExperimentContext) -> AblationResult {
    const BENCH: &str = "DFS";
    let base = PolicyConfig::paper_pypy();
    let mut rows = Vec::new();
    let mut push = |group: &'static str, label: String, (median_us, checkpoints): (f64, usize)| {
        rows.push(AblationRow {
            group,
            label,
            median_us,
            checkpoints,
        });
    };

    // Selection strategy (DESIGN.md ablation 2).
    for (label, strategy) in [
        ("softmax (paper)", SelectionStrategy::Softmax),
        ("greedy", SelectionStrategy::Greedy),
        ("uniform", SelectionStrategy::Uniform),
    ] {
        push(
            "selection",
            label.to_string(),
            closed(ctx, BENCH, Some(base.with_selection(strategy)), None),
        );
    }

    // Random-survivor fraction γ (ablation 3).
    for gamma in [0.0, 0.10, 0.50] {
        push(
            "gamma",
            format!("gamma = {gamma:.2}"),
            closed(ctx, BENCH, Some(base.with_eviction_fracs(0.4, gamma)), None),
        );
    }

    // Pool capacity C (§5.3's storage knob).
    for c in [2usize, 12, 24] {
        push(
            "capacity",
            format!("C = {c}"),
            closed(ctx, BENCH, Some(base.with_capacity(c)), None),
        );
    }

    // Search bound W.
    for w in [25u32, 100, 200] {
        push(
            "search-bound",
            format!("W = {w}"),
            closed(ctx, BENCH, Some(base.with_w(w)), None),
        );
    }

    // Lifetime misestimation (§6).
    push(
        "beta",
        "accurate".to_string(),
        closed(ctx, BENCH, None, None),
    );
    push(
        "beta",
        "overestimated 20x".to_string(),
        closed(ctx, BENCH, None, Some(20)),
    );

    // Fleet amortization (§5.3).
    let workload = by_name(BENCH).expect("bench exists");
    for (label, explorers) in [
        ("4 workers, 1 explorer", 1usize),
        ("4 workers, 0 explorers", 0),
    ] {
        let cfg = RunConfig::paper(
            PolicyKind::RequestCentric,
            4,
            ctx.cell_seed(&["ablation-fleet", BENCH]),
        )
        .with_invocations(ctx.invocations.max(300));
        let r = run_fleet(
            &workload,
            &cfg,
            &FleetConfig {
                fleet_size: 4,
                explorers,
            },
        );
        push(
            "fleet",
            label.to_string(),
            (r.median_us(), r.checkpoint_ms.len()),
        );
    }

    // Input-aware partitioning (§6) on bimodal traffic.
    let cfg = RunConfig::paper(
        PolicyKind::RequestCentric,
        1,
        ctx.cell_seed(&["ablation-partition", BENCH]),
    )
    .with_invocations(ctx.invocations.max(300))
    .with_variance(InputVariance::bimodal());
    let shared = run_closed_loop(&workload, &cfg);
    push(
        "partitioning",
        "shared deployment".to_string(),
        (shared.median_us(), shared.checkpoint_ms.len()),
    );
    let split = run_partitioned(&workload, &cfg, 2);
    push(
        "partitioning",
        "2 input classes".to_string(),
        (split.median_us(), split.checkpoint_ms.len()),
    );

    AblationResult { rows }
}

impl AblationResult {
    /// Paper-style rendering.
    pub fn render(&self) -> String {
        let mut table = pronghorn_metrics::Table::new(vec![
            "group",
            "configuration",
            "median (µs)",
            "checkpoints",
        ]);
        for r in &self.rows {
            table.row(vec![
                r.group.to_string(),
                r.label.clone(),
                format!("{:.0}", r.median_us),
                r.checkpoints.to_string(),
            ]);
        }
        format!(
            "Ablation study (request-centric policy on DFS, eviction rate 1)\n\n{}",
            table.render(pronghorn_metrics::TableStyle::Plain)
        )
    }

    /// CSV form.
    pub fn to_csv(&self) -> String {
        let mut table =
            pronghorn_metrics::Table::new(vec!["group", "label", "median_us", "checkpoints"]);
        for r in &self.rows {
            table.row(vec![
                r.group.to_string(),
                r.label.clone(),
                format!("{:.1}", r.median_us),
                r.checkpoints.to_string(),
            ]);
        }
        table.to_csv()
    }

    /// Writes `results/ablations.csv`.
    pub fn save(&self) -> std::io::Result<std::path::PathBuf> {
        write_results_csv("ablations.csv", &self.to_csv())
    }

    /// Rows of one group.
    pub fn group(&self, name: &str) -> Vec<&AblationRow> {
        self.rows.iter().filter(|r| r.group == name).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_covers_every_design_choice() {
        let ctx = ExperimentContext {
            invocations: 300,
            ..ExperimentContext::quick()
        };
        let result = run(&ctx);
        for group in [
            "selection",
            "gamma",
            "capacity",
            "search-bound",
            "beta",
            "fleet",
            "partitioning",
        ] {
            assert!(result.group(group).len() >= 2, "group {group} missing rows");
        }
        // Uniform selection must be clearly worse than the paper's softmax.
        let sel = result.group("selection");
        let softmax = sel[0].median_us;
        let uniform = sel[2].median_us;
        assert!(
            uniform > softmax * 1.1,
            "uniform {uniform} vs softmax {softmax}"
        );
        // Zero explorers (no checkpoints) must be worse than one explorer.
        let fleet = result.group("fleet");
        assert!(fleet[1].median_us > fleet[0].median_us);
        assert_eq!(fleet[1].checkpoints, 0);
        let text = result.render();
        assert!(text.contains("Ablation study"));
    }
}

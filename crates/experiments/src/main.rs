//! `experiments` — regenerate every table and figure of the paper.
//!
//! ```text
//! experiments <command> [--quick] [--seed N] [--invocations N]
//!
//! commands:
//!   fig1     warm-up curves (Figure 1)
//!   table1   Java speedups vs request #1 (Table 1)
//!   fig4     Python CDF grid (Figure 4)
//!   fig5     Java CDF grid (Figure 5)
//!   fig6     Azure-like trace replay (Figure 6)
//!   table4   convergence + checkpoint/restore overheads (Table 4)
//!   table5   storage/network overheads (Table 5)
//!   fig7     orchestrator overheads (Figure 7)
//!   summary  §5.2 headline aggregation (runs fig4 + fig5 grids)
//!   ablations design-choice ablation study
//!   restore-ablation  restore strategies: eager vs lazy vs record-prefetch
//!   delta-ablation    checkpoint forms: full snapshots vs delta chains (K=4, K=16)
//!   cluster-ablation  cluster sizes x gateway routing: hash vs load-aware spillover
//!   kernel-bench      timer-wheel vs binary-heap kernel at production-trace scale
//!   provision-ablation  provisioning: reactive vs sliding-window/ewma/mpc pre-restore
//!   storage-ablation  tiered storage: flat vs SSD cache vs compression vs composed prefetch
//!   all      everything above, CSVs written to results/
//! ```

#![forbid(unsafe_code)]

use pronghorn_experiments::ExperimentContext;
use pronghorn_experiments::{
    ablation, bench_report, cluster_ablation, delta_ablation, fig1, fig45, fig6, fig7,
    kernel_bench, provision_ablation, restore_ablation, storage_ablation, summary, table1, table4,
    table5,
};
use std::process::ExitCode;

fn parse_args() -> Result<(String, ExperimentContext, bool), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().ok_or_else(usage)?.clone();
    let quick = args.iter().any(|a| a == "--quick");
    // `--quick` swaps the *baseline* context, so apply it before walking
    // the other flags: that makes parsing order-independent (a trailing
    // `--quick` used to clobber an earlier `--seed`/`--invocations`).
    let mut ctx = if quick {
        ExperimentContext::quick()
    } else {
        ExperimentContext::default()
    };
    let mut rest = args.iter().skip(1);
    while let Some(flag) = rest.next() {
        match flag.as_str() {
            "--quick" => {}
            "--seed" => {
                let v = rest.next().ok_or("--seed needs a value")?;
                ctx.seed = v.parse().map_err(|_| format!("bad seed: {v}"))?;
            }
            "--invocations" => {
                let v = rest.next().ok_or("--invocations needs a value")?;
                ctx.invocations = v.parse().map_err(|_| format!("bad invocations: {v}"))?;
            }
            "--threads" => {
                let v = rest.next().ok_or("--threads needs a value")?;
                let threads: usize = v.parse().map_err(|_| format!("bad threads: {v}"))?;
                if threads == 0 {
                    return Err(format!("--threads must be >= 1\n{}", usage()));
                }
                ctx.threads = threads;
            }
            other => return Err(format!("unknown flag: {other}\n{}", usage())),
        }
    }
    Ok((command, ctx, quick))
}

fn usage() -> String {
    "usage: experiments <fig1|table1|fig4|fig5|fig6|table4|table5|fig7|ablations|\
     restore-ablation|delta-ablation|cluster-ablation|kernel-bench|provision-ablation|\
     storage-ablation|summary|all> [--quick] [--seed N] [--invocations N] [--threads N]"
        .to_string()
}

fn save(label: &str, result: std::io::Result<std::path::PathBuf>) {
    match result {
        Ok(path) => println!("[saved {label} -> {}]", path.display()),
        Err(e) => eprintln!("[warn: could not save {label}: {e}]"),
    }
}

fn run_command(command: &str, ctx: &ExperimentContext, quick: bool) -> Result<(), String> {
    match command {
        "fig1" => {
            let r = fig1::run(ctx);
            println!("{}", r.render());
            save("fig1.csv", r.save());
        }
        "table1" => {
            let r = table1::run(ctx);
            println!("{}", r.render());
            save("table1.csv", r.save());
        }
        "fig4" => {
            let r = fig45::run_fig4(ctx);
            println!("{}", r.render());
            save("fig4.csv", r.save());
        }
        "fig5" => {
            let r = fig45::run_fig5(ctx);
            println!("{}", r.render());
            save("fig5.csv", r.save());
        }
        "fig6" => {
            let r = fig6::run(ctx);
            println!("{}", r.render());
            save("fig6.csv", r.save());
        }
        "table4" => {
            let r = table4::run(ctx);
            println!("{}", r.render());
            save("table4.csv", r.save());
        }
        "table5" => {
            let r = table5::run(ctx);
            println!("{}", r.render());
            save("table5.csv", r.save());
        }
        "fig7" => {
            let r = fig7::run(ctx);
            println!("{}", r.render());
            save("fig7.csv", r.save());
        }
        "ablations" => {
            let r = ablation::run(ctx);
            println!("{}", r.render());
            save("ablations.csv", r.save());
        }
        "restore-ablation" => {
            let r = restore_ablation::run(ctx);
            println!("{}", r.render());
            save("restore_ablation.csv", r.save());
            save("BENCH_restore.json", r.save_bench_report());
        }
        "delta-ablation" => {
            let r = delta_ablation::run(ctx);
            println!("{}", r.render());
            save("delta_ablation.csv", r.save());
            save("BENCH_delta.json", r.save_bench_report());
        }
        "cluster-ablation" => {
            let r = cluster_ablation::run(ctx);
            println!("{}", r.render());
            save("cluster_ablation.csv", r.save());
            save("BENCH_cluster.json", r.save_bench_report());
        }
        "kernel-bench" => {
            let r = kernel_bench::run(ctx);
            println!("{}", r.render());
            save("BENCH_kernel.json", r.save());
        }
        "provision-ablation" => {
            let r = provision_ablation::run(ctx, quick);
            println!("{}", r.render());
            save("provision_ablation.csv", r.save());
            save("BENCH_provision.json", r.save_bench_report());
        }
        "storage-ablation" => {
            let r = storage_ablation::run(ctx);
            println!("{}", r.render());
            save("storage_ablation.csv", r.save());
            save("BENCH_storage.json", r.save_bench_report());
        }
        "summary" => {
            let f4 = fig45::run_fig4(ctx);
            let f5 = fig45::run_fig5(ctx);
            let s = summary::summarize(&[&f4.grid, &f5.grid]);
            println!("{}", s.render());
            save("summary.csv", s.save());
            save(
                "BENCH_grid.json",
                bench_report::write(&[("fig4", &f4.grid), ("fig5", &f5.grid)]),
            );
            save(
                "BENCH_restore.json",
                restore_ablation::write_bench_restore(
                    &s.restore,
                    f4.grid.wall_clock_s + f5.grid.wall_clock_s,
                ),
            );
        }
        "all" => {
            for cmd in [
                "fig1",
                "table1",
                "fig4",
                "fig5",
                "fig6",
                "table4",
                "table5",
                "fig7",
                "ablations",
            ] {
                println!("==================== {cmd} ====================");
                run_command(cmd, ctx, quick)?;
            }
            // Reuse fresh grids for the summary.
            println!("==================== summary ====================");
            run_command("summary", ctx, quick)?;
            // Last, so its three-strategy BENCH_restore.json is the one
            // that survives (summary writes an eager-only version).
            println!("==================== restore-ablation ====================");
            run_command("restore-ablation", ctx, quick)?;
            println!("==================== delta-ablation ====================");
            run_command("delta-ablation", ctx, quick)?;
            println!("==================== cluster-ablation ====================");
            run_command("cluster-ablation", ctx, quick)?;
            println!("==================== kernel-bench ====================");
            run_command("kernel-bench", ctx, quick)?;
            println!("==================== provision-ablation ====================");
            run_command("provision-ablation", ctx, quick)?;
            println!("==================== storage-ablation ====================");
            run_command("storage-ablation", ctx, quick)?;
        }
        other => return Err(format!("unknown command: {other}\n{}", usage())),
    }
    Ok(())
}

fn main() -> ExitCode {
    let (command, ctx, quick) = match parse_args() {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "[pronghorn experiments: seed={:#x} invocations={} threads={}]",
        ctx.seed,
        ctx.invocations,
        ctx.effective_threads()
    );
    if let Some(reason) = ctx.thread_cap_reason() {
        println!("[{reason}]");
    }
    println!();
    if let Err(e) = run_command(&command, &ctx, quick) {
        eprintln!("{e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

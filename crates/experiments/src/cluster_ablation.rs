//! The cluster ablation: node counts × gateway routing policies.
//!
//! Sweeps the 13 paper benchmarks across {1, 4, 8}-node clusters under
//! both gateway routing policies (pure consistent hashing vs hash-first
//! load-aware spillover), with a request gap far below the benchmarks'
//! service times so the ring owner actually saturates. Cells that differ
//! only in routing share a seed, so the comparison is paired like every
//! other grid in the harness.
//!
//! The claims under test:
//!
//! - consistent hashing pins each function to one node, so saturation
//!   shows up as queueing delay and the tail latency explodes, while
//!   locality stays perfect (every restore is a local hit);
//! - load-aware spillover spreads the same arrivals across the ring
//!   successors, collapsing the queueing tail at the price of remote
//!   snapshot transfers (Table 5's network model) on spilled restores —
//!   the hot-start-vs-transfer-bytes trade the cluster runner exists to
//!   measure;
//! - a 1-node cluster is routing-invariant: both arms replay the
//!   identical (byte-for-byte) single-node run.

use crate::bench_report::{BenchReport, JsonObj};
use crate::delta_ablation::benchmarks;
use crate::render::write_results_csv;
use crate::ExperimentContext;
use pronghorn_core::PolicyKind;
use pronghorn_metrics::{Table, TableStyle};
use pronghorn_platform::{run_cluster, ClusterRunResult, ClusterSpec, RoutingPolicy, RunConfig};
use pronghorn_sim::SimDuration;
use pronghorn_workloads::by_name;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Cluster sizes the ablation sweeps.
pub const NODE_COUNTS: [u32; 3] = [1, 4, 8];

/// Worker slots per node. Two slots per node keep a single node
/// saturated at the contention gap while an 8-node cluster has headroom.
pub const NODE_CAPACITY: u32 = 2;

/// Request gap of the sweep (ms): far below every benchmark's service
/// time, so the ring owner saturates and routing actually matters.
pub const CONTENTION_GAP_MS: u64 = 1;

/// Eviction rate of the sweep: a worker per request maximizes restore
/// traffic, which is what the locality accounting measures.
const ABLATION_RATE: u32 = 1;

/// One benchmark × nodes × routing measurement.
#[derive(Debug, Clone)]
pub struct ClusterCell {
    /// Benchmark name.
    pub workload: String,
    /// Cluster size the cell ran on.
    pub nodes: u32,
    /// Gateway routing policy.
    pub routing: RoutingPolicy,
    /// Full cluster-run measurements.
    pub result: ClusterRunResult,
}

/// A completed cluster ablation.
#[derive(Debug, Clone, Default)]
pub struct ClusterAblation {
    /// All cells, in completion order (lookups are keyed, so order does
    /// not affect any rendered output).
    pub cells: Vec<ClusterCell>,
    /// Real wall-clock time the sweep took, seconds.
    pub wall_clock_s: f64,
}

/// The [`RunConfig`] one ablation cell runs under.
fn cell_config(seed: u64, invocations: u32, nodes: u32, routing: RoutingPolicy) -> RunConfig {
    let mut cfg = RunConfig::paper(PolicyKind::RequestCentric, ABLATION_RATE, seed)
        .with_invocations(invocations)
        .with_cluster(
            ClusterSpec::new(nodes)
                .with_capacity(NODE_CAPACITY)
                .with_routing(routing),
        );
    cfg.request_gap = SimDuration::from_millis(CONTENTION_GAP_MS);
    cfg
}

/// Runs the full ablation: 13 benchmarks × [`NODE_COUNTS`] × both
/// routing policies.
pub fn run(ctx: &ExperimentContext) -> ClusterAblation {
    run_for(ctx, &benchmarks(), &NODE_COUNTS)
}

/// Runs the ablation over an explicit benchmark and node-count set.
///
/// # Panics
///
/// Panics if a benchmark name is unknown — experiment tables are static
/// and must fail loudly.
pub fn run_for(
    ctx: &ExperimentContext,
    benchmarks: &[&str],
    node_counts: &[u32],
) -> ClusterAblation {
    for name in benchmarks {
        assert!(by_name(name).is_some(), "unknown benchmark {name}");
    }
    let mut tasks: Vec<(String, u32, RoutingPolicy)> = Vec::new();
    for &bench in benchmarks {
        for &nodes in node_counts {
            for routing in RoutingPolicy::ALL {
                tasks.push((bench.to_string(), nodes, routing));
            }
        }
    }
    let next = AtomicUsize::new(0);
    let cells = Mutex::new(Vec::with_capacity(tasks.len()));
    let threads = ctx.effective_threads();
    let started = std::time::Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some((bench, nodes, routing)) = tasks.get(i) else {
                    break;
                };
                let workload = by_name(bench).expect("validated above");
                // Seed shared across the routing arms of one
                // (bench, nodes): the paired-comparison trick.
                let seed = ctx.cell_seed(&["cluster", bench, &nodes.to_string()]);
                let cfg = cell_config(seed, ctx.invocations, *nodes, *routing);
                let result = run_cluster(&workload, &cfg);
                cells.lock().expect("no poisoned lock").push(ClusterCell {
                    workload: bench.clone(),
                    nodes: *nodes,
                    routing: *routing,
                    result,
                });
            });
        }
    });
    ClusterAblation {
        cells: cells.into_inner().expect("no poisoned lock"),
        wall_clock_s: started.elapsed().as_secs_f64(),
    }
}

/// Pooled per-arm (nodes × routing) aggregates.
#[derive(Debug, Clone)]
pub struct ClusterArmAggregate {
    /// Cluster size.
    pub nodes: u32,
    /// Routing policy.
    pub routing: RoutingPolicy,
    /// Cells pooled into this arm.
    pub cells: usize,
    /// Restores served from node-resident blobs, summed.
    pub local_hits: u64,
    /// Restores that fetched from a peer node, summed.
    pub remote_misses: u64,
    /// Nominal bytes moved between nodes, summed.
    pub remote_bytes: u64,
    /// Cold boots, summed.
    pub cold_starts: u64,
    /// Snapshot restores, summed.
    pub restores: u64,
    /// Requests served off their ring owner, summed.
    pub spillovers: u64,
    /// Queueing delay added to client latencies, summed (µs).
    pub queue_delay_us: f64,
    /// Per-node (cold starts, restores, served) pooled across cells,
    /// indexed by node.
    pub per_node: Vec<(u64, u64, u64)>,
}

impl ClusterArmAggregate {
    /// Pooled locality hit rate (1.0 when nothing restored).
    pub fn hit_rate(&self) -> f64 {
        let total = self.local_hits + self.remote_misses;
        if total == 0 {
            1.0
        } else {
            self.local_hits as f64 / total as f64
        }
    }
}

impl ClusterAblation {
    /// Finds a cell.
    pub fn cell(&self, workload: &str, nodes: u32, routing: RoutingPolicy) -> Option<&ClusterCell> {
        self.cells
            .iter()
            .find(|c| c.workload == workload && c.nodes == nodes && c.routing == routing)
    }

    /// Distinct workloads present, in paper order (non-paper test
    /// benchmarks follow, in cell order).
    pub fn workloads(&self) -> Vec<String> {
        let mut seen = Vec::new();
        for bench in benchmarks() {
            if self.cells.iter().any(|c| c.workload == bench) && !seen.contains(&bench.to_string())
            {
                seen.push(bench.to_string());
            }
        }
        for cell in &self.cells {
            if !seen.contains(&cell.workload) {
                seen.push(cell.workload.clone());
            }
        }
        seen
    }

    /// Distinct node counts present, ascending.
    pub fn node_counts(&self) -> Vec<u32> {
        let mut counts: Vec<u32> = self.cells.iter().map(|c| c.nodes).collect();
        counts.sort_unstable();
        counts.dedup();
        counts
    }

    /// Benchmarks where load-aware routing's p99 latency (queueing
    /// included) beats pure hashing's at `nodes`, as `(wins, total)`.
    pub fn load_aware_p99_wins(&self, nodes: u32) -> (usize, usize) {
        let mut wins = 0;
        let mut total = 0;
        for w in self.workloads() {
            let (Some(hash), Some(aware)) = (
                self.cell(&w, nodes, RoutingPolicy::Hash),
                self.cell(&w, nodes, RoutingPolicy::LoadAware),
            ) else {
                continue;
            };
            total += 1;
            if aware.result.result.percentile_us(99.0) < hash.result.result.percentile_us(99.0) {
                wins += 1;
            }
        }
        (wins, total)
    }

    /// Pooled per-arm aggregates, in node-count-major, [`RoutingPolicy::ALL`]
    /// order.
    pub fn arm_aggregates(&self) -> Vec<ClusterArmAggregate> {
        let mut out = Vec::new();
        for nodes in self.node_counts() {
            for routing in RoutingPolicy::ALL {
                let cells: Vec<&ClusterCell> = self
                    .cells
                    .iter()
                    .filter(|c| c.nodes == nodes && c.routing == routing)
                    .collect();
                if cells.is_empty() {
                    continue;
                }
                let mut per_node = vec![(0u64, 0u64, 0u64); nodes as usize];
                for cell in &cells {
                    for n in &cell.result.nodes {
                        let slot = &mut per_node[n.node as usize];
                        slot.0 += n.cold_starts;
                        slot.1 += n.restores;
                        slot.2 += n.served;
                    }
                }
                out.push(ClusterArmAggregate {
                    nodes,
                    routing,
                    cells: cells.len(),
                    local_hits: cells.iter().map(|c| c.result.locality.local_hits).sum(),
                    remote_misses: cells.iter().map(|c| c.result.locality.remote_misses).sum(),
                    remote_bytes: cells.iter().map(|c| c.result.locality.remote_bytes).sum(),
                    cold_starts: cells
                        .iter()
                        .map(|c| c.result.nodes.iter().map(|n| n.cold_starts).sum::<u64>())
                        .sum(),
                    restores: cells
                        .iter()
                        .map(|c| c.result.nodes.iter().map(|n| n.restores).sum::<u64>())
                        .sum(),
                    spillovers: cells.iter().map(|c| c.result.spillovers()).sum(),
                    queue_delay_us: cells.iter().map(|c| c.result.total_queue_delay_us()).sum(),
                    per_node,
                });
            }
        }
        out
    }

    /// Paper-style rendering: per-arm pooled stats, then the headline
    /// routing comparison.
    pub fn render(&self) -> String {
        let mut table = Table::new(vec![
            "Nodes",
            "Routing",
            "Hit rate",
            "Remote",
            "Cold",
            "Restores",
            "Spillovers",
            "Queue delay",
        ]);
        for agg in self.arm_aggregates() {
            table.row(vec![
                agg.nodes.to_string(),
                agg.routing.label().to_string(),
                format!("{:.3}", agg.hit_rate()),
                format!("{:.1} MB", agg.remote_bytes as f64 / 1e6),
                agg.cold_starts.to_string(),
                agg.restores.to_string(),
                agg.spillovers.to_string(),
                format!("{:.1} ms", agg.queue_delay_us / 1e3),
            ]);
        }
        let mut out = format!(
            "Cluster ablation (request-centric policy, {CONTENTION_GAP_MS} ms gap, \
             capacity {NODE_CAPACITY}/node)\n\n{}\n",
            table.render(TableStyle::Plain)
        );
        for nodes in self.node_counts() {
            if nodes == 1 {
                continue;
            }
            let (wins, total) = self.load_aware_p99_wins(nodes);
            out.push_str(&format!(
                "{nodes} nodes: load-aware beats hash on p99 latency on {wins}/{total} benchmarks\n"
            ));
        }
        out
    }

    /// CSV form: one row per cell, in fixed benchmark × nodes × routing
    /// order (byte-identical across same-seed reruns).
    pub fn to_csv(&self) -> String {
        let mut table = Table::new(vec![
            "workload",
            "nodes",
            "routing",
            "served",
            "spillovers",
            "cold_starts",
            "restores",
            "local_hits",
            "remote_misses",
            "locality_hit_rate",
            "remote_transfer_bytes",
            "queue_delay_us",
            "median_latency_us",
            "p99_latency_us",
        ]);
        for w in self.workloads() {
            for nodes in self.node_counts() {
                for routing in RoutingPolicy::ALL {
                    let Some(cell) = self.cell(&w, nodes, routing) else {
                        continue;
                    };
                    let r = &cell.result;
                    table.row(vec![
                        w.clone(),
                        nodes.to_string(),
                        routing.label().to_string(),
                        r.served().to_string(),
                        r.spillovers().to_string(),
                        r.nodes
                            .iter()
                            .map(|n| n.cold_starts)
                            .sum::<u64>()
                            .to_string(),
                        r.nodes.iter().map(|n| n.restores).sum::<u64>().to_string(),
                        r.locality.local_hits.to_string(),
                        r.locality.remote_misses.to_string(),
                        csv_f64(r.locality_hit_rate()),
                        r.locality.remote_bytes.to_string(),
                        csv_f64(r.total_queue_delay_us()),
                        csv_f64(r.result.median_us()),
                        csv_f64(r.result.percentile_us(99.0)),
                    ]);
                }
            }
        }
        table.to_csv()
    }

    /// Writes `results/cluster_ablation.csv`.
    pub fn save(&self) -> std::io::Result<std::path::PathBuf> {
        write_results_csv("cluster_ablation.csv", &self.to_csv())
    }

    /// Writes `results/BENCH_cluster.json`: per-arm locality hit rates,
    /// remote transfer bytes, per-node cold/hot-start breakdowns and the
    /// headline load-aware win counts, in the shared [`BenchReport`]
    /// schema.
    pub fn save_bench_report(&self) -> std::io::Result<std::path::PathBuf> {
        let mut report = BenchReport::new("cluster")
            .wall_clock(self.wall_clock_s)
            .config("request_gap_ms", CONTENTION_GAP_MS.to_string())
            .config("node_capacity", NODE_CAPACITY.to_string());
        for agg in self.arm_aggregates() {
            let per_node: Vec<String> = agg
                .per_node
                .iter()
                .enumerate()
                .map(|(node, (cold, restores, served))| {
                    JsonObj::new()
                        .uint("node", node as u64)
                        .uint("cold_starts", *cold)
                        .uint("restores", *restores)
                        .uint("served", *served)
                        .render()
                })
                .collect();
            report.arm(
                JsonObj::new()
                    .uint("nodes", u64::from(agg.nodes))
                    .str("routing", agg.routing.label())
                    .uint("benchmarks", agg.cells as u64)
                    .float("locality_hit_rate", agg.hit_rate(), 6)
                    .uint("remote_transfer_bytes", agg.remote_bytes)
                    .uint("cold_starts", agg.cold_starts)
                    .uint("restores", agg.restores)
                    .uint("spillovers", agg.spillovers)
                    .float("queue_delay_us", agg.queue_delay_us, 1)
                    .raw("per_node", format!("[{}]", per_node.join(", "))),
            );
        }
        let multi: Vec<u32> = self.node_counts().into_iter().filter(|&n| n > 1).collect();
        let wins: Vec<String> = multi
            .iter()
            .map(|&nodes| {
                let (wins, total) = self.load_aware_p99_wins(nodes);
                JsonObj::new()
                    .uint("nodes", u64::from(nodes))
                    .uint("wins", wins as u64)
                    .uint("benchmarks", total as u64)
                    .render()
            })
            .collect();
        report.section(
            "load_aware_p99_wins",
            format!("[\n    {}\n  ]", wins.join(",\n    ")),
        );
        report.save("BENCH_cluster.json")
    }
}

/// Formats a float for CSV; NaN renders as the empty field.
fn csv_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        String::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_ablation() -> ClusterAblation {
        let ctx = ExperimentContext {
            invocations: 120,
            ..ExperimentContext::quick()
        };
        run_for(&ctx, &["Hash", "DFS", "MatrixMult"], &[1, 4])
    }

    #[test]
    fn ablation_runs_every_arm_per_cell() {
        let ablation = quick_ablation();
        assert_eq!(ablation.cells.len(), 3 * 2 * 2);
        assert_eq!(ablation.workloads(), vec!["DFS", "MatrixMult", "Hash"]);
        assert_eq!(ablation.node_counts(), vec![1, 4]);
        for cell in &ablation.cells {
            assert_eq!(cell.result.served(), 120);
        }
    }

    #[test]
    fn single_node_arms_are_routing_invariant() {
        // With one node there is nowhere to spill: both routing arms
        // replay the identical run.
        let ablation = quick_ablation();
        for w in ablation.workloads() {
            let hash = ablation.cell(&w, 1, RoutingPolicy::Hash).unwrap();
            let aware = ablation.cell(&w, 1, RoutingPolicy::LoadAware).unwrap();
            assert_eq!(
                hash.result.result.latencies_us, aware.result.result.latencies_us,
                "{w}"
            );
            assert_eq!(hash.result.locality, aware.result.locality);
            assert_eq!(hash.result.locality.remote_misses, 0);
        }
    }

    #[test]
    fn hash_routing_keeps_perfect_locality_but_queues() {
        let ablation = quick_ablation();
        for w in ablation.workloads() {
            let hash = &ablation.cell(&w, 4, RoutingPolicy::Hash).unwrap().result;
            assert_eq!(hash.locality.remote_bytes, 0, "{w}");
            assert_eq!(hash.spillovers(), 0, "{w}");
            assert!(hash.total_queue_delay_us() > 0.0, "{w}");
        }
    }

    #[test]
    fn load_aware_wins_the_tail_and_pays_transfer_bytes() {
        let ablation = quick_ablation();
        let (wins, total) = ablation.load_aware_p99_wins(4);
        assert_eq!(total, 3);
        assert!(wins >= 1, "load-aware won the p99 on {wins}/{total}");
        // The win is bought with cross-node snapshot transfers somewhere.
        let remote: u64 = ablation
            .cells
            .iter()
            .filter(|c| c.routing == RoutingPolicy::LoadAware && c.nodes == 4)
            .map(|c| c.result.locality.remote_bytes)
            .sum();
        assert!(remote > 0, "no remote transfer despite spillover");
        let spill: u64 = ablation
            .cells
            .iter()
            .filter(|c| c.routing == RoutingPolicy::LoadAware && c.nodes == 4)
            .map(|c| c.result.spillovers())
            .sum();
        assert!(spill > 0);
    }

    #[test]
    fn csv_is_deterministic_and_shaped() {
        let ablation = quick_ablation();
        let csv = ablation.to_csv();
        assert_eq!(csv.lines().count(), 1 + 3 * 2 * 2);
        assert!(csv.starts_with("workload,nodes,routing,"));
        let again = quick_ablation();
        assert_eq!(csv, again.to_csv());
    }

    #[test]
    fn bench_report_is_valid_shaped_json() {
        // Hand-rolled JSON: pin the keys the CI schema check greps for.
        let ablation = quick_ablation();
        let aggs = ablation.arm_aggregates();
        assert_eq!(aggs.len(), 4);
        assert_eq!(aggs[0].per_node.len(), 1);
        assert_eq!(aggs[2].per_node.len(), 4);
        for agg in &aggs {
            let served: u64 = agg.per_node.iter().map(|n| n.2).sum();
            assert_eq!(served, 3 * 120, "{}x {}", agg.nodes, agg.routing.label());
        }
    }
}

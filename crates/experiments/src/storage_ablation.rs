//! The tiered-storage ablation: flat blob store vs SSD cache vs
//! compression vs composed-chain prefetch.
//!
//! Sweeps the 13 paper benchmarks × the §5.1 eviction rates under the
//! request-centric policy with delta chains at K=16 (the PR 4 baseline),
//! once per storage arm. Arms are cumulative: flat (storage subsystem
//! off — byte-identical to the baseline), +SSD cache, +compression, and
//! finally composed-chain prefetch under the record-prefetch restore
//! strategy. Cells that differ only in arm share a seed, so every
//! comparison is paired. The claims under test: the eager cache/compress
//! arms never move a client-visible latency (storage pricing is
//! off-critical-path accounting there), and the composed arm cuts both
//! the median restore critical path and total bytes transferred on most
//! benchmarks.

use crate::bench_report::{BenchReport, JsonObj};
use crate::delta_ablation::benchmarks;
use crate::grid::PAPER_RATES;
use crate::render::write_results_csv;
use crate::ExperimentContext;
use pronghorn_checkpoint::DeltaPolicy;
use pronghorn_core::PolicyKind;
use pronghorn_metrics::{Table, TableStyle};
use pronghorn_platform::{
    run_closed_loop, KernelKind, RestoreStrategy, RunConfig, RunResult, StoragePolicy,
};
use pronghorn_store::StorageStats;
use pronghorn_workloads::by_name;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Chain depth shared by every arm: the PR 4 delta baseline.
const DELTA_DEPTH: u32 = 16;

/// One arm of the ablation: a storage policy + restore strategy under a
/// stable label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageArm {
    /// Storage subsystem off — the delta-K16 eager baseline, byte-
    /// identical to a build without the tier.
    Flat,
    /// Local-SSD cache in front of the blob store (eager restores).
    Cache,
    /// SSD cache plus modeled page compression on the network link.
    CacheCompress,
    /// Everything on: cache, compression, and composed-chain prefetch
    /// under the record-prefetch restore strategy.
    Composed,
}

impl StorageArm {
    /// All arms, in sweep order.
    pub const ALL: [StorageArm; 4] = [
        StorageArm::Flat,
        StorageArm::Cache,
        StorageArm::CacheCompress,
        StorageArm::Composed,
    ];

    /// Stable CSV/JSON label.
    pub fn label(&self) -> &'static str {
        match self {
            StorageArm::Flat => "flat",
            StorageArm::Cache => "cache",
            StorageArm::CacheCompress => "cache-compress",
            StorageArm::Composed => "composed",
        }
    }

    /// The [`StoragePolicy`] this arm runs under.
    pub fn policy(&self) -> StoragePolicy {
        match self {
            StorageArm::Flat => StoragePolicy::disabled(),
            StorageArm::Cache => StoragePolicy::disabled().with_cache(),
            StorageArm::CacheCompress => StoragePolicy::disabled().with_cache().with_compression(),
            StorageArm::Composed => StoragePolicy::disabled()
                .with_cache()
                .with_compression()
                .with_composed_prefetch(),
        }
    }

    /// The restore strategy this arm runs under. Composed prefetch needs
    /// the working-set manifests that only record-prefetch restores
    /// record; the other arms keep the baseline's eager restores.
    pub fn restore(&self) -> RestoreStrategy {
        match self {
            StorageArm::Composed => RestoreStrategy::RecordPrefetch,
            _ => RestoreStrategy::Eager,
        }
    }
}

/// One benchmark × rate × arm measurement.
#[derive(Debug, Clone)]
pub struct StorageCell {
    /// Benchmark name.
    pub workload: String,
    /// Eviction rate.
    pub rate: u32,
    /// Storage arm the cell ran under.
    pub arm: StorageArm,
    /// Full run measurements.
    pub result: RunResult,
}

/// A completed storage ablation.
#[derive(Debug, Clone, Default)]
pub struct StorageAblation {
    /// All cells, in completion order (lookups are keyed, so order does
    /// not affect any rendered output).
    pub cells: Vec<StorageCell>,
    /// Real wall-clock time the sweep took, seconds.
    pub wall_clock_s: f64,
}

/// Runs the full ablation: 13 benchmarks × paper rates × all arms.
pub fn run(ctx: &ExperimentContext) -> StorageAblation {
    run_for(ctx, &benchmarks(), &PAPER_RATES)
}

/// Runs the ablation over an explicit benchmark and rate set.
///
/// # Panics
///
/// Panics if a benchmark name is unknown — experiment tables are static
/// and must fail loudly.
pub fn run_for(ctx: &ExperimentContext, benchmarks: &[&str], rates: &[u32]) -> StorageAblation {
    run_for_with_kernel(ctx, benchmarks, rates, KernelKind::default())
}

/// [`run_for`] under an explicit simulation kernel (for cross-kernel
/// invariance tests; kernel choice is a performance knob, never a result
/// knob).
pub fn run_for_with_kernel(
    ctx: &ExperimentContext,
    benchmarks: &[&str],
    rates: &[u32],
    kernel: KernelKind,
) -> StorageAblation {
    for name in benchmarks {
        assert!(by_name(name).is_some(), "unknown benchmark {name}");
    }
    let mut tasks: Vec<(String, u32, StorageArm)> = Vec::new();
    for &bench in benchmarks {
        for &rate in rates {
            for arm in StorageArm::ALL {
                tasks.push((bench.to_string(), rate, arm));
            }
        }
    }
    let next = AtomicUsize::new(0);
    let cells = Mutex::new(Vec::with_capacity(tasks.len()));
    let threads = ctx.effective_threads();
    let started = std::time::Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some((bench, rate, arm)) = tasks.get(i) else {
                    break;
                };
                let workload = by_name(bench).expect("validated above");
                // Seed shared across arms of the same (bench, rate): the
                // paired-comparison trick of the policy grid.
                let seed = ctx.cell_seed(&["storage", bench, &rate.to_string()]);
                let cfg = RunConfig::paper(PolicyKind::RequestCentric, *rate, seed)
                    .with_invocations(ctx.invocations)
                    .with_delta(DeltaPolicy::Enabled {
                        max_depth: DELTA_DEPTH,
                    })
                    .with_restore(arm.restore())
                    .with_storage(arm.policy())
                    .with_kernel(kernel);
                let result = run_closed_loop(&workload, &cfg);
                cells.lock().expect("no poisoned lock").push(StorageCell {
                    workload: bench.clone(),
                    rate: *rate,
                    arm: *arm,
                    result,
                });
            });
        }
    });
    StorageAblation {
        cells: cells.into_inner().expect("no poisoned lock"),
        wall_clock_s: started.elapsed().as_secs_f64(),
    }
}

/// Pooled per-arm storage accounting.
#[derive(Debug, Clone)]
pub struct StorageArmAggregate {
    /// The arm.
    pub arm: StorageArm,
    /// Total bytes the restore paths transferred (nominal accounting).
    pub restore_bytes: u64,
    /// Mean of the per-cell median restore critical-path times, µs.
    pub mean_median_restore_us: f64,
    /// Pooled storage-tier counters.
    pub storage: StorageStats,
}

impl StorageAblation {
    /// Finds a cell.
    pub fn cell(&self, workload: &str, rate: u32, arm: StorageArm) -> Option<&StorageCell> {
        self.cells
            .iter()
            .find(|c| c.workload == workload && c.rate == rate && c.arm == arm)
    }

    /// Distinct workloads present, in first-seen deterministic order.
    pub fn workloads(&self) -> Vec<String> {
        let mut seen = Vec::new();
        for bench in benchmarks() {
            if self.cells.iter().any(|c| c.workload == bench) && !seen.contains(&bench.to_string())
            {
                seen.push(bench.to_string());
            }
        }
        // Any non-paper benchmarks (tests) follow, in cell order.
        for cell in &self.cells {
            if !seen.contains(&cell.workload) {
                seen.push(cell.workload.clone());
            }
        }
        seen
    }

    /// Distinct rates present, ascending.
    pub fn rates(&self) -> Vec<u32> {
        let mut rates: Vec<u32> = self.cells.iter().map(|c| c.rate).collect();
        rates.sort_unstable();
        rates.dedup();
        rates
    }

    /// Total restore bytes a benchmark transferred under `arm`, pooled
    /// across every rate present.
    pub fn restore_bytes(&self, workload: &str, arm: StorageArm) -> u64 {
        self.cells
            .iter()
            .filter(|c| c.workload == workload && c.arm == arm)
            .map(|c| c.result.restore_bytes())
            .sum()
    }

    /// Mean of the per-rate median restore critical-path times for one
    /// benchmark under `arm`; NaN when the arm restored nothing.
    pub fn mean_median_restore_us(&self, workload: &str, arm: StorageArm) -> f64 {
        let medians: Vec<f64> = self
            .cells
            .iter()
            .filter(|c| c.workload == workload && c.arm == arm)
            .map(|c| c.result.median_restore_us())
            .filter(|m| m.is_finite())
            .collect();
        if medians.is_empty() {
            return f64::NAN;
        }
        medians.iter().sum::<f64>() / medians.len() as f64
    }

    /// Whether `arm` beats the flat baseline on BOTH the median restore
    /// critical path AND total restore bytes for one benchmark.
    pub fn restore_win(&self, workload: &str, arm: StorageArm) -> bool {
        let flat_us = self.mean_median_restore_us(workload, StorageArm::Flat);
        let arm_us = self.mean_median_restore_us(workload, arm);
        let flat_bytes = self.restore_bytes(workload, StorageArm::Flat);
        let arm_bytes = self.restore_bytes(workload, arm);
        arm_us.is_finite() && flat_us.is_finite() && arm_us < flat_us && arm_bytes < flat_bytes
    }

    /// Benchmarks where `arm` wins on both axes, as `(wins, total)`.
    pub fn restore_wins(&self, arm: StorageArm) -> (usize, usize) {
        let workloads = self.workloads();
        let wins = workloads
            .iter()
            .filter(|w| self.restore_win(w, arm))
            .count();
        (wins, workloads.len())
    }

    /// Cells where an eager storage arm's latency stream differs from the
    /// paired flat cell's. Storage pricing on the eager path is pure
    /// accounting, so this must be zero — anything else means the tier
    /// leaked onto the critical path.
    pub fn latency_divergences(&self, arm: StorageArm) -> usize {
        self.cells
            .iter()
            .filter(|c| c.arm == arm)
            .filter(|c| {
                self.cell(&c.workload, c.rate, StorageArm::Flat)
                    .is_some_and(|flat| c.result.latencies_us != flat.result.latencies_us)
            })
            .count()
    }

    /// Pooled per-arm aggregates, in [`StorageArm::ALL`] order.
    pub fn arm_aggregates(&self) -> Vec<StorageArmAggregate> {
        StorageArm::ALL
            .iter()
            .map(|&arm| {
                let cells: Vec<&StorageCell> = self.cells.iter().filter(|c| c.arm == arm).collect();
                let mut storage = StorageStats::default();
                for c in &cells {
                    storage.merge(&c.result.storage);
                }
                let medians: Vec<f64> = cells
                    .iter()
                    .map(|c| c.result.median_restore_us())
                    .filter(|m| m.is_finite())
                    .collect();
                StorageArmAggregate {
                    arm,
                    restore_bytes: cells.iter().map(|c| c.result.restore_bytes()).sum(),
                    mean_median_restore_us: if medians.is_empty() {
                        f64::NAN
                    } else {
                        medians.iter().sum::<f64>() / medians.len() as f64
                    },
                    storage,
                }
            })
            .collect()
    }

    /// Paper-style rendering: per-arm pooled stats, then the headline
    /// win counts.
    pub fn render(&self) -> String {
        let mut table = Table::new(vec![
            "Arm",
            "Restore bytes",
            "Median restore",
            "Cache hits",
            "Hit bytes",
            "Wire down",
            "Composed prefetches",
        ]);
        for agg in self.arm_aggregates() {
            table.row(vec![
                agg.arm.label().to_string(),
                format!("{:.1} MB", agg.restore_bytes as f64 / 1e6),
                format!("{:.1} ms", agg.mean_median_restore_us / 1e3),
                agg.storage.cache_hits.to_string(),
                format!("{:.1} MB", agg.storage.cache_hit_bytes as f64 / 1e6),
                format!("{:.1} MB", agg.storage.wire_bytes_downloaded as f64 / 1e6),
                agg.storage.composed_prefetches.to_string(),
            ]);
        }
        let mut out = format!(
            "Tiered-storage ablation (request-centric policy, delta K={DELTA_DEPTH})\n\n{}\n",
            table.render(TableStyle::Plain)
        );
        let (wins, total) = self.restore_wins(StorageArm::Composed);
        out.push_str(&format!(
            "composed: cuts median restore AND restore bytes vs flat on {wins}/{total} \
             benchmarks; eager-arm latency divergences: cache={}, cache-compress={}\n",
            self.latency_divergences(StorageArm::Cache),
            self.latency_divergences(StorageArm::CacheCompress),
        ));
        out
    }

    /// CSV form: one row per cell, in fixed benchmark × rate × arm order
    /// (byte-identical across same-seed reruns).
    pub fn to_csv(&self) -> String {
        let mut table = Table::new(vec![
            "workload",
            "rate",
            "arm",
            "median_restore_us",
            "restore_bytes",
            "cache_hits",
            "cache_misses",
            "cache_hit_bytes",
            "cache_evictions",
            "wire_bytes_downloaded",
            "wire_bytes_uploaded",
            "composed_prefetches",
            "composed_bytes_saved",
            "median_latency_us",
        ]);
        for w in self.workloads() {
            for rate in self.rates() {
                for arm in StorageArm::ALL {
                    let Some(cell) = self.cell(&w, rate, arm) else {
                        continue;
                    };
                    let s = &cell.result.storage;
                    table.row(vec![
                        w.clone(),
                        rate.to_string(),
                        arm.label().to_string(),
                        csv_f64(cell.result.median_restore_us()),
                        cell.result.restore_bytes().to_string(),
                        s.cache_hits.to_string(),
                        s.cache_misses.to_string(),
                        s.cache_hit_bytes.to_string(),
                        s.cache_evictions.to_string(),
                        s.wire_bytes_downloaded.to_string(),
                        s.wire_bytes_uploaded.to_string(),
                        s.composed_prefetches.to_string(),
                        s.composed_bytes_saved.to_string(),
                        csv_f64(cell.result.median_us()),
                    ]);
                }
            }
        }
        table.to_csv()
    }

    /// Writes `results/storage_ablation.csv`.
    pub fn save(&self) -> std::io::Result<std::path::PathBuf> {
        write_results_csv("storage_ablation.csv", &self.to_csv())
    }

    /// Writes `results/BENCH_storage.json`: per-arm pooled storage
    /// counters and the headline both-axes win count, in the shared
    /// [`BenchReport`] schema.
    pub fn save_bench_report(&self) -> std::io::Result<std::path::PathBuf> {
        let mut report = BenchReport::new("storage")
            .wall_clock(self.wall_clock_s)
            .config("delta_depth", DELTA_DEPTH.to_string());
        for agg in self.arm_aggregates() {
            let (wins, total) = self.restore_wins(agg.arm);
            report.arm(
                JsonObj::new()
                    .str("arm", agg.arm.label())
                    .uint("restore_bytes", agg.restore_bytes)
                    .float("mean_median_restore_us", agg.mean_median_restore_us, 3)
                    .uint("cache_hits", agg.storage.cache_hits)
                    .uint("cache_misses", agg.storage.cache_misses)
                    .uint("cache_hit_bytes", agg.storage.cache_hit_bytes)
                    .uint("cache_evictions", agg.storage.cache_evictions)
                    .uint("wire_bytes_downloaded", agg.storage.wire_bytes_downloaded)
                    .uint("wire_bytes_uploaded", agg.storage.wire_bytes_uploaded)
                    .uint("composed_prefetches", agg.storage.composed_prefetches)
                    .uint("composed_bytes_saved", agg.storage.composed_bytes_saved)
                    .uint("restore_wins", wins as u64)
                    .uint("benchmarks", total as u64)
                    .uint(
                        "latency_divergences",
                        self.latency_divergences(agg.arm) as u64,
                    ),
            );
        }
        report.save("BENCH_storage.json")
    }
}

/// Formats a float for CSV; NaN renders as the empty field.
fn csv_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        String::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_ablation() -> StorageAblation {
        let ctx = ExperimentContext {
            invocations: 120,
            ..ExperimentContext::quick()
        };
        run_for(&ctx, &["DFS", "Compression", "Hash"], &[1, 4])
    }

    #[test]
    fn ablation_runs_every_arm_per_cell() {
        let ablation = quick_ablation();
        assert_eq!(ablation.cells.len(), 3 * 2 * 4);
        assert_eq!(ablation.workloads(), vec!["DFS", "Compression", "Hash"]);
        assert_eq!(ablation.rates(), vec![1, 4]);
        // The flat arm never constructs a tier: its counters stay zero.
        for w in ablation.workloads() {
            for rate in ablation.rates() {
                let flat = &ablation.cell(&w, rate, StorageArm::Flat).unwrap().result;
                assert_eq!(flat.storage, StorageStats::default(), "{w} rate {rate}");
            }
        }
        // The cache arms actually exercise the tier.
        let cache = &ablation.cell("DFS", 1, StorageArm::Cache).unwrap().result;
        assert!(cache.storage.cache_hits > 0, "cache arm never hit SSD");
        let compress = &ablation
            .cell("DFS", 1, StorageArm::CacheCompress)
            .unwrap()
            .result;
        assert!(
            compress.storage.wire_bytes_downloaded < compress.overheads.nominal_bytes_downloaded
                || compress.storage.wire_bytes_downloaded == 0,
            "compression never shrank the wire"
        );
    }

    #[test]
    fn eager_storage_arms_never_shift_latencies() {
        let ablation = quick_ablation();
        for arm in [StorageArm::Cache, StorageArm::CacheCompress] {
            assert_eq!(
                ablation.latency_divergences(arm),
                0,
                "{} leaked onto the critical path",
                arm.label()
            );
        }
        // Nominal byte accounting is storage-invariant on the eager arms:
        // compression changes wire bytes and transfer time only.
        for w in ablation.workloads() {
            for rate in ablation.rates() {
                let flat = &ablation.cell(&w, rate, StorageArm::Flat).unwrap().result;
                for arm in [StorageArm::Cache, StorageArm::CacheCompress] {
                    let cell = &ablation.cell(&w, rate, arm).unwrap().result;
                    assert_eq!(
                        cell.overheads.nominal_bytes_downloaded,
                        flat.overheads.nominal_bytes_downloaded,
                        "{w} rate {rate} {}",
                        arm.label()
                    );
                    assert_eq!(cell.restore_bytes(), flat.restore_bytes());
                }
            }
        }
    }

    #[test]
    fn composed_arm_cuts_restore_time_and_bytes() {
        let ablation = quick_ablation();
        for w in ablation.workloads() {
            assert!(
                ablation.restore_win(&w, StorageArm::Composed),
                "{w}: composed arm should beat flat on both axes \
                 (restore {:.0}us vs {:.0}us, bytes {} vs {})",
                ablation.mean_median_restore_us(&w, StorageArm::Composed),
                ablation.mean_median_restore_us(&w, StorageArm::Flat),
                ablation.restore_bytes(&w, StorageArm::Composed),
                ablation.restore_bytes(&w, StorageArm::Flat),
            );
        }
    }

    #[test]
    fn csv_is_deterministic_and_shaped() {
        let ablation = quick_ablation();
        let csv = ablation.to_csv();
        assert_eq!(csv.lines().count(), 1 + 3 * 2 * 4);
        assert!(csv.starts_with("workload,rate,arm,"));
        // Same-seed rerun produces byte-identical CSV.
        let again = quick_ablation();
        assert_eq!(csv, again.to_csv());
    }

    #[test]
    fn kernel_choice_never_changes_results() {
        let ctx = ExperimentContext {
            invocations: 100,
            ..ExperimentContext::quick()
        };
        let heap = run_for_with_kernel(&ctx, &["DFS"], &[1], KernelKind::BinaryHeap);
        let wheel = run_for_with_kernel(&ctx, &["DFS"], &[1], KernelKind::TimerWheel);
        assert_eq!(heap.to_csv(), wheel.to_csv());
        for arm in StorageArm::ALL {
            let h = &heap.cell("DFS", 1, arm).unwrap().result;
            let w = &wheel.cell("DFS", 1, arm).unwrap().result;
            assert_eq!(h.latencies_us, w.latencies_us, "{}", arm.label());
            assert_eq!(h.storage, w.storage, "{}", arm.label());
        }
    }
}

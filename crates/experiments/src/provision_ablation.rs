//! The predictive-provisioning ablation: reactive eviction vs
//! forecast-driven pre-restore.
//!
//! Sweeps the 13 paper benchmarks over a sparse, bursty production trace
//! under the request-centric policy with record-&-prefetch restores, once
//! per provisioning arm: reactive (pre-restore disabled — today's
//! behavior), and the three [`ForecasterKind`] predictive arms
//! (sliding-window, EWMA, MPC). Cells that differ only in arm share a
//! seed, so the arrival stream — and hence the comparison — is paired.
//!
//! The trace is deliberately sparse (`rate_scale` pulls the cell's mean
//! rate down to [`TARGET_RATE_PER_SEC`]) and bursty
//! ([`BURST_ON_FRAC`]/[`BURST_PERIOD_S`]): inter-arrival gaps straddle
//! the idle timeout, so the reactive arm keeps evicting workers and
//! paying the restore — plus, on IO-bound benchmarks, the stale-IO
//! penalty — on the critical path of the next request. The predictive
//! arms re-warm the worker off-path when the forecast says the next
//! arrival lands inside the horizon; MPC additionally declines plans
//! whose keep-alive memory cost outweighs the predicted latency win, so
//! it trades a few p99 wins for far fewer wasted byte-seconds on heavy
//! images.
//!
//! The claim under test (ROADMAP item 4): on bursty production traffic,
//! at least one predictive arm beats reactive request-centric on p99
//! latency or on critical-path provisioning fraction for most
//! benchmarks, including the IO-bound Uploader regression pinned by the
//! closed-loop tests.

use crate::bench_report::{BenchReport, JsonObj};
use crate::fig45::{FIG4_BENCHMARKS, FIG5_BENCHMARKS};
use crate::render::write_results_csv;
use crate::ExperimentContext;
use pronghorn_core::PolicyKind;
use pronghorn_metrics::{Table, TableStyle};
use pronghorn_platform::{
    run_production, ForecasterKind, KernelKind, ProductionStats, ProvisionPolicy, RestoreStrategy,
    RunConfig,
};
use pronghorn_sim::{RngFactory, SimDuration};
use pronghorn_traces::TraceSpec;
use pronghorn_workloads::{by_name, Workload};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Mean arrival rate the trace is scaled to, requests/second. One
/// request every 90 s on average puts on-phase gaps (~40 s) above the
/// idle timeout and off-phase gaps (~160 s) beyond the MPC threshold for
/// mid-sized images — the regime where the arms actually differ.
pub const TARGET_RATE_PER_SEC: f64 = 1.0 / 90.0;

/// Fraction of each burst period spent in the on phase.
pub const BURST_ON_FRAC: f64 = 0.25;

/// Burst period, seconds.
pub const BURST_PERIOD_S: u64 = 600;

/// Idle keep-alive of the sweep, seconds: short enough that off-phase
/// (and tail on-phase) gaps evict the worker.
pub const IDLE_TIMEOUT_S: u64 = 30;

/// Eviction rate of the sweep (shapes the checkpoint policy's β).
pub const ABLATION_RATE: u32 = 20;

/// Simulated hours per cell in a full run.
pub const FULL_HOURS: f64 = 6.0;

/// Simulated hours per cell in a `--quick` run.
pub const QUICK_HOURS: f64 = 1.5;

/// The four provisioning arms, reactive first.
pub fn arms() -> [ProvisionPolicy; 4] {
    [
        ProvisionPolicy::Disabled,
        ProvisionPolicy::predictive(ForecasterKind::SlidingWindow),
        ProvisionPolicy::predictive(ForecasterKind::Ewma),
        ProvisionPolicy::predictive(ForecasterKind::Mpc),
    ]
}

/// One benchmark × arm measurement.
#[derive(Debug, Clone)]
pub struct ProvisionCell {
    /// Benchmark name.
    pub workload: String,
    /// The provisioning arm the cell ran under.
    pub arm: ProvisionPolicy,
    /// Whether the benchmark is IO-bound (where the stale-IO credit of a
    /// pre-warmed worker matters most).
    pub io_bound: bool,
    /// Full production-run measurements.
    pub stats: ProductionStats,
}

impl ProvisionCell {
    /// Fraction of invocations that paid provisioning (cold boot or
    /// restore) on the critical path. Pre-restores are provisioned
    /// off-path, so issued pre-restores are subtracted out.
    pub fn demand_fraction(&self) -> f64 {
        if self.stats.invocations == 0 {
            return f64::NAN;
        }
        let demand = (self.stats.cold_starts + self.stats.restores)
            .saturating_sub(self.stats.provisioning.pre_restores_issued);
        demand as f64 / self.stats.invocations as f64
    }
}

/// A completed provisioning ablation.
#[derive(Debug, Clone, Default)]
pub struct ProvisionAblation {
    /// All cells, in completion order (lookups are keyed).
    pub cells: Vec<ProvisionCell>,
    /// Simulated hours per cell.
    pub hours: f64,
    /// Real wall-clock time the sweep took, seconds.
    pub wall_clock_s: f64,
}

/// The paper's 13 benchmarks, in figure order.
pub fn benchmarks() -> Vec<&'static str> {
    FIG4_BENCHMARKS
        .iter()
        .chain(FIG5_BENCHMARKS.iter())
        .copied()
        .collect()
}

/// Runs the full ablation: 13 benchmarks × the four provisioning arms.
pub fn run(ctx: &ExperimentContext, quick: bool) -> ProvisionAblation {
    let hours = if quick { QUICK_HOURS } else { FULL_HOURS };
    run_for(ctx, &benchmarks(), hours)
}

/// The paired, scaled, bursty trace spec every cell replays.
fn trace_spec(hours: f64) -> pronghorn_traces::ProductionTraceSpec {
    let base = TraceSpec::production(hours, 0.9);
    let scale = TARGET_RATE_PER_SEC / base.rate_per_sec();
    base.with_rate_scale(scale)
        .with_burst(BURST_ON_FRAC, SimDuration::from_secs(BURST_PERIOD_S))
}

/// Runs the ablation over an explicit benchmark set.
///
/// # Panics
///
/// Panics if a benchmark name is unknown — experiment tables are static
/// and must fail loudly.
pub fn run_for(ctx: &ExperimentContext, benchmarks: &[&str], hours: f64) -> ProvisionAblation {
    for name in benchmarks {
        assert!(by_name(name).is_some(), "unknown benchmark {name}");
    }
    let mut tasks: Vec<(String, ProvisionPolicy)> = Vec::new();
    for &bench in benchmarks {
        for arm in arms() {
            tasks.push((bench.to_string(), arm));
        }
    }
    let next = AtomicUsize::new(0);
    let cells = Mutex::new(Vec::with_capacity(tasks.len()));
    let threads = ctx.effective_threads();
    let started = std::time::Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some((bench, arm)) = tasks.get(i) else {
                    break;
                };
                let workload = by_name(bench).expect("validated above");
                // Seed shared across arms of the same benchmark: the
                // paired-comparison trick of every other grid here.
                let seed = ctx.cell_seed(&["provision", bench]);
                let cfg = RunConfig::paper(PolicyKind::RequestCentric, ABLATION_RATE, seed)
                    .with_restore(RestoreStrategy::RecordPrefetch)
                    .with_kernel(KernelKind::TimerWheel)
                    .with_idle_timeout(SimDuration::from_secs(IDLE_TIMEOUT_S))
                    .with_provision(*arm);
                let stream = trace_spec(hours).stream(RngFactory::new(seed).stream("provision"));
                let stats = run_production(&workload, &cfg, stream);
                cells.lock().expect("no poisoned lock").push(ProvisionCell {
                    workload: bench.clone(),
                    arm: *arm,
                    io_bound: workload.io_bound(),
                    stats,
                });
            });
        }
    });
    ProvisionAblation {
        cells: cells.into_inner().expect("no poisoned lock"),
        hours,
        wall_clock_s: started.elapsed().as_secs_f64(),
    }
}

impl ProvisionAblation {
    /// Finds a cell.
    pub fn cell(&self, workload: &str, arm: ProvisionPolicy) -> Option<&ProvisionCell> {
        self.cells
            .iter()
            .find(|c| c.workload == workload && c.arm == arm)
    }

    /// Distinct workloads present, in paper order then first-seen order.
    pub fn workloads(&self) -> Vec<String> {
        let mut seen = Vec::new();
        for bench in benchmarks() {
            if self.cells.iter().any(|c| c.workload == bench) && !seen.contains(&bench.to_string())
            {
                seen.push(bench.to_string());
            }
        }
        for cell in &self.cells {
            if !seen.contains(&cell.workload) {
                seen.push(cell.workload.clone());
            }
        }
        seen
    }

    /// Whether `arm` beats the reactive baseline on `workload`: strictly
    /// lower p99 latency, or a strictly lower critical-path provisioning
    /// fraction. `None` when either cell is missing.
    pub fn beats_reactive(&self, workload: &str, arm: ProvisionPolicy) -> Option<bool> {
        let reactive = self.cell(workload, ProvisionPolicy::Disabled)?;
        let cell = self.cell(workload, arm)?;
        let p99_win = cell.stats.p99_latency_us < reactive.stats.p99_latency_us;
        let demand_win = cell.demand_fraction() < reactive.demand_fraction();
        Some(p99_win || demand_win)
    }

    /// Benchmarks where `arm` beats reactive, as `(wins, total)`.
    pub fn wins(&self, arm: ProvisionPolicy) -> (usize, usize) {
        let mut wins = 0;
        let mut total = 0;
        for w in self.workloads() {
            if let Some(win) = self.beats_reactive(&w, arm) {
                total += 1;
                wins += usize::from(win);
            }
        }
        (wins, total)
    }

    /// Benchmarks where at least one predictive arm beats reactive, as
    /// `(wins, total)` — the headline acceptance number.
    pub fn best_arm_wins(&self) -> (usize, usize) {
        let mut wins = 0;
        let mut total = 0;
        for w in self.workloads() {
            let any: Vec<bool> = arms()
                .into_iter()
                .filter(|a| a.enabled())
                .filter_map(|a| self.beats_reactive(&w, a))
                .collect();
            if !any.is_empty() {
                total += 1;
                wins += usize::from(any.iter().any(|&b| b));
            }
        }
        (wins, total)
    }

    /// Pooled provisioning counters for `arm` across all benchmarks:
    /// `(issued, used, wasted, keepalive_byte_s)`.
    pub fn pooled_provisioning(&self, arm: ProvisionPolicy) -> (u64, u64, u64, f64) {
        let mut issued = 0;
        let mut used = 0;
        let mut wasted = 0;
        let mut byte_s = 0.0;
        for cell in self.cells.iter().filter(|c| c.arm == arm) {
            let p = &cell.stats.provisioning;
            issued += p.pre_restores_issued;
            used += p.pre_restores_used;
            wasted += p.pre_restores_wasted;
            byte_s += p.keepalive_byte_s;
        }
        (issued, used, wasted, byte_s)
    }

    /// Paper-style rendering: per-arm win counts and pooled pre-restore
    /// accounting, then the headline best-arm count.
    pub fn render(&self) -> String {
        let mut table = Table::new(vec![
            "Arm",
            "p99-or-demand wins",
            "Pre-restores (used/issued)",
            "Wasted",
            "Keep-alive MB·s",
        ]);
        for arm in arms() {
            let (issued, used, wasted, byte_s) = self.pooled_provisioning(arm);
            let (wins, total) = self.wins(arm);
            table.row(vec![
                arm.label().to_string(),
                if arm.enabled() {
                    format!("{wins}/{total}")
                } else {
                    "baseline".to_string()
                },
                format!("{used}/{issued}"),
                wasted.to_string(),
                format!("{:.1}", byte_s / 1e6),
            ]);
        }
        let (best, total) = self.best_arm_wins();
        let uploader = ForecasterKind::ALL
            .iter()
            .filter_map(|&k| self.beats_reactive("Uploader", ProvisionPolicy::predictive(k)))
            .any(|b| b);
        format!(
            "Predictive-provisioning ablation ({}h sparse bursty trace, idle timeout {IDLE_TIMEOUT_S}s)\n\n{}\n\
             best predictive arm beats reactive on {best}/{total} benchmarks; \
             Uploader win: {uploader}\n",
            self.hours,
            table.render(TableStyle::Plain),
        )
    }

    /// CSV form: one row per cell, in fixed benchmark × arm order
    /// (byte-identical across same-seed reruns).
    pub fn to_csv(&self) -> String {
        let mut table = Table::new(vec![
            "workload",
            "arm",
            "invocations",
            "p50_us",
            "p99_us",
            "max_us",
            "cold_starts",
            "restores",
            "demand_fraction",
            "pre_restores_issued",
            "pre_restores_used",
            "pre_restores_wasted",
            "keepalive_byte_s",
            "beats_reactive",
        ]);
        for w in self.workloads() {
            for arm in arms() {
                let Some(cell) = self.cell(&w, arm) else {
                    continue;
                };
                let p = &cell.stats.provisioning;
                table.row(vec![
                    w.clone(),
                    arm.label().to_string(),
                    cell.stats.invocations.to_string(),
                    csv_f64(cell.stats.p50_latency_us),
                    csv_f64(cell.stats.p99_latency_us),
                    csv_f64(cell.stats.max_latency_us),
                    cell.stats.cold_starts.to_string(),
                    cell.stats.restores.to_string(),
                    csv_f64(cell.demand_fraction()),
                    p.pre_restores_issued.to_string(),
                    p.pre_restores_used.to_string(),
                    p.pre_restores_wasted.to_string(),
                    csv_f64(p.keepalive_byte_s),
                    if arm.enabled() {
                        match self.beats_reactive(&w, arm) {
                            Some(true) => "win".to_string(),
                            Some(false) => "loss".to_string(),
                            None => String::new(),
                        }
                    } else {
                        "baseline".to_string()
                    },
                ]);
            }
        }
        table.to_csv()
    }

    /// Writes `results/provision_ablation.csv`.
    pub fn save(&self) -> std::io::Result<std::path::PathBuf> {
        write_results_csv("provision_ablation.csv", &self.to_csv())
    }

    /// Writes `results/BENCH_provision.json` in the shared
    /// [`BenchReport`] schema: one arm per provisioning policy with win
    /// counts and pooled pre-restore accounting (including keep-alive
    /// byte-seconds), plus the headline best-arm section.
    pub fn save_bench_report(&self) -> std::io::Result<std::path::PathBuf> {
        let mut report = BenchReport::new("provision")
            .wall_clock(self.wall_clock_s)
            .config("hours", format!("{:.3}", self.hours))
            .config("target_rate_per_sec", format!("{TARGET_RATE_PER_SEC:.6}"))
            .config("burst_on_frac", format!("{BURST_ON_FRAC}"))
            .config("burst_period_s", BURST_PERIOD_S.to_string())
            .config("idle_timeout_s", IDLE_TIMEOUT_S.to_string())
            .config("eviction_rate", ABLATION_RATE.to_string());
        for arm in arms() {
            let (issued, used, wasted, byte_s) = self.pooled_provisioning(arm);
            let (wins, total) = self.wins(arm);
            let mut obj = JsonObj::new()
                .str("arm", arm.label())
                .uint("benchmarks", total as u64)
                .uint("pre_restores_issued", issued)
                .uint("pre_restores_used", used)
                .uint("pre_restores_wasted", wasted)
                .float("keepalive_byte_s", byte_s, 3);
            if arm.enabled() {
                obj = obj.uint("wins", wins as u64);
            }
            report.arm(obj);
        }
        let (best, total) = self.best_arm_wins();
        report.section(
            "best_arm",
            JsonObj::new()
                .uint("wins", best as u64)
                .uint("benchmarks", total as u64)
                .render(),
        );
        report.save("BENCH_provision.json")
    }
}

/// Formats a float for CSV; NaN renders as the empty field.
fn csv_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        String::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_ablation(benches: &[&str]) -> ProvisionAblation {
        run_for(&ExperimentContext::quick(), benches, QUICK_HOURS)
    }

    #[test]
    fn predictive_beats_reactive_on_uploader_and_friends() {
        let ablation = quick_ablation(&["Uploader", "DFS", "Hash"]);
        assert_eq!(ablation.cells.len(), 3 * 4);
        // The headline claim holds on the quick subset, and in
        // particular on the IO-bound Uploader — the benchmark the
        // request-centric policy regresses without pre-warming.
        let (wins, total) = ablation.best_arm_wins();
        assert_eq!(total, 3);
        assert_eq!(wins, 3, "{}", ablation.render());
        let uploader_win = ForecasterKind::ALL
            .iter()
            .filter_map(|&k| ablation.beats_reactive("Uploader", ProvisionPolicy::predictive(k)))
            .any(|b| b);
        assert!(uploader_win, "{}", ablation.render());
    }

    #[test]
    fn predictive_arms_actually_pre_restore() {
        let ablation = quick_ablation(&["Uploader"]);
        for kind in ForecasterKind::ALL {
            let arm = ProvisionPolicy::predictive(kind);
            let (issued, used, wasted, _) = ablation.pooled_provisioning(arm);
            assert_eq!(issued, used + wasted, "{kind:?} leaks pre-restores");
        }
        // The eager arms must fire on this trace; reactive never does.
        let (issued, _, _, _) =
            ablation.pooled_provisioning(ProvisionPolicy::predictive(ForecasterKind::Ewma));
        assert!(issued > 0);
        let (reactive, _, _, _) = ablation.pooled_provisioning(ProvisionPolicy::Disabled);
        assert_eq!(reactive, 0);
    }

    #[test]
    fn csv_is_deterministic_and_flags_wins() {
        let ablation = quick_ablation(&["Uploader", "DFS"]);
        let csv = ablation.to_csv();
        assert_eq!(csv.lines().count(), 1 + 2 * 4);
        assert!(csv.starts_with("workload,arm,"));
        assert!(csv.contains(",baseline"));
        assert!(csv.contains(",win"));
        let again = quick_ablation(&["Uploader", "DFS"]);
        assert_eq!(csv, again.to_csv());
    }
}

//! Figure 1: JIT warm-up curves and the premature-vs-ideal snapshot gap.
//!
//! The paper runs Dynamic HTML generation for ~2 500 sequential requests
//! on PyPy (1a) and on the OpenJDK JVM (1b), marking where existing
//! solutions snapshot (right after request 1) versus where Pronghorn aims
//! (the converged region), and reporting the latency reduction between
//! them: **33.33% on PyPy, 75.60% on the JVM**.

use crate::render::{ascii_series, write_results_csv};
use crate::ExperimentContext;
use pronghorn_jit::Runtime;
use pronghorn_metrics::{convergence_request, ConvergenceCriteria, Table};
use pronghorn_sim::RngFactory;
use pronghorn_workloads::{by_name, InputVariance, Workload};

/// One warm-up curve.
#[derive(Debug, Clone)]
pub struct WarmupCurve {
    /// Benchmark driving the runtime.
    pub workload: String,
    /// Runtime label (`"pypy"` / `"jvm"`).
    pub runtime: String,
    /// Execution latency per request number, µs.
    pub latencies_us: Vec<f64>,
    /// Median latency right after request 1 — where existing solutions
    /// snapshot.
    pub premature_us: f64,
    /// Median latency of the converged tail — where Pronghorn aims.
    pub converged_us: f64,
    /// Latency reduction between the two, percent.
    pub reduction_pct: f64,
    /// Request number at which the curve converged (window-20 criterion).
    pub convergence_request: Option<usize>,
}

/// Figure 1's two panels.
#[derive(Debug, Clone)]
pub struct Fig1Result {
    /// Panel (a): DynamicHTML on PyPy; panel (b): HTMLRendering on the JVM.
    pub curves: Vec<WarmupCurve>,
}

fn window_median(values: &[f64]) -> f64 {
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    v[v.len() / 2]
}

/// Runs one warm-up curve: a single long-lived worker, sequential requests.
pub fn warmup_curve(workload: &dyn Workload, requests: usize, seed: u64) -> WarmupCurve {
    let factory = RngFactory::new(seed);
    let mut boot_rng = factory.stream("boot");
    let (mut runtime, _) = Runtime::cold_start(
        workload.runtime_profile(),
        workload.method_profiles(),
        &mut boot_rng,
    );
    let mut exec_rng = factory.stream("exec");
    let mut latencies = Vec::with_capacity(requests);
    for i in 0..requests {
        let mut input_rng = factory.stream_indexed("input", i as u64);
        // Figure 1 plots the intrinsic warm-up: no input-size noise.
        let request = workload.generate(&mut input_rng, InputVariance::none());
        latencies.push(runtime.execute(&request, &mut exec_rng).total_us());
    }
    // "Existing solutions" snapshot right after request 1: the latency a
    // worker restored from that snapshot serves is the immediately-post-
    // request-1 level (median of requests 2..7 — after the lazy-init spike
    // but before the first background compiles land).
    let premature_us = window_median(&latencies[1..7.min(latencies.len())]);
    let tail_start = latencies.len().saturating_sub(50);
    let converged_us = window_median(&latencies[tail_start..]);
    let reduction_pct = (premature_us - converged_us) / premature_us * 100.0;
    WarmupCurve {
        workload: workload.name().to_string(),
        runtime: workload.kind().label().to_string(),
        // Reference the final value over the last 100 requests so a
        // deoptimization landing in the very tail does not skew the
        // convergence point.
        convergence_request: convergence_request(
            &latencies,
            ConvergenceCriteria::default().with_reference_window(100),
        ),
        latencies_us: latencies,
        premature_us,
        converged_us,
        reduction_pct,
    }
}

/// Runs both Figure 1 panels.
pub fn run(ctx: &ExperimentContext) -> Fig1Result {
    let pypy = by_name("DynamicHTML").expect("table benchmark");
    let jvm = by_name("HTMLRendering").expect("table benchmark");
    Fig1Result {
        curves: vec![
            warmup_curve(&pypy, 2_500, ctx.cell_seed(&["fig1", "pypy"])),
            warmup_curve(&jvm, 2_500, ctx.cell_seed(&["fig1", "jvm"])),
        ],
    }
}

impl Fig1Result {
    /// Paper-style text rendering with ASCII warm-up plots.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "Figure 1: warm-up latency vs request number (premature = snapshot \
             after request 1; ideal = converged tail)\n\n",
        );
        for curve in &self.curves {
            out.push_str(&format!(
                "({}) {} on {}: premature {:.0}µs -> converged {:.0}µs  \
                 [latency reduction {:.2}%]  convergence ~request {}\n",
                if curve.runtime == "pypy" { "a" } else { "b" },
                curve.workload,
                curve.runtime,
                curve.premature_us,
                curve.converged_us,
                curve.reduction_pct,
                curve
                    .convergence_request
                    .map(|r| r.to_string())
                    .unwrap_or_else(|| "-".to_string()),
            ));
            out.push_str(&ascii_series(&curve.latencies_us, 72, 10));
            out.push('\n');
        }
        out
    }

    /// CSV of the raw curves.
    pub fn to_csv(&self) -> String {
        let mut table = Table::new(vec!["runtime", "workload", "request", "latency_us"]);
        for curve in &self.curves {
            for (i, lat) in curve.latencies_us.iter().enumerate() {
                table.row(vec![
                    curve.runtime.clone(),
                    curve.workload.clone(),
                    i.to_string(),
                    format!("{lat:.1}"),
                ]);
            }
        }
        table.to_csv()
    }

    /// Writes the CSV into `results/fig1.csv`.
    pub fn save(&self) -> std::io::Result<std::path::PathBuf> {
        write_results_csv("fig1.csv", &self.to_csv())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pypy_panel_matches_figure_1a_shape() {
        let ctx = ExperimentContext::quick();
        let workload = by_name("DynamicHTML").unwrap();
        let curve = warmup_curve(&workload, 2_500, ctx.cell_seed(&["t", "a"]));
        // 33.3% reduction in the paper; accept a generous band.
        assert!(
            (20.0..=45.0).contains(&curve.reduction_pct),
            "reduction {:.1}%",
            curve.reduction_pct
        );
        // Converges around request ~1000 (PyPy's trace threshold).
        let conv = curve.convergence_request.expect("converges");
        assert!((500..=1_800).contains(&conv), "convergence at {conv}");
    }

    #[test]
    fn jvm_panel_matches_figure_1b_shape() {
        let ctx = ExperimentContext::quick();
        let workload = by_name("HTMLRendering").unwrap();
        let curve = warmup_curve(&workload, 2_500, ctx.cell_seed(&["t", "b"]));
        // 75.6% reduction in the paper.
        assert!(
            (60.0..=85.0).contains(&curve.reduction_pct),
            "reduction {:.1}%",
            curve.reduction_pct
        );
        // Converges far later than PyPy (paper: ~2500 vs ~1000).
        let conv = curve.convergence_request.expect("converges");
        assert!(conv > 1_200, "convergence at {conv}");
    }

    #[test]
    fn render_and_csv_contain_both_panels() {
        let ctx = ExperimentContext::quick();
        let result = run(&ctx);
        let text = result.render();
        assert!(text.contains("DynamicHTML on pypy"));
        assert!(text.contains("HTMLRendering on jvm"));
        let csv = result.to_csv();
        assert!(csv.lines().count() > 4_000);
    }
}

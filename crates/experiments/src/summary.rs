//! §5.2's headline aggregation.
//!
//! The paper reports, per eviction rate, in how many of the 13 benchmarks
//! the request-centric policy's median beats / matches (±5%) / trails the
//! state of the art, and the geometric mean of the positive improvements:
//! 37.2% at rate 1 (9/13 better), 22.5% at rate 4, 13.5% at rate 20 —
//! 28 better / 9 on-par / 2 worse across the 39 cells.

use crate::grid::{Grid, PAPER_RATES};
use crate::render::write_results_csv;
use crate::restore_ablation::{aggregate, StrategyAggregate};
use pronghorn_metrics::{classify, geo_mean_of_improvements, Table, TableStyle, Verdict};
use pronghorn_platform::{RestoreInfo, RestoreStrategy};

/// Aggregate for one eviction rate.
#[derive(Debug, Clone)]
pub struct RateSummary {
    /// Eviction rate.
    pub rate: u32,
    /// Benchmarks where request-centric is better (>5% median gain).
    pub better: Vec<(String, f64)>,
    /// Benchmarks on-par (±5%).
    pub on_par: Vec<(String, f64)>,
    /// Benchmarks where it is worse.
    pub worse: Vec<(String, f64)>,
    /// Geometric mean of the positive improvements, percent.
    pub geo_mean_improvement_pct: Option<f64>,
}

/// The headline summary across rates.
#[derive(Debug, Clone)]
pub struct SummaryResult {
    /// One aggregate per eviction rate.
    pub rates: Vec<RateSummary>,
    /// Pooled restore-path statistics per strategy present in the grids
    /// (the policy grids run eagerly, so this is usually one row; the
    /// restore ablation produces all three). Rendered as an extra
    /// section and exported to `BENCH_restore.json` — never into
    /// `summary.csv`, whose bytes are a compatibility surface.
    pub restore: Vec<StrategyAggregate>,
}

/// Summarizes one or more completed grids (typically Figure 4's plus
/// Figure 5's).
pub fn summarize(grids: &[&Grid]) -> SummaryResult {
    let rates = PAPER_RATES
        .iter()
        .map(|&rate| {
            let mut better = Vec::new();
            let mut on_par = Vec::new();
            let mut worse = Vec::new();
            for grid in grids {
                for workload in grid.workloads() {
                    let Some(imp) = grid.improvement_pct(&workload, rate) else {
                        continue;
                    };
                    match classify(imp) {
                        Verdict::Better => better.push((workload, imp)),
                        Verdict::OnPar => on_par.push((workload, imp)),
                        Verdict::Worse => worse.push((workload, imp)),
                    }
                }
            }
            let improvements: Vec<f64> = better.iter().map(|(_, i)| *i).collect();
            RateSummary {
                rate,
                geo_mean_improvement_pct: geo_mean_of_improvements(&improvements),
                better,
                on_par,
                worse,
            }
        })
        .collect();
    let restore = RestoreStrategy::ALL
        .iter()
        .filter_map(|&strategy| {
            let infos: Vec<&RestoreInfo> = grids
                .iter()
                .flat_map(|g| g.cells.iter())
                .filter(|c| c.result.restore_strategy == strategy)
                .flat_map(|c| c.result.restore_infos.iter())
                .collect();
            if infos.is_empty() {
                None
            } else {
                Some(aggregate(strategy, &infos))
            }
        })
        .collect();
    SummaryResult { rates, restore }
}

impl SummaryResult {
    /// Total (better, on-par, worse) across all rates — the paper's
    /// "28 of 39 / 9 of 39 / 2 of 39".
    pub fn totals(&self) -> (usize, usize, usize) {
        self.rates.iter().fold((0, 0, 0), |(b, o, w), r| {
            (b + r.better.len(), o + r.on_par.len(), w + r.worse.len())
        })
    }

    /// Paper-style rendering.
    pub fn render(&self) -> String {
        let mut table = Table::new(vec![
            "Eviction rate",
            "Better",
            "On-par (±5%)",
            "Worse",
            "Geo-mean improvement",
        ]);
        for r in &self.rates {
            table.row(vec![
                format!("every {} request(s)", r.rate),
                r.better.len().to_string(),
                r.on_par.len().to_string(),
                r.worse.len().to_string(),
                r.geo_mean_improvement_pct
                    .map(|g| format!("{g:.1}%"))
                    .unwrap_or_else(|| "-".into()),
            ]);
        }
        let (b, o, w) = self.totals();
        let mut out = format!(
            "Headline summary: request-centric vs checkpoint-after-1st medians\n\n{}\ntotal: better {b}, on-par {o}, worse {w} of {} cells\n\n",
            table.render(TableStyle::Plain),
            b + o + w
        );
        for r in &self.rates {
            out.push_str(&format!("rate {}:\n", r.rate));
            for (name, imp) in r.better.iter().chain(&r.on_par).chain(&r.worse) {
                out.push_str(&format!("  {name:<14} {imp:+.1}%\n"));
            }
        }
        if !self.restore.is_empty() {
            out.push_str("\nrestore path:\n");
            for agg in &self.restore {
                out.push_str(&format!(
                    "  {:<16} median {:.0} µs over {} restores, {:.1} MB moved\n",
                    agg.strategy.label(),
                    agg.median_restore_us,
                    agg.restores,
                    agg.total_bytes as f64 / 1e6,
                ));
            }
        }
        out
    }

    /// CSV form. The `flag` column is the per-benchmark win/loss marker
    /// (`win`/`par`/`loss`) downstream tooling filters on without having
    /// to re-parse the ±5% verdict wording.
    pub fn to_csv(&self) -> String {
        let mut table = Table::new(vec![
            "rate",
            "workload",
            "improvement_pct",
            "verdict",
            "flag",
        ]);
        for r in &self.rates {
            for (list, verdict, flag) in [
                (&r.better, "better", "win"),
                (&r.on_par, "on-par", "par"),
                (&r.worse, "worse", "loss"),
            ] {
                for (name, imp) in list {
                    table.row(vec![
                        r.rate.to_string(),
                        name.clone(),
                        format!("{imp:.2}"),
                        verdict.to_string(),
                        flag.to_string(),
                    ]);
                }
            }
        }
        table.to_csv()
    }

    /// Writes `results/summary.csv`.
    pub fn save(&self) -> std::io::Result<std::path::PathBuf> {
        write_results_csv("summary.csv", &self.to_csv())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::run_grid;
    use crate::grid::PAPER_POLICIES;
    use crate::ExperimentContext;

    #[test]
    fn summary_classifies_each_cell_once() {
        let ctx = ExperimentContext {
            invocations: 120,
            ..ExperimentContext::quick()
        };
        let grid = run_grid(&ctx, &["DFS", "Uploader"], &PAPER_POLICIES, &PAPER_RATES);
        let summary = summarize(&[&grid]);
        let (b, o, w) = summary.totals();
        assert_eq!(b + o + w, 2 * 3);
        // DFS (compute) should improve at rate 1.
        let rate1 = &summary.rates[0];
        assert!(
            rate1.better.iter().any(|(n, _)| n == "DFS"),
            "rate-1 verdicts: {:?} / {:?} / {:?}",
            rate1.better,
            rate1.on_par,
            rate1.worse
        );
    }

    #[test]
    fn render_and_csv_are_consistent() {
        let ctx = ExperimentContext {
            invocations: 80,
            ..ExperimentContext::quick()
        };
        let grid = run_grid(&ctx, &["Hash"], &PAPER_POLICIES, &PAPER_RATES);
        let summary = summarize(&[&grid]);
        let text = summary.render();
        assert!(text.contains("Headline summary"));
        // Restore-path stats surface in the render, never in the CSV —
        // summary.csv's bytes are a compatibility surface.
        assert!(text.contains("restore path"));
        assert!(text.contains("eager"));
        let csv = summary.to_csv();
        assert_eq!(csv.lines().count(), 1 + 3);
        assert!(!csv.contains("eager"));
        // Every data row carries the win/par/loss flag in the last column.
        assert!(csv.starts_with("rate,workload,improvement_pct,verdict,flag"));
        for row in csv.lines().skip(1) {
            let flag = row.rsplit(',').next().unwrap();
            assert!(
                ["win", "par", "loss"].contains(&flag),
                "unflagged summary row: {row}"
            );
        }
        assert_eq!(summary.restore.len(), 1);
        assert!(summary.restore[0].restores > 0);
    }
}

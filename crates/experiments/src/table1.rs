//! Table 1: Java latency speedups relative to request #1.
//!
//! The paper invokes four Java benchmarks for up to 1 000 requests and
//! reports, at requests 200/400/600/800, the speedup of the local latency
//! over the first request (Hash 27 ms, HTML 650 ms, WordCount 64 ms,
//! JSON 360 ms baselines) — non-monotonic because of deoptimizations and
//! compilation interference.

use crate::render::write_results_csv;
use crate::ExperimentContext;
use pronghorn_jit::Runtime;
use pronghorn_metrics::{table::fmt_f64, Table, TableStyle};
use pronghorn_sim::RngFactory;
use pronghorn_workloads::{table1_benchmarks, InputVariance, Workload};

/// Checkpoints at which speedups are reported.
pub const CHECKPOINTS: [usize; 4] = [200, 400, 600, 800];

/// One benchmark's Table 1 column.
#[derive(Debug, Clone)]
pub struct SpeedupColumn {
    /// Benchmark name.
    pub workload: String,
    /// First-request latency, ms (the paper's "Request #1 (baseline)").
    pub first_request_ms: f64,
    /// Speedup factors at [`CHECKPOINTS`].
    pub speedups: Vec<f64>,
}

/// Table 1's full result.
#[derive(Debug, Clone)]
pub struct Table1Result {
    /// One column per benchmark (Hash, HTML, WordCount, JSON).
    pub columns: Vec<SpeedupColumn>,
}

/// Runs one benchmark for 1 000 sequential requests on a single worker.
pub fn speedup_column(workload: &dyn Workload, seed: u64) -> SpeedupColumn {
    let factory = RngFactory::new(seed);
    let mut boot_rng = factory.stream("boot");
    let (mut runtime, _) = Runtime::cold_start(
        workload.runtime_profile(),
        workload.method_profiles(),
        &mut boot_rng,
    );
    let mut exec_rng = factory.stream("exec");
    let mut latencies = Vec::with_capacity(1_000);
    for i in 0..1_000u64 {
        let mut input_rng = factory.stream_indexed("input", i);
        let request = workload.generate(&mut input_rng, InputVariance::none());
        latencies.push(runtime.execute(&request, &mut exec_rng).total_us());
    }
    let first = latencies[0];
    let local_median = |center: usize| -> f64 {
        let lo = center.saturating_sub(10);
        let hi = (center + 10).min(latencies.len());
        let mut w = latencies[lo..hi].to_vec();
        w.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        w[w.len() / 2]
    };
    SpeedupColumn {
        workload: workload.name().to_string(),
        first_request_ms: first / 1_000.0,
        speedups: CHECKPOINTS
            .iter()
            .map(|&c| first / local_median(c))
            .collect(),
    }
}

/// Runs Table 1 for the four Java benchmarks.
pub fn run(ctx: &ExperimentContext) -> Table1Result {
    Table1Result {
        columns: table1_benchmarks()
            .iter()
            .map(|b| speedup_column(b, ctx.cell_seed(&["table1", b.name()])))
            .collect(),
    }
}

impl Table1Result {
    /// Paper-style rendering: benchmarks as columns, checkpoints as rows.
    pub fn render(&self) -> String {
        let mut header = vec!["".to_string()];
        header.extend(self.columns.iter().map(|c| c.workload.clone()));
        let mut table = Table::new(header);
        let mut baseline_row = vec!["Request #1 (baseline)".to_string()];
        baseline_row.extend(
            self.columns
                .iter()
                .map(|c| format!("{:.0} ms", c.first_request_ms)),
        );
        table.row(baseline_row);
        for (i, &checkpoint) in CHECKPOINTS.iter().enumerate() {
            let mut row = vec![format!("Request #{checkpoint}")];
            row.extend(
                self.columns
                    .iter()
                    .map(|c| format!("{}x", fmt_f64(c.speedups[i], 1))),
            );
            table.row(row);
        }
        format!(
            "Table 1: function latency speedup vs the first request (Java)\n\n{}",
            table.render(TableStyle::Plain)
        )
    }

    /// CSV form.
    pub fn to_csv(&self) -> String {
        let mut table = Table::new(vec![
            "workload",
            "first_request_ms",
            "r200",
            "r400",
            "r600",
            "r800",
        ]);
        for c in &self.columns {
            let mut row = vec![c.workload.clone(), format!("{:.1}", c.first_request_ms)];
            row.extend(c.speedups.iter().map(|s| format!("{s:.2}")));
            table.row(row);
        }
        table.to_csv()
    }

    /// Writes `results/table1.csv`.
    pub fn save(&self) -> std::io::Result<std::path::PathBuf> {
        write_results_csv("table1.csv", &self.to_csv())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_request_baselines_near_paper_values() {
        let ctx = ExperimentContext::quick();
        let result = run(&ctx);
        let names: Vec<&str> = result.columns.iter().map(|c| c.workload.as_str()).collect();
        assert_eq!(names, ["Hash", "HTMLRendering", "WordCount", "JSON"]);
        // Paper: 27 / 650 / 64 / 360 ms. Allow ±40% (jittered lazy init).
        for (col, target) in result.columns.iter().zip([27.0, 650.0, 64.0, 360.0]) {
            let rel = (col.first_request_ms - target).abs() / target;
            assert!(
                rel < 0.4,
                "{}: first request {:.0} ms vs paper {target} ms",
                col.workload,
                col.first_request_ms
            );
        }
    }

    #[test]
    fn speedups_exceed_one_and_grow_overall() {
        let ctx = ExperimentContext::quick();
        let result = run(&ctx);
        for col in &result.columns {
            for &s in &col.speedups {
                assert!(s > 1.0, "{}: speedup {s}", col.workload);
                assert!(s < 20.0, "{}: speedup {s} implausible", col.workload);
            }
            // By request 800 the function should be meaningfully faster
            // than request #1 (Table 1 reports 1.8x–5.9x at these points).
            assert!(
                *col.speedups.last().expect("4 checkpoints") > 1.5,
                "{}: tail speedup {:?}",
                col.workload,
                col.speedups
            );
        }
    }

    #[test]
    fn render_contains_all_rows() {
        let ctx = ExperimentContext::quick();
        let text = run(&ctx).render();
        for needle in [
            "Request #1 (baseline)",
            "Request #200",
            "Request #800",
            "JSON",
        ] {
            assert!(text.contains(needle), "missing {needle}\n{text}");
        }
    }
}

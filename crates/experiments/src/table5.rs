//! Table 5: maximum storage and network bandwidth vs the state of the art.
//!
//! The paper computes, per benchmark: maximum storage = pool capacity `C`
//! times the average snapshot size; baseline storage = one snapshot;
//! maximum network = **2 ×** container lifetimes × snapshot size (each
//! lifetime uploads one checkpoint and downloads one restore during
//! exploration); baseline network = half of that (restore only). The
//! published numbers correspond to 125 lifetimes (500 invocations at
//! eviction rate 4). We report both the analytic bound and the bytes the
//! simulated Object Store actually moved.

use crate::render::write_results_csv;
use crate::ExperimentContext;
use pronghorn_core::PolicyKind;
use pronghorn_metrics::{Table, TableStyle};
use pronghorn_platform::{run_closed_loop, RunConfig};
use pronghorn_workloads::{evaluation_benchmarks, Workload};

/// Pool capacity of the paper's configuration.
const POOL_CAPACITY: f64 = 12.0;

/// One benchmark's Table 5 row.
#[derive(Debug, Clone)]
pub struct Table5Row {
    /// Benchmark name.
    pub workload: String,
    /// Runtime label.
    pub runtime: String,
    /// Average snapshot size, MB.
    pub snapshot_mb: f64,
    /// Analytic maximum storage, MB (`C ×` snapshot).
    pub max_storage_mb: f64,
    /// Analytic maximum network, MB (`2 ×` lifetimes `×` snapshot).
    pub max_network_mb: f64,
    /// Baseline storage, MB (one snapshot).
    pub baseline_storage_mb: f64,
    /// Baseline network, MB (lifetimes `×` snapshot).
    pub baseline_network_mb: f64,
    /// Bytes the simulated store actually transferred (nominal), MB.
    pub measured_network_mb: f64,
    /// Peak nominal bytes pooled during the run, MB.
    pub measured_peak_storage_mb: f64,
}

/// Table 5's full result.
#[derive(Debug, Clone)]
pub struct Table5Result {
    /// One row per benchmark.
    pub rows: Vec<Table5Row>,
    /// Container lifetimes used in the analytic bound.
    pub lifetimes: u32,
}

/// Runs Table 5 (eviction rate 4 — the rate that reproduces the paper's
/// published numbers).
pub fn run(ctx: &ExperimentContext) -> Table5Result {
    const RATE: u32 = 4;
    let lifetimes = ctx.invocations / RATE;
    let rows = evaluation_benchmarks()
        .iter()
        .map(|b| {
            let seed = ctx.cell_seed(&["table5", b.name()]);
            let cfg = RunConfig::paper(PolicyKind::RequestCentric, RATE, seed)
                .with_invocations(ctx.invocations);
            let result = run_closed_loop(b, &cfg);
            let snapshot_mb = result.mean_snapshot_mb();
            const MB: f64 = 1024.0 * 1024.0;
            Table5Row {
                workload: b.name().to_string(),
                runtime: b.kind().label().to_string(),
                snapshot_mb,
                max_storage_mb: POOL_CAPACITY * snapshot_mb,
                max_network_mb: 2.0 * f64::from(lifetimes) * snapshot_mb,
                baseline_storage_mb: snapshot_mb,
                baseline_network_mb: f64::from(lifetimes) * snapshot_mb,
                measured_network_mb: (result.overheads.nominal_bytes_uploaded
                    + result.overheads.nominal_bytes_downloaded)
                    as f64
                    / MB,
                measured_peak_storage_mb: result.overheads.peak_pool_nominal_bytes as f64 / MB,
            }
        })
        .collect();
    Table5Result { rows, lifetimes }
}

impl Table5Result {
    /// Paper-style rendering.
    pub fn render(&self) -> String {
        let mut table = Table::new(vec![
            "Benchmark",
            "Max Storage (MB)",
            "Max Network (MB)",
            "Baseline Storage (MB)",
            "Baseline Network (MB)",
            "Measured Network (MB)",
            "Measured Peak Storage (MB)",
        ]);
        for r in &self.rows {
            table.row(vec![
                r.workload.clone(),
                format!("{:.0}", r.max_storage_mb),
                format!("{:.0}", r.max_network_mb),
                format!("{:.0}", r.baseline_storage_mb),
                format!("{:.0}", r.baseline_network_mb),
                format!("{:.0}", r.measured_network_mb),
                format!("{:.0}", r.measured_peak_storage_mb),
            ]);
        }
        format!(
            "Table 5: storage and network overheads ({} container lifetimes)\n\n{}",
            self.lifetimes,
            table.render(TableStyle::Plain)
        )
    }

    /// CSV form.
    pub fn to_csv(&self) -> String {
        let mut table = Table::new(vec![
            "workload",
            "runtime",
            "snapshot_mb",
            "max_storage_mb",
            "max_network_mb",
            "baseline_storage_mb",
            "baseline_network_mb",
            "measured_network_mb",
            "measured_peak_storage_mb",
        ]);
        for r in &self.rows {
            table.row(vec![
                r.workload.clone(),
                r.runtime.clone(),
                format!("{:.2}", r.snapshot_mb),
                format!("{:.1}", r.max_storage_mb),
                format!("{:.1}", r.max_network_mb),
                format!("{:.1}", r.baseline_storage_mb),
                format!("{:.1}", r.baseline_network_mb),
                format!("{:.1}", r.measured_network_mb),
                format!("{:.1}", r.measured_peak_storage_mb),
            ]);
        }
        table.to_csv()
    }

    /// Writes `results/table5.csv`.
    pub fn save(&self) -> std::io::Result<std::path::PathBuf> {
        write_results_csv("table5.csv", &self.to_csv())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytic_bounds_follow_paper_formulas() {
        let ctx = ExperimentContext {
            invocations: 200,
            ..ExperimentContext::quick()
        };
        let result = run(&ctx);
        assert_eq!(result.lifetimes, 50);
        assert_eq!(result.rows.len(), 13);
        for r in &result.rows {
            assert!(
                r.snapshot_mb > 5.0,
                "{}: snapshot {}",
                r.workload,
                r.snapshot_mb
            );
            assert!((r.max_storage_mb - 12.0 * r.snapshot_mb).abs() < 1e-9);
            assert!((r.max_network_mb - 2.0 * r.baseline_network_mb).abs() < 1e-9);
            // Pronghorn stores up to C× the baseline.
            assert!(r.max_storage_mb >= r.baseline_storage_mb * 11.9);
            // The simulated store moved a nonzero volume bounded by the
            // analytic maximum (checkpointing stops once W is explored).
            assert!(r.measured_network_mb > 0.0, "{}", r.workload);
        }
    }

    #[test]
    fn jvm_rows_are_an_order_cheaper_than_pypy() {
        let ctx = ExperimentContext {
            invocations: 120,
            ..ExperimentContext::quick()
        };
        let result = run(&ctx);
        let jvm_avg: f64 = result
            .rows
            .iter()
            .filter(|r| r.runtime == "jvm")
            .map(|r| r.snapshot_mb)
            .sum::<f64>()
            / 4.0;
        let pypy_avg: f64 = result
            .rows
            .iter()
            .filter(|r| r.runtime == "pypy")
            .map(|r| r.snapshot_mb)
            .sum::<f64>()
            / 9.0;
        assert!(
            pypy_avg > jvm_avg * 3.0,
            "pypy {pypy_avg} MB vs jvm {jvm_avg} MB"
        );
    }
}

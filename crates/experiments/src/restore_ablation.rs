//! The restore-strategy ablation: eager vs lazy vs record-&-prefetch.
//!
//! Sweeps the 13 paper benchmarks × the §5.1 eviction rates under the
//! request-centric policy, once per [`RestoreStrategy`]. Cells that differ
//! only in strategy share a seed, so the workload-input stream — and hence
//! the comparison — is paired, exactly like the policy grid. The REAP
//! claim under test: after one recording restore, bulk-prefetching the
//! recorded working set restores faster than both demand paging (fault
//! service dominates) and eager restoration (the full image transfer
//! dominates), while moving fewer bytes than eager on compute-bound
//! benchmarks whose working set is a fraction of the image.

use crate::bench_report::{BenchReport, JsonObj};
use crate::fig45::{FIG4_BENCHMARKS, FIG5_BENCHMARKS};
use crate::grid::PAPER_RATES;
use crate::render::write_results_csv;
use crate::ExperimentContext;
use pronghorn_core::PolicyKind;
use pronghorn_metrics::{mean_and_std, Quantiles, Table, TableStyle};
use pronghorn_platform::{run_closed_loop, RestoreInfo, RestoreStrategy, RunConfig, RunResult};
use pronghorn_workloads::{by_name, Workload};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One benchmark × rate × strategy measurement.
#[derive(Debug, Clone)]
pub struct AblationCell {
    /// Benchmark name.
    pub workload: String,
    /// Eviction rate.
    pub rate: u32,
    /// Restore strategy the cell ran under.
    pub strategy: RestoreStrategy,
    /// Whether the benchmark is IO-bound (bytes comparisons exclude these).
    pub io_bound: bool,
    /// Full run measurements.
    pub result: RunResult,
}

/// A completed restore ablation.
#[derive(Debug, Clone, Default)]
pub struct RestoreAblation {
    /// All cells, in completion order (lookups are keyed, so order does
    /// not affect any rendered output).
    pub cells: Vec<AblationCell>,
    /// Real wall-clock time the sweep took, seconds.
    pub wall_clock_s: f64,
}

/// Pooled per-strategy restore statistics (across every restore of every
/// cell run under that strategy).
#[derive(Debug, Clone)]
pub struct StrategyAggregate {
    /// The strategy.
    pub strategy: RestoreStrategy,
    /// Number of restores pooled.
    pub restores: usize,
    /// Median end-to-end restore time, µs (NaN with no restores).
    pub median_restore_us: f64,
    /// Mean and standard deviation of the restore times, µs.
    pub mean_restore_us: f64,
    /// Standard deviation companion to [`Self::mean_restore_us`].
    pub std_restore_us: f64,
    /// Total bytes moved from the store for restores.
    pub total_bytes: u64,
    /// Total demand faults served.
    pub faults: u64,
    /// Total pages brought in by batched prefetches.
    pub prefetched_pages: u64,
}

/// The paper's 13 benchmarks (Figure 4's nine Python + Figure 5's four
/// Java), in figure order.
pub fn benchmarks() -> Vec<&'static str> {
    FIG4_BENCHMARKS
        .iter()
        .chain(FIG5_BENCHMARKS.iter())
        .copied()
        .collect()
}

/// Runs the full ablation: 13 benchmarks × paper rates × all strategies.
pub fn run(ctx: &ExperimentContext) -> RestoreAblation {
    run_for(ctx, &benchmarks(), &PAPER_RATES)
}

/// Runs the ablation over an explicit benchmark and rate set.
///
/// # Panics
///
/// Panics if a benchmark name is unknown — experiment tables are static
/// and must fail loudly.
pub fn run_for(ctx: &ExperimentContext, benchmarks: &[&str], rates: &[u32]) -> RestoreAblation {
    for name in benchmarks {
        assert!(by_name(name).is_some(), "unknown benchmark {name}");
    }
    let mut tasks: Vec<(String, u32, RestoreStrategy)> = Vec::new();
    for &bench in benchmarks {
        for &rate in rates {
            for strategy in RestoreStrategy::ALL {
                tasks.push((bench.to_string(), rate, strategy));
            }
        }
    }
    let next = AtomicUsize::new(0);
    let cells = Mutex::new(Vec::with_capacity(tasks.len()));
    let threads = ctx.effective_threads();
    let started = std::time::Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some((bench, rate, strategy)) = tasks.get(i) else {
                    break;
                };
                let workload = by_name(bench).expect("validated above");
                // Seed shared across strategies of the same (bench, rate):
                // the paired-comparison trick of the policy grid.
                let seed = ctx.cell_seed(&["restore", bench, &rate.to_string()]);
                let cfg = RunConfig::paper(PolicyKind::RequestCentric, *rate, seed)
                    .with_invocations(ctx.invocations)
                    .with_restore(*strategy);
                let result = run_closed_loop(&workload, &cfg);
                cells.lock().expect("no poisoned lock").push(AblationCell {
                    workload: bench.clone(),
                    rate: *rate,
                    strategy: *strategy,
                    io_bound: workload.io_bound(),
                    result,
                });
            });
        }
    });
    RestoreAblation {
        cells: cells.into_inner().expect("no poisoned lock"),
        wall_clock_s: started.elapsed().as_secs_f64(),
    }
}

impl RestoreAblation {
    /// Finds a cell.
    pub fn cell(
        &self,
        workload: &str,
        rate: u32,
        strategy: RestoreStrategy,
    ) -> Option<&AblationCell> {
        self.cells
            .iter()
            .find(|c| c.workload == workload && c.rate == rate && c.strategy == strategy)
    }

    /// Median end-to-end restore time of a cell, µs (NaN when absent or
    /// the cell never restored).
    pub fn median_restore_us(&self, workload: &str, rate: u32, strategy: RestoreStrategy) -> f64 {
        self.cell(workload, rate, strategy)
            .map(|c| c.result.median_restore_us())
            .unwrap_or(f64::NAN)
    }

    /// Distinct workloads present, in first-seen deterministic order.
    pub fn workloads(&self) -> Vec<String> {
        let mut seen = Vec::new();
        for bench in benchmarks() {
            if self.cells.iter().any(|c| c.workload == bench) && !seen.contains(&bench.to_string())
            {
                seen.push(bench.to_string());
            }
        }
        // Any non-paper benchmarks (tests) follow, in cell order.
        for cell in &self.cells {
            if !seen.contains(&cell.workload) {
                seen.push(cell.workload.clone());
            }
        }
        seen
    }

    /// Distinct rates present, ascending.
    pub fn rates(&self) -> Vec<u32> {
        let mut rates: Vec<u32> = self.cells.iter().map(|c| c.rate).collect();
        rates.sort_unstable();
        rates.dedup();
        rates
    }

    /// Pooled per-strategy aggregates, in [`RestoreStrategy::ALL`] order.
    pub fn strategy_aggregates(&self) -> Vec<StrategyAggregate> {
        RestoreStrategy::ALL
            .iter()
            .map(|&strategy| {
                let infos: Vec<&RestoreInfo> = self
                    .cells
                    .iter()
                    .filter(|c| c.strategy == strategy)
                    .flat_map(|c| c.result.restore_infos.iter())
                    .collect();
                aggregate(strategy, &infos)
            })
            .collect()
    }

    /// How many benchmarks at `rate` satisfy the REAP claim: the
    /// record-&-prefetch median restore is strictly below lazy's and at or
    /// below eager's.
    pub fn wins_at_rate(&self, rate: u32) -> usize {
        self.workloads()
            .iter()
            .filter(|w| {
                let eager = self.median_restore_us(w, rate, RestoreStrategy::Eager);
                let lazy = self.median_restore_us(w, rate, RestoreStrategy::Lazy);
                let rp = self.median_restore_us(w, rate, RestoreStrategy::RecordPrefetch);
                rp.is_finite() && lazy.is_finite() && eager.is_finite() && rp < lazy && rp <= eager
            })
            .count()
    }

    /// Compute-bound benchmarks at `rate` where record-&-prefetch moved
    /// strictly fewer bytes than eager, as `(wins, total)`.
    pub fn byte_wins_at_rate(&self, rate: u32) -> (usize, usize) {
        let mut wins = 0;
        let mut total = 0;
        for w in self.workloads() {
            let Some(rp) = self.cell(&w, rate, RestoreStrategy::RecordPrefetch) else {
                continue;
            };
            if rp.io_bound {
                continue;
            }
            let Some(eager) = self.cell(&w, rate, RestoreStrategy::Eager) else {
                continue;
            };
            total += 1;
            if rp.result.restore_bytes() < eager.result.restore_bytes() {
                wins += 1;
            }
        }
        (wins, total)
    }

    /// Paper-style rendering: per-strategy pooled stats, then per-rate
    /// benchmark win counts.
    pub fn render(&self) -> String {
        let mut table = Table::new(vec![
            "Strategy",
            "Restores",
            "Median restore",
            "Mean ± std",
            "Bytes moved",
            "Faults",
            "Prefetched pages",
        ]);
        for agg in self.strategy_aggregates() {
            table.row(vec![
                agg.strategy.label().to_string(),
                agg.restores.to_string(),
                format_us(agg.median_restore_us),
                format!(
                    "{} ± {}",
                    format_us(agg.mean_restore_us),
                    format_us(agg.std_restore_us)
                ),
                format!("{:.1} MB", agg.total_bytes as f64 / 1e6),
                agg.faults.to_string(),
                agg.prefetched_pages.to_string(),
            ]);
        }
        let mut out = format!(
            "Restore-strategy ablation (request-centric policy)\n\n{}\n",
            table.render(TableStyle::Plain)
        );
        let n = self.workloads().len();
        for rate in self.rates() {
            let (bw, bt) = self.byte_wins_at_rate(rate);
            out.push_str(&format!(
                "rate {:>2}: record-prefetch beats lazy and eager restore latency on \
                 {}/{} benchmarks; moves fewer bytes than eager on {bw}/{bt} compute-bound\n",
                rate,
                self.wins_at_rate(rate),
                n,
            ));
        }
        out
    }

    /// CSV form: one row per cell, in fixed benchmark × rate × strategy
    /// order (byte-identical across same-seed reruns).
    pub fn to_csv(&self) -> String {
        let mut table = Table::new(vec![
            "workload",
            "rate",
            "strategy",
            "restores",
            "median_restore_us",
            "restore_bytes",
            "faults",
            "prefetched_pages",
            "median_latency_us",
        ]);
        for w in self.workloads() {
            for rate in self.rates() {
                for strategy in RestoreStrategy::ALL {
                    let Some(cell) = self.cell(&w, rate, strategy) else {
                        continue;
                    };
                    table.row(vec![
                        w.clone(),
                        rate.to_string(),
                        strategy.label().to_string(),
                        cell.result.restore_infos.len().to_string(),
                        csv_f64(cell.result.median_restore_us()),
                        cell.result.restore_bytes().to_string(),
                        cell.result.total_faults().to_string(),
                        cell.result.prefetched_pages().to_string(),
                        csv_f64(cell.result.median_us()),
                    ]);
                }
            }
        }
        table.to_csv()
    }

    /// Writes `results/restore_ablation.csv`.
    pub fn save(&self) -> std::io::Result<std::path::PathBuf> {
        write_results_csv("restore_ablation.csv", &self.to_csv())
    }

    /// Writes `results/BENCH_restore.json` from this ablation's pooled
    /// per-strategy stats.
    pub fn save_bench_report(&self) -> std::io::Result<std::path::PathBuf> {
        write_bench_restore(&self.strategy_aggregates(), self.wall_clock_s)
    }
}

/// Pools restore infos into one [`StrategyAggregate`].
pub fn aggregate(strategy: RestoreStrategy, infos: &[&RestoreInfo]) -> StrategyAggregate {
    let times: Vec<f64> = infos.iter().map(|i| i.total_restore_us()).collect();
    let (mean, std) = mean_and_std(&times).unwrap_or((f64::NAN, f64::NAN));
    StrategyAggregate {
        strategy,
        restores: infos.len(),
        median_restore_us: Quantiles::new(times)
            .map(|q| q.median())
            .unwrap_or(f64::NAN),
        mean_restore_us: mean,
        std_restore_us: std,
        total_bytes: infos.iter().map(|i| i.bytes_transferred).sum(),
        faults: infos.iter().map(|i| u64::from(i.faults)).sum(),
        prefetched_pages: infos.iter().map(|i| u64::from(i.prefetched_pages)).sum(),
    }
}

/// Writes `results/BENCH_restore.json`: per-strategy median restore time
/// and bytes moved — the restore counterpart of `BENCH_grid.json`, in
/// the shared [`BenchReport`] schema (one arm per strategy).
pub fn write_bench_restore(
    aggregates: &[StrategyAggregate],
    wall_clock_s: f64,
) -> std::io::Result<std::path::PathBuf> {
    let mut report = BenchReport::new("restore")
        .wall_clock(wall_clock_s)
        .config("policy", "\"request-centric\"");
    for agg in aggregates {
        report.arm(
            JsonObj::new()
                .str("strategy", agg.strategy.label())
                .uint("restores", agg.restores as u64)
                .float("median_restore_us", agg.median_restore_us, 3)
                .float("mean_restore_us", agg.mean_restore_us, 3)
                .float("std_restore_us", agg.std_restore_us, 3)
                .uint("total_bytes", agg.total_bytes)
                .uint("faults", agg.faults)
                .uint("prefetched_pages", agg.prefetched_pages),
        );
    }
    report.save("BENCH_restore.json")
}

/// Formats a µs value for human tables; NaN renders as "-".
fn format_us(us: f64) -> String {
    if us.is_finite() {
        format!("{us:.0} µs")
    } else {
        "-".to_string()
    }
}

/// Formats a float for CSV; NaN renders as the empty field.
fn csv_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        String::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_ablation() -> RestoreAblation {
        let ctx = ExperimentContext {
            invocations: 120,
            ..ExperimentContext::quick()
        };
        run_for(&ctx, &["DFS", "Uploader", "Hash"], &[4])
    }

    #[test]
    fn ablation_runs_every_strategy_per_cell() {
        let ablation = quick_ablation();
        assert_eq!(ablation.cells.len(), 3 * 3);
        assert_eq!(ablation.workloads(), vec!["DFS", "Uploader", "Hash"]);
        assert_eq!(ablation.rates(), vec![4]);
        for strategy in RestoreStrategy::ALL {
            let cell = ablation.cell("DFS", 4, strategy).unwrap();
            assert_eq!(cell.result.restore_strategy, strategy);
            assert!(!cell.result.restore_infos.is_empty());
        }
    }

    #[test]
    fn record_prefetch_wins_on_quick_subset() {
        let ablation = quick_ablation();
        // All three benchmarks: RP < Lazy strictly, RP <= Eager.
        assert_eq!(ablation.wins_at_rate(4), 3, "{}", ablation.render());
        // DFS and Hash are compute-bound; Uploader is IO-bound and
        // excluded from the bytes comparison.
        assert_eq!(ablation.byte_wins_at_rate(4), (2, 2));
    }

    #[test]
    fn csv_is_deterministic_and_shaped() {
        let ablation = quick_ablation();
        let csv = ablation.to_csv();
        assert_eq!(csv.lines().count(), 1 + 9);
        assert!(csv.starts_with("workload,rate,strategy,"));
        // Same-seed rerun produces byte-identical CSV.
        let again = quick_ablation();
        assert_eq!(csv, again.to_csv());
    }

    #[test]
    fn render_and_report_cover_all_strategies() {
        let ablation = quick_ablation();
        let text = ablation.render();
        for strategy in RestoreStrategy::ALL {
            assert!(text.contains(strategy.label()), "{text}");
        }
        let aggs = ablation.strategy_aggregates();
        assert_eq!(aggs.len(), 3);
        assert!(aggs.iter().all(|a| a.restores > 0));
        // Eager accrues no faults; lazy strategies accrue no full-image
        // transfers beyond their pages.
        assert_eq!(aggs[0].faults, 0);
        assert!(aggs[1].faults > 0);
        assert!(aggs[2].prefetched_pages > 0);
    }
}

//! The evaluation grid runner: benchmarks × policies × eviction rates,
//! executed in parallel across threads.
//!
//! Cells that differ only in policy share a seed, so the workload-input
//! stream is identical across policies (paired comparison — the same trick
//! the paper gets by replaying the same benchmark inputs against each
//! strategy).

use crate::ExperimentContext;
use pronghorn_core::PolicyKind;
use pronghorn_platform::{
    run_closed_loop, run_cluster, ClusterSpec, KernelKind, RunConfig, RunResult,
};
use pronghorn_workloads::by_name;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The three policies of §5.1, in the paper's order.
pub const PAPER_POLICIES: [PolicyKind; 3] = [
    PolicyKind::Cold,
    PolicyKind::AfterFirst,
    PolicyKind::RequestCentric,
];

/// The three eviction rates of §5.1.
pub const PAPER_RATES: [u32; 3] = [1, 4, 20];

/// One grid cell's identity and measurements.
#[derive(Debug, Clone)]
pub struct GridCell {
    /// Benchmark name.
    pub workload: String,
    /// Policy under test.
    pub policy: PolicyKind,
    /// Eviction rate.
    pub rate: u32,
    /// Full run measurements.
    pub result: RunResult,
}

/// A completed grid of runs.
#[derive(Debug, Clone, Default)]
pub struct Grid {
    /// All cells, in completion order.
    pub cells: Vec<GridCell>,
    /// Real wall-clock time the grid took to run, seconds.
    pub wall_clock_s: f64,
}

impl Grid {
    /// Finds a cell.
    pub fn cell(&self, workload: &str, policy: PolicyKind, rate: u32) -> Option<&GridCell> {
        self.cells
            .iter()
            .find(|c| c.workload == workload && c.policy == policy && c.rate == rate)
    }

    /// Median latency of a cell, µs (NaN when absent).
    pub fn median(&self, workload: &str, policy: PolicyKind, rate: u32) -> f64 {
        self.cell(workload, policy, rate)
            .map(|c| c.result.median_us())
            .unwrap_or(f64::NAN)
    }

    /// Median improvement of the request-centric policy over the
    /// state-of-the-art baseline, percent (positive = faster).
    pub fn improvement_pct(&self, workload: &str, rate: u32) -> Option<f64> {
        let base = self.median(workload, PolicyKind::AfterFirst, rate);
        let rc = self.median(workload, PolicyKind::RequestCentric, rate);
        pronghorn_metrics::median_improvement_pct(base, rc)
    }

    /// Distinct workloads present, in first-seen order.
    pub fn workloads(&self) -> Vec<String> {
        let mut seen = Vec::new();
        for cell in &self.cells {
            if !seen.contains(&cell.workload) {
                seen.push(cell.workload.clone());
            }
        }
        seen
    }
}

/// Runs the full grid for `benchmarks` across `policies` and `rates`.
///
/// # Panics
///
/// Panics if a benchmark name is unknown — experiment tables are static
/// and must fail loudly.
pub fn run_grid(
    ctx: &ExperimentContext,
    benchmarks: &[&str],
    policies: &[PolicyKind],
    rates: &[u32],
) -> Grid {
    run_grid_with_kernel(ctx, benchmarks, policies, rates, KernelKind::BinaryHeap)
}

/// [`run_grid`] with an explicit simulation kernel. Results are
/// byte-identical under either kernel (pinned by `tests/full_invariance.rs`
/// and the `kernel-bench` command); the knob exists so the equivalence is
/// checked at grid scale, not assumed.
///
/// # Panics
///
/// Panics if a benchmark name is unknown.
pub fn run_grid_with_kernel(
    ctx: &ExperimentContext,
    benchmarks: &[&str],
    policies: &[PolicyKind],
    rates: &[u32],
    kernel: KernelKind,
) -> Grid {
    // Validate names up front.
    for name in benchmarks {
        assert!(by_name(name).is_some(), "unknown benchmark {name}");
    }
    let mut tasks: Vec<(String, PolicyKind, u32)> = Vec::new();
    for &bench in benchmarks {
        for &rate in rates {
            for &policy in policies {
                tasks.push((bench.to_string(), policy, rate));
            }
        }
    }
    let next = AtomicUsize::new(0);
    let cells = Mutex::new(Vec::with_capacity(tasks.len()));
    let threads = ctx.effective_threads();
    let started = std::time::Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some((bench, policy, rate)) = tasks.get(i) else {
                    break;
                };
                let workload = by_name(bench).expect("validated above");
                // Seed shared across policies of the same (bench, rate).
                let seed = ctx.cell_seed(&[bench, &rate.to_string()]);
                let cfg = RunConfig::paper(*policy, *rate, seed)
                    .with_invocations(ctx.invocations)
                    .with_kernel(kernel);
                let result = run_closed_loop(&workload, &cfg);
                cells.lock().expect("no poisoned lock").push(GridCell {
                    workload: bench.clone(),
                    policy: *policy,
                    rate: *rate,
                    result,
                });
            });
        }
    });
    Grid {
        cells: cells.into_inner().expect("no poisoned lock"),
        wall_clock_s: started.elapsed().as_secs_f64(),
    }
}

/// [`run_grid_with_kernel`], but every cell runs through the cluster
/// runner with the default single-node [`ClusterSpec`]. A 1-node cluster
/// is pinned byte-identical to [`run_closed_loop`] (the golden tests in
/// `tests/full_invariance.rs` hold both paths to the same committed CSV),
/// so this exists to check that equivalence at grid scale, not to be a
/// faster path.
///
/// # Panics
///
/// Panics if a benchmark name is unknown.
pub fn run_grid_cluster(
    ctx: &ExperimentContext,
    benchmarks: &[&str],
    policies: &[PolicyKind],
    rates: &[u32],
    kernel: KernelKind,
) -> Grid {
    for name in benchmarks {
        assert!(by_name(name).is_some(), "unknown benchmark {name}");
    }
    let mut tasks: Vec<(String, PolicyKind, u32)> = Vec::new();
    for &bench in benchmarks {
        for &rate in rates {
            for &policy in policies {
                tasks.push((bench.to_string(), policy, rate));
            }
        }
    }
    let next = AtomicUsize::new(0);
    let cells = Mutex::new(Vec::with_capacity(tasks.len()));
    let threads = ctx.effective_threads();
    let started = std::time::Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some((bench, policy, rate)) = tasks.get(i) else {
                    break;
                };
                let workload = by_name(bench).expect("validated above");
                let seed = ctx.cell_seed(&[bench, &rate.to_string()]);
                let cfg = RunConfig::paper(*policy, *rate, seed)
                    .with_invocations(ctx.invocations)
                    .with_kernel(kernel)
                    .with_cluster(ClusterSpec::single_node());
                let result = run_cluster(&workload, &cfg).result;
                cells.lock().expect("no poisoned lock").push(GridCell {
                    workload: bench.clone(),
                    policy: *policy,
                    rate: *rate,
                    result,
                });
            });
        }
    });
    Grid {
        cells: cells.into_inner().expect("no poisoned lock"),
        wall_clock_s: started.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_runs_all_cells_in_parallel() {
        let ctx = ExperimentContext {
            invocations: 60,
            ..ExperimentContext::quick()
        };
        let grid = run_grid(
            &ctx,
            &["DFS", "Hash"],
            &[PolicyKind::Cold, PolicyKind::AfterFirst],
            &[1, 4],
        );
        assert_eq!(grid.cells.len(), 8);
        assert_eq!(grid.workloads().len(), 2);
        let m = grid.median("DFS", PolicyKind::Cold, 1);
        assert!(m.is_finite() && m > 0.0);
        assert!(grid.cell("DFS", PolicyKind::RequestCentric, 1).is_none());
    }

    #[test]
    fn paired_seeds_align_inputs_across_policies() {
        let ctx = ExperimentContext {
            invocations: 40,
            ..ExperimentContext::quick()
        };
        let grid = run_grid(&ctx, &["DFS"], &PAPER_POLICIES, &[20]);
        // With eviction rate 20 and a cold policy vs after-1st, the
        // *input* stream is identical; latencies differ only through
        // runtime state. Sanity: same length, different values.
        let cold = &grid.cell("DFS", PolicyKind::Cold, 20).unwrap().result;
        let af = &grid.cell("DFS", PolicyKind::AfterFirst, 20).unwrap().result;
        assert_eq!(cold.latencies_us.len(), af.latencies_us.len());
        assert_ne!(cold.latencies_us, af.latencies_us);
    }

    #[test]
    #[should_panic(expected = "unknown benchmark")]
    fn unknown_benchmark_panics() {
        let ctx = ExperimentContext::quick();
        let _ = run_grid(&ctx, &["NoSuch"], &PAPER_POLICIES, &[1]);
    }
}

//! `BENCH_kernel.json` — timer-wheel vs binary-heap simulation-kernel
//! benchmark at production-trace scale.
//!
//! Three measurements land in the file:
//!
//! 1. **Pure-kernel replay** — a million-plus-arrival production stream
//!    (`TraceSpec::production`) pushed through each kernel with
//!    completions and timeouts scheduled on the fly, so the future-event
//!    list stays deep the whole run. Reported as events/sec, peak pending
//!    events, wall-clock, and a checksum over the exact pop order —
//!    asserted equal across kernels, so the speedup is measured on
//!    provably identical work.
//! 2. **End-to-end production replay** — [`run_production`] under both
//!    kernels; the resulting [`ProductionStats`] must match exactly.
//! 3. **Paired-seed grid identity** — a small closed-loop grid run under
//!    both kernels; every cell's latencies, provisions and checkpoint
//!    stream must be byte-identical.
//!
//! Simulated results stay bit-identical for a fixed seed; only the
//! wall-clock numbers are host-dependent.

use crate::bench_report::{BenchReport, JsonObj};
use crate::grid::{run_grid_with_kernel, PAPER_POLICIES};
use crate::render::write_results_file;
use crate::ExperimentContext;
use pronghorn_platform::{run_production, KernelKind, ProductionStats, RunConfig};
use pronghorn_sim::hash::mix64;
use pronghorn_sim::{Kernel, RngFactory, SimDuration, SimTime};
use pronghorn_traces::TraceSpec;
use pronghorn_workloads::by_name;
use std::fmt::Write as _;
// Wall-clock reads are fine here: `experiments` is a clock-exempt crate
// (the harness measures host elapsed time; nothing simulation-visible
// reads it), so no suppression is needed.
use std::time::Instant;

/// Benchmarks of the paired-seed identity grid.
pub const GRID_BENCHES: [&str; 2] = ["DFS", "Hash"];

/// One kernel's pure-replay measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplayArm {
    /// Kernel under test.
    pub kernel: KernelKind,
    /// Total events popped (arrivals + completions + timeouts).
    pub events: u64,
    /// Host wall-clock for the replay, seconds.
    pub wall_s: f64,
    /// Throughput, events per second.
    pub events_per_sec: f64,
    /// Deepest the future-event list ever got.
    pub peak_pending: usize,
    /// Order-sensitive fold over the `(at, payload)` pop sequence.
    pub checksum: u64,
}

/// One kernel's end-to-end production measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct ProductionArm {
    /// Kernel under test.
    pub kernel: KernelKind,
    /// Host wall-clock for the replay, seconds.
    pub wall_s: f64,
    /// The simulated results (identical across kernels).
    pub stats: ProductionStats,
}

/// The full kernel-bench report.
#[derive(Debug, Clone)]
pub struct KernelBenchReport {
    /// Arrivals in the pure-replay stream.
    pub arrivals: usize,
    /// Pure-replay arms, binary heap first.
    pub replay: Vec<ReplayArm>,
    /// End-to-end arms, binary heap first.
    pub production: Vec<ProductionArm>,
    /// Whether both production arms produced identical stats.
    pub production_identical: bool,
    /// Cells in the identity grid.
    pub grid_cells: usize,
    /// Whether every grid cell matched across kernels.
    pub grid_identical: bool,
}

impl KernelBenchReport {
    /// Pure-replay throughput ratio, timer wheel over binary heap.
    pub fn speedup(&self) -> f64 {
        let heap = self.arm(KernelKind::BinaryHeap).map(|a| a.events_per_sec);
        let wheel = self.arm(KernelKind::TimerWheel).map(|a| a.events_per_sec);
        match (heap, wheel) {
            (Some(h), Some(w)) if h > 0.0 => w / h,
            _ => 0.0,
        }
    }

    /// The replay arm for `kernel`.
    pub fn arm(&self, kernel: KernelKind) -> Option<&ReplayArm> {
        self.replay.iter().find(|a| a.kernel == kernel)
    }

    /// Paper-style text rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "Simulation-kernel benchmark");
        let _ = writeln!(out, "  pure replay: {} arrivals", self.arrivals);
        for arm in &self.replay {
            let _ = writeln!(
                out,
                "    {:<12} {:>12.0} events/s  ({} events, peak pending {}, {:.2}s, checksum {:#018x})",
                arm.kernel,
                arm.events_per_sec,
                arm.events,
                arm.peak_pending,
                arm.wall_s,
                arm.checksum,
            );
        }
        let _ = writeln!(
            out,
            "    speedup: {:.2}x (timer-wheel / binary-heap)",
            self.speedup()
        );
        let _ = writeln!(out, "  end-to-end production replay:");
        for arm in &self.production {
            let _ = writeln!(
                out,
                "    {:<12} {:>8} invocations in {:.2}s  (p50 {:.0}µs, p99 {:.0}µs, peak pending {})",
                arm.kernel,
                arm.stats.invocations,
                arm.wall_s,
                arm.stats.p50_latency_us,
                arm.stats.p99_latency_us,
                arm.stats.peak_pending_events,
            );
        }
        let _ = writeln!(
            out,
            "    stats identical across kernels: {}",
            self.production_identical
        );
        let _ = writeln!(
            out,
            "  paired-seed grid: {} cells, byte-identical: {}",
            self.grid_cells, self.grid_identical
        );
        out
    }

    /// Renders the report as a JSON document in the shared
    /// [`BenchReport`] schema: the pure-replay arms are the `arms`
    /// array; the end-to-end production comparison and the paired-seed
    /// grid identity land as trailing sections.
    pub fn render_json(&self) -> String {
        let mut report = BenchReport::new("kernel")
            .config("arrivals", self.arrivals.to_string())
            .config("grid_benches", format!("{GRID_BENCHES:?}"));
        for arm in &self.replay {
            report.arm(
                JsonObj::new()
                    .str("kernel", &arm.kernel.to_string())
                    .uint("events", arm.events)
                    .float("wall_s", arm.wall_s, 4)
                    .float("events_per_sec", arm.events_per_sec, 0)
                    .uint("peak_pending", arm.peak_pending as u64)
                    .str("checksum", &format!("{:#018x}", arm.checksum)),
            );
        }
        report.section("replay_speedup", format!("{:.3}", self.speedup()));
        let production: Vec<String> = self
            .production
            .iter()
            .map(|arm| {
                JsonObj::new()
                    .str("kernel", &arm.kernel.to_string())
                    .float("wall_s", arm.wall_s, 4)
                    .uint("invocations", arm.stats.invocations)
                    .float("mean_latency_us", arm.stats.mean_latency_us, 1)
                    .float("p50_latency_us", arm.stats.p50_latency_us, 1)
                    .float("p99_latency_us", arm.stats.p99_latency_us, 1)
                    .uint("cold_starts", arm.stats.cold_starts)
                    .uint("restores", arm.stats.restores)
                    .uint("checkpoints", arm.stats.checkpoints)
                    .uint("peak_pending", arm.stats.peak_pending_events as u64)
                    .render()
            })
            .collect();
        report.section(
            "production",
            JsonObj::new()
                .raw(
                    "arms",
                    format!("[\n    {}\n  ]", production.join(",\n    ")),
                )
                .bool("stats_identical", self.production_identical)
                .render(),
        );
        report.section(
            "grid",
            JsonObj::new()
                .uint("cells", self.grid_cells as u64)
                .bool("byte_identical", self.grid_identical)
                .render(),
        );
        report.render()
    }

    /// Writes `results/BENCH_kernel.json`, returning the path written.
    pub fn save(&self) -> std::io::Result<std::path::PathBuf> {
        write_results_file("BENCH_kernel.json", &self.render_json())
    }
}

/// Replay event payload: the low 62 bits carry the arrival index, the top
/// two bits the event kind.
const KIND_SHIFT: u32 = 62;
const ARRIVAL: u64 = 0;
const COMPLETION: u64 = 1;
const TIMEOUT: u64 = 2;

/// Pure-kernel replay of `arrivals` on one kernel: every arrival spawns a
/// completion a service time later (deterministic per-index `mix64` draw),
/// every 1024th spawns a 30-minute keep-alive timeout, and every 8192nd a
/// far-future timeout past the wheel horizon (exercising the spill path).
fn replay(kind: KernelKind, arrivals: &[SimTime]) -> ReplayArm {
    let mut kernel: Kernel<u64> = Kernel::new(kind);
    for (i, &at) in arrivals.iter().enumerate() {
        kernel.schedule(at, (ARRIVAL << KIND_SHIFT) | i as u64);
    }
    let mut events = 0u64;
    let mut peak = kernel.len();
    // One multiply per event keeps the shared harness cost negligible next
    // to the kernel work under measurement, while staying order-sensitive:
    // swapping any two pops changes the fold.
    let mut checksum = 0xcbf2_9ce4_8422_2325u64;
    // Host-clock throughput measurement of the kernel itself (clock-exempt
    // crate); the simulated pop order is checksummed and cross-checked.
    let started = Instant::now();
    while let Some((at, payload)) = kernel.pop() {
        events += 1;
        checksum = (checksum.rotate_left(5) ^ at.as_micros()).wrapping_mul(0x0000_0100_0000_01b3)
            ^ payload;
        let index = payload & ((1 << KIND_SHIFT) - 1);
        if payload >> KIND_SHIFT == ARRIVAL {
            let service_us = mix64(index) % 50_000 + 100;
            kernel.schedule(
                at + SimDuration::from_micros(service_us),
                (COMPLETION << KIND_SHIFT) | index,
            );
            if index.is_multiple_of(1024) {
                kernel.schedule(
                    at + SimDuration::from_secs(1_800),
                    (TIMEOUT << KIND_SHIFT) | index,
                );
            }
            if index.is_multiple_of(8192) {
                // Past the 2^36 µs wheel horizon: lands in the spill list.
                kernel.schedule(
                    at + SimDuration::from_secs(20 * 3_600),
                    (TIMEOUT << KIND_SHIFT) | index,
                );
            }
        }
        peak = peak.max(kernel.len());
    }
    let wall_s = started.elapsed().as_secs_f64().max(1e-9);
    ReplayArm {
        kernel: kind,
        events,
        wall_s,
        events_per_sec: events as f64 / wall_s,
        peak_pending: peak,
        checksum: mix64(checksum),
    }
}

/// Runs the kernel benchmark. Scale follows the context: the paper-scale
/// context replays 15 minutes of p99 traffic from eight cells of ~250 hot
/// functions sharing one kernel (the fleet topology) — a ten-million-plus
/// arrival stream; `--quick` shrinks every phase.
pub fn run(ctx: &ExperimentContext) -> KernelBenchReport {
    let quick = ctx.invocations < 500;

    // Phase 1: pure-kernel replay on a shared arrival stream. Several
    // cells' streams share the kernel, as in the fleet runner: pending
    // depth scales with cells while the horizon stays 15 minutes.
    let (pure_hours, cells) = if quick { (0.002, 1) } else { (0.25, 8) };
    let spec = TraceSpec::production(pure_hours, 0.99);
    let factory = RngFactory::new(ctx.seed);
    let arrivals: Vec<SimTime> = (0..cells)
        .flat_map(|cell| spec.stream(factory.stream_indexed("kernel-bench", cell)))
        .collect();
    let replay_arms: Vec<ReplayArm> = KernelKind::ALL
        .iter()
        .map(|&k| replay(k, &arrivals))
        .collect();
    for arm in &replay_arms[1..] {
        assert_eq!(
            arm.checksum, replay_arms[0].checksum,
            "kernels diverged: {} pops differ from {}",
            arm.kernel, replay_arms[0].kernel,
        );
        assert_eq!(arm.events, replay_arms[0].events);
    }

    // Phase 2: end-to-end production replay.
    let workload = by_name("Hash").expect("static name");
    let e2e_spec = TraceSpec::production(if quick { 0.001 } else { 0.02 }, 0.9);
    let production: Vec<ProductionArm> = KernelKind::ALL
        .iter()
        .map(|&k| {
            let cfg = RunConfig::paper(
                pronghorn_core::PolicyKind::RequestCentric,
                4,
                ctx.cell_seed(&["kernel-bench", "production"]),
            )
            .with_kernel(k);
            let stream = e2e_spec.stream(RngFactory::new(cfg.seed).stream("production"));
            // Host-clock end-to-end throughput (clock-exempt crate); the
            // simulated stats are asserted identical across kernels.
            let started = Instant::now();
            let stats = run_production(&workload, &cfg, stream);
            ProductionArm {
                kernel: k,
                wall_s: started.elapsed().as_secs_f64(),
                stats,
            }
        })
        .collect();
    let production_identical = production
        .iter()
        .all(|arm| arm.stats == production[0].stats);

    // Phase 3: paired-seed grid identity.
    let grid_ctx = ExperimentContext {
        invocations: ctx.invocations.min(120),
        ..*ctx
    };
    let rates = [1, 4];
    let heap_grid = run_grid_with_kernel(
        &grid_ctx,
        &GRID_BENCHES,
        &PAPER_POLICIES,
        &rates,
        KernelKind::BinaryHeap,
    );
    let wheel_grid = run_grid_with_kernel(
        &grid_ctx,
        &GRID_BENCHES,
        &PAPER_POLICIES,
        &rates,
        KernelKind::TimerWheel,
    );
    let mut grid_identical = true;
    for bench in GRID_BENCHES {
        for &rate in &rates {
            for policy in PAPER_POLICIES {
                let a = heap_grid.cell(bench, policy, rate).expect("cell ran");
                let b = wheel_grid.cell(bench, policy, rate).expect("cell ran");
                grid_identical &= a.result.latencies_us == b.result.latencies_us
                    && a.result.provisions == b.result.provisions
                    && a.result.checkpoint_ms == b.result.checkpoint_ms
                    && a.result.snapshot_requests == b.result.snapshot_requests;
            }
        }
    }

    KernelBenchReport {
        arrivals: arrivals.len(),
        replay: replay_arms,
        production,
        production_identical,
        grid_cells: heap_grid.cells.len(),
        grid_identical,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_checksums_agree_and_wheel_processes_every_event() {
        let spec = TraceSpec::production(0.001, 0.9);
        let arrivals: Vec<SimTime> = spec
            .stream(RngFactory::new(7).stream("kernel-bench"))
            .collect();
        assert!(!arrivals.is_empty());
        let heap = replay(KernelKind::BinaryHeap, &arrivals);
        let wheel = replay(KernelKind::TimerWheel, &arrivals);
        assert_eq!(heap.checksum, wheel.checksum);
        assert_eq!(heap.events, wheel.events);
        // Arrivals + one completion each + sparse timeouts.
        assert!(heap.events >= 2 * arrivals.len() as u64);
        assert_eq!(heap.peak_pending, wheel.peak_pending);
    }

    #[test]
    fn quick_report_is_identical_and_valid_json() {
        let ctx = ExperimentContext {
            invocations: 40,
            ..ExperimentContext::quick()
        };
        let report = run(&ctx);
        assert!(report.production_identical);
        assert!(report.grid_identical);
        assert_eq!(report.replay.len(), 2);
        assert!(report.speedup() > 0.0);
        let json = report.render_json();
        assert!(json.contains("\"kernel\": \"timer-wheel\""));
        assert!(json.contains("\"stats_identical\": true"));
        assert!(json.contains("\"byte_identical\": true"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}

//! The experiment harness: one module per table and figure of the paper.
//!
//! | module | reproduces |
//! |---|---|
//! | [`fig1`] | Figure 1: JIT warm-up curves (DynamicHTML on PyPy, HTMLRendering on the JVM), premature vs ideal snapshot points |
//! | [`table1`] | Table 1: Java latency speedups vs request #1 at requests 200/400/600/800 |
//! | [`grid`] + [`fig45`] | Figures 4–5: latency CDFs, 13 benchmarks × 3 policies × 3 eviction rates |
//! | [`fig6`] | Figure 6: trace-driven CDFs at popularity percentiles 50/65/75 |
//! | [`table4`] | Table 4: policy convergence requests, checkpoint/restore times, snapshot sizes |
//! | [`table5`] | Table 5: maximum storage and network use vs the state of the art |
//! | [`fig7`] | Figure 7: per-operation orchestrator overheads vs the baseline |
//! | [`summary`] | §5.2's headline numbers: per-rate improvement counts and geometric means |
//! | [`ablation`] | the design-choice ablation study (selection strategy, γ, C, W, β misestimation, fleet amortization, input partitioning) |
//! | [`restore_ablation`] | the restore-strategy ablation: eager vs lazy vs REAP-style record-&-prefetch |
//! | [`delta_ablation`] | the delta-checkpointing ablation: full snapshots vs page-delta chains at consolidation depths 4 and 16 |
//! | [`cluster_ablation`] | the cluster ablation: {1, 4, 8} nodes × hash vs load-aware gateway routing (`BENCH_cluster.json`) |
//! | [`kernel_bench`] | timer-wheel vs binary-heap simulation-kernel benchmark at production-trace scale (`BENCH_kernel.json`) |
//! | [`provision_ablation`] | the predictive-provisioning ablation: reactive vs sliding-window/EWMA/MPC pre-restore on sparse bursty traces (`BENCH_provision.json`) |
//! | [`storage_ablation`] | the tiered-storage ablation: flat store vs SSD cache vs compression vs composed-chain prefetch (`BENCH_storage.json`) |
//!
//! Each module exposes a `run(ctx)` returning a structured result with a
//! `render()` that prints paper-style rows and a `to_csv()` for the
//! `results/` directory. The `experiments` binary wires them to the
//! command line.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod bench_report;
pub mod cluster_ablation;
pub mod delta_ablation;
pub mod fig1;
pub mod fig45;
pub mod fig6;
pub mod fig7;
pub mod grid;
pub mod kernel_bench;
pub mod provision_ablation;
pub mod render;
pub mod restore_ablation;
pub mod storage_ablation;
pub mod summary;
pub mod table1;
pub mod table4;
pub mod table5;

/// Shared experiment context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExperimentContext {
    /// Master seed; every cell derives its own seed from it.
    pub seed: u64,
    /// Invocations per closed-loop cell (paper: 500).
    pub invocations: u32,
    /// Worker threads for the grid runner.
    pub threads: usize,
}

impl Default for ExperimentContext {
    fn default() -> Self {
        ExperimentContext {
            seed: 0x9e37_79b9,
            invocations: 500,
            threads: 8,
        }
    }
}

impl ExperimentContext {
    /// A reduced-scale context for tests and smoke runs.
    pub fn quick() -> Self {
        ExperimentContext {
            seed: 0x9e37_79b9,
            invocations: 150,
            threads: 4,
        }
    }

    /// The worker-thread count the grid runners actually use: the
    /// requested count, capped at the machine's available parallelism.
    /// (An earlier version capped at a hardcoded 32, which both
    /// over-subscribed small CI runners and silently ignored bigger
    /// machines.) Zero is invalid — the CLI rejects it with a usage
    /// error, and a library caller that forces it gets a loud panic
    /// instead of a grid that silently runs nothing.
    ///
    /// Thread count never affects results: every cell derives its own
    /// seed and the collectors reorder by cell index.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn effective_threads(&self) -> usize {
        assert!(self.threads >= 1, "threads must be >= 1 (got 0)");
        self.threads.min(Self::hardware_threads())
    }

    /// The machine's available parallelism, or 1 when it cannot be
    /// probed (the platform may not expose it).
    pub fn hardware_threads() -> usize {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    }

    /// Why the requested thread count was reduced, if it was — surfaced
    /// in the run banner so a capped grid is visible rather than silent.
    pub fn thread_cap_reason(&self) -> Option<String> {
        let effective = self.effective_threads();
        (effective < self.threads).then(|| {
            format!(
                "requested {} worker threads, capped at {} (available parallelism)",
                self.threads, effective
            )
        })
    }

    /// Derives a per-cell seed from labels.
    pub fn cell_seed(&self, labels: &[&str]) -> u64 {
        let mut h = pronghorn_sim::hash::Fnv1a::new();
        h.write_u64(self.seed);
        for label in labels {
            h.write(label.as_bytes());
            h.write(b"/");
        }
        pronghorn_sim::hash::mix64(h.finish())
    }
}

//! The delta-checkpointing ablation: full snapshots vs page-delta chains.
//!
//! Sweeps the 13 paper benchmarks × the §5.1 eviction rates under the
//! request-centric policy, once per delta arm: full snapshots only, delta
//! chains consolidated at depth 4, and delta chains consolidated at depth
//! 16. Cells that differ only in arm share a seed, so the comparison is
//! paired exactly like the policy grid. The claim under test: a checkpoint
//! of a restored worker only needs to persist the pages its requests
//! dirtied, which cuts upload bytes several-fold — while the engine's
//! RNG-lockstep guarantee keeps client-visible latencies byte-identical
//! to the full-snapshot arm.

use crate::bench_report::{BenchReport, JsonObj};
use crate::fig45::{FIG4_BENCHMARKS, FIG5_BENCHMARKS};
use crate::grid::PAPER_RATES;
use crate::render::write_results_csv;
use crate::ExperimentContext;
use pronghorn_checkpoint::DeltaPolicy;
use pronghorn_core::PolicyKind;
use pronghorn_metrics::{Table, TableStyle};
use pronghorn_platform::{run_closed_loop, RunConfig, RunResult};
use pronghorn_workloads::by_name;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One arm of the ablation: a delta policy under a stable label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaArm {
    /// Every checkpoint persists the full image (the pre-delta behavior).
    Full,
    /// Delta chains consolidated into a fresh full snapshot at depth 4.
    DeltaK4,
    /// Delta chains consolidated at depth 16 (longer chains, fewer
    /// consolidating full uploads, more links to compose on restore).
    DeltaK16,
}

impl DeltaArm {
    /// All arms, in sweep order.
    pub const ALL: [DeltaArm; 3] = [DeltaArm::Full, DeltaArm::DeltaK4, DeltaArm::DeltaK16];

    /// Stable CSV/JSON label.
    pub fn label(&self) -> &'static str {
        match self {
            DeltaArm::Full => "full",
            DeltaArm::DeltaK4 => "delta-k4",
            DeltaArm::DeltaK16 => "delta-k16",
        }
    }

    /// The [`DeltaPolicy`] this arm runs under.
    pub fn policy(&self) -> DeltaPolicy {
        match self {
            DeltaArm::Full => DeltaPolicy::Disabled,
            DeltaArm::DeltaK4 => DeltaPolicy::Enabled { max_depth: 4 },
            DeltaArm::DeltaK16 => DeltaPolicy::Enabled { max_depth: 16 },
        }
    }
}

/// One benchmark × rate × arm measurement.
#[derive(Debug, Clone)]
pub struct DeltaCell {
    /// Benchmark name.
    pub workload: String,
    /// Eviction rate.
    pub rate: u32,
    /// Delta arm the cell ran under.
    pub arm: DeltaArm,
    /// Full run measurements.
    pub result: RunResult,
}

/// A completed delta ablation.
#[derive(Debug, Clone, Default)]
pub struct DeltaAblation {
    /// All cells, in completion order (lookups are keyed, so order does
    /// not affect any rendered output).
    pub cells: Vec<DeltaCell>,
    /// Real wall-clock time the sweep took, seconds.
    pub wall_clock_s: f64,
}

/// The paper's 13 benchmarks (Figure 4's nine Python + Figure 5's four
/// Java), in figure order.
pub fn benchmarks() -> Vec<&'static str> {
    FIG4_BENCHMARKS
        .iter()
        .chain(FIG5_BENCHMARKS.iter())
        .copied()
        .collect()
}

/// Runs the full ablation: 13 benchmarks × paper rates × all arms.
pub fn run(ctx: &ExperimentContext) -> DeltaAblation {
    run_for(ctx, &benchmarks(), &PAPER_RATES)
}

/// Runs the ablation over an explicit benchmark and rate set.
///
/// # Panics
///
/// Panics if a benchmark name is unknown — experiment tables are static
/// and must fail loudly.
pub fn run_for(ctx: &ExperimentContext, benchmarks: &[&str], rates: &[u32]) -> DeltaAblation {
    for name in benchmarks {
        assert!(by_name(name).is_some(), "unknown benchmark {name}");
    }
    let mut tasks: Vec<(String, u32, DeltaArm)> = Vec::new();
    for &bench in benchmarks {
        for &rate in rates {
            for arm in DeltaArm::ALL {
                tasks.push((bench.to_string(), rate, arm));
            }
        }
    }
    let next = AtomicUsize::new(0);
    let cells = Mutex::new(Vec::with_capacity(tasks.len()));
    let threads = ctx.effective_threads();
    let started = std::time::Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some((bench, rate, arm)) = tasks.get(i) else {
                    break;
                };
                let workload = by_name(bench).expect("validated above");
                // Seed shared across arms of the same (bench, rate): the
                // paired-comparison trick of the policy grid.
                let seed = ctx.cell_seed(&["delta", bench, &rate.to_string()]);
                let cfg = RunConfig::paper(PolicyKind::RequestCentric, *rate, seed)
                    .with_invocations(ctx.invocations)
                    .with_delta(arm.policy());
                let result = run_closed_loop(&workload, &cfg);
                cells.lock().expect("no poisoned lock").push(DeltaCell {
                    workload: bench.clone(),
                    rate: *rate,
                    arm: *arm,
                    result,
                });
            });
        }
    });
    DeltaAblation {
        cells: cells.into_inner().expect("no poisoned lock"),
        wall_clock_s: started.elapsed().as_secs_f64(),
    }
}

/// Pooled per-arm upload/chain accounting.
#[derive(Debug, Clone)]
pub struct ArmAggregate {
    /// The arm.
    pub arm: DeltaArm,
    /// Checkpoints taken across every cell of the arm.
    pub checkpoints: usize,
    /// Nominal bytes uploaded to the store across every cell.
    pub uploaded_bytes: u64,
    /// Delta frames persisted.
    pub deltas: u64,
    /// Full chain roots persisted (every checkpoint, for the full arm).
    pub roots: u64,
    /// Chain consolidations (deltas rebased into a fresh full root).
    pub consolidations: u64,
    /// Deepest chain observed in any cell.
    pub max_depth: u32,
    /// Restores that composed a multi-link chain.
    pub composed_restores: u64,
}

impl DeltaAblation {
    /// Finds a cell.
    pub fn cell(&self, workload: &str, rate: u32, arm: DeltaArm) -> Option<&DeltaCell> {
        self.cells
            .iter()
            .find(|c| c.workload == workload && c.rate == rate && c.arm == arm)
    }

    /// Distinct workloads present, in first-seen deterministic order.
    pub fn workloads(&self) -> Vec<String> {
        let mut seen = Vec::new();
        for bench in benchmarks() {
            if self.cells.iter().any(|c| c.workload == bench) && !seen.contains(&bench.to_string())
            {
                seen.push(bench.to_string());
            }
        }
        // Any non-paper benchmarks (tests) follow, in cell order.
        for cell in &self.cells {
            if !seen.contains(&cell.workload) {
                seen.push(cell.workload.clone());
            }
        }
        seen
    }

    /// Distinct rates present, ascending.
    pub fn rates(&self) -> Vec<u32> {
        let mut rates: Vec<u32> = self.cells.iter().map(|c| c.rate).collect();
        rates.sort_unstable();
        rates.dedup();
        rates
    }

    /// Nominal bytes a benchmark's checkpoints uploaded under `arm`,
    /// pooled across every rate present.
    pub fn uploaded_bytes(&self, workload: &str, arm: DeltaArm) -> u64 {
        self.cells
            .iter()
            .filter(|c| c.workload == workload && c.arm == arm)
            .map(|c| c.result.overheads.nominal_bytes_uploaded)
            .sum()
    }

    /// How many times fewer bytes `arm` uploaded than the full arm for one
    /// benchmark (pooled across rates); NaN when the arm uploaded nothing.
    pub fn bytes_ratio(&self, workload: &str, arm: DeltaArm) -> f64 {
        let full = self.uploaded_bytes(workload, DeltaArm::Full);
        let delta = self.uploaded_bytes(workload, arm);
        if delta == 0 {
            return f64::NAN;
        }
        full as f64 / delta as f64
    }

    /// Benchmarks where `arm` uploaded at least `factor`× fewer bytes than
    /// the full arm, as `(wins, total)`.
    pub fn byte_wins(&self, arm: DeltaArm, factor: f64) -> (usize, usize) {
        let mut wins = 0;
        let mut total = 0;
        for w in self.workloads() {
            let ratio = self.bytes_ratio(&w, arm);
            if !ratio.is_finite() {
                continue;
            }
            total += 1;
            if ratio >= factor {
                wins += 1;
            }
        }
        (wins, total)
    }

    /// Cells where `arm`'s median end-to-end latency exceeds the paired
    /// full arm's. The engine's RNG-lockstep guarantee makes the paired
    /// latency streams byte-identical, so this must be zero — anything
    /// else is a determinism bug, not noise.
    pub fn latency_regressions(&self, arm: DeltaArm) -> usize {
        self.cells
            .iter()
            .filter(|c| c.arm == arm)
            .filter(|c| {
                self.cell(&c.workload, c.rate, DeltaArm::Full)
                    .is_some_and(|full| c.result.median_us() > full.result.median_us())
            })
            .count()
    }

    /// Pooled per-arm aggregates, in [`DeltaArm::ALL`] order.
    pub fn arm_aggregates(&self) -> Vec<ArmAggregate> {
        DeltaArm::ALL
            .iter()
            .map(|&arm| {
                let cells: Vec<&DeltaCell> = self.cells.iter().filter(|c| c.arm == arm).collect();
                ArmAggregate {
                    arm,
                    checkpoints: cells.iter().map(|c| c.result.checkpoint_ms.len()).sum(),
                    uploaded_bytes: cells
                        .iter()
                        .map(|c| c.result.overheads.nominal_bytes_uploaded)
                        .sum(),
                    deltas: cells.iter().map(|c| c.result.chain.deltas).sum(),
                    roots: cells.iter().map(|c| c.result.chain.roots).sum(),
                    consolidations: cells.iter().map(|c| c.result.chain.consolidations).sum(),
                    max_depth: cells
                        .iter()
                        .map(|c| c.result.chain.max_depth)
                        .max()
                        .unwrap_or(0),
                    composed_restores: cells.iter().map(|c| c.result.chain.composed_restores).sum(),
                }
            })
            .collect()
    }

    /// Paper-style rendering: per-arm pooled stats, then the headline
    /// byte-reduction win counts.
    pub fn render(&self) -> String {
        let mut table = Table::new(vec![
            "Arm",
            "Checkpoints",
            "Uploaded",
            "Deltas",
            "Roots",
            "Consolidations",
            "Max depth",
            "Composed restores",
        ]);
        for agg in self.arm_aggregates() {
            table.row(vec![
                agg.arm.label().to_string(),
                agg.checkpoints.to_string(),
                format!("{:.1} MB", agg.uploaded_bytes as f64 / 1e6),
                agg.deltas.to_string(),
                agg.roots.to_string(),
                agg.consolidations.to_string(),
                agg.max_depth.to_string(),
                agg.composed_restores.to_string(),
            ]);
        }
        let mut out = format!(
            "Delta-checkpointing ablation (request-centric policy)\n\n{}\n",
            table.render(TableStyle::Plain)
        );
        for arm in [DeltaArm::DeltaK4, DeltaArm::DeltaK16] {
            let (w5, total) = self.byte_wins(arm, 5.0);
            let (w2, _) = self.byte_wins(arm, 2.0);
            out.push_str(&format!(
                "{}: uploads >=5x fewer bytes than full on {w5}/{total} benchmarks \
                 (>=2x on {w2}); median-latency regressions: {}\n",
                arm.label(),
                self.latency_regressions(arm),
            ));
        }
        out
    }

    /// CSV form: one row per cell, in fixed benchmark × rate × arm order
    /// (byte-identical across same-seed reruns).
    pub fn to_csv(&self) -> String {
        let mut table = Table::new(vec![
            "workload",
            "rate",
            "arm",
            "checkpoints",
            "uploaded_bytes",
            "deltas",
            "roots",
            "consolidations",
            "max_depth",
            "composed_restores",
            "restore_bytes",
            "median_latency_us",
            "p99_latency_us",
        ]);
        for w in self.workloads() {
            for rate in self.rates() {
                for arm in DeltaArm::ALL {
                    let Some(cell) = self.cell(&w, rate, arm) else {
                        continue;
                    };
                    table.row(vec![
                        w.clone(),
                        rate.to_string(),
                        arm.label().to_string(),
                        cell.result.checkpoint_ms.len().to_string(),
                        cell.result.overheads.nominal_bytes_uploaded.to_string(),
                        cell.result.chain.deltas.to_string(),
                        cell.result.chain.roots.to_string(),
                        cell.result.chain.consolidations.to_string(),
                        cell.result.chain.max_depth.to_string(),
                        cell.result.chain.composed_restores.to_string(),
                        cell.result.restore_bytes().to_string(),
                        csv_f64(cell.result.median_us()),
                        csv_f64(cell.result.percentile_us(99.0)),
                    ]);
                }
            }
        }
        table.to_csv()
    }

    /// Writes `results/delta_ablation.csv`.
    pub fn save(&self) -> std::io::Result<std::path::PathBuf> {
        write_results_csv("delta_ablation.csv", &self.to_csv())
    }

    /// Writes `results/BENCH_delta.json`: per-arm upload totals and the
    /// headline byte-reduction win counts, in the shared [`BenchReport`]
    /// schema.
    pub fn save_bench_report(&self) -> std::io::Result<std::path::PathBuf> {
        let mut report = BenchReport::new("delta")
            .wall_clock(self.wall_clock_s)
            .config("byte_win_threshold_x", "5.0");
        for agg in self.arm_aggregates() {
            let (wins, total) = self.byte_wins(agg.arm, 5.0);
            report.arm(
                JsonObj::new()
                    .str("arm", agg.arm.label())
                    .uint("checkpoints", agg.checkpoints as u64)
                    .uint("uploaded_bytes", agg.uploaded_bytes)
                    .uint("deltas", agg.deltas)
                    .uint("roots", agg.roots)
                    .uint("consolidations", agg.consolidations)
                    .uint("max_depth", u64::from(agg.max_depth))
                    .uint("composed_restores", agg.composed_restores)
                    .uint("five_x_byte_wins", wins as u64)
                    .uint("benchmarks", total as u64)
                    .uint(
                        "latency_regressions",
                        self.latency_regressions(agg.arm) as u64,
                    ),
            );
        }
        report.save("BENCH_delta.json")
    }
}

/// Formats a float for CSV; NaN renders as the empty field.
fn csv_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        String::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_ablation() -> DeltaAblation {
        let ctx = ExperimentContext {
            invocations: 120,
            ..ExperimentContext::quick()
        };
        run_for(&ctx, &["DFS", "Compression", "Hash"], &[1, 4])
    }

    #[test]
    fn ablation_runs_every_arm_per_cell() {
        let ablation = quick_ablation();
        assert_eq!(ablation.cells.len(), 3 * 2 * 3);
        assert_eq!(ablation.workloads(), vec!["DFS", "Compression", "Hash"]);
        assert_eq!(ablation.rates(), vec![1, 4]);
        for arm in DeltaArm::ALL {
            let cell = ablation.cell("DFS", 1, arm).unwrap();
            let deltas = cell.result.chain.deltas;
            match arm {
                DeltaArm::Full => assert_eq!(deltas, 0),
                _ => assert!(deltas > 0, "{} cut no deltas", arm.label()),
            }
        }
    }

    #[test]
    fn delta_arms_upload_several_fold_fewer_bytes() {
        let ablation = quick_ablation();
        for w in ablation.workloads() {
            let r4 = ablation.bytes_ratio(&w, DeltaArm::DeltaK4);
            let r16 = ablation.bytes_ratio(&w, DeltaArm::DeltaK16);
            assert!(r4 > 2.0, "{w}: k4 ratio {r4}");
            // Longer chains amortize the consolidating full uploads.
            assert!(r16 > r4, "{w}: k16 {r16} <= k4 {r4}");
        }
        // The PyPy benchmarks carry the headline >=5x claim — their
        // working set is a small fraction of the ~55 MB image. The JVM's
        // smaller image dirties proportionally more pages per request, so
        // Hash lands in the 2-5x band instead.
        for w in ["DFS", "Compression"] {
            let r16 = ablation.bytes_ratio(w, DeltaArm::DeltaK16);
            assert!(r16 >= 5.0, "{w}: k16 ratio {r16}");
        }
        let (wins, total) = ablation.byte_wins(DeltaArm::DeltaK16, 5.0);
        assert_eq!((wins, total), (2, 3));
        let (wins2, _) = ablation.byte_wins(DeltaArm::DeltaK16, 2.0);
        assert_eq!(wins2, 3);
    }

    #[test]
    fn delta_arms_never_shift_latencies() {
        let ablation = quick_ablation();
        for arm in [DeltaArm::DeltaK4, DeltaArm::DeltaK16] {
            assert_eq!(ablation.latency_regressions(arm), 0);
        }
        // Stronger than "no regression": the paired latency streams are
        // byte-identical (the engine's RNG-lockstep guarantee).
        for w in ablation.workloads() {
            for rate in ablation.rates() {
                let full = &ablation.cell(&w, rate, DeltaArm::Full).unwrap().result;
                for arm in [DeltaArm::DeltaK4, DeltaArm::DeltaK16] {
                    let delta = &ablation.cell(&w, rate, arm).unwrap().result;
                    assert_eq!(full.latencies_us, delta.latencies_us, "{w} rate {rate}");
                }
            }
        }
    }

    #[test]
    fn csv_is_deterministic_and_shaped() {
        let ablation = quick_ablation();
        let csv = ablation.to_csv();
        assert_eq!(csv.lines().count(), 1 + 3 * 2 * 3);
        assert!(csv.starts_with("workload,rate,arm,"));
        // Same-seed rerun produces byte-identical CSV.
        let again = quick_ablation();
        assert_eq!(csv, again.to_csv());
    }
}

//! Figures 4 and 5: end-to-end latency CDFs across the evaluation grid.
//!
//! Figure 4: the nine Python benchmarks (rows) × eviction rates 1/4/20
//! (columns) × three orchestration strategies (curves). Figure 5: the four
//! Java benchmarks over the same grid. 500 invocations per cell, with the
//! §5.1 input variance.

use crate::grid::{run_grid, Grid, PAPER_POLICIES, PAPER_RATES};
use crate::render::{ascii_cdf, write_results_csv};
use crate::ExperimentContext;
use pronghorn_metrics::Table;

/// Figure 4's benchmark rows, paper order.
pub const FIG4_BENCHMARKS: [&str; 9] = [
    "BFS",
    "DFS",
    "DynamicHTML",
    "MST",
    "PageRank",
    "Compression",
    "Uploader",
    "Thumbnailer",
    "Video",
];

/// Figure 5's benchmark rows, paper order.
pub const FIG5_BENCHMARKS: [&str; 4] = ["MatrixMult", "Hash", "HTMLRendering", "WordCount"];

/// A completed figure: the grid plus which figure it is.
#[derive(Debug, Clone)]
pub struct FigureResult {
    /// `4` or `5`.
    pub figure: u8,
    /// The underlying grid.
    pub grid: Grid,
}

/// Runs Figure 4 (Python benchmarks).
pub fn run_fig4(ctx: &ExperimentContext) -> FigureResult {
    FigureResult {
        figure: 4,
        grid: run_grid(ctx, &FIG4_BENCHMARKS, &PAPER_POLICIES, &PAPER_RATES),
    }
}

/// Runs Figure 5 (Java benchmarks).
pub fn run_fig5(ctx: &ExperimentContext) -> FigureResult {
    FigureResult {
        figure: 5,
        grid: run_grid(ctx, &FIG5_BENCHMARKS, &PAPER_POLICIES, &PAPER_RATES),
    }
}

impl FigureResult {
    /// Renders every panel as an ASCII CDF plot plus a median table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Figure {}: end-to-end request latency CDFs ({} invocations per cell)\n\n",
            self.figure,
            self.grid
                .cells
                .first()
                .map(|c| c.result.latencies_us.len())
                .unwrap_or(0)
        );
        for workload in self.grid.workloads() {
            for &rate in &PAPER_RATES {
                out.push_str(&format!(
                    "--- {workload} | eviction every {rate} request(s) ---\n"
                ));
                let mut curves = Vec::new();
                for &policy in &PAPER_POLICIES {
                    if let Some(cell) = self.grid.cell(&workload, policy, rate) {
                        if let Some(cdf) = cell.result.cdf() {
                            curves.push((policy.label(), cdf));
                        }
                    }
                }
                let refs: Vec<(&str, &pronghorn_metrics::Cdf)> =
                    curves.iter().map(|(l, c)| (*l, c)).collect();
                out.push_str(&ascii_cdf(&refs, 64, 12));
                for &policy in &PAPER_POLICIES {
                    out.push_str(&format!(
                        "     median[{}] = {:.0}µs\n",
                        policy.label(),
                        self.grid.median(&workload, policy, rate)
                    ));
                }
                if let Some(imp) = self.grid.improvement_pct(&workload, rate) {
                    out.push_str(&format!(
                        "     request-centric vs after-1st: {imp:+.1}% median\n"
                    ));
                }
                out.push('\n');
            }
        }
        out
    }

    /// Medians CSV (one row per cell) — the numbers behind the plots.
    pub fn to_csv(&self) -> String {
        let mut table = Table::new(vec![
            "workload",
            "rate",
            "policy",
            "median_us",
            "p25_us",
            "p75_us",
            "p90_us",
        ]);
        for cell in &self.grid.cells {
            table.row(vec![
                cell.workload.clone(),
                cell.rate.to_string(),
                cell.policy.label().to_string(),
                format!("{:.1}", cell.result.median_us()),
                format!("{:.1}", cell.result.percentile_us(25.0)),
                format!("{:.1}", cell.result.percentile_us(75.0)),
                format!("{:.1}", cell.result.percentile_us(90.0)),
            ]);
        }
        table.to_csv()
    }

    /// Writes `results/fig4.csv` / `results/fig5.csv`.
    pub fn save(&self) -> std::io::Result<std::path::PathBuf> {
        write_results_csv(&format!("fig{}.csv", self.figure), &self.to_csv())
    }

    /// Full latency dump CSV (for re-plotting exact CDFs).
    pub fn to_latency_csv(&self) -> String {
        let mut table = Table::new(vec!["workload", "rate", "policy", "request", "latency_us"]);
        for cell in &self.grid.cells {
            for (i, lat) in cell.result.latencies_us.iter().enumerate() {
                table.row(vec![
                    cell.workload.clone(),
                    cell.rate.to_string(),
                    cell.policy.label().to_string(),
                    i.to_string(),
                    format!("{lat:.1}"),
                ]);
            }
        }
        table.to_csv()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_ctx() -> ExperimentContext {
        ExperimentContext {
            invocations: 60,
            ..ExperimentContext::quick()
        }
    }

    #[test]
    fn fig5_runs_all_cells() {
        let result = run_fig5(&tiny_ctx());
        assert_eq!(result.figure, 5);
        assert_eq!(result.grid.cells.len(), 4 * 3 * 3);
        let text = result.render();
        assert!(text.contains("HTMLRendering"));
        assert!(text.contains("request-centric"));
    }

    #[test]
    fn csv_has_one_row_per_cell() {
        let result = run_fig5(&tiny_ctx());
        let csv = result.to_csv();
        assert_eq!(csv.lines().count(), 1 + 36);
    }

    #[test]
    fn fig4_benchmark_list_matches_paper_rows() {
        assert_eq!(FIG4_BENCHMARKS.len(), 9);
        assert_eq!(FIG5_BENCHMARKS.len(), 4);
        for b in FIG4_BENCHMARKS.iter().chain(FIG5_BENCHMARKS.iter()) {
            assert!(pronghorn_workloads::by_name(b).is_some(), "{b} missing");
        }
    }
}

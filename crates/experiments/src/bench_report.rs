//! The shared `BENCH_*.json` schema plus `BENCH_grid.json` — the
//! machine-readable performance report the `summary` command writes next
//! to `summary.csv`.
//!
//! Every benchmark report in `results/` ( `BENCH_grid.json`,
//! `BENCH_restore.json`, `BENCH_delta.json`, `BENCH_cluster.json`,
//! `BENCH_kernel.json`, `BENCH_provision.json`) is rendered through
//! [`BenchReport`], so they all share one header:
//!
//! ```json
//! {
//!   "report": "pronghorn-<name>",
//!   "schema_version": 2,
//!   "wall_clock_s": 1.234,
//!   "config": { ... },
//!   "arms": [ {...}, {...} ],
//!   ...report-specific trailing sections...
//! }
//! ```
//!
//! `config` records the knobs the run was taken under; `arms` is the
//! per-variant comparison the report exists to make. Individual arm
//! objects are built with [`JsonObj`], which renders NaN as `null` so a
//! cell that never exercised a path stays machine-readable.
//!
//! This module also owns the grid report proper. Two kinds of numbers
//! land in `BENCH_grid.json`, both strictly observational (simulated
//! results stay bit-identical for a fixed seed):
//!
//! * **Grid wall-clock and codec counters** — how long each figure grid
//!   took on the host, plus the [`CodecStats`] merged across every cell:
//!   encodes performed vs skipped by dirty tracking, bytes encoded vs
//!   avoided, allocations saved by scratch reuse.
//! * **An inline codec micro-benchmark** — the legacy encode path (fresh
//!   allocation, full payload copy, byte-at-a-time FNV over the whole
//!   frame, exactly what the codec did before the zero-copy fast path)
//!   against the current one, at 10/32/64 MB payloads, reported as MB/s
//!   and a speedup ratio.

use crate::grid::Grid;
use crate::render::write_results_file;
use bytes::Bytes;
use pronghorn_checkpoint::{CodecStats, Encoder, Snapshot, SnapshotMeta};
use pronghorn_sim::hash::{fnv1a, fnv1a_wide};
use std::fmt::Write as _;
use std::time::Instant;

/// Version stamped into every `BENCH_*.json` header. Bump when the
/// shared header shape (not a report's arm fields) changes.
pub const BENCH_SCHEMA_VERSION: u32 = 2;

/// A single-line JSON object builder for arm entries and config values.
///
/// Keys and string values are trusted (static labels) and are not
/// escaped. Floats render at a caller-chosen precision, with NaN and
/// infinities as `null` — the JSON-safe spelling of "this cell never
/// exercised the path".
#[derive(Debug, Clone, Default)]
pub struct JsonObj {
    fields: Vec<(String, String)>,
}

impl JsonObj {
    /// An empty object.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(mut self, key: &str, raw: String) -> Self {
        self.fields.push((key.to_string(), raw));
        self
    }

    /// A quoted string field.
    pub fn str(self, key: &str, value: &str) -> Self {
        self.push(key, format!("\"{value}\""))
    }

    /// An unsigned integer field.
    pub fn uint(self, key: &str, value: u64) -> Self {
        self.push(key, value.to_string())
    }

    /// A boolean field.
    pub fn bool(self, key: &str, value: bool) -> Self {
        self.push(key, value.to_string())
    }

    /// A float field at `precision` decimal places; non-finite values
    /// render as `null`.
    pub fn float(self, key: &str, value: f64, precision: usize) -> Self {
        let raw = if value.is_finite() {
            format!("{value:.precision$}")
        } else {
            "null".to_string()
        };
        self.push(key, raw)
    }

    /// A pre-rendered JSON value (nested array or object).
    pub fn raw(self, key: &str, value: String) -> Self {
        self.push(key, value)
    }

    /// Renders the object on one line: `{"a": 1, "b": "x"}`.
    pub fn render(&self) -> String {
        let body: Vec<String> = self
            .fields
            .iter()
            .map(|(k, v)| format!("\"{k}\": {v}"))
            .collect();
        format!("{{{}}}", body.join(", "))
    }
}

/// Builder for the shared `BENCH_*.json` document described in the
/// module docs: common header, `config` map, `arms` array, then any
/// report-specific trailing sections.
#[derive(Debug, Clone)]
pub struct BenchReport {
    name: &'static str,
    wall_clock_s: Option<f64>,
    config: Vec<(String, String)>,
    arms: Vec<String>,
    sections: Vec<(String, String)>,
}

impl BenchReport {
    /// Starts a report; `name` lands in the header as
    /// `"report": "pronghorn-<name>"`.
    pub fn new(name: &'static str) -> Self {
        Self {
            name,
            wall_clock_s: None,
            config: Vec::new(),
            arms: Vec::new(),
            sections: Vec::new(),
        }
    }

    /// Records the host wall-clock the sweep took.
    pub fn wall_clock(mut self, seconds: f64) -> Self {
        self.wall_clock_s = Some(seconds);
        self
    }

    /// Adds one `config` entry; `raw` is a pre-rendered JSON value.
    pub fn config(mut self, key: &str, raw: impl Into<String>) -> Self {
        self.config.push((key.to_string(), raw.into()));
        self
    }

    /// Appends one arm to the `arms` array.
    pub fn arm(&mut self, arm: JsonObj) -> &mut Self {
        self.arms.push(arm.render());
        self
    }

    /// Appends a report-specific section after `arms`; `raw` is a
    /// pre-rendered JSON value.
    pub fn section(&mut self, key: &str, raw: impl Into<String>) -> &mut Self {
        self.sections.push((key.to_string(), raw.into()));
        self
    }

    /// Renders the full document.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\n  \"report\": \"pronghorn-{}\",\n  \"schema_version\": {BENCH_SCHEMA_VERSION},\n",
            self.name
        );
        if let Some(s) = self.wall_clock_s {
            let _ = writeln!(out, "  \"wall_clock_s\": {s:.3},");
        }
        let config: Vec<String> = self
            .config
            .iter()
            .map(|(k, v)| format!("\"{k}\": {v}"))
            .collect();
        let _ = writeln!(out, "  \"config\": {{{}}},", config.join(", "));
        out.push_str("  \"arms\": [\n");
        for (i, arm) in self.arms.iter().enumerate() {
            out.push_str("    ");
            out.push_str(arm);
            if i + 1 < self.arms.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]");
        for (key, raw) in &self.sections {
            let _ = write!(out, ",\n  \"{key}\": {raw}");
        }
        out.push_str("\n}\n");
        out
    }

    /// Renders and writes `results/<filename>`, returning the path.
    pub fn save(&self, filename: &str) -> std::io::Result<std::path::PathBuf> {
        write_results_file(filename, &self.render())
    }
}

/// Payload sizes exercised by the inline micro-benchmark, in MiB.
pub const MICRO_SIZES_MB: [usize; 3] = [10, 32, 64];

/// One row of the inline legacy-vs-fast codec comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MicroRow {
    /// Payload size, MiB.
    pub payload_mb: usize,
    /// Pre-fast-path encode throughput (alloc + copy + byte-wise FNV).
    pub legacy_encode_mb_s: f64,
    /// Current encode throughput (scratch reuse + zero-copy framing).
    pub fast_encode_mb_s: f64,
    /// Single-pass payload checksum throughput (word-folded FNV).
    pub checksum_mb_s: f64,
    /// Zero-copy decode throughput (`Snapshot::from_shared`).
    pub decode_mb_s: f64,
}

impl MicroRow {
    /// Encode-path speedup of the fast path over the legacy path.
    pub fn encode_speedup(&self) -> f64 {
        if self.legacy_encode_mb_s > 0.0 {
            self.fast_encode_mb_s / self.legacy_encode_mb_s
        } else {
            0.0
        }
    }
}

/// Best-of-five wall-clock nanoseconds for one call of `f`.
fn best_ns<F: FnMut()>(mut f: F) -> f64 {
    f(); // warm-up (page in the payload, populate scratch capacity)
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_nanos() as f64);
    }
    best.max(1.0)
}

fn mb_per_s(bytes: usize, ns: f64) -> f64 {
    bytes as f64 / (ns / 1e9) / 1e6
}

/// A deterministic incompressible-ish payload of `len` bytes.
pub fn pattern_payload(len: usize) -> Bytes {
    let mut buf = vec![0u8; len];
    let mut x: u64 = 0x9e37_79b9_7f4a_7c15;
    for chunk in buf.chunks_exact_mut(8) {
        x = x.wrapping_mul(0xd129_0d3b_3f82_ab1d).wrapping_add(1);
        chunk.copy_from_slice(&x.to_le_bytes());
    }
    Bytes::from(buf)
}

/// The codec's pre-fast-path encode, replicated byte for byte in spirit:
/// a fresh buffer every call, the payload copied into it, and a
/// byte-at-a-time FNV computed over the entire frame. Kept public so the
/// `codec_throughput` bench and this module's inline micro-bench measure
/// the same baseline.
pub fn legacy_encode(snapshot: &Snapshot, payload: &Bytes) -> Bytes {
    let mut buf = Vec::with_capacity(payload.len() + 128);
    buf.extend_from_slice(b"PRONGSNAP");
    buf.extend_from_slice(&snapshot.id.0.to_le_bytes());
    buf.extend_from_slice(&(snapshot.meta.request_number).to_le_bytes());
    buf.extend_from_slice(&snapshot.nominal_size.to_le_bytes());
    buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    buf.extend_from_slice(payload);
    let sum = fnv1a(&buf);
    buf.extend_from_slice(&sum.to_le_bytes());
    Bytes::from(buf)
}

/// Runs the inline micro-benchmark at `mb` MiB.
pub fn micro_row(mb: usize) -> MicroRow {
    let len = mb << 20;
    let payload = pattern_payload(len);
    let meta = SnapshotMeta {
        function: "bench".to_string(),
        request_number: 7,
        runtime: "JVM".to_string(),
    };
    let snapshot = Snapshot::with_nonce(meta, payload.clone(), len as u64, 1);
    let mut enc = Encoder::new();

    let legacy_ns = best_ns(|| {
        std::hint::black_box(legacy_encode(&snapshot, &payload));
    });
    let fast_ns = best_ns(|| {
        std::hint::black_box(snapshot.to_frame_with(&mut enc));
    });
    let checksum_ns = best_ns(|| {
        std::hint::black_box(fnv1a_wide(&payload));
    });
    let frame = snapshot.to_frame_with(&mut enc).to_bytes();
    let decode_ns = best_ns(|| {
        std::hint::black_box(Snapshot::from_shared(&frame).expect("round trip"));
    });

    MicroRow {
        payload_mb: mb,
        legacy_encode_mb_s: mb_per_s(len, legacy_ns),
        fast_encode_mb_s: mb_per_s(len, fast_ns),
        checksum_mb_s: mb_per_s(len, checksum_ns),
        decode_mb_s: mb_per_s(len, decode_ns),
    }
}

/// Merges the codec counters of every cell in a grid.
pub fn grid_codec(grid: &Grid) -> CodecStats {
    let mut total = CodecStats::default();
    for cell in &grid.cells {
        total.merge(&cell.result.codec);
    }
    total
}

/// One [`CodecStats`] block as a single-line JSON object.
fn codec_obj(s: &CodecStats) -> JsonObj {
    JsonObj::new()
        .uint("encodes", s.encodes)
        .uint("encode_skips", s.encode_skips)
        .float("skip_ratio", s.skip_ratio(), 4)
        .uint("bytes_encoded", s.bytes_encoded)
        .uint("bytes_skipped", s.bytes_skipped)
        .uint("allocations_avoided", s.allocations_avoided)
        .uint("encode_ns", s.encode_ns)
        .uint("checksum_ns", s.checksum_ns)
}

/// Renders the report as a JSON document in the shared [`BenchReport`]
/// schema: one arm per labelled grid, with the pooled codec totals and
/// the micro-benchmark as trailing sections. `grids` pairs a label (for
/// example `"fig4"`) with the grid it names; `micro` is typically the
/// output of [`micro_row`] over [`MICRO_SIZES_MB`].
pub fn render_json(grids: &[(&str, &Grid)], micro: &[MicroRow]) -> String {
    let mut report =
        BenchReport::new("grid").config("micro_payload_mb", format!("{MICRO_SIZES_MB:?}"));
    let mut total = CodecStats::default();
    for (name, grid) in grids {
        let codec = grid_codec(grid);
        total.merge(&codec);
        report.arm(
            JsonObj::new()
                .str("name", name)
                .uint("cells", grid.cells.len() as u64)
                .float("wall_clock_s", grid.wall_clock_s, 3)
                .raw("codec", codec_obj(&codec).render()),
        );
    }
    report.section("codec_total", codec_obj(&total).render());
    let rows: Vec<String> = micro
        .iter()
        .map(|row| {
            JsonObj::new()
                .uint("payload_mb", row.payload_mb as u64)
                .float("legacy_encode_mb_s", row.legacy_encode_mb_s, 1)
                .float("fast_encode_mb_s", row.fast_encode_mb_s, 1)
                .float("encode_speedup", row.encode_speedup(), 1)
                .float("checksum_mb_s", row.checksum_mb_s, 1)
                .float("decode_mb_s", row.decode_mb_s, 1)
                .render()
        })
        .collect();
    report.section(
        "codec_micro",
        format!("[\n    {}\n  ]", rows.join(",\n    ")),
    );
    report.render()
}

/// Runs the micro-benchmark and writes `results/BENCH_grid.json` for the
/// given labelled grids, returning the path written.
pub fn write(grids: &[(&str, &Grid)]) -> std::io::Result<std::path::PathBuf> {
    let micro: Vec<MicroRow> = MICRO_SIZES_MB.iter().map(|&mb| micro_row(mb)).collect();
    write_results_file("BENCH_grid.json", &render_json(grids, &micro))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridCell;
    use pronghorn_core::{OverheadTotals, PolicyKind};
    use pronghorn_platform::{ProvisionKind, RunResult};
    use pronghorn_store::StoreStats;

    fn cell(encodes: u64, skips: u64) -> GridCell {
        GridCell {
            workload: "DFS".into(),
            policy: PolicyKind::RequestCentric,
            rate: 4,
            result: RunResult {
                workload: "DFS".into(),
                policy: PolicyKind::RequestCentric,
                eviction_rate: 4,
                latencies_us: vec![1.0],
                overheads: OverheadTotals::default(),
                store_stats: StoreStats::default(),
                provisions: vec![ProvisionKind::Cold],
                checkpoint_ms: vec![],
                restore_ms: vec![],
                snapshot_mb: vec![],
                snapshot_requests: vec![],
                provision_us: 0.0,
                codec: CodecStats {
                    encodes,
                    encode_skips: skips,
                    bytes_encoded: encodes * 100,
                    ..CodecStats::default()
                },
                restore_strategy: pronghorn_platform::RestoreStrategy::Eager,
                restore_infos: vec![],
                chain: pronghorn_store::ChainStats::default(),
                provisioning: pronghorn_platform::ProvisionStats::default(),
                storage: pronghorn_store::StorageStats::default(),
            },
        }
    }

    fn grid() -> Grid {
        Grid {
            cells: vec![cell(3, 1), cell(5, 3)],
            wall_clock_s: 1.25,
        }
    }

    #[test]
    fn shared_schema_has_header_config_and_arms() {
        let mut report = BenchReport::new("example")
            .wall_clock(0.5)
            .config("rates", "[1, 4]")
            .config("policy", "\"request-centric\"");
        report.arm(
            JsonObj::new()
                .str("arm", "a")
                .uint("n", 3)
                .float("p99_us", 1234.5, 1)
                .float("unused", f64::NAN, 3)
                .bool("ok", true),
        );
        report.arm(
            JsonObj::new()
                .str("arm", "b")
                .raw("nested", "[1, 2]".into()),
        );
        report.section("extra", "{\"k\": 1}");
        let json = report.render();
        assert!(json.starts_with("{\n  \"report\": \"pronghorn-example\",\n"));
        assert!(json.contains(&format!("\"schema_version\": {BENCH_SCHEMA_VERSION}")));
        assert!(json.contains("\"wall_clock_s\": 0.500"));
        assert!(json.contains("\"config\": {\"rates\": [1, 4], \"policy\": \"request-centric\"}"));
        assert!(json.contains(
            "{\"arm\": \"a\", \"n\": 3, \"p99_us\": 1234.5, \"unused\": null, \"ok\": true},"
        ));
        assert!(json.contains("\"nested\": [1, 2]"));
        assert!(json.ends_with("\"extra\": {\"k\": 1}\n}\n"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn grid_codec_merges_every_cell() {
        let total = grid_codec(&grid());
        assert_eq!(total.encodes, 8);
        assert_eq!(total.encode_skips, 4);
        assert_eq!(total.bytes_encoded, 800);
    }

    #[test]
    fn json_report_carries_grids_and_micro_rows() {
        let g = grid();
        let micro = [MicroRow {
            payload_mb: 10,
            legacy_encode_mb_s: 500.0,
            fast_encode_mb_s: 5000.0,
            checksum_mb_s: 4000.0,
            decode_mb_s: 6000.0,
        }];
        let json = render_json(&[("fig4", &g), ("fig5", &g)], &micro);
        assert!(json.contains("\"name\": \"fig4\""));
        assert!(json.contains("\"name\": \"fig5\""));
        assert!(json.contains("\"wall_clock_s\": 1.250"));
        assert!(json.contains("\"encodes\": 8"));
        // codec_total sums both grids.
        assert!(json.contains("\"encodes\": 16"));
        assert!(json.contains("\"encode_speedup\": 10.0"));
        // Balanced braces/brackets — cheap structural sanity without a
        // JSON parser in the tree.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces in:\n{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn micro_bench_fast_path_beats_legacy_encode() {
        // 1 MiB keeps the test quick; the ratio claim (the acceptance
        // criterion proper is demonstrated at 64 MiB by the codec_throughput
        // bench) holds at every size because the fast path never touches
        // payload bytes.
        let row = micro_row(1);
        assert!(row.legacy_encode_mb_s > 0.0);
        assert!(
            row.encode_speedup() >= 2.0,
            "fast path only {:.2}x over legacy",
            row.encode_speedup()
        );
    }
}

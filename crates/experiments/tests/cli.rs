//! End-to-end tests of the `experiments` binary's argument parsing: flag
//! order must not matter, and invalid thread counts must fail loudly with
//! a usage error rather than being silently clamped.
//!
//! The run banner prints before any command executes, and an unknown
//! command fails right after it — so the parsed context is observable
//! without paying for a full experiment.

#![forbid(unsafe_code)]

use std::process::Command;

fn run(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_pronghorn-experiments"))
        .args(args)
        .output()
        .expect("spawn experiments binary");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn quick_after_seed_does_not_clobber_it() {
    let (stdout, _, ok) = run(&["no-such-command", "--seed", "7", "--quick"]);
    assert!(!ok, "unknown command must fail");
    assert!(stdout.contains("seed=0x7"), "banner: {stdout}");
    // Quick's reduced invocation count still applies.
    assert!(stdout.contains("invocations=150"), "banner: {stdout}");
}

#[test]
fn flag_order_is_irrelevant() {
    let (a, _, _) = run(&["no-such-command", "--seed", "7", "--quick"]);
    let (b, _, _) = run(&["no-such-command", "--quick", "--seed", "7"]);
    let banner_a = a.lines().next().unwrap_or_default();
    let banner_b = b.lines().next().unwrap_or_default();
    assert_eq!(banner_a, banner_b, "order must not change the context");
}

#[test]
fn quick_overridden_by_explicit_invocations() {
    let (stdout, _, _) = run(&["no-such-command", "--invocations", "77", "--quick"]);
    assert!(stdout.contains("invocations=77"), "banner: {stdout}");
}

#[test]
fn zero_threads_is_a_usage_error() {
    let (stdout, stderr, ok) = run(&["fig1", "--quick", "--threads", "0"]);
    assert!(!ok, "--threads 0 must fail");
    assert!(
        stderr.contains("--threads must be >= 1"),
        "stderr: {stderr}"
    );
    assert!(stderr.contains("usage:"), "stderr: {stderr}");
    // Rejected at parse time: no banner, nothing ran.
    assert!(
        !stdout.contains("pronghorn experiments"),
        "stdout: {stdout}"
    );
}

#[test]
fn banner_shows_effective_thread_count() {
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    // A request beyond the machine's parallelism is capped, and the cap
    // is surfaced in the banner rather than silently applied.
    let (stdout, _, _) = run(&["no-such-command", "--threads", "9999"]);
    assert!(
        stdout.contains(&format!("threads={}", 9999usize.min(hw))),
        "banner: {stdout}"
    );
    assert!(
        stdout.contains("capped at") && stdout.contains("available parallelism"),
        "banner: {stdout}"
    );
    // A request the machine can satisfy passes through uncapped.
    let (stdout, _, _) = run(&["no-such-command", "--threads", "1"]);
    assert!(stdout.contains("threads=1"), "banner: {stdout}");
    assert!(!stdout.contains("capped at"), "banner: {stdout}");
}

#[test]
fn missing_flag_values_are_reported() {
    let (_, stderr, ok) = run(&["fig1", "--seed"]);
    assert!(!ok);
    assert!(stderr.contains("--seed needs a value"), "stderr: {stderr}");
}

//! Property-based tests: the store behaves like a sequential map model.

#![forbid(unsafe_code)]

use pronghorn_kv::types::{decode_f64_vec, decode_u64, encode_f64_vec, encode_u64};
use pronghorn_kv::KvStore;
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Put(u8, Vec<u8>),
    Get(u8),
    Delete(u8),
    Cas(u8, Vec<u8>),
    Update(u8, u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), prop::collection::vec(any::<u8>(), 0..16)).prop_map(|(k, v)| Op::Put(k, v)),
        any::<u8>().prop_map(Op::Get),
        any::<u8>().prop_map(Op::Delete),
        (any::<u8>(), prop::collection::vec(any::<u8>(), 0..16)).prop_map(|(k, v)| Op::Cas(k, v)),
        (any::<u8>(), any::<u8>()).prop_map(|(k, b)| Op::Update(k, b)),
    ]
}

proptest! {
    /// The store agrees with a plain HashMap model under any op sequence.
    #[test]
    fn store_matches_sequential_model(ops in prop::collection::vec(op_strategy(), 0..200)) {
        let kv = KvStore::new();
        let mut model: HashMap<String, Vec<u8>> = HashMap::new();
        for op in ops {
            match op {
                Op::Put(k, v) => {
                    let key = format!("k{k}");
                    kv.put(&key, v.clone());
                    model.insert(key, v);
                }
                Op::Get(k) => {
                    let key = format!("k{k}");
                    let got = kv.get(&key).map(|x| x.value);
                    let expected = model.get(&key).cloned();
                    prop_assert_eq!(got, expected);
                }
                Op::Delete(k) => {
                    let key = format!("k{k}");
                    let kv_result = kv.delete(&key).ok().map(|v| v.value);
                    let model_result = model.remove(&key);
                    prop_assert_eq!(kv_result, model_result);
                }
                Op::Cas(k, v) => {
                    let key = format!("k{k}");
                    // CAS against the current version always succeeds; CAS
                    // against version 0 succeeds only on absent keys.
                    let current = kv.get(&key).map(|x| x.version).unwrap_or(0);
                    let outcome = kv.compare_and_swap(&key, current, v.clone());
                    prop_assert!(outcome.is_ok());
                    model.insert(key, v);
                }
                Op::Update(k, b) => {
                    let key = format!("k{k}");
                    kv.update(&key, |cur| {
                        let mut v = cur.map(<[u8]>::to_vec).unwrap_or_default();
                        v.push(b);
                        v
                    });
                    model.entry(key).or_default().push(b);
                }
            }
            prop_assert_eq!(kv.len(), model.len());
        }
        // Final state equivalence over all touched keys.
        for (key, value) in &model {
            let got = kv.get(key).map(|x| x.value);
            prop_assert_eq!(got.as_ref(), Some(value));
        }
    }

    /// Stale-version CAS always fails and changes nothing.
    #[test]
    fn stale_cas_never_applies(v1 in prop::collection::vec(any::<u8>(), 0..8),
                               v2 in prop::collection::vec(any::<u8>(), 0..8),
                               v3 in prop::collection::vec(any::<u8>(), 0..8)) {
        let kv = KvStore::new();
        let version1 = kv.put("k", v1);
        kv.put("k", v2.clone());
        prop_assert!(kv.compare_and_swap("k", version1, v3).is_err());
        prop_assert_eq!(kv.get("k").unwrap().value, v2);
    }

    /// Typed codecs round-trip bit-exactly.
    #[test]
    fn typed_codecs_round_trip(values in prop::collection::vec(any::<f64>(), 0..64), n in any::<u64>()) {
        let decoded = decode_f64_vec(&encode_f64_vec(&values)).unwrap();
        prop_assert_eq!(decoded.len(), values.len());
        for (a, b) in decoded.iter().zip(&values) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        prop_assert_eq!(decode_u64(&encode_u64(n)).unwrap(), n);
    }

    /// The f64-vec decoder never panics on garbage.
    #[test]
    fn f64_decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
        let _ = decode_f64_vec(&bytes);
        let _ = decode_u64(&bytes);
    }
}

//! The shared, linearizable key-value map.
//!
//! All mutating operations take the single write lock, so every operation
//! is atomic and the store is linearizable by construction — matching the
//! paper's "strongly-consistent atomic read and write operations". The
//! handle is cheaply cloneable; every clone views the same map, the way the
//! paper's per-worker Orchestrators all talk to one Database.

use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A value together with the monotonically increasing version the store
/// assigned when it was last written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Versioned {
    /// The stored bytes.
    pub value: Vec<u8>,
    /// Store-assigned version; strictly increases across writes to a key.
    pub version: u64,
}

/// Errors returned by conditional operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvError {
    /// The key does not exist.
    NotFound,
    /// A compare-and-swap observed a different version than expected.
    VersionConflict {
        /// Version the caller expected.
        expected: u64,
        /// Version actually present (`None` if the key vanished).
        actual: Option<u64>,
    },
}

impl fmt::Display for KvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KvError::NotFound => write!(f, "key not found"),
            KvError::VersionConflict { expected, actual } => {
                write!(f, "version conflict: expected {expected}, found {actual:?}")
            }
        }
    }
}

impl std::error::Error for KvError {}

/// Operation counters, for the cost analysis (§5.3) and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KvStats {
    /// Completed point reads (`get`).
    pub reads: u64,
    /// Completed writes (`put`, successful `cas`, `update`, `delete`).
    pub writes: u64,
    /// Failed compare-and-swap attempts.
    pub cas_conflicts: u64,
    /// Prefix scans.
    pub scans: u64,
}

#[derive(Default)]
struct Inner {
    map: RwLock<BTreeMap<String, Versioned>>,
    next_version: AtomicU64,
    reads: AtomicU64,
    writes: AtomicU64,
    cas_conflicts: AtomicU64,
    scans: AtomicU64,
}

/// Cloneable handle to a shared, strongly consistent key-value store.
#[derive(Clone, Default)]
pub struct KvStore {
    inner: Arc<Inner>,
}

impl fmt::Debug for KvStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("KvStore")
            .field("keys", &self.inner.map.read().len())
            .finish()
    }
}

impl KvStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        KvStore {
            inner: Arc::new(Inner {
                next_version: AtomicU64::new(1),
                ..Inner::default()
            }),
        }
    }

    fn bump_version(&self) -> u64 {
        self.inner.next_version.fetch_add(1, Ordering::Relaxed)
    }

    /// Reads the current value of `key`.
    pub fn get(&self, key: &str) -> Option<Versioned> {
        self.inner.reads.fetch_add(1, Ordering::Relaxed);
        self.inner.map.read().get(key).cloned()
    }

    /// Returns whether `key` exists without counting as a read.
    pub fn contains(&self, key: &str) -> bool {
        self.inner.map.read().contains_key(key)
    }

    /// Unconditionally writes `value`, returning the new version.
    pub fn put(&self, key: &str, value: Vec<u8>) -> u64 {
        self.inner.writes.fetch_add(1, Ordering::Relaxed);
        let version = self.bump_version();
        self.inner
            .map
            .write()
            .insert(key.to_string(), Versioned { value, version });
        version
    }

    /// Writes `value` only if the key's current version is
    /// `expected_version`; pass `0` to require that the key not exist.
    ///
    /// Returns the new version on success.
    pub fn compare_and_swap(
        &self,
        key: &str,
        expected_version: u64,
        value: Vec<u8>,
    ) -> Result<u64, KvError> {
        let mut map = self.inner.map.write();
        let actual = map.get(key).map(|v| v.version);
        let matches = match (expected_version, actual) {
            (0, None) => true,
            (e, Some(a)) => e == a,
            _ => false,
        };
        if !matches {
            self.inner.cas_conflicts.fetch_add(1, Ordering::Relaxed);
            return Err(KvError::VersionConflict {
                expected: expected_version,
                actual,
            });
        }
        self.inner.writes.fetch_add(1, Ordering::Relaxed);
        let version = self.bump_version();
        map.insert(key.to_string(), Versioned { value, version });
        Ok(version)
    }

    /// Atomically reads, transforms, and writes back `key` under the write
    /// lock — the primitive the orchestrator uses to fold a new latency
    /// sample into the shared weight vector without losing concurrent
    /// updates from other workers.
    ///
    /// `f` receives the current value (or `None`) and returns the new value.
    /// Returns the new version.
    pub fn update<F>(&self, key: &str, f: F) -> u64
    where
        F: FnOnce(Option<&[u8]>) -> Vec<u8>,
    {
        let mut map = self.inner.map.write();
        let current = map.get(key).map(|v| v.value.as_slice());
        let new_value = f(current);
        self.inner.writes.fetch_add(1, Ordering::Relaxed);
        let version = self.bump_version();
        map.insert(
            key.to_string(),
            Versioned {
                value: new_value,
                version,
            },
        );
        version
    }

    /// Patches `key` in place under the write lock: `f` mutates the stored
    /// bytes directly and returns whether it changed anything. Returns
    /// `true` (and bumps the version, counting one write) only when the key
    /// existed **and** `f` reported success; otherwise the store is
    /// untouched and the caller should fall back to a full `put`.
    ///
    /// This is the Database half of delta persistence: updating one `θ`
    /// slot writes 8 bytes at a fixed offset instead of re-encoding the
    /// whole `W`-element vector.
    pub fn patch<F>(&self, key: &str, f: F) -> bool
    where
        F: FnOnce(&mut Vec<u8>) -> bool,
    {
        let mut map = self.inner.map.write();
        let Some(entry) = map.get_mut(key) else {
            return false;
        };
        if !f(&mut entry.value) {
            return false;
        }
        self.inner.writes.fetch_add(1, Ordering::Relaxed);
        entry.version = self.bump_version();
        true
    }

    /// Deletes `key`, returning its last value if it existed.
    pub fn delete(&self, key: &str) -> Result<Versioned, KvError> {
        let removed = self.inner.map.write().remove(key);
        match removed {
            Some(v) => {
                self.inner.writes.fetch_add(1, Ordering::Relaxed);
                Ok(v)
            }
            None => Err(KvError::NotFound),
        }
    }

    /// Lists keys starting with `prefix`, sorted, with their versions
    /// (the map is ordered, so the scan yields keys in order).
    pub fn list_prefix(&self, prefix: &str) -> Vec<(String, u64)> {
        self.inner.scans.fetch_add(1, Ordering::Relaxed);
        let map = self.inner.map.read();
        map.range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.clone(), v.version))
            .collect()
    }

    /// Number of keys currently stored.
    pub fn len(&self) -> usize {
        self.inner.map.read().len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the operation counters.
    pub fn stats(&self) -> KvStats {
        KvStats {
            reads: self.inner.reads.load(Ordering::Relaxed),
            writes: self.inner.writes.load(Ordering::Relaxed),
            cas_conflicts: self.inner.cas_conflicts.load(Ordering::Relaxed),
            scans: self.inner.scans.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn put_get_round_trip() {
        let kv = KvStore::new();
        assert!(kv.get("a").is_none());
        let v = kv.put("a", vec![1]);
        let got = kv.get("a").unwrap();
        assert_eq!(got.value, vec![1]);
        assert_eq!(got.version, v);
    }

    #[test]
    fn versions_strictly_increase() {
        let kv = KvStore::new();
        let v1 = kv.put("k", vec![]);
        let v2 = kv.put("k", vec![]);
        let v3 = kv.put("other", vec![]);
        assert!(v1 < v2 && v2 < v3);
    }

    #[test]
    fn cas_succeeds_on_matching_version() {
        let kv = KvStore::new();
        let v1 = kv.put("k", vec![1]);
        let v2 = kv.compare_and_swap("k", v1, vec![2]).unwrap();
        assert!(v2 > v1);
        assert_eq!(kv.get("k").unwrap().value, vec![2]);
    }

    #[test]
    fn cas_fails_on_stale_version() {
        let kv = KvStore::new();
        let v1 = kv.put("k", vec![1]);
        kv.put("k", vec![2]);
        let err = kv.compare_and_swap("k", v1, vec![3]).unwrap_err();
        assert!(matches!(err, KvError::VersionConflict { .. }));
        assert_eq!(kv.get("k").unwrap().value, vec![2]);
        assert_eq!(kv.stats().cas_conflicts, 1);
    }

    #[test]
    fn cas_create_semantics_with_version_zero() {
        let kv = KvStore::new();
        kv.compare_and_swap("new", 0, vec![9]).unwrap();
        // Second create must conflict.
        assert!(kv.compare_and_swap("new", 0, vec![9]).is_err());
    }

    #[test]
    fn update_reads_current_value() {
        let kv = KvStore::new();
        kv.put("ctr", vec![5]);
        kv.update("ctr", |cur| vec![cur.unwrap()[0] + 1]);
        assert_eq!(kv.get("ctr").unwrap().value, vec![6]);
        // Missing key: closure sees None.
        kv.update("fresh", |cur| {
            assert!(cur.is_none());
            vec![1]
        });
        assert_eq!(kv.get("fresh").unwrap().value, vec![1]);
    }

    #[test]
    fn patch_mutates_in_place_and_bumps_version() {
        let kv = KvStore::new();
        let v1 = kv.put("k", vec![1, 2, 3]);
        assert!(kv.patch("k", |buf| {
            buf[1] = 9;
            true
        }));
        let got = kv.get("k").unwrap();
        assert_eq!(got.value, vec![1, 9, 3]);
        assert!(got.version > v1);
        assert_eq!(kv.stats().writes, 2);
    }

    #[test]
    fn failed_patch_leaves_store_untouched() {
        let kv = KvStore::new();
        // Missing key: closure never runs.
        assert!(!kv.patch("missing", |_| true));
        // Closure declines: no version bump, no write counted.
        let v1 = kv.put("k", vec![5]);
        assert!(!kv.patch("k", |_| false));
        let got = kv.get("k").unwrap();
        assert_eq!(got.version, v1);
        assert_eq!(kv.stats().writes, 1);
    }

    #[test]
    fn delete_returns_last_value() {
        let kv = KvStore::new();
        kv.put("k", vec![7]);
        assert_eq!(kv.delete("k").unwrap().value, vec![7]);
        assert_eq!(kv.delete("k"), Err(KvError::NotFound));
        assert!(kv.is_empty());
    }

    #[test]
    fn list_prefix_is_sorted_and_filtered() {
        let kv = KvStore::new();
        kv.put("fn/a/pool", vec![]);
        kv.put("fn/a/theta", vec![]);
        kv.put("fn/b/theta", vec![]);
        let keys: Vec<String> = kv
            .list_prefix("fn/a/")
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        assert_eq!(keys, ["fn/a/pool", "fn/a/theta"]);
    }

    #[test]
    fn clones_share_state() {
        let kv = KvStore::new();
        let other = kv.clone();
        kv.put("shared", vec![1]);
        assert_eq!(other.get("shared").unwrap().value, vec![1]);
    }

    #[test]
    fn concurrent_updates_do_not_lose_increments() {
        let kv = KvStore::new();
        kv.put("ctr", 0u64.to_le_bytes().to_vec());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let kv = kv.clone();
                thread::spawn(move || {
                    for _ in 0..1000 {
                        kv.update("ctr", |cur| {
                            let mut b = [0u8; 8];
                            b.copy_from_slice(cur.unwrap());
                            (u64::from_le_bytes(b) + 1).to_le_bytes().to_vec()
                        });
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let mut b = [0u8; 8];
        b.copy_from_slice(&kv.get("ctr").unwrap().value);
        assert_eq!(u64::from_le_bytes(b), 8000);
    }

    #[test]
    fn stats_count_operations() {
        let kv = KvStore::new();
        kv.put("a", vec![]);
        kv.get("a");
        kv.get("missing");
        kv.list_prefix("");
        let s = kv.stats();
        assert_eq!(s.writes, 1);
        assert_eq!(s.reads, 2);
        assert_eq!(s.scans, 1);
    }
}

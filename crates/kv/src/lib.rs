//! Strongly consistent key-value store — the paper's Database component.
//!
//! Pronghorn's implementation (§4) stores orchestration-policy weights and
//! snapshot metadata in "a lightweight implementation of a general-purpose
//! key-value store ... exposing only strongly-consistent atomic read and
//! write operations", explicitly substitutable by Redis or Dynamo. This
//! crate reproduces that component:
//!
//! - [`KvStore`]: a cloneable handle to a shared, linearizable map with
//!   versioned values, atomic read/write/compare-and-swap/read-modify-write
//!   and prefix listing;
//! - [`KvCosts`]: the simulated latency of each operation, charged by the
//!   orchestrator into the Figure 7 overhead accounting;
//! - [`types`]: typed codecs for the values Pronghorn stores (the `θ`
//!   weight vector, snapshot metadata lists).
//!
//! # Examples
//!
//! ```
//! use pronghorn_kv::KvStore;
//!
//! let kv = KvStore::new();
//! let v1 = kv.put("fn/html/theta", vec![1, 2, 3]);
//! let read = kv.get("fn/html/theta").unwrap();
//! assert_eq!(read.value, vec![1, 2, 3]);
//! assert_eq!(read.version, v1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod costs;
pub mod store;
pub mod types;

pub use costs::KvCosts;
pub use store::{KvError, KvStats, KvStore, Versioned};

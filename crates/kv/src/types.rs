//! Typed codecs for the values Pronghorn keeps in the Database.
//!
//! The request-centric policy persists its weight vector `θ` (one `f64` per
//! request number in `[0, W)`) and per-snapshot metadata in the Database so
//! that all workers of a function share one view (§3.2 steps 3–4). The
//! encodings are little-endian and length-prefixed, with explicit decode
//! errors instead of panics on malformed bytes.

use std::fmt;

/// Errors produced when decoding a stored value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before the declared content.
    Truncated,
    /// A length prefix disagrees with the buffer size.
    LengthMismatch {
        /// Elements the prefix declared.
        declared: usize,
        /// Elements the buffer can actually hold.
        available: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "value truncated"),
            DecodeError::LengthMismatch {
                declared,
                available,
            } => write!(
                f,
                "length prefix declares {declared} elements but {available} fit"
            ),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Encodes an `f64` vector: `u32` length then little-endian IEEE-754 values.
pub fn encode_f64_vec(values: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + values.len() * 8);
    out.extend_from_slice(&(values.len() as u32).to_le_bytes());
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decodes a vector produced by [`encode_f64_vec`].
pub fn decode_f64_vec(bytes: &[u8]) -> Result<Vec<f64>, DecodeError> {
    if bytes.len() < 4 {
        return Err(DecodeError::Truncated);
    }
    let mut len_bytes = [0u8; 4];
    len_bytes.copy_from_slice(&bytes[..4]);
    let declared = u32::from_le_bytes(len_bytes) as usize;
    let available = (bytes.len() - 4) / 8;
    if declared != available || bytes.len() != 4 + declared * 8 {
        return Err(DecodeError::LengthMismatch {
            declared,
            available,
        });
    }
    let mut out = Vec::with_capacity(declared);
    for chunk in bytes[4..].chunks_exact(8) {
        let mut b = [0u8; 8];
        b.copy_from_slice(chunk);
        out.push(f64::from_le_bytes(b));
    }
    Ok(out)
}

/// Overwrites slot `idx` of an [`encode_f64_vec`] buffer in place.
///
/// Slot `i` lives at byte offset `4 + 8·i` (after the `u32` length prefix).
/// Returns `false` — leaving the buffer untouched — when the buffer is not
/// a well-formed f64 vector or `idx` is out of range; callers then fall
/// back to a full re-encode.
pub fn patch_f64_slot(buf: &mut [u8], idx: usize, value: f64) -> bool {
    if buf.len() < 4 {
        return false;
    }
    let mut len_bytes = [0u8; 4];
    len_bytes.copy_from_slice(&buf[..4]);
    let declared = u32::from_le_bytes(len_bytes) as usize;
    if buf.len() != 4 + declared * 8 || idx >= declared {
        return false;
    }
    let at = 4 + idx * 8;
    buf[at..at + 8].copy_from_slice(&value.to_le_bytes());
    true
}

/// Encodes a `u64` little-endian.
pub fn encode_u64(value: u64) -> Vec<u8> {
    value.to_le_bytes().to_vec()
}

/// Decodes a `u64` written by [`encode_u64`].
pub fn decode_u64(bytes: &[u8]) -> Result<u64, DecodeError> {
    if bytes.len() != 8 {
        return Err(DecodeError::Truncated);
    }
    let mut b = [0u8; 8];
    b.copy_from_slice(bytes);
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_vec_round_trips() {
        let values = vec![0.0, -1.5, 3.7e9, f64::MIN_POSITIVE];
        let decoded = decode_f64_vec(&encode_f64_vec(&values)).unwrap();
        assert_eq!(decoded, values);
    }

    #[test]
    fn empty_vec_round_trips() {
        assert_eq!(
            decode_f64_vec(&encode_f64_vec(&[])).unwrap(),
            Vec::<f64>::new()
        );
    }

    #[test]
    fn nan_survives_encoding() {
        let decoded = decode_f64_vec(&encode_f64_vec(&[f64::NAN])).unwrap();
        assert!(decoded[0].is_nan());
    }

    #[test]
    fn truncated_buffer_is_rejected() {
        let mut bytes = encode_f64_vec(&[1.0, 2.0]);
        bytes.pop();
        assert!(decode_f64_vec(&bytes).is_err());
        assert_eq!(decode_f64_vec(&[1, 2]), Err(DecodeError::Truncated));
    }

    #[test]
    fn length_prefix_mismatch_is_rejected() {
        let mut bytes = encode_f64_vec(&[1.0]);
        bytes[0] = 5; // claim 5 elements
        assert!(matches!(
            decode_f64_vec(&bytes),
            Err(DecodeError::LengthMismatch {
                declared: 5,
                available: 1
            })
        ));
    }

    #[test]
    fn patch_matches_full_reencode() {
        let mut values = vec![1.0, 2.0, 3.0];
        let mut buf = encode_f64_vec(&values);
        assert!(patch_f64_slot(&mut buf, 1, 42.5));
        values[1] = 42.5;
        assert_eq!(buf, encode_f64_vec(&values));
        assert_eq!(decode_f64_vec(&buf).unwrap(), values);
    }

    #[test]
    fn patch_rejects_bad_buffers_and_indices() {
        let mut buf = encode_f64_vec(&[1.0, 2.0]);
        let before = buf.clone();
        assert!(!patch_f64_slot(&mut buf, 2, 9.0));
        assert_eq!(buf, before, "failed patch must not mutate");
        assert!(!patch_f64_slot(&mut [0u8; 3], 0, 9.0));
        // Truncated body disagreeing with the prefix.
        let mut bad = encode_f64_vec(&[1.0, 2.0]);
        bad.pop();
        assert!(!patch_f64_slot(&mut bad, 0, 9.0));
    }

    #[test]
    fn u64_round_trips() {
        assert_eq!(decode_u64(&encode_u64(u64::MAX)).unwrap(), u64::MAX);
        assert_eq!(decode_u64(&encode_u64(0)).unwrap(), 0);
        assert!(decode_u64(&[1, 2, 3]).is_err());
    }
}

//! Simulated latency of Database operations.
//!
//! The paper's Database is a Flask service reached over the pod network, so
//! each policy read/write costs a sub-millisecond round trip. Figure 7
//! shows these costs showing up as per-request and per-checkpoint
//! orchestrator overhead (off the critical path). The orchestrator charges
//! the costs below into its overhead accounting; the store itself stays
//! synchronous and instant.

/// Per-operation virtual latency, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KvCosts {
    /// One point read round trip.
    pub read_us: f64,
    /// One write round trip.
    pub write_us: f64,
    /// One atomic read-modify-write round trip (read + write under lock).
    pub update_us: f64,
    /// One prefix scan.
    pub scan_us: f64,
}

impl Default for KvCosts {
    /// Defaults calibrated to an intra-cluster HTTP key-value service like
    /// the paper's Flask Database: ~300µs reads, ~500µs writes.
    fn default() -> Self {
        KvCosts {
            read_us: 300.0,
            write_us: 500.0,
            update_us: 800.0,
            scan_us: 600.0,
        }
    }
}

impl KvCosts {
    /// A zero-cost model, for tests that want pure policy behaviour.
    pub const fn free() -> Self {
        KvCosts {
            read_us: 0.0,
            write_us: 0.0,
            update_us: 0.0,
            scan_us: 0.0,
        }
    }

    /// Uniformly scales every cost, e.g. to model a slower network.
    pub fn scaled(self, factor: f64) -> Self {
        KvCosts {
            read_us: self.read_us * factor,
            write_us: self.write_us * factor,
            update_us: self.update_us * factor,
            scan_us: self.scan_us * factor,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sub_millisecond() {
        let c = KvCosts::default();
        assert!(c.read_us > 0.0 && c.read_us < 1_000.0);
        assert!(c.write_us > 0.0 && c.write_us < 1_000.0);
        assert!(c.update_us >= c.write_us);
    }

    #[test]
    fn free_is_all_zero() {
        let c = KvCosts::free();
        assert_eq!(c.read_us + c.write_us + c.update_us + c.scan_us, 0.0);
    }

    #[test]
    fn scaling_multiplies_each_field() {
        let c = KvCosts::default().scaled(2.0);
        let d = KvCosts::default();
        assert_eq!(c.read_us, d.read_us * 2.0);
        assert_eq!(c.scan_us, d.scan_us * 2.0);
    }
}

//! The page-granular snapshot memory model.
//!
//! A snapshot payload is sliced into fixed-size pages, each with a
//! deterministic 64-bit content address. Two regions get different
//! addressing so the store's dedup refcounting matches how real snapshot
//! memory behaves:
//!
//! - the **base region** (first quarter of the image, at least one page)
//!   holds runtime text and never-written data segments — identical
//!   across every snapshot of the same function, so its page addresses
//!   are keyed by `(function, index)` and dedup across snapshots;
//! - the **heap region** (the rest) is checkpoint-specific, keyed by
//!   `(payload_hash, index)` — twin snapshots with byte-identical
//!   payloads still dedup (PR 1's refcounting), distinct checkpoints do
//!   not.

use pronghorn_sim::hash::{fnv1a, mix64};

/// Default page size: 256 KiB. Large enough that a Table 4 snapshot maps
/// to tens-to-hundreds of pages (tractable per-page store objects), small
/// enough that working sets resolve well below the full image.
pub const DEFAULT_PAGE_SIZE: u64 = 256 * 1024;

/// Salt separating base-region page addresses from other hash domains.
const BASE_PAGE_SALT: u64 = 0x7052_4247; // "pRBG"

/// A deterministic page-granular view of one snapshot payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageMap {
    page_size: u64,
    total_bytes: u64,
    /// Content address per page, ascending by page index.
    hashes: Vec<u64>,
}

impl PageMap {
    /// Builds the page map for a snapshot of `total_bytes` belonging to
    /// `function`, whose payload hashes to `payload_hash`.
    ///
    /// The map is a pure function of its arguments: same snapshot ⇒ same
    /// map, on every run.
    pub fn for_snapshot(
        function: &str,
        payload_hash: u64,
        total_bytes: u64,
        page_size: u64,
    ) -> Self {
        let page_size = page_size.max(1);
        let count = total_bytes.div_ceil(page_size).max(1);
        let base_pages = (count / 4).max(1);
        let fn_hash = fnv1a(function.as_bytes());
        let hashes = (0..count)
            .map(|idx| {
                if idx < base_pages {
                    mix64(fn_hash ^ mix64(idx.wrapping_add(BASE_PAGE_SALT)))
                } else {
                    mix64(payload_hash ^ mix64(idx))
                }
            })
            .collect();
        PageMap {
            page_size,
            total_bytes,
            hashes,
        }
    }

    /// The fixed page size in bytes.
    pub fn page_size(&self) -> u64 {
        self.page_size
    }

    /// Logical snapshot size in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Number of pages (≥ 1).
    pub fn page_count(&self) -> u32 {
        self.hashes.len() as u32
    }

    /// Number of base-region pages (first quarter, at least one).
    pub fn base_region_pages(&self) -> u32 {
        (self.page_count() / 4).max(1)
    }

    /// Content address of page `idx`.
    ///
    /// Returns `None` past the end of the map.
    pub fn page_hash(&self, idx: u32) -> Option<u64> {
        self.hashes.get(idx as usize).copied()
    }

    /// Byte length of page `idx` — `page_size` except for a partial last
    /// page; 0 past the end.
    pub fn page_len(&self, idx: u32) -> u64 {
        let idx = u64::from(idx);
        let count = self.hashes.len() as u64;
        if idx + 1 < count {
            self.page_size
        } else if idx + 1 == count {
            // ceil division puts the remainder in (0, page_size] for any
            // non-empty payload; an empty payload has one zero-length page.
            self.total_bytes - (count - 1) * self.page_size
        } else {
            0
        }
    }

    /// Total bytes covered by `pages` (indices into this map).
    pub fn bytes_for(&self, pages: &[u32]) -> u64 {
        pages.iter().map(|&p| self.page_len(p)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_is_deterministic() {
        let a = PageMap::for_snapshot("BFS", 0xdead_beef, 12 << 20, DEFAULT_PAGE_SIZE);
        let b = PageMap::for_snapshot("BFS", 0xdead_beef, 12 << 20, DEFAULT_PAGE_SIZE);
        assert_eq!(a, b);
        assert_eq!(a.page_count(), 48);
    }

    #[test]
    fn base_region_dedups_across_snapshots_of_one_function() {
        let a = PageMap::for_snapshot("BFS", 1, 12 << 20, DEFAULT_PAGE_SIZE);
        let b = PageMap::for_snapshot("BFS", 2, 12 << 20, DEFAULT_PAGE_SIZE);
        let base = a.base_region_pages();
        for idx in 0..base {
            assert_eq!(a.page_hash(idx), b.page_hash(idx), "base page {idx}");
        }
        // Heap pages differ between distinct payloads...
        assert_ne!(a.page_hash(base), b.page_hash(base));
        // ...but twin payloads share them.
        let twin = PageMap::for_snapshot("BFS", 1, 12 << 20, DEFAULT_PAGE_SIZE);
        assert_eq!(a.page_hash(base), twin.page_hash(base));
    }

    #[test]
    fn functions_do_not_share_base_pages() {
        let a = PageMap::for_snapshot("BFS", 1, 12 << 20, DEFAULT_PAGE_SIZE);
        let b = PageMap::for_snapshot("DFS", 1, 12 << 20, DEFAULT_PAGE_SIZE);
        assert_ne!(a.page_hash(0), b.page_hash(0));
    }

    #[test]
    fn partial_last_page_length() {
        let m = PageMap::for_snapshot("f", 7, DEFAULT_PAGE_SIZE + 100, DEFAULT_PAGE_SIZE);
        assert_eq!(m.page_count(), 2);
        assert_eq!(m.page_len(0), DEFAULT_PAGE_SIZE);
        assert_eq!(m.page_len(1), 100);
        assert_eq!(m.page_len(2), 0);
        assert_eq!(m.bytes_for(&[0, 1]), m.total_bytes());
    }

    #[test]
    fn exact_multiple_has_full_last_page() {
        let m = PageMap::for_snapshot("f", 7, 4 * DEFAULT_PAGE_SIZE, DEFAULT_PAGE_SIZE);
        assert_eq!(m.page_count(), 4);
        assert_eq!(m.page_len(3), DEFAULT_PAGE_SIZE);
    }

    #[test]
    fn tiny_snapshot_is_one_page() {
        let m = PageMap::for_snapshot("f", 7, 10, DEFAULT_PAGE_SIZE);
        assert_eq!(m.page_count(), 1);
        assert_eq!(m.base_region_pages(), 1);
        assert_eq!(m.page_len(0), 10);
    }
}

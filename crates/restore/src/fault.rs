//! Virtual-clock cost model for lazy restore.
//!
//! A lazy restore replaces one big sequential payload read with (a) an
//! up-front address-space mapping step, then (b) a page fault per first
//! touch, each paying fault service plus a small store fetch, or (c) one
//! batched prefetch of the recorded working set. Constants are calibrated
//! so an eager restore of a Table 4-sized snapshot and a record-prefetch
//! restore of its working set land in the regimes REAP reports (§6):
//! prefetching the working set beats faulting it in page by page because
//! the per-fetch fixed latency is paid once, not per page.

use pronghorn_store::TransferModel;

/// Deterministic (jitter-free) fault and mapping costs, in µs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultCostModel {
    /// Up-front cost to rebuild the address-space layout from the page
    /// map without loading payload bytes (CRIU restore of VMA metadata).
    pub map_base_us: f64,
    /// CPU service time per first-touch fault, excluding the transfer of
    /// the page itself (trap, lookup, map, resume).
    pub fault_service_us: f64,
}

impl FaultCostModel {
    /// Time to serve one first-touch fault for a page of `page_bytes`:
    /// fault service plus a single-page store fetch.
    pub fn fault_us(&self, transfer: &TransferModel, page_bytes: u64) -> f64 {
        self.fault_service_us + transfer.transfer_time(page_bytes).as_micros() as f64
    }

    /// Up-front time for a record-prefetch restore that brings in
    /// `total_bytes` of working set across `pages` pages in one batched
    /// transfer: mapping plus a single amortized fetch.
    pub fn prefetch_us(&self, transfer: &TransferModel, total_bytes: u64, pages: u32) -> f64 {
        self.map_base_us
            + transfer
                .batched_transfer_time(total_bytes, pages as usize)
                .as_micros() as f64
    }
}

impl Default for FaultCostModel {
    /// Mapping a snapshot's VMAs costs ~9 ms (CRIU restore floor without
    /// memory), and each served fault costs ~180 µs before transfer —
    /// in line with REAP's reported fault-path overheads.
    fn default() -> Self {
        FaultCostModel {
            map_base_us: 9_000.0,
            fault_service_us: 180.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_cost_includes_transfer() {
        let m = FaultCostModel::default();
        let t = TransferModel::default();
        let f = m.fault_us(&t, 256 * 1024);
        // 180 service + 200 latency + 256KiB / 1250 B/µs ≈ 590 µs.
        assert!(f > 500.0 && f < 700.0, "{f}");
    }

    #[test]
    fn batched_prefetch_beats_page_by_page() {
        let m = FaultCostModel::default();
        let t = TransferModel::default();
        let pages = 40u32;
        let page = 256 * 1024u64;
        let faulting: f64 = (0..pages).map(|_| m.fault_us(&t, page)).sum();
        let prefetch = m.prefetch_us(&t, u64::from(pages) * page, pages) - m.map_base_us;
        assert!(
            prefetch < faulting / 2.0,
            "prefetch {prefetch} vs faulting {faulting}"
        );
    }

    #[test]
    fn empty_prefetch_is_map_only() {
        let m = FaultCostModel::default();
        let t = TransferModel::default();
        assert_eq!(m.prefetch_us(&t, 0, 0), m.map_base_us);
    }
}

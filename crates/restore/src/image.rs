//! A restored-but-unmapped snapshot image.
//!
//! Under the lazy strategies the worker's process is decoded immediately
//! (the simulator needs the JIT state to execute requests) but the
//! *memory* of the snapshot is modelled as unmapped: the [`LazyImage`]
//! tracks which pages are resident, turns a request's page-access trace
//! into the set of first-touch faults, and — when recording — folds every
//! first touch into a [`WorkingSetManifest`].

use std::collections::BTreeSet;

use crate::manifest::WorkingSetManifest;
use crate::page::PageMap;

/// Residency and recording state for one lazily-restored worker.
#[derive(Debug, Clone)]
pub struct LazyImage {
    function: String,
    snapshot_id: u64,
    map: PageMap,
    resident: BTreeSet<u32>,
    recording: Option<WorkingSetManifest>,
    recording_dirty: bool,
}

impl LazyImage {
    /// A lazy image with no recording (plain `Lazy`, or a prefetched
    /// `RecordPrefetch` restore).
    pub fn new(function: &str, snapshot_id: u64, map: PageMap) -> Self {
        LazyImage {
            function: function.to_string(),
            snapshot_id,
            map,
            resident: BTreeSet::new(),
            recording: None,
            recording_dirty: false,
        }
    }

    /// A lazy image that records its working set (the first
    /// `RecordPrefetch` restore of a snapshot).
    pub fn with_recording(function: &str, snapshot_id: u64, map: PageMap) -> Self {
        let recording = WorkingSetManifest::new(function, snapshot_id, map.page_size());
        LazyImage {
            recording: Some(recording),
            ..LazyImage::new(function, snapshot_id, map)
        }
    }

    /// The snapshot this image restores.
    pub fn snapshot_id(&self) -> u64 {
        self.snapshot_id
    }

    /// The owning function.
    pub fn function(&self) -> &str {
        &self.function
    }

    /// The page map backing the image.
    pub fn map(&self) -> &PageMap {
        &self.map
    }

    /// Marks `pages` resident (a manifest prefetch); returns the payload
    /// bytes the newly-resident pages cover.
    pub fn mark_prefetched(&mut self, pages: &[u32]) -> u64 {
        let mut bytes = 0;
        for &p in pages {
            if self.resident.insert(p) {
                bytes += self.map.page_len(p);
            }
        }
        bytes
    }

    /// Every page not yet resident, in ascending page order — the fetch
    /// set a background hydration (pre-restore warm-up) pulls to make
    /// the whole image demand-fault-free, without touching the
    /// recording manifest the way [`Self::first_touches`] would.
    pub fn absent_pages(&self) -> Vec<u32> {
        (0..self.map.page_count())
            .filter(|p| !self.resident.contains(p))
            .collect()
    }

    /// Filters `trace` down to first touches: non-resident pages, in
    /// ascending page order, each marked resident (and recorded when the
    /// image is recording).
    pub fn first_touches(&mut self, trace: &[u32]) -> Vec<u32> {
        let mut faults = BTreeSet::new();
        for &p in trace {
            if p < self.map.page_count() && self.resident.insert(p) {
                faults.insert(p);
            }
        }
        let faults: Vec<u32> = faults.into_iter().collect();
        if let Some(recording) = &mut self.recording {
            if recording.record_all(&faults) > 0 {
                self.recording_dirty = true;
            }
        }
        faults
    }

    /// Number of currently resident pages.
    pub fn resident_pages(&self) -> u32 {
        self.resident.len() as u32
    }

    /// The recording manifest, when this image records.
    pub fn recording(&self) -> Option<&WorkingSetManifest> {
        self.recording.as_ref()
    }

    /// True when the recording gained pages since the last
    /// [`Self::clear_dirty`].
    pub fn recording_dirty(&self) -> bool {
        self.recording_dirty
    }

    /// Acknowledges that the current recording has been persisted.
    pub fn clear_dirty(&mut self) {
        self.recording_dirty = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::DEFAULT_PAGE_SIZE;

    fn image(recording: bool) -> LazyImage {
        let map = PageMap::for_snapshot("BFS", 7, 4 << 20, DEFAULT_PAGE_SIZE);
        if recording {
            LazyImage::with_recording("BFS", 1, map)
        } else {
            LazyImage::new("BFS", 1, map)
        }
    }

    #[test]
    fn first_touches_are_sorted_unique_and_once() {
        let mut img = image(false);
        assert_eq!(img.first_touches(&[9, 2, 9, 5]), vec![2, 5, 9]);
        // Second request touching the same pages faults nothing.
        assert_eq!(img.first_touches(&[2, 5]), Vec::<u32>::new());
        assert_eq!(img.first_touches(&[5, 3]), vec![3]);
        assert_eq!(img.resident_pages(), 4);
    }

    #[test]
    fn out_of_range_pages_are_ignored() {
        let mut img = image(false);
        let count = img.map().page_count();
        assert_eq!(img.first_touches(&[count, count + 5]), Vec::<u32>::new());
    }

    #[test]
    fn prefetched_pages_do_not_fault() {
        let mut img = image(false);
        let bytes = img.mark_prefetched(&[1, 2, 3]);
        assert_eq!(bytes, img.map().bytes_for(&[1, 2, 3]));
        assert_eq!(img.mark_prefetched(&[3]), 0);
        assert_eq!(img.first_touches(&[1, 2, 3, 4]), vec![4]);
    }

    #[test]
    fn absent_pages_complement_the_resident_set() {
        let mut img = image(true);
        let count = img.map().page_count();
        assert_eq!(img.absent_pages().len() as u32, count);
        img.mark_prefetched(&[0, 2]);
        let absent = img.absent_pages();
        assert_eq!(absent.len() as u32, count - 2);
        assert!(!absent.contains(&0) && !absent.contains(&2));
        // Hydrating via the absent set never pollutes the recording.
        img.mark_prefetched(&absent);
        assert!(img.absent_pages().is_empty());
        assert!(!img.recording_dirty());
        // A fully hydrated image demand-faults nothing.
        assert_eq!(img.first_touches(&[1, 3, 5]), Vec::<u32>::new());
    }

    #[test]
    fn recording_collects_and_flags_dirty() {
        let mut img = image(true);
        assert!(!img.recording_dirty());
        img.first_touches(&[4, 1]);
        assert!(img.recording_dirty());
        img.clear_dirty();
        // Re-touching resident pages leaves the recording clean.
        img.first_touches(&[4, 1]);
        assert!(!img.recording_dirty());
        img.first_touches(&[6]);
        assert!(img.recording_dirty());
        let recorded: Vec<u32> = img.recording().unwrap().pages().collect();
        assert_eq!(recorded, vec![1, 4, 6]);
    }
}

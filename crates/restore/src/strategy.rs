//! Restore strategies and per-restore statistics.

use std::fmt;

/// How a worker's snapshot is materialized at restore time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RestoreStrategy {
    /// Load the whole payload up front — the paper's behaviour, with
    /// bit-identical costs to the pre-paging engine.
    #[default]
    Eager,
    /// Map pages on demand: each first touch pays a fault service time
    /// plus a store fetch on the virtual clock.
    Lazy,
    /// REAP: the first restore records the touched-page working set into
    /// a manifest; later restores bulk-prefetch it in one batched
    /// transfer and fault in only the cold tail.
    RecordPrefetch,
}

impl RestoreStrategy {
    /// All strategies, in ablation-sweep order.
    pub const ALL: [RestoreStrategy; 3] = [
        RestoreStrategy::Eager,
        RestoreStrategy::Lazy,
        RestoreStrategy::RecordPrefetch,
    ];

    /// Stable lowercase label used in CSV columns and CLI flags.
    pub fn label(self) -> &'static str {
        match self {
            RestoreStrategy::Eager => "eager",
            RestoreStrategy::Lazy => "lazy",
            RestoreStrategy::RecordPrefetch => "record-prefetch",
        }
    }

    /// Parses a [`Self::label`] back into a strategy.
    pub fn parse(s: &str) -> Option<RestoreStrategy> {
        RestoreStrategy::ALL.into_iter().find(|r| r.label() == s)
    }
}

impl fmt::Display for RestoreStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-restore statistics threaded from the provisioning path up through
/// `RunResult` — the typed replacement for the old `restored: bool`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RestoreInfo {
    /// The strategy that produced this restore.
    pub strategy: RestoreStrategy,
    /// First-touch page faults served over the worker's lifetime.
    pub faults: u32,
    /// Pages brought in by the batched manifest prefetch (0 for eager
    /// and lazy restores, and for the recording restore).
    pub prefetched_pages: u32,
    /// Up-front restore time in µs: full load (eager), map-only (lazy),
    /// or map + batched prefetch (record-prefetch).
    pub restore_us: f64,
    /// Total fault service time in µs accrued after the up-front phase.
    pub fault_us: f64,
    /// CPU time in µs spent decompressing fetched data on the restore
    /// critical path (0 unless the storage tier's modeled compression is
    /// enabled and the read missed the local SSD cache).
    pub decompress_us: f64,
    /// Bytes moved from the store for this restore (payload, prefetch
    /// batch, and demand-fetched pages), in nominal (decompressed) units.
    pub bytes_transferred: u64,
}

impl RestoreInfo {
    /// Stats for an eager restore: the whole payload up front, no faults.
    pub fn eager(restore_us: f64, bytes: u64) -> Self {
        RestoreInfo {
            strategy: RestoreStrategy::Eager,
            restore_us,
            bytes_transferred: bytes,
            ..RestoreInfo::default()
        }
    }

    /// End-to-end restore cost: up-front time plus all fault service and
    /// any critical-path decompression.
    pub fn total_restore_us(&self) -> f64 {
        self.restore_us + self.fault_us + self.decompress_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for s in RestoreStrategy::ALL {
            assert_eq!(RestoreStrategy::parse(s.label()), Some(s));
            assert_eq!(format!("{s}"), s.label());
        }
        assert_eq!(RestoreStrategy::parse("warm"), None);
    }

    #[test]
    fn eager_info_has_no_faults() {
        let info = RestoreInfo::eager(50_000.0, 12 << 20);
        assert_eq!(info.strategy, RestoreStrategy::Eager);
        assert_eq!(info.faults, 0);
        assert_eq!(info.prefetched_pages, 0);
        assert_eq!(info.total_restore_us(), 50_000.0);
        assert_eq!(info.bytes_transferred, 12 << 20);
    }

    #[test]
    fn total_adds_fault_service_and_decompression() {
        let info = RestoreInfo {
            strategy: RestoreStrategy::Lazy,
            restore_us: 9_000.0,
            fault_us: 1_200.0,
            decompress_us: 300.0,
            ..RestoreInfo::default()
        };
        assert_eq!(info.total_restore_us(), 10_500.0);
    }
}

//! The recorded working-set manifest and its binary codec.
//!
//! The first lazy restore of a snapshot under `RecordPrefetch` records
//! every first-touch page into a manifest; the manifest is persisted in
//! the object store and later restores of the same snapshot prefetch the
//! recorded set in one batched transfer. Recording is idempotent — the
//! set is a `BTreeSet`, so replaying the same trace (or a permutation of
//! it) yields the same manifest and the same encoded bytes.

use std::collections::BTreeSet;
use std::fmt;

use pronghorn_checkpoint::{CodecError, Decoder, Encoder};

/// Magic prefix of an encoded manifest.
pub const MANIFEST_MAGIC: &[u8; 8] = b"PRWSET\x00\x01";

/// Current manifest wire version.
pub const MANIFEST_VERSION: u16 = 1;

/// A decode failure for [`WorkingSetManifest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ManifestError {
    /// The buffer does not start with [`MANIFEST_MAGIC`].
    Magic,
    /// The wire version is newer than this build understands.
    Version {
        /// The rejected version.
        found: u16,
    },
    /// A structural codec failure.
    Codec(CodecError),
}

impl fmt::Display for ManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManifestError::Magic => write!(f, "not a working-set manifest (bad magic)"),
            ManifestError::Version { found } => {
                write!(f, "unsupported manifest version {found}")
            }
            ManifestError::Codec(e) => write!(f, "manifest codec error: {e}"),
        }
    }
}

impl std::error::Error for ManifestError {}

impl From<CodecError> for ManifestError {
    fn from(e: CodecError) -> Self {
        ManifestError::Codec(e)
    }
}

/// The set of pages a function touched during a recorded restore.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkingSetManifest {
    function: String,
    snapshot_id: u64,
    page_size: u64,
    pages: BTreeSet<u32>,
}

impl WorkingSetManifest {
    /// An empty manifest for one snapshot of `function`.
    pub fn new(function: &str, snapshot_id: u64, page_size: u64) -> Self {
        WorkingSetManifest {
            function: function.to_string(),
            snapshot_id,
            page_size,
            pages: BTreeSet::new(),
        }
    }

    /// The owning function.
    pub fn function(&self) -> &str {
        &self.function
    }

    /// The recorded snapshot's id.
    pub fn snapshot_id(&self) -> u64 {
        self.snapshot_id
    }

    /// The page size the recording was made at.
    pub fn page_size(&self) -> u64 {
        self.page_size
    }

    /// Records one touched page; returns `true` if it was new.
    pub fn record(&mut self, page: u32) -> bool {
        self.pages.insert(page)
    }

    /// Records every page in `pages`; returns how many were new.
    pub fn record_all(&mut self, pages: &[u32]) -> usize {
        pages.iter().filter(|&&p| self.pages.insert(p)).count()
    }

    /// Number of recorded pages.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Recorded pages in ascending order.
    pub fn pages(&self) -> impl Iterator<Item = u32> + '_ {
        self.pages.iter().copied()
    }

    /// Recorded pages as an ascending vector (the prefetch batch order).
    pub fn to_sorted_vec(&self) -> Vec<u32> {
        self.pages.iter().copied().collect()
    }

    /// Encodes the manifest into `enc`.
    pub fn encode(&self, enc: &mut Encoder) {
        enc.put_bytes(MANIFEST_MAGIC);
        enc.put_u16(MANIFEST_VERSION);
        enc.put_str(&self.function);
        enc.put_u64(self.snapshot_id);
        enc.put_u64(self.page_size);
        let pages = self.to_sorted_vec();
        enc.put_seq(&pages, |e, &p| e.put_u32(p));
    }

    /// Encodes into a fresh buffer.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        self.encode(&mut enc);
        enc.into_bytes()
    }

    /// Decodes a manifest, rejecting wrong magic, newer versions, and
    /// trailing bytes.
    pub fn from_bytes(buf: &[u8]) -> Result<Self, ManifestError> {
        let mut dec = Decoder::new(buf);
        if dec.take_bytes()? != MANIFEST_MAGIC {
            return Err(ManifestError::Magic);
        }
        let version = dec.take_u16()?;
        if version != MANIFEST_VERSION {
            return Err(ManifestError::Version { found: version });
        }
        let function = dec.take_str()?.to_string();
        let snapshot_id = dec.take_u64()?;
        let page_size = dec.take_u64()?;
        let pages = dec.take_seq(4, |d| d.take_u32())?;
        dec.finish()?;
        Ok(WorkingSetManifest {
            function,
            snapshot_id,
            page_size,
            pages: pages.into_iter().collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn manifest(pages: &[u32]) -> WorkingSetManifest {
        let mut m = WorkingSetManifest::new("BFS", 42, 256 * 1024);
        m.record_all(pages);
        m
    }

    #[test]
    fn recording_dedups_and_sorts() {
        let mut m = manifest(&[9, 3, 3, 7]);
        assert_eq!(m.len(), 3);
        assert!(m.record(1));
        assert!(!m.record(9));
        assert_eq!(m.to_sorted_vec(), vec![1, 3, 7, 9]);
    }

    #[test]
    fn replay_idempotence() {
        // Recording the same trace twice — or any permutation of it —
        // yields the same manifest and the same encoded bytes.
        let trace = [5u32, 2, 8, 2, 5, 11];
        let mut once = WorkingSetManifest::new("f", 7, 4096);
        once.record_all(&trace);
        let mut twice = WorkingSetManifest::new("f", 7, 4096);
        twice.record_all(&trace);
        assert_eq!(twice.record_all(&trace), 0);
        let mut permuted = WorkingSetManifest::new("f", 7, 4096);
        let mut rev: Vec<u32> = trace.to_vec();
        rev.reverse();
        permuted.record_all(&rev);
        assert_eq!(once, twice);
        assert_eq!(once, permuted);
        assert_eq!(once.to_bytes(), permuted.to_bytes());
    }

    #[test]
    fn codec_round_trip() {
        let m = manifest(&[0, 4, 17, 100_000]);
        let back = WorkingSetManifest::from_bytes(&m.to_bytes()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let m = manifest(&[1]);
        let mut bytes = m.to_bytes();
        assert!(matches!(
            WorkingSetManifest::from_bytes(&bytes[..5]),
            Err(ManifestError::Codec(_))
        ));
        // Flip a magic byte (past the 8-byte length prefix).
        bytes[8] ^= 0xff;
        assert_eq!(
            WorkingSetManifest::from_bytes(&bytes).err(),
            Some(ManifestError::Magic)
        );
        // Trailing garbage is rejected.
        let mut long = m.to_bytes();
        long.push(0);
        assert!(matches!(
            WorkingSetManifest::from_bytes(&long),
            Err(ManifestError::Codec(_))
        ));
    }

    proptest! {
        #[test]
        fn prop_round_trip(pages in proptest::collection::vec(0u32..2_000, 0..64),
                           id in 0u64..u64::MAX,
                           page_size in 1u64..(1 << 30)) {
            let mut m = WorkingSetManifest::new("Thumbnailer", id, page_size);
            m.record_all(&pages);
            let back = WorkingSetManifest::from_bytes(&m.to_bytes()).unwrap();
            prop_assert_eq!(back, m);
        }
    }
}

//! Page-granular snapshot restore: the REAP subsystem.
//!
//! The paper treats restore as a monolithic blob load priced by
//! `CheckpointCostModel`. REAP ("Benchmarking, Analysis, and Optimization
//! of Serverless Function Snapshots", Ustiugov et al., ASPLOS '21) showed
//! that a function touches only a small, stable working set of its
//! snapshot, and that *recording* that set once, then *prefetching* it in
//! one batched transfer on later restores, cuts restore latency several
//! fold. This crate models that mechanism on the simulator's virtual
//! clock:
//!
//! - [`PageMap`] slices a snapshot payload into fixed-size pages with
//!   deterministic content addresses, so the object store's dedup
//!   refcounting applies at page granularity;
//! - [`PagedSnapshotStore`] publishes page descriptors and working-set
//!   manifests into an [`pronghorn_store::ObjectStore`];
//! - [`WorkingSetManifest`] is the recorded set of touched pages, with a
//!   versioned binary codec;
//! - [`LazyImage`] is a restored-but-unmapped snapshot image that tracks
//!   residency and first-touch faults per request;
//! - [`RestoreStrategy`] selects eager / lazy / record-prefetch restore,
//!   and [`RestoreInfo`] carries per-restore stats up through `RunResult`;
//! - [`FaultCostModel`] prices page mapping, fault service, and batched
//!   prefetch on the virtual clock.
//!
//! Everything here is deterministic: page maps and manifests iterate in
//! ascending page order, page keys are zero-padded so store listings sort
//! numerically, and no RNG is consumed anywhere in the crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod image;
pub mod manifest;
pub mod page;
pub mod paged;
pub mod strategy;

pub use fault::FaultCostModel;
pub use image::LazyImage;
pub use manifest::{ManifestError, WorkingSetManifest, MANIFEST_MAGIC, MANIFEST_VERSION};
pub use page::{PageMap, DEFAULT_PAGE_SIZE};
pub use paged::{PagedSnapshotStore, MANIFESTS_BUCKET, PAGES_BUCKET};
pub use strategy::{RestoreInfo, RestoreStrategy};

//! Page descriptors and manifests in the object store.
//!
//! Each page of a published snapshot becomes one small chunked object:
//! the *payload* is a 16-byte descriptor (content address + length) that
//! is deduplicated by content across all keys — so two snapshots whose
//! page maps share a page share one blob and one refcount, exactly like
//! PR 1's whole-payload dedup but at page granularity. Page keys are
//! zero-padded so the bucket's ordered listing sorts numerically and a
//! prefetch batch issued in ascending page-id order reads the store in
//! key order.

use bytes::Bytes;
use pronghorn_store::{ObjectStore, StoreError};

use crate::manifest::WorkingSetManifest;
use crate::page::PageMap;

/// Bucket holding per-page descriptor objects.
pub const PAGES_BUCKET: &str = "pages";

/// Bucket holding working-set manifests.
pub const MANIFESTS_BUCKET: &str = "manifests";

/// A paged view over the shared [`ObjectStore`].
#[derive(Debug, Clone)]
pub struct PagedSnapshotStore {
    store: ObjectStore,
    page_size: u64,
}

impl PagedSnapshotStore {
    /// Wraps `store` with a fixed `page_size`.
    pub fn new(store: ObjectStore, page_size: u64) -> Self {
        PagedSnapshotStore {
            store,
            page_size: page_size.max(1),
        }
    }

    /// The page size this view publishes at.
    pub fn page_size(&self) -> u64 {
        self.page_size
    }

    fn page_key(function: &str, snapshot_id: u64, idx: u32) -> String {
        // Zero-padded so lexicographic key order == numeric page order.
        format!("{function}/{snapshot_id:020}/{idx:08}")
    }

    fn manifest_key(function: &str, snapshot_id: u64) -> String {
        format!("{function}/{snapshot_id:020}")
    }

    /// Publishes every page of `map` for one snapshot, ascending by page
    /// index; returns the page count. Identical pages (by content
    /// address) share one deduplicated blob in the store.
    pub fn publish(
        &self,
        function: &str,
        snapshot_id: u64,
        map: &PageMap,
    ) -> Result<u32, StoreError> {
        for idx in 0..map.page_count() {
            let hash = map.page_hash(idx).unwrap_or_default();
            let mut descriptor = Vec::with_capacity(16);
            descriptor.extend_from_slice(&hash.to_le_bytes());
            descriptor.extend_from_slice(&map.page_len(idx).to_le_bytes());
            self.store.put_chunked(
                PAGES_BUCKET,
                &Self::page_key(function, snapshot_id, idx),
                Bytes::new(),
                Bytes::from(descriptor),
                Bytes::new(),
            )?;
        }
        Ok(map.page_count())
    }

    /// Removes the published pages of one snapshot (descending refcounts;
    /// shared page blobs survive until their last reference goes).
    pub fn unpublish(&self, function: &str, snapshot_id: u64, page_count: u32) {
        for idx in 0..page_count {
            // Missing pages are fine: unpublish must be idempotent.
            let _ = self
                .store
                .delete(PAGES_BUCKET, &Self::page_key(function, snapshot_id, idx));
        }
    }

    /// Fetches the descriptors for `pages` (ascending page ids) in one
    /// batched store operation; returns the total payload bytes the
    /// fetched pages cover. Unknown pages are skipped.
    pub fn fetch_pages(
        &self,
        function: &str,
        snapshot_id: u64,
        map: &PageMap,
        pages: &[u32],
    ) -> Result<u64, StoreError> {
        if pages.is_empty() {
            return Ok(0);
        }
        let keys: Vec<String> = pages
            .iter()
            .map(|&idx| Self::page_key(function, snapshot_id, idx))
            .collect();
        let key_refs: Vec<&str> = keys.iter().map(String::as_str).collect();
        let fetched = self.store.get_many(PAGES_BUCKET, &key_refs)?;
        let mut bytes = 0u64;
        for (slot, &idx) in fetched.iter().zip(pages) {
            if slot.is_some() {
                bytes += map.page_len(idx);
            }
        }
        Ok(bytes)
    }

    /// Persists `manifest`, returning `true` if no manifest existed for
    /// that snapshot before (i.e. this restore is the recording one).
    pub fn store_manifest(&self, manifest: &WorkingSetManifest) -> Result<bool, StoreError> {
        let key = Self::manifest_key(manifest.function(), manifest.snapshot_id());
        let was_new = self.store.head(MANIFESTS_BUCKET, &key).is_err();
        self.store
            .put(MANIFESTS_BUCKET, &key, Bytes::from(manifest.to_bytes()))?;
        Ok(was_new)
    }

    /// Loads the manifest recorded for one snapshot, if any. A corrupt
    /// manifest decodes as `None` — the restore falls back to recording.
    pub fn load_manifest(&self, function: &str, snapshot_id: u64) -> Option<WorkingSetManifest> {
        let key = Self::manifest_key(function, snapshot_id);
        let bytes = self.store.get(MANIFESTS_BUCKET, &key).ok()?;
        WorkingSetManifest::from_bytes(&bytes).ok()
    }

    /// Deletes the manifest of an evicted snapshot (idempotent).
    pub fn delete_manifest(&self, function: &str, snapshot_id: u64) {
        let _ = self
            .store
            .delete(MANIFESTS_BUCKET, &Self::manifest_key(function, snapshot_id));
    }

    /// The wrapped store handle.
    pub fn store(&self) -> &ObjectStore {
        &self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::DEFAULT_PAGE_SIZE;

    fn map(function: &str, payload_hash: u64) -> PageMap {
        PageMap::for_snapshot(function, payload_hash, 2 << 20, DEFAULT_PAGE_SIZE)
    }

    #[test]
    fn publish_fetch_unpublish_round_trip() {
        let store = ObjectStore::new();
        let paged = PagedSnapshotStore::new(store.clone(), DEFAULT_PAGE_SIZE);
        let m = map("BFS", 7);
        let count = paged.publish("BFS", 1, &m).unwrap();
        assert_eq!(count, m.page_count());
        let bytes = paged.fetch_pages("BFS", 1, &m, &[0, 1, 2]).unwrap();
        assert_eq!(bytes, m.bytes_for(&[0, 1, 2]));
        paged.unpublish("BFS", 1, count);
        assert_eq!(paged.fetch_pages("BFS", 1, &m, &[0]).unwrap(), 0);
        // Idempotent.
        paged.unpublish("BFS", 1, count);
    }

    #[test]
    fn shared_pages_dedup_across_snapshots() {
        let store = ObjectStore::new();
        let paged = PagedSnapshotStore::new(store.clone(), DEFAULT_PAGE_SIZE);
        paged.publish("BFS", 1, &map("BFS", 7)).unwrap();
        let blobs_one = store.blob_count();
        // A second snapshot of the same function shares its base-region
        // pages; only the heap pages add blobs.
        paged.publish("BFS", 2, &map("BFS", 8)).unwrap();
        let m = map("BFS", 8);
        let heap_pages = m.page_count() - m.base_region_pages();
        assert_eq!(store.blob_count(), blobs_one + heap_pages as usize);
        // Twin payloads add none.
        paged.publish("BFS", 3, &map("BFS", 8)).unwrap();
        assert_eq!(store.blob_count(), blobs_one + heap_pages as usize);
    }

    #[test]
    fn manifest_lifecycle() {
        let store = ObjectStore::new();
        let paged = PagedSnapshotStore::new(store, DEFAULT_PAGE_SIZE);
        assert!(paged.load_manifest("BFS", 1).is_none());
        let mut manifest = WorkingSetManifest::new("BFS", 1, DEFAULT_PAGE_SIZE);
        manifest.record_all(&[3, 1, 4]);
        assert!(paged.store_manifest(&manifest).unwrap());
        // Re-storing an updated manifest is not "new".
        manifest.record(5);
        assert!(!paged.store_manifest(&manifest).unwrap());
        let loaded = paged.load_manifest("BFS", 1).unwrap();
        assert_eq!(loaded, manifest);
        paged.delete_manifest("BFS", 1);
        assert!(paged.load_manifest("BFS", 1).is_none());
        paged.delete_manifest("BFS", 1);
    }
}

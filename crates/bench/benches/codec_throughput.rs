//! Snapshot codec throughput: the zero-copy fast path against the
//! pre-fast-path baseline, at checkpoint-sized payloads (10–64 MiB).
//!
//! `encode_legacy` replays what the codec did before scratch reuse and
//! zero-copy framing landed: a fresh allocation per encode, the payload
//! copied into it, and a byte-at-a-time FNV over the whole frame.
//! `encode_fast` is the current path (`Snapshot::to_frame_with` on a
//! reused `Encoder`); `encode_full` additionally re-hashes the payload
//! (what a brand-new snapshot pays, single word-folded pass). The
//! acceptance bar is `encode_fast` ≥ 2x `encode_legacy` at 64 MiB —
//! run `scripts/bench_codec.sh` to collect the numbers as JSON.

#![forbid(unsafe_code)]

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pronghorn_checkpoint::{Encoder, Snapshot, SnapshotMeta};
use pronghorn_experiments::bench_report::{legacy_encode, pattern_payload};
use pronghorn_sim::hash::{fnv1a, fnv1a_wide};

fn meta() -> SnapshotMeta {
    SnapshotMeta {
        function: "bench".to_string(),
        request_number: 7,
        runtime: "JVM".to_string(),
    }
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec_throughput");
    for &mb in &[10usize, 32, 64] {
        let len = mb << 20;
        let payload = pattern_payload(len);
        let snapshot = Snapshot::with_nonce(meta(), payload.clone(), len as u64, 1);
        let mut enc = Encoder::new();
        let frame = snapshot.to_frame_with(&mut enc).to_bytes();
        group.throughput(Throughput::Bytes(len as u64));

        group.bench_function(format!("encode_legacy/{mb}MB"), |b| {
            b.iter(|| legacy_encode(&snapshot, &payload))
        });
        group.bench_function(format!("encode_fast/{mb}MB"), |b| {
            b.iter(|| snapshot.to_frame_with(&mut enc))
        });
        group.bench_function(format!("encode_full/{mb}MB"), |b| {
            b.iter(|| {
                Snapshot::with_nonce(meta(), payload.clone(), len as u64, 1).to_frame_with(&mut enc)
            })
        });
        group.bench_function(format!("decode/{mb}MB"), |b| {
            b.iter(|| Snapshot::from_shared(&frame).expect("round trip"))
        });
        group.bench_function(format!("checksum_wide/{mb}MB"), |b| {
            b.iter(|| fnv1a_wide(&payload))
        });
        group.bench_function(format!("checksum_byte/{mb}MB"), |b| {
            b.iter(|| fnv1a(&payload))
        });
    }
    group.finish();
}

criterion_group!(codec_throughput, bench_codec);
criterion_main!(codec_throughput);

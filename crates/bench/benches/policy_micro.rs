//! Micro-benchmarks of the request-centric policy's hot paths: the
//! decisions Figure 7 accounts as orchestrator overhead.

#![forbid(unsafe_code)]

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pronghorn_checkpoint::SnapshotId;
use pronghorn_core::pool::PoolEntry;
use pronghorn_core::weights::{scaled_softmax, WeightVector};
use pronghorn_core::{Policy, PolicyConfig, RequestCentricPolicy};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A policy with a full pool and fully explored weights.
fn warm_policy() -> RequestCentricPolicy {
    let mut policy = RequestCentricPolicy::new(PolicyConfig::paper_jvm().with_beta(4));
    let mut rng = SmallRng::seed_from_u64(1);
    for r in 0..200 {
        policy.record_latency(r, 10_000.0 + f64::from(r) * 37.0);
    }
    for i in 0..12u64 {
        policy.on_snapshot_taken(
            PoolEntry {
                id: SnapshotId(i),
                request_number: (i * 16) as u32,
                size_bytes: 12 << 20,
            },
            &mut rng,
        );
    }
    policy
}

fn bench_decisions(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy_decisions");
    group.bench_function("on_worker_start_full_pool", |b| {
        let mut policy = warm_policy();
        let mut rng = SmallRng::seed_from_u64(2);
        b.iter(|| policy.on_worker_start(&mut rng))
    });
    group.bench_function("plan_checkpoint", |b| {
        let mut policy = warm_policy();
        let mut rng = SmallRng::seed_from_u64(3);
        b.iter(|| policy.plan_checkpoint(42, &mut rng))
    });
    group.bench_function("record_latency_ewma", |b| {
        let mut policy = warm_policy();
        b.iter(|| policy.record_latency(97, 12_345.0))
    });
    group.bench_function("pool_insert_with_prune", |b| {
        let mut rng = SmallRng::seed_from_u64(4);
        b.iter_batched(
            warm_policy,
            |mut policy| {
                policy.on_snapshot_taken(
                    PoolEntry {
                        id: SnapshotId(999),
                        request_number: 77,
                        size_bytes: 12 << 20,
                    },
                    &mut rng,
                )
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_weight_math(c: &mut Criterion) {
    let mut group = c.benchmark_group("weight_math");
    let mut weights = WeightVector::new(200, 0.3);
    for r in 0..200 {
        weights.update(r, 10_000.0 + f64::from(r));
    }
    group.bench_function("prob_map_w200", |b| b.iter(|| weights.prob_map(1e-3)));
    group.bench_function("lifetime_weight", |b| {
        b.iter(|| weights.lifetime_weight(100, 20, 1e-3))
    });
    let values: Vec<f64> = (0..12).map(|i| 1e-4 * (1.0 + i as f64)).collect();
    group.bench_function("scaled_softmax_12", |b| {
        b.iter(|| scaled_softmax(&values, 6.0))
    });
    group.finish();
}

criterion_group!(policy, bench_decisions, bench_weight_math);
criterion_main!(policy);

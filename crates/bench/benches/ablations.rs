//! Ablation benches for the design choices DESIGN.md calls out.
//!
//! Each configuration is run once up front and its *quality* (median
//! end-to-end latency) printed to stderr — ablations are about the policy's
//! effectiveness, which Criterion cannot measure — and then the simulation
//! cost is benchmarked so regressions in any configuration's runtime are
//! tracked too.

#![forbid(unsafe_code)]

use criterion::{criterion_group, criterion_main, Criterion};
use pronghorn_bench::BENCH_INVOCATIONS;
use pronghorn_core::{PolicyConfig, PolicyKind, SelectionStrategy};
use pronghorn_platform::{run_closed_loop, RunConfig};
use pronghorn_workloads::by_name;

fn run_with(config: Option<PolicyConfig>, beta_estimate: Option<u32>) -> f64 {
    let workload = by_name("DFS").expect("bundled");
    let mut cfg = RunConfig::paper(PolicyKind::RequestCentric, 1, 0xAB1A7E).with_invocations(300);
    if let Some(pc) = config {
        cfg = cfg.with_policy_config(pc);
    }
    if let Some(beta) = beta_estimate {
        cfg = cfg.with_beta_estimate(beta);
    }
    run_closed_loop(&workload, &cfg).median_us()
}

/// Softmax (paper) vs greedy vs uniform snapshot selection.
fn ablation_selection(c: &mut Criterion) {
    for (name, strategy) in [
        ("softmax", SelectionStrategy::Softmax),
        ("greedy", SelectionStrategy::Greedy),
        ("uniform", SelectionStrategy::Uniform),
    ] {
        let median = run_with(
            Some(PolicyConfig::paper_pypy().with_selection(strategy)),
            None,
        );
        eprintln!("[ablation selection={name}: median {median:.0}µs]");
    }
    let mut group = c.benchmark_group("ablation_selection");
    group.sample_size(10);
    group.bench_function("softmax_run", |b| {
        b.iter(|| run_with(Some(PolicyConfig::paper_pypy()), None))
    });
    group.finish();
}

/// γ = 10% (paper) vs γ = 0 (pure exploitation pool pruning).
fn ablation_gamma(c: &mut Criterion) {
    for (name, gamma) in [("gamma10", 0.10), ("gamma0", 0.0)] {
        let median = run_with(
            Some(PolicyConfig::paper_pypy().with_eviction_fracs(0.4, gamma)),
            None,
        );
        eprintln!("[ablation {name}: median {median:.0}µs]");
    }
    let mut group = c.benchmark_group("ablation_gamma");
    group.sample_size(10);
    group.bench_function("gamma0_run", |b| {
        b.iter(|| {
            run_with(
                Some(PolicyConfig::paper_pypy().with_eviction_fracs(0.4, 0.0)),
                None,
            )
        })
    });
    group.finish();
}

/// EWMA α sweep (§6: tuning knob for recency weighting).
fn ablation_alpha(c: &mut Criterion) {
    for alpha in [0.05, 0.3, 0.9] {
        let median = run_with(Some(PolicyConfig::paper_pypy().with_alpha(alpha)), None);
        eprintln!("[ablation alpha={alpha}: median {median:.0}µs]");
    }
    let mut group = c.benchmark_group("ablation_alpha");
    group.sample_size(10);
    group.bench_function("alpha_0.3_run", |b| {
        b.iter(|| run_with(Some(PolicyConfig::paper_pypy().with_alpha(0.3)), None))
    });
    group.finish();
}

/// Worker-lifetime misestimation (§6): β under/over-estimated vs truth.
fn ablation_beta_estimate(c: &mut Criterion) {
    for (name, beta) in [("accurate", None), ("over_estimate_20x", Some(20))] {
        let median = run_with(None, beta);
        eprintln!("[ablation beta {name}: median {median:.0}µs]");
    }
    let mut group = c.benchmark_group("ablation_beta");
    group.sample_size(10);
    group.bench_function("beta_overestimate_run", |b| {
        b.iter(|| run_with(None, Some(20)))
    });
    group.finish();
}

/// JIT mechanism ablations: deopts off, background compilation off.
fn ablation_jit_mechanisms(c: &mut Criterion) {
    use pronghorn_jit::{Runtime, RuntimeProfile};
    use pronghorn_workloads::{InputVariance, Workload};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    let workload = by_name("Hash").expect("bundled");
    let run_profile = |mutate: &dyn Fn(&mut RuntimeProfile)| -> f64 {
        let mut profile = workload.runtime_profile();
        mutate(&mut profile);
        let mut rng = SmallRng::seed_from_u64(5);
        let (mut rt, _) = Runtime::cold_start(profile, workload.method_profiles(), &mut rng);
        let mut total = 0.0;
        for i in 0..u64::from(BENCH_INVOCATIONS) * 10 {
            let mut input = SmallRng::seed_from_u64(i);
            let request = workload.generate(&mut input, InputVariance::none());
            total += rt.execute(&request, &mut rng).total_us();
        }
        total / (f64::from(BENCH_INVOCATIONS) * 10.0)
    };
    let baseline = run_profile(&|_| {});
    let no_deopt = run_profile(&|p| p.deopt_prob = 0.0);
    let no_bg = run_profile(&|p| {
        p.background_compile = false;
        p.compile_interference = 0.0;
    });
    eprintln!("[ablation jit baseline: mean {baseline:.0}µs]");
    eprintln!("[ablation jit deopts-off: mean {no_deopt:.0}µs]");
    eprintln!("[ablation jit inline-compile: mean {no_bg:.0}µs]");

    let mut group = c.benchmark_group("ablation_jit");
    group.sample_size(10);
    group.bench_function("warmup_600_requests", |b| b.iter(|| run_profile(&|_| {})));
    group.finish();
}

criterion_group!(
    ablations,
    ablation_selection,
    ablation_gamma,
    ablation_alpha,
    ablation_beta_estimate,
    ablation_jit_mechanisms,
);
criterion_main!(ablations);

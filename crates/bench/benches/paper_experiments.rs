//! One Criterion group per table/figure of the paper: measures the cost of
//! regenerating each artifact at reduced scale (60 invocations per cell).
//! The `experiments` binary produces the full-scale numbers; these benches
//! keep the whole regeneration pipeline exercised and performance-tracked.

#![forbid(unsafe_code)]

use criterion::{criterion_group, criterion_main, Criterion};
use pronghorn_bench::bench_context;
use pronghorn_experiments::{fig1, fig45, fig6, fig7, grid, summary, table1, table4, table5};

fn bench_fig1(c: &mut Criterion) {
    let workload = pronghorn_workloads::by_name("DynamicHTML").expect("bundled");
    let mut group = c.benchmark_group("fig1_warmup");
    group.sample_size(10);
    group.bench_function("dynamic_html_pypy_800reqs", |b| {
        b.iter(|| fig1::warmup_curve(&workload, 800, 7))
    });
    group.finish();
}

fn bench_table1(c: &mut Criterion) {
    let workload = pronghorn_workloads::by_name("Hash").expect("bundled");
    let mut group = c.benchmark_group("table1_speedup");
    group.sample_size(10);
    group.bench_function("hash_speedup_column", |b| {
        b.iter(|| table1::speedup_column(&workload, 7))
    });
    group.finish();
}

fn bench_fig4(c: &mut Criterion) {
    let ctx = bench_context();
    let mut group = c.benchmark_group("fig4_python_cdfs");
    group.sample_size(10);
    // One representative compute panel and one IO panel.
    for bench in ["BFS", "Uploader"] {
        group.bench_function(format!("{bench}_3policies_3rates"), |b| {
            b.iter(|| grid::run_grid(&ctx, &[bench], &grid::PAPER_POLICIES, &grid::PAPER_RATES))
        });
    }
    group.finish();
}

fn bench_fig5(c: &mut Criterion) {
    let ctx = bench_context();
    let mut group = c.benchmark_group("fig5_java_cdfs");
    group.sample_size(10);
    group.bench_function("full_grid", |b| b.iter(|| fig45::run_fig5(&ctx)));
    group.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let ctx = bench_context();
    let mut group = c.benchmark_group("fig6_traces");
    group.sample_size(10);
    group.bench_function("nine_panels", |b| b.iter(|| fig6::run(&ctx)));
    group.finish();
}

fn bench_table4(c: &mut Criterion) {
    let workload = pronghorn_workloads::by_name("BFS").expect("bundled");
    let mut group = c.benchmark_group("table4_overheads");
    group.sample_size(10);
    group.bench_function("engine_costs_10x", |b| {
        b.iter(|| table4::measure_engine_costs(&workload, 7))
    });
    group.finish();
}

fn bench_table5(c: &mut Criterion) {
    let ctx = bench_context();
    let mut group = c.benchmark_group("table5_costs");
    group.sample_size(10);
    group.bench_function("all_benchmarks", |b| b.iter(|| table5::run(&ctx)));
    group.finish();
}

fn bench_fig7(c: &mut Criterion) {
    let ctx = bench_context();
    let mut group = c.benchmark_group("fig7_orchestrator_overheads");
    group.sample_size(10);
    group.bench_function("all_benchmarks", |b| b.iter(|| fig7::run(&ctx)));
    group.finish();
}

fn bench_summary(c: &mut Criterion) {
    let ctx = bench_context();
    let f5 = fig45::run_fig5(&ctx);
    let mut group = c.benchmark_group("summary_aggregation");
    group.bench_function("classify_and_geomean", |b| {
        b.iter(|| summary::summarize(&[&f5.grid]))
    });
    group.finish();
}

criterion_group!(
    paper,
    bench_fig1,
    bench_table1,
    bench_fig4,
    bench_fig5,
    bench_fig6,
    bench_table4,
    bench_table5,
    bench_fig7,
    bench_summary,
);
criterion_main!(paper);

//! Micro-benchmarks of every substrate: the checkpoint engine and codec,
//! the object store and database, the JIT runtime's request execution,
//! and the real workload kernels.

#![forbid(unsafe_code)]

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pronghorn_checkpoint::{Checkpointable, SimCriuEngine, Snapshot, SnapshotMeta};
use pronghorn_jit::Runtime;
use pronghorn_kv::KvStore;
use pronghorn_store::ObjectStore;
use pronghorn_workloads::kernels::{compress, graph, hashing, json};
use pronghorn_workloads::{by_name, InputVariance, Workload};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn warm_runtime() -> Runtime {
    let workload = by_name("BFS").expect("bundled");
    let mut rng = SmallRng::seed_from_u64(1);
    let (mut rt, _) = Runtime::cold_start(
        workload.runtime_profile(),
        workload.method_profiles(),
        &mut rng,
    );
    let mut exec = SmallRng::seed_from_u64(2);
    for i in 0..200u64 {
        let mut input = SmallRng::seed_from_u64(i);
        let request = workload.generate(&mut input, InputVariance::none());
        rt.execute(&request, &mut exec);
    }
    rt
}

fn bench_checkpoint_engine(c: &mut Criterion) {
    let engine = SimCriuEngine::new();
    let runtime = warm_runtime();
    let mut group = c.benchmark_group("checkpoint_engine");
    group.bench_function("checkpoint_runtime", |b| {
        let mut rng = SmallRng::seed_from_u64(3);
        b.iter(|| {
            engine.checkpoint(
                &mut rng,
                &runtime,
                SnapshotMeta {
                    function: "bfs".into(),
                    request_number: 200,
                    runtime: "pypy".into(),
                },
            )
        })
    });
    let mut rng = SmallRng::seed_from_u64(4);
    let (snapshot, _) = engine.checkpoint(
        &mut rng,
        &runtime,
        SnapshotMeta {
            function: "bfs".into(),
            request_number: 200,
            runtime: "pypy".into(),
        },
    );
    group.bench_function("restore_runtime", |b| {
        let mut rng = SmallRng::seed_from_u64(5);
        b.iter(|| engine.restore::<Runtime, _>(&mut rng, &snapshot).unwrap())
    });
    let framed = snapshot.to_bytes();
    group.throughput(Throughput::Bytes(framed.len() as u64));
    group.bench_function("snapshot_from_bytes", |b| {
        b.iter(|| Snapshot::from_bytes(&framed).unwrap())
    });
    group.finish();
}

fn bench_jit_execution(c: &mut Criterion) {
    let workload = by_name("BFS").expect("bundled");
    let mut runtime = warm_runtime();
    let mut input = SmallRng::seed_from_u64(6);
    let request = workload.generate(&mut input, InputVariance::none());
    let mut group = c.benchmark_group("jit_runtime");
    group.bench_function("execute_request_warm", |b| {
        let mut rng = SmallRng::seed_from_u64(7);
        b.iter(|| runtime.execute(&request, &mut rng))
    });
    group.bench_function("image_size_model", |b| {
        b.iter(|| runtime.image_size_bytes())
    });
    group.finish();
}

fn bench_stores(c: &mut Criterion) {
    let mut group = c.benchmark_group("stores");
    let kv = KvStore::new();
    let theta: Vec<f64> = (0..200).map(f64::from).collect();
    let encoded = pronghorn_kv::types::encode_f64_vec(&theta);
    group.bench_function("kv_put_theta_w200", |b| {
        b.iter(|| kv.put("fn/bench/theta", encoded.clone()))
    });
    kv.put("fn/bench/theta", encoded);
    group.bench_function("kv_get_plus_decode", |b| {
        b.iter(|| {
            let v = kv.get("fn/bench/theta").unwrap();
            pronghorn_kv::types::decode_f64_vec(&v.value).unwrap()
        })
    });
    let store = ObjectStore::new();
    let blob = Bytes::from(vec![0xabu8; 64 * 1024]);
    group.throughput(Throughput::Bytes(blob.len() as u64));
    group.bench_function("object_store_put_get_64k", |b| {
        b.iter(|| {
            store.put("snapshots", "bench", blob.clone()).unwrap();
            store.get("snapshots", "bench").unwrap()
        })
    });
    group.finish();
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload_kernels");
    let mut rng = SmallRng::seed_from_u64(8);
    let g = graph::Graph::random(&mut rng, 600, 600);
    group.bench_function("bfs_600_nodes", |b| b.iter(|| graph::bfs(&g)));
    group.bench_function("mst_kruskal_600", |b| b.iter(|| graph::mst_kruskal(&g)));
    group.bench_function("pagerank_600", |b| b.iter(|| graph::pagerank(&g, 25, 1e-7)));

    let data = vec![0x5au8; 8 * 1024];
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("sha256_8k", |b| b.iter(|| hashing::sha256(&data)));

    let text = b"the quick serverless function jumped over the jit ".repeat(160);
    group.throughput(Throughput::Bytes(text.len() as u64));
    group.bench_function("lz77_compress_8k", |b| b.iter(|| compress::compress(&text)));

    let mut rng = SmallRng::seed_from_u64(9);
    let doc = json::random_document(&mut rng, 300);
    let (serialized, _) = json::serialize(&doc);
    group.bench_function("json_parse_300_nodes", |b| {
        b.iter(|| json::parse(&serialized).unwrap())
    });
    group.finish();
}

criterion_group!(
    substrates,
    bench_checkpoint_engine,
    bench_jit_execution,
    bench_stores,
    bench_kernels,
);
criterion_main!(substrates);

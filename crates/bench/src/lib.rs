//! Benchmark harness support: shared contexts for the Criterion benches.
//!
//! The benches under `benches/` regenerate each of the paper's tables and
//! figures at a reduced scale (Criterion repeats every measurement many
//! times; the full-scale regeneration is the `experiments` binary's job)
//! plus micro-benchmarks of the policy hot paths and every substrate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pronghorn_experiments::ExperimentContext;

/// The reduced-scale context every paper-experiment bench uses, so their
/// numbers are comparable across groups.
pub fn bench_context() -> ExperimentContext {
    ExperimentContext {
        seed: 0xBE7C4,
        invocations: 60,
        threads: 4,
    }
}

/// Invocation count for single-run benches.
pub const BENCH_INVOCATIONS: u32 = 60;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_context_is_reduced_scale() {
        assert!(bench_context().invocations < 500);
    }
}

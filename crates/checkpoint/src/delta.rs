//! Delta snapshots: page-level incremental checkpoints.
//!
//! REAP-style analyses (Ustiugov et al.) observe that successive snapshots
//! of one function overlap overwhelmingly — the runtime profile and
//! compiled-method metadata are a static prefix of the encoded state, and
//! only per-request counters, the compile queue, and freshly-promoted
//! methods mutate between checkpoints. A delta snapshot exploits that:
//! instead of persisting the whole payload again, the engine diffs the
//! child payload page-by-page against the parent it was restored from and
//! persists only the changed pages plus a parent reference. Full snapshots
//! are the chain roots; restore composes the chain back into a byte-exact
//! full payload.
//!
//! Two page granularities are in play, mirroring the two layers the
//! simulator models:
//!
//! - **physical**: the encoded payload (kilobytes) is diffed at
//!   [`PAYLOAD_DIFF_PAGE_SIZE`] so the store's content-addressed blobs
//!   shrink to the changed pages — this is what [`apply`] recomposes and
//!   what the byte-identity proptests pin;
//! - **nominal**: the modeled process image (megabytes, Table 4) dirties
//!   only the pages its requests touched since the parent; the caller
//!   folds the runtime's deterministic page-access traces into a dirty
//!   set and [`dirty_nominal_bytes`] converts it into the nominal bytes a
//!   real incremental engine would dump — the number that drives the
//!   checkpoint cost sample and the Table 5 transfer/storage accounting.
//!
//! The delta frame reuses the snapshot container conventions (length-
//! prefixed magic, version, checksummed header, payload as its own chunk)
//! so the orchestrator's chunked upload path and the store's dedup work
//! unchanged.

use crate::codec::{CodecError, Decoder, Encoder};
use crate::snapshot::{Snapshot, SnapshotId, SnapshotMeta};
use bytes::Bytes;
use pronghorn_sim::hash::fnv1a_wide;
use std::collections::BTreeSet;
use std::fmt;

/// Magic bytes opening every serialized delta frame.
pub const DELTA_MAGIC: &[u8; 8] = b"PRDELT\x00\x01";

/// Current delta frame format version.
pub const DELTA_VERSION: u16 = 1;

/// Physical diff granularity over the encoded payload. The encoded state
/// is a static prefix (profile + method profiles) followed by a mutable
/// tail (per-method counters, queue); 1 KiB pages resolve that boundary
/// well for payloads in the kilobyte-to-megabyte range.
pub const PAYLOAD_DIFF_PAGE_SIZE: u64 = 1024;

/// Whether a worker's checkpoints may produce delta snapshots, and how
/// deep a parent chain may grow before it is consolidated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeltaPolicy {
    /// Every checkpoint persists a full snapshot (the pre-delta behavior,
    /// pinned byte-identical by the `full_invariance` golden).
    #[default]
    Disabled,
    /// Checkpoints of restored workers persist page deltas against the
    /// snapshot they were restored from, until the chain reaches
    /// `max_depth` deltas — the next checkpoint then consolidates into a
    /// fresh full root.
    Enabled {
        /// Maximum delta-chain depth K before consolidation (≥ 1).
        max_depth: u32,
    },
}

impl DeltaPolicy {
    /// Whether delta checkpointing is on.
    pub fn enabled(&self) -> bool {
        matches!(self, DeltaPolicy::Enabled { .. })
    }

    /// The consolidation depth K, when enabled.
    pub fn max_depth(&self) -> Option<u32> {
        match self {
            DeltaPolicy::Disabled => None,
            DeltaPolicy::Enabled { max_depth } => Some((*max_depth).max(1)),
        }
    }
}

/// Everything the engine needs to cut a delta instead of a full snapshot:
/// the parent's identity and payload (diff base) plus the modeled dirty
/// nominal bytes accumulated since that parent was restored.
#[derive(Debug, Clone)]
pub struct DeltaBase {
    /// Parent snapshot id — the chain reference persisted in the frame.
    pub parent: SnapshotId,
    /// Parent payload to diff against (shared, not copied).
    pub parent_payload: Bytes,
    /// Parent payload content address, for compose-time validation.
    pub parent_payload_hash: u64,
    /// Modeled nominal bytes dirtied since the parent: the page-access
    /// trace union over the served requests, in image-page bytes.
    pub dirty_nominal_bytes: u64,
}

/// What a checkpoint produced alongside the in-memory [`Snapshot`]: a
/// chain root, or a delta record to persist instead of the full payload.
#[derive(Debug, Clone)]
pub enum CheckpointOutcome {
    /// The snapshot persists as a full chain root.
    Full,
    /// The snapshot persists as `delta` against its parent.
    Delta(SnapshotDelta),
}

/// A page-level delta of one snapshot payload against its parent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotDelta {
    /// The parent snapshot the delta applies on top of.
    pub parent: SnapshotId,
    /// Content address of the parent payload the diff was computed from.
    pub parent_payload_hash: u64,
    /// Physical diff page size ([`PAYLOAD_DIFF_PAGE_SIZE`]).
    pub page_size: u64,
    /// Composed (child) payload length in bytes.
    pub total_len: u64,
    /// Changed pages, ascending by page index; each slice shares the
    /// child payload's buffer.
    pub pages: Vec<(u32, Bytes)>,
    /// Modeled nominal bytes this delta represents (see [`DeltaBase`]).
    pub dirty_nominal_bytes: u64,
}

/// A delta frame serialized as zero-copy transport chunks, mirroring
/// [`crate::snapshot::EncodedSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedDelta {
    /// Frame header: magic through the page table.
    pub header: Bytes,
    /// Concatenated changed-page bytes, in table order.
    pub payload: Bytes,
    /// Eight bytes: little-endian `Fnv1aWide` checksum of `header`.
    pub trailer: Bytes,
}

impl EncodedDelta {
    /// The frame as its three transport chunks, in wire order.
    pub fn chunks(&self) -> [Bytes; 3] {
        [
            self.header.clone(),
            self.payload.clone(),
            self.trailer.clone(),
        ]
    }

    /// Total frame size in bytes.
    pub fn total_len(&self) -> usize {
        self.header.len() + self.payload.len() + self.trailer.len()
    }
}

/// A parsed delta frame: the child snapshot's identity plus the delta
/// record, ready for [`compose`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaFrame {
    /// Child snapshot id (what the pool references).
    pub id: SnapshotId,
    /// Child snapshot metadata.
    pub meta: SnapshotMeta,
    /// Child nominal image size.
    pub nominal_size: u64,
    /// Content address of the *composed* child payload.
    pub payload_hash: u64,
    /// The delta record.
    pub delta: SnapshotDelta,
}

/// Errors produced while diffing, framing, or composing deltas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaFormatError {
    /// The magic bytes do not open the buffer.
    BadMagic,
    /// A newer (or corrupt) frame version.
    UnsupportedVersion(u16),
    /// Header checksum or composed payload hash mismatch.
    ChecksumMismatch {
        /// Value stored in the frame.
        expected: u64,
        /// Value computed from the content.
        actual: u64,
    },
    /// A page table entry points outside the composed payload.
    PageOutOfBounds {
        /// Offending page index.
        index: u32,
    },
    /// Structural decode failure.
    Codec(CodecError),
}

impl fmt::Display for DeltaFormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaFormatError::BadMagic => write!(f, "not a delta frame (bad magic)"),
            DeltaFormatError::UnsupportedVersion(v) => {
                write!(f, "unsupported delta frame version {v}")
            }
            DeltaFormatError::ChecksumMismatch { expected, actual } => {
                write!(f, "delta checksum mismatch ({expected:#x} != {actual:#x})")
            }
            DeltaFormatError::PageOutOfBounds { index } => {
                write!(f, "delta page {index} lies outside the composed payload")
            }
            DeltaFormatError::Codec(e) => write!(f, "delta decode error: {e}"),
        }
    }
}

impl std::error::Error for DeltaFormatError {}

impl From<CodecError> for DeltaFormatError {
    fn from(e: CodecError) -> Self {
        DeltaFormatError::Codec(e)
    }
}

/// Whether a stored head chunk opens a delta frame (vs. a full snapshot
/// frame): both formats start with a length-prefixed 8-byte magic.
pub fn is_delta_frame(head: &[u8]) -> bool {
    head.len() >= 16 && &head[8..16] == DELTA_MAGIC
}

/// Per-page content addresses of `payload` at `page_size` granularity —
/// the page ids a delta diff speaks in (index `i` covers bytes
/// `[i*page_size, (i+1)*page_size)`).
pub fn page_hashes(payload: &[u8], page_size: u64) -> Vec<u64> {
    let page_size = page_size.max(1) as usize;
    if payload.is_empty() {
        return vec![fnv1a_wide(&[])];
    }
    payload.chunks(page_size).map(fnv1a_wide).collect()
}

/// Diffs `child` against `parent` over the child's page grid, returning
/// the changed pages ascending by index. A page is changed when the
/// parent has no bytes for it (the payload grew) or the bytes differ;
/// length changes surface as changed boundary pages plus the frame's
/// `total_len`.
pub fn diff_payload(parent: &[u8], child: &Bytes, page_size: u64) -> Vec<(u32, Bytes)> {
    let page_size = page_size.max(1) as usize;
    let mut pages = Vec::new();
    let count = child.len().div_ceil(page_size);
    for idx in 0..count {
        let start = idx * page_size;
        let end = (start + page_size).min(child.len());
        let child_page = &child[start..end];
        let parent_page = if start < parent.len() {
            &parent[start..end.min(parent.len())]
        } else {
            &[][..]
        };
        if child_page != parent_page {
            pages.push((idx as u32, child.slice(start..end)));
        }
    }
    pages
}

/// Total physical bytes a delta's changed pages occupy.
pub fn delta_payload_bytes(pages: &[(u32, Bytes)]) -> u64 {
    pages.iter().map(|(_, b)| b.len() as u64).sum()
}

/// Applies `delta` on top of `parent`, returning the composed child
/// payload. Inverse of [`diff_payload`]: for any parent/child pair,
/// `apply(parent, diff(parent, child)) == child` byte-for-byte.
pub fn apply(parent: &[u8], delta: &SnapshotDelta) -> Result<Bytes, DeltaFormatError> {
    let total = delta.total_len as usize;
    let mut out = vec![0u8; total];
    let shared = parent.len().min(total);
    out[..shared].copy_from_slice(&parent[..shared]);
    let page_size = delta.page_size.max(1) as usize;
    for (idx, bytes) in &delta.pages {
        let start = *idx as usize * page_size;
        let end = start
            .checked_add(bytes.len())
            .ok_or(DeltaFormatError::PageOutOfBounds { index: *idx })?;
        // Every page except a partial tail must fill its slot exactly.
        let expected = page_size.min(total.saturating_sub(start));
        if end > total || bytes.len() != expected {
            return Err(DeltaFormatError::PageOutOfBounds { index: *idx });
        }
        out[start..end].copy_from_slice(bytes);
    }
    Ok(Bytes::from(out))
}

impl SnapshotDelta {
    /// Total physical bytes of the changed pages (what the store blob
    /// holds; the nominal accounting uses `dirty_nominal_bytes`).
    pub fn payload_bytes(&self) -> u64 {
        delta_payload_bytes(&self.pages)
    }

    /// Serializes the delta for `snapshot` (the composed child) into
    /// zero-copy frame chunks, reusing `scratch` for the header.
    pub fn to_frame_with(&self, snapshot: &Snapshot, scratch: &mut Encoder) -> EncodedDelta {
        scratch.clear();
        scratch.put_bytes(DELTA_MAGIC);
        scratch.put_u16(DELTA_VERSION);
        scratch.put_u64(snapshot.id.0);
        scratch.put_str(&snapshot.meta.function);
        scratch.put_u32(snapshot.meta.request_number);
        scratch.put_str(&snapshot.meta.runtime);
        scratch.put_u64(snapshot.nominal_size);
        scratch.put_u64(snapshot.payload_hash());
        scratch.put_u64(self.parent.0);
        scratch.put_u64(self.parent_payload_hash);
        scratch.put_u64(self.page_size);
        scratch.put_u64(self.total_len);
        scratch.put_u64(self.dirty_nominal_bytes);
        scratch.put_seq(&self.pages, |enc, (idx, bytes)| {
            enc.put_u32(*idx);
            enc.put_u32(bytes.len() as u32);
        });
        let trailer = scratch.checksum();
        // Concatenate changed pages into one payload blob: contiguous
        // bytes content-address cleanly in the store's dedup layer.
        let mut payload = Vec::with_capacity(self.payload_bytes() as usize);
        for (_, bytes) in &self.pages {
            payload.extend_from_slice(bytes);
        }
        EncodedDelta {
            header: Bytes::copy_from_slice(scratch.as_bytes()),
            payload: Bytes::from(payload),
            trailer: Bytes::from(trailer.to_le_bytes().to_vec()),
        }
    }
}

impl DeltaFrame {
    /// Parses a delta frame from its transport chunks, validating the
    /// header checksum and the page table against the payload chunk.
    /// Page slices share `payload`'s buffer.
    pub fn from_chunks(
        header: &[u8],
        payload: &Bytes,
        trailer: &[u8],
    ) -> Result<Self, DeltaFormatError> {
        let mut dec = Decoder::new(header);
        let magic = dec.take_bytes()?;
        if magic != DELTA_MAGIC {
            return Err(DeltaFormatError::BadMagic);
        }
        let version = dec.take_u16()?;
        if version != DELTA_VERSION {
            return Err(DeltaFormatError::UnsupportedVersion(version));
        }
        let id = SnapshotId(dec.take_u64()?);
        let function = dec.take_str()?.to_string();
        let request_number = dec.take_u32()?;
        let runtime = dec.take_str()?.to_string();
        let nominal_size = dec.take_u64()?;
        let payload_hash = dec.take_u64()?;
        let parent = SnapshotId(dec.take_u64()?);
        let parent_payload_hash = dec.take_u64()?;
        let page_size = dec.take_u64()?;
        let total_len = dec.take_u64()?;
        let dirty_nominal_bytes = dec.take_u64()?;
        let entries = dec.take_len(8)?;
        let mut pages = Vec::with_capacity(entries);
        let mut offset = 0usize;
        for _ in 0..entries {
            let idx = dec.take_u32()?;
            let len = dec.take_u32()? as usize;
            let end = offset
                .checked_add(len)
                .filter(|&e| e <= payload.len())
                .ok_or(DeltaFormatError::PageOutOfBounds { index: idx })?;
            pages.push((idx, payload.slice(offset..end)));
            offset = end;
        }
        dec.finish()?;
        if offset != payload.len() {
            return Err(DeltaFormatError::Codec(CodecError::TrailingBytes {
                remaining: payload.len() - offset,
            }));
        }
        // Trailer checksum over the header, as in the snapshot frame.
        if trailer.len() != 8 {
            return Err(DeltaFormatError::Codec(CodecError::UnexpectedEof {
                needed: 8,
                remaining: trailer.len(),
            }));
        }
        let mut arr = [0u8; 8];
        arr.copy_from_slice(trailer);
        let stored = u64::from_le_bytes(arr);
        let actual = fnv1a_wide(header);
        if stored != actual {
            return Err(DeltaFormatError::ChecksumMismatch {
                expected: stored,
                actual,
            });
        }
        Ok(DeltaFrame {
            id,
            meta: SnapshotMeta {
                function,
                request_number,
                runtime,
            },
            nominal_size,
            payload_hash,
            delta: SnapshotDelta {
                parent,
                parent_payload_hash,
                page_size,
                total_len,
                pages,
                dirty_nominal_bytes,
            },
        })
    }

    /// Composes this frame on top of `parent_payload`, verifying the
    /// parent's content address and the composed payload's hash before
    /// rebuilding the child [`Snapshot`]. The restore path's only way to
    /// materialize a delta-stored snapshot.
    pub fn compose(&self, parent_payload: &Bytes) -> Result<Snapshot, DeltaFormatError> {
        let parent_hash = fnv1a_wide(parent_payload);
        if parent_hash != self.delta.parent_payload_hash {
            return Err(DeltaFormatError::ChecksumMismatch {
                expected: self.delta.parent_payload_hash,
                actual: parent_hash,
            });
        }
        let payload = apply(parent_payload, &self.delta)?;
        let actual = fnv1a_wide(&payload);
        if actual != self.payload_hash {
            return Err(DeltaFormatError::ChecksumMismatch {
                expected: self.payload_hash,
                actual,
            });
        }
        Ok(Snapshot::from_verified_parts(
            self.id,
            self.meta.clone(),
            payload,
            self.nominal_size,
            self.payload_hash,
        ))
    }
}

/// Modeled nominal bytes a delta checkpoint dumps: the image pages in
/// `dirty` (indices on the shared `[i*page_size, (i+1)*page_size)` grid)
/// plus every page the image grew past `parent_pages` — growth is new
/// state the parent cannot supply. Pure arithmetic mirror of
/// `PageMap::page_len`, so the result matches the published page maps.
pub fn dirty_nominal_bytes(
    dirty: &BTreeSet<u32>,
    parent_pages: u32,
    total_bytes: u64,
    page_size: u64,
) -> u64 {
    let page_size = page_size.max(1);
    let count = total_bytes.div_ceil(page_size).max(1);
    let count_u32 = count.min(u64::from(u32::MAX)) as u32;
    let page_len = |i: u32| -> u64 {
        let i = u64::from(i);
        if i + 1 < count {
            page_size
        } else if i + 1 == count {
            total_bytes - (count - 1) * page_size
        } else {
            0
        }
    };
    let mut total = 0u64;
    for i in 0..count_u32 {
        if i >= parent_pages || dirty.contains(&i) {
            total += page_len(i);
        }
    }
    total.min(total_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(payload: &[u8]) -> Snapshot {
        Snapshot::with_nonce(
            SnapshotMeta {
                function: "f".into(),
                request_number: 3,
                runtime: "jvm".into(),
            },
            Bytes::copy_from_slice(payload),
            12 << 20,
            7,
        )
    }

    fn delta_for(parent: &[u8], child: &Snapshot, page_size: u64) -> SnapshotDelta {
        let pages = diff_payload(parent, &child.payload, page_size);
        SnapshotDelta {
            parent: SnapshotId(1),
            parent_payload_hash: fnv1a_wide(parent),
            page_size,
            total_len: child.payload.len() as u64,
            pages,
            dirty_nominal_bytes: 1024,
        }
    }

    #[test]
    fn diff_apply_round_trips() {
        let parent: Vec<u8> = (0..5000).map(|i| (i % 251) as u8).collect();
        let mut child = parent.clone();
        child[100] ^= 0xff; // page 0
        child[4090] ^= 0x0f; // page 3
        let child = snap(&child);
        let delta = delta_for(&parent, &child, 1024);
        assert_eq!(
            delta.pages.iter().map(|(i, _)| *i).collect::<Vec<_>>(),
            vec![0, 3]
        );
        let composed = apply(&parent, &delta).unwrap();
        assert_eq!(composed, child.payload);
    }

    #[test]
    fn identical_payloads_diff_to_nothing() {
        let payload: Vec<u8> = (0..3000).map(|i| (i % 7) as u8).collect();
        let child = snap(&payload);
        let delta = delta_for(&payload, &child, 1024);
        assert!(delta.pages.is_empty());
        assert_eq!(apply(&payload, &delta).unwrap(), child.payload);
        assert_eq!(delta.payload_bytes(), 0);
    }

    #[test]
    fn growth_marks_new_pages_changed() {
        let parent: Vec<u8> = vec![1; 2048];
        let mut child_bytes = parent.clone();
        child_bytes.extend_from_slice(&[2; 1500]);
        let child = snap(&child_bytes);
        let delta = delta_for(&parent, &child, 1024);
        // Pages 2 and 3 are past the parent's end.
        assert_eq!(
            delta.pages.iter().map(|(i, _)| *i).collect::<Vec<_>>(),
            vec![2, 3]
        );
        assert_eq!(apply(&parent, &delta).unwrap(), child.payload);
    }

    #[test]
    fn shrink_composes_exactly() {
        let parent: Vec<u8> = (0..4000).map(|i| (i % 13) as u8).collect();
        let child = snap(&parent[..2500]);
        let delta = delta_for(&parent, &child, 1024);
        assert_eq!(apply(&parent, &delta).unwrap(), child.payload);
    }

    #[test]
    fn frame_round_trips_and_composes() {
        let parent: Vec<u8> = (0..5000).map(|i| (i % 97) as u8).collect();
        let mut child_bytes = parent.clone();
        child_bytes[2048] ^= 0xaa;
        let child = snap(&child_bytes);
        let mut delta = delta_for(&parent, &child, 1024);
        delta.parent_payload_hash = fnv1a_wide(&parent);
        let mut scratch = Encoder::new();
        let frame = delta.to_frame_with(&child, &mut scratch);
        assert!(is_delta_frame(&frame.header));
        let [head, payload, tail] = frame.chunks();
        let parsed = DeltaFrame::from_chunks(&head, &payload, &tail).unwrap();
        assert_eq!(parsed.id, child.id);
        assert_eq!(parsed.meta, child.meta);
        assert_eq!(parsed.delta.pages, delta.pages);
        let composed = parsed.compose(&Bytes::from(parent.clone())).unwrap();
        assert_eq!(composed, child);
        assert_eq!(composed.payload_hash(), child.payload_hash());
    }

    #[test]
    fn full_frame_head_is_not_a_delta_frame() {
        let child = snap(b"some-state");
        let full = child.to_frame();
        assert!(!is_delta_frame(&full.header));
    }

    #[test]
    fn compose_rejects_wrong_parent() {
        let parent: Vec<u8> = vec![1; 3000];
        let mut child_bytes = parent.clone();
        child_bytes[10] = 9;
        let child = snap(&child_bytes);
        let delta = delta_for(&parent, &child, 1024);
        let mut scratch = Encoder::new();
        let frame = delta.to_frame_with(&child, &mut scratch);
        let [head, payload, tail] = frame.chunks();
        let parsed = DeltaFrame::from_chunks(&head, &payload, &tail).unwrap();
        let wrong = Bytes::from(vec![2u8; 3000]);
        assert!(matches!(
            parsed.compose(&wrong),
            Err(DeltaFormatError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn corrupt_header_is_rejected() {
        let parent: Vec<u8> = vec![5; 2000];
        let mut child_bytes = parent.clone();
        child_bytes[1500] = 0;
        let child = snap(&child_bytes);
        let delta = delta_for(&parent, &child, 1024);
        let mut scratch = Encoder::new();
        let frame = delta.to_frame_with(&child, &mut scratch);
        let [head, payload, tail] = frame.chunks();
        for i in 0..head.len() {
            let mut bad = head.to_vec();
            bad[i] ^= 0xff;
            assert!(
                DeltaFrame::from_chunks(&bad, &payload, &tail).is_err(),
                "header byte {i} accepted"
            );
        }
    }

    #[test]
    fn page_hashes_cover_every_page() {
        let payload: Vec<u8> = (0..2500).map(|i| i as u8).collect();
        let hashes = page_hashes(&payload, 1024);
        assert_eq!(hashes.len(), 3);
        assert_eq!(hashes[0], fnv1a_wide(&payload[..1024]));
        assert_eq!(hashes[2], fnv1a_wide(&payload[2048..]));
        assert_eq!(page_hashes(&[], 1024).len(), 1);
    }

    #[test]
    fn dirty_nominal_counts_dirty_and_grown_pages() {
        let ps = 256 * 1024;
        let total = 12 * ps + 100; // 13 pages, partial tail
        let dirty: BTreeSet<u32> = [0, 5].into_iter().collect();
        // Parent covered all 13 pages: only the dirty two count.
        assert_eq!(dirty_nominal_bytes(&dirty, 13, total, ps), 2 * ps);
        // Parent covered 11: pages 11 and 12 (partial) are growth.
        assert_eq!(
            dirty_nominal_bytes(&dirty, 11, total, ps),
            2 * ps + ps + 100
        );
        // Everything dirty caps at the image size.
        let all: BTreeSet<u32> = (0..13).collect();
        assert_eq!(dirty_nominal_bytes(&all, 13, total, ps), total);
    }

    #[test]
    fn delta_policy_defaults_off() {
        assert_eq!(DeltaPolicy::default(), DeltaPolicy::Disabled);
        assert!(!DeltaPolicy::Disabled.enabled());
        assert_eq!(DeltaPolicy::Enabled { max_depth: 4 }.max_depth(), Some(4));
        // A zero depth would make every delta an instant consolidation
        // loop; clamp to one.
        assert_eq!(DeltaPolicy::Enabled { max_depth: 0 }.max_depth(), Some(1));
    }
}

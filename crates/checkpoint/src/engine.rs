//! The pluggable checkpoint engine.
//!
//! Pronghorn's Orchestrator "calls the Checkpoint Engine" to snapshot the
//! function process and to restore one (§3.2 steps 5–6). The engine here is
//! the simulation's CRIU: it serializes any [`Checkpointable`] process into
//! a [`Snapshot`] and reconstitutes it, reporting how much virtual time the
//! operation would have cost under the Table 4 model.

use crate::codec::{CodecError, Decoder, Encoder};
use crate::cost::CheckpointCostModel;
use crate::delta::{
    diff_payload, CheckpointOutcome, DeltaBase, SnapshotDelta, PAYLOAD_DIFF_PAGE_SIZE,
};
use crate::snapshot::{Snapshot, SnapshotFormatError, SnapshotMeta};
use crate::stats::CodecStats;
use bytes::Bytes;
use pronghorn_sim::SimDuration;
use rand::Rng;
use std::fmt;
use std::time::Instant;

/// A process whose state can be checkpointed and restored.
///
/// Implementors serialize *all* state that survives a restore — for the
/// JIT runtime simulator that is the per-method tier state, profiling
/// counters, compile queue, and code cache.
pub trait Checkpointable: Sized {
    /// Serializes the full process state.
    fn encode_state(&self, enc: &mut Encoder);

    /// Reconstructs a process from serialized state.
    fn decode_state(dec: &mut Decoder<'_>) -> Result<Self, CodecError>;

    /// Modeled size in bytes of the process image a real engine would dump
    /// (heap + code cache + runtime metadata), after compression.
    fn image_size_bytes(&self) -> u64;

    /// Cheap dirty-tracking hook: a counter that changes whenever the
    /// encoded state would change.
    ///
    /// Implementations returning `Some(v)` promise that two calls
    /// returning the same `v` *on the same instance* would produce
    /// byte-identical [`Self::encode_state`] output, which lets
    /// [`SimCriuEngine::checkpoint_with`] serve repeat checkpoints from a
    /// cached encode. The default `None` disables the cache.
    fn state_version(&self) -> Option<u64> {
        None
    }
}

/// Reusable per-engine scratch state for the checkpoint fast path.
///
/// Holds the encode buffer reused across checkpoints, the last encoded
/// payload keyed by its process state version (the dirty-tracking cache),
/// and the [`CodecStats`] perf counters.
///
/// # Cache contract
///
/// The cache is keyed on [`Checkpointable::state_version`] *only*, and
/// versions are meaningful within a single process instance: two freshly
/// cold-started runtimes both report version 0 with different state.
/// Whoever owns the scratch MUST call [`CheckpointScratch::invalidate`]
/// every time the process instance behind it is replaced (new cold start,
/// restore from snapshot) — the platform session does this on every
/// worker provision.
#[derive(Debug, Default)]
pub struct CheckpointScratch {
    enc: Encoder,
    cached: Option<(u64, Bytes)>,
    stats: CodecStats,
}

impl CheckpointScratch {
    /// Creates empty scratch state.
    pub fn new() -> Self {
        CheckpointScratch::default()
    }

    /// Drops the cached encode. Call whenever the process instance this
    /// scratch serves is swapped for another (see the cache contract).
    pub fn invalidate(&mut self) {
        self.cached = None;
    }

    /// The accumulated perf counters.
    pub fn stats(&self) -> &CodecStats {
        &self.stats
    }

    /// Takes the accumulated perf counters, resetting them to zero.
    pub fn take_stats(&mut self) -> CodecStats {
        std::mem::take(&mut self.stats)
    }
}

/// Errors surfaced by checkpoint/restore operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The snapshot container failed validation.
    Format(SnapshotFormatError),
    /// The payload decoded but did not describe a valid process state.
    State(CodecError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Format(e) => write!(f, "snapshot format error: {e}"),
            EngineError::State(e) => write!(f, "process state error: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<SnapshotFormatError> for EngineError {
    fn from(e: SnapshotFormatError) -> Self {
        EngineError::Format(e)
    }
}

impl From<CodecError> for EngineError {
    fn from(e: CodecError) -> Self {
        EngineError::State(e)
    }
}

/// The simulated CRIU engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimCriuEngine {
    /// Timing model applied to every operation.
    pub costs: CheckpointCostModel,
}

impl SimCriuEngine {
    /// Creates an engine with the default (Table 4) cost model.
    pub fn new() -> Self {
        SimCriuEngine::default()
    }

    /// Creates an engine with a custom cost model.
    pub fn with_costs(costs: CheckpointCostModel) -> Self {
        SimCriuEngine { costs }
    }

    /// Checkpoints `process`, returning the snapshot and the worker
    /// downtime the operation cost (§5.3: "a brief worker downtime on the
    /// order of 60–105 ms").
    pub fn checkpoint<T, R>(
        &self,
        rng: &mut R,
        process: &T,
        meta: SnapshotMeta,
    ) -> (Snapshot, SimDuration)
    where
        T: Checkpointable,
        R: Rng + ?Sized,
    {
        let mut enc = Encoder::new();
        process.encode_state(&mut enc);
        let payload = Bytes::from(enc.into_bytes());
        let nominal = process.image_size_bytes();
        // Unique id even for byte-identical states: identical lineages
        // checkpointed at the same request number must not collide in the
        // snapshot pool.
        let nonce: u64 = rng.gen();
        let snapshot = Snapshot::with_nonce(meta, payload, nominal, nonce);
        let cost = self.costs.sample_checkpoint_us(rng, nominal);
        (snapshot, SimDuration::from_micros_f64(cost))
    }

    /// Like [`Self::checkpoint`], but using (and updating) `scratch`: the
    /// encode buffer is reused across calls, and when the process reports
    /// an unchanged [`Checkpointable::state_version`] the cached payload
    /// is reused without re-encoding at all.
    ///
    /// Draws exactly the same RNG sequence as [`Self::checkpoint`] (one
    /// nonce, one cost sample) on both the cached and uncached paths, so
    /// swapping one for the other never perturbs a seeded simulation.
    pub fn checkpoint_with<T, R>(
        &self,
        scratch: &mut CheckpointScratch,
        rng: &mut R,
        process: &T,
        meta: SnapshotMeta,
    ) -> (Snapshot, SimDuration)
    where
        T: Checkpointable,
        R: Rng + ?Sized,
    {
        let (snapshot, _, cost) = self.checkpoint_delta_with(scratch, rng, process, meta, None);
        (snapshot, cost)
    }

    /// Like [`Self::checkpoint_with`], but when `base` names a parent
    /// snapshot the result is additionally expressed as a page delta
    /// against it: the full [`Snapshot`] is still returned (the pool and
    /// restore paths reason about composed state), alongside a
    /// [`CheckpointOutcome`] telling the caller what to *persist* — the
    /// whole payload, or only the changed pages plus a parent reference.
    ///
    /// The delta arm charges [`CheckpointCostModel::sample_delta_checkpoint_us`]
    /// on the base's dirty nominal bytes instead of the full-image cost.
    /// Both arms draw identical randomness (one nonce, one Gaussian), so
    /// toggling delta checkpointing never shifts the RNG stream of a
    /// seeded run — the property the `full_invariance` golden pins.
    pub fn checkpoint_delta_with<T, R>(
        &self,
        scratch: &mut CheckpointScratch,
        rng: &mut R,
        process: &T,
        meta: SnapshotMeta,
        base: Option<&DeltaBase>,
    ) -> (Snapshot, CheckpointOutcome, SimDuration)
    where
        T: Checkpointable,
        R: Rng + ?Sized,
    {
        let version = process.state_version();
        // pronglint: allow(wall-clock): host-side perf counter (encode_ns);
        // measures real encoder time, never feeds a sim decision.
        let started = Instant::now();
        let payload = match (&scratch.cached, version) {
            (Some((cached_version, bytes)), Some(v)) if *cached_version == v => {
                scratch.stats.encode_skips += 1;
                scratch.stats.bytes_skipped += bytes.len() as u64;
                scratch.stats.allocations_avoided += 1;
                bytes.clone()
            }
            _ => {
                scratch.enc.clear();
                process.encode_state(&mut scratch.enc);
                scratch.stats.encodes += 1;
                scratch.stats.bytes_encoded += scratch.enc.len() as u64;
                let payload = Bytes::from(scratch.enc.take_buffer());
                if let Some(v) = version {
                    scratch.cached = Some((v, payload.clone()));
                }
                payload
            }
        };
        scratch.stats.encode_ns += started.elapsed().as_nanos() as u64;
        let nominal = process.image_size_bytes();
        // Same draw order as `checkpoint`: nonce, then cost.
        let nonce: u64 = rng.gen();
        // pronglint: allow(wall-clock): host-side perf counter (checksum_ns);
        // measures real hashing time, never feeds a sim decision.
        let hashed = Instant::now();
        let snapshot = Snapshot::with_nonce(meta, payload, nominal, nonce);
        scratch.stats.checksum_ns += hashed.elapsed().as_nanos() as u64;
        match base {
            None => {
                let cost = self.costs.sample_checkpoint_us(rng, nominal);
                (
                    snapshot,
                    CheckpointOutcome::Full,
                    SimDuration::from_micros_f64(cost),
                )
            }
            Some(base) => {
                let pages = diff_payload(
                    &base.parent_payload,
                    &snapshot.payload,
                    PAYLOAD_DIFF_PAGE_SIZE,
                );
                let page_count = snapshot
                    .payload
                    .len()
                    .div_ceil(PAYLOAD_DIFF_PAGE_SIZE as usize);
                let delta = SnapshotDelta {
                    parent: base.parent,
                    parent_payload_hash: base.parent_payload_hash,
                    page_size: PAYLOAD_DIFF_PAGE_SIZE,
                    total_len: snapshot.payload.len() as u64,
                    pages,
                    dirty_nominal_bytes: base.dirty_nominal_bytes,
                };
                scratch.stats.delta_encodes += 1;
                scratch.stats.delta_pages_written += delta.pages.len() as u64;
                scratch.stats.delta_pages_total += page_count as u64;
                scratch.stats.delta_bytes_written += delta.payload_bytes();
                let cost = self
                    .costs
                    .sample_delta_checkpoint_us(rng, base.dirty_nominal_bytes);
                (
                    snapshot,
                    CheckpointOutcome::Delta(delta),
                    SimDuration::from_micros_f64(cost),
                )
            }
        }
    }

    /// Restores a process from `snapshot`, returning it and the restore
    /// latency experienced by the cold-path of the new worker.
    pub fn restore<T, R>(
        &self,
        rng: &mut R,
        snapshot: &Snapshot,
    ) -> Result<(T, SimDuration), EngineError>
    where
        T: Checkpointable,
        R: Rng + ?Sized,
    {
        let mut dec = Decoder::new(&snapshot.payload);
        let process = T::decode_state(&mut dec)?;
        dec.finish().map_err(EngineError::State)?;
        let cost = self.costs.sample_restore_us(rng, snapshot.nominal_size);
        Ok((process, SimDuration::from_micros_f64(cost)))
    }

    /// Decodes a process from `snapshot` without charging restore time —
    /// the entry point for page-granular lazy restore, where the clock
    /// cost is modelled per mapped/faulted page by the caller instead of
    /// as one up-front draw. Consumes no RNG, so the engine's cost stream
    /// stays in lockstep with eager runs that never call this.
    pub fn restore_mapped<T>(&self, snapshot: &Snapshot) -> Result<T, EngineError>
    where
        T: Checkpointable,
    {
        let mut dec = Decoder::new(&snapshot.payload);
        let process = T::decode_state(&mut dec)?;
        dec.finish().map_err(EngineError::State)?;
        Ok(process)
    }

    /// Restores from transport bytes (store download), validating framing.
    pub fn restore_from_bytes<T, R>(
        &self,
        rng: &mut R,
        bytes: &[u8],
    ) -> Result<(T, Snapshot, SimDuration), EngineError>
    where
        T: Checkpointable,
        R: Rng + ?Sized,
    {
        let snapshot = Snapshot::from_bytes(bytes)?;
        let (process, cost) = self.restore(rng, &snapshot)?;
        Ok((process, snapshot, cost))
    }

    /// Like [`Self::restore_from_bytes`], but zero-copy: the snapshot's
    /// payload shares `bytes` instead of being copied out of it.
    pub fn restore_from_shared<T, R>(
        &self,
        rng: &mut R,
        bytes: &Bytes,
    ) -> Result<(T, Snapshot, SimDuration), EngineError>
    where
        T: Checkpointable,
        R: Rng + ?Sized,
    {
        let snapshot = Snapshot::from_shared(bytes)?;
        let (process, cost) = self.restore(rng, &snapshot)?;
        Ok((process, snapshot, cost))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{RngCore, SeedableRng};

    /// A toy process for engine tests.
    #[derive(Debug, Clone, PartialEq)]
    struct Counter {
        value: u64,
        history: Vec<f64>,
    }

    impl Checkpointable for Counter {
        fn encode_state(&self, enc: &mut Encoder) {
            enc.put_u64(self.value);
            enc.put_f64_slice(&self.history);
        }

        fn decode_state(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
            Ok(Counter {
                value: dec.take_u64()?,
                history: dec.take_f64_vec()?,
            })
        }

        fn image_size_bytes(&self) -> u64 {
            10 * 1024 * 1024
        }
    }

    fn meta() -> SnapshotMeta {
        SnapshotMeta {
            function: "counter".into(),
            request_number: 9,
            runtime: "toy".into(),
        }
    }

    #[test]
    fn checkpoint_restore_round_trips_state() {
        let engine = SimCriuEngine::new();
        let mut rng = SmallRng::seed_from_u64(3);
        let process = Counter {
            value: 41,
            history: vec![1.5, 2.5],
        };
        let (snap, ckpt_cost) = engine.checkpoint(&mut rng, &process, meta());
        assert!(ckpt_cost > SimDuration::ZERO);
        assert_eq!(snap.meta.request_number, 9);
        assert_eq!(snap.nominal_size, 10 * 1024 * 1024);
        let (restored, rest_cost): (Counter, _) = engine.restore(&mut rng, &snap).unwrap();
        assert!(rest_cost > SimDuration::ZERO);
        assert_eq!(restored, process);
    }

    #[test]
    fn restore_from_transport_bytes() {
        let engine = SimCriuEngine::new();
        let mut rng = SmallRng::seed_from_u64(4);
        let process = Counter {
            value: 7,
            history: vec![],
        };
        let (snap, _) = engine.checkpoint(&mut rng, &process, meta());
        let bytes = snap.to_bytes();
        let (restored, snap2, _) = engine
            .restore_from_bytes::<Counter, _>(&mut rng, &bytes)
            .unwrap();
        assert_eq!(restored, process);
        assert_eq!(snap2, snap);
    }

    /// Counter variant that reports a state version for dirty tracking.
    #[derive(Debug, Clone, PartialEq)]
    struct VersionedCounter {
        inner: Counter,
        version: u64,
    }

    impl Checkpointable for VersionedCounter {
        fn encode_state(&self, enc: &mut Encoder) {
            self.inner.encode_state(enc);
        }
        fn decode_state(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
            Ok(VersionedCounter {
                inner: Counter::decode_state(dec)?,
                version: 0,
            })
        }
        fn image_size_bytes(&self) -> u64 {
            self.inner.image_size_bytes()
        }
        fn state_version(&self) -> Option<u64> {
            Some(self.version)
        }
    }

    #[test]
    fn checkpoint_with_matches_plain_checkpoint_exactly() {
        let engine = SimCriuEngine::new();
        let process = Counter {
            value: 41,
            history: vec![1.5, 2.5],
        };
        let mut rng_a = SmallRng::seed_from_u64(21);
        let (plain, cost_a) = engine.checkpoint(&mut rng_a, &process, meta());
        let mut rng_b = SmallRng::seed_from_u64(21);
        let mut scratch = CheckpointScratch::new();
        let (fast, cost_b) = engine.checkpoint_with(&mut scratch, &mut rng_b, &process, meta());
        assert_eq!(plain, fast, "same seed must yield identical snapshots");
        assert_eq!(cost_a, cost_b);
        // And the RNG streams stay in lockstep afterwards.
        assert_eq!(rng_a.next_u64(), rng_b.next_u64());
    }

    #[test]
    fn unchanged_state_version_skips_reencoding() {
        let engine = SimCriuEngine::new();
        let mut rng = SmallRng::seed_from_u64(22);
        let mut scratch = CheckpointScratch::new();
        let mut process = VersionedCounter {
            inner: Counter {
                value: 1,
                history: vec![2.0],
            },
            version: 7,
        };
        let (a, _) = engine.checkpoint_with(&mut scratch, &mut rng, &process, meta());
        assert_eq!(scratch.stats().encodes, 1);
        assert_eq!(scratch.stats().encode_skips, 0);
        // Same version: served from cache, payload byte-identical.
        let (b, _) = engine.checkpoint_with(&mut scratch, &mut rng, &process, meta());
        assert_eq!(scratch.stats().encodes, 1, "no re-encode");
        assert_eq!(scratch.stats().encode_skips, 1);
        assert_eq!(a.payload, b.payload);
        assert_ne!(a.id, b.id, "nonces still differ");
        // Mutation bumps the version: cache miss, fresh encode.
        process.inner.value = 2;
        process.version = 8;
        let (c, _) = engine.checkpoint_with(&mut scratch, &mut rng, &process, meta());
        assert_eq!(scratch.stats().encodes, 2);
        assert_ne!(c.payload, b.payload);
    }

    #[test]
    fn delta_checkpoint_composes_back_and_keeps_rng_lockstep() {
        let engine = SimCriuEngine::new();
        let parent_process = Counter {
            value: 41,
            history: vec![1.5, 2.5],
        };
        let mut scratch = CheckpointScratch::new();
        let mut rng = SmallRng::seed_from_u64(31);
        let (parent, _) = engine.checkpoint_with(&mut scratch, &mut rng, &parent_process, meta());
        // The child mutates a little state on top of the parent.
        let child_process = Counter {
            value: 42,
            history: vec![1.5, 2.5],
        };
        let base = DeltaBase {
            parent: parent.id,
            parent_payload: parent.payload.clone(),
            parent_payload_hash: parent.payload_hash(),
            dirty_nominal_bytes: 2 * 1024 * 1024,
        };
        let mut rng_full = rng.clone();
        let (snap, outcome, cost) = engine.checkpoint_delta_with(
            &mut scratch,
            &mut rng,
            &child_process,
            meta(),
            Some(&base),
        );
        let delta = match outcome {
            CheckpointOutcome::Delta(d) => d,
            CheckpointOutcome::Full => panic!("expected a delta outcome"),
        };
        // The delta re-applies onto the parent payload byte-exactly.
        let composed = crate::delta::apply(&parent.payload, &delta).unwrap();
        assert_eq!(composed, snap.payload);
        assert_eq!(scratch.stats().delta_encodes, 1);
        assert_eq!(scratch.stats().delta_bytes_written, delta.payload_bytes());
        assert!(scratch.stats().delta_pages_total >= scratch.stats().delta_pages_written);
        // Delta is cheaper than the full checkpoint the same draw buys.
        let (full_snap, full_cost) =
            engine.checkpoint_with(&mut scratch, &mut rng_full, &child_process, meta());
        assert_eq!(full_snap, snap, "same RNG draw, same snapshot");
        assert!(cost < full_cost);
        // Both arms left the RNGs at the same stream position.
        assert_eq!(rng.next_u64(), rng_full.next_u64());
    }

    #[test]
    fn invalidate_prevents_cross_instance_cache_hits() {
        let engine = SimCriuEngine::new();
        let mut rng = SmallRng::seed_from_u64(23);
        let mut scratch = CheckpointScratch::new();
        let first = VersionedCounter {
            inner: Counter {
                value: 10,
                history: vec![],
            },
            version: 0,
        };
        // A *different* instance that coincidentally shares version 0 —
        // exactly the collision the invalidate contract guards against.
        let second = VersionedCounter {
            inner: Counter {
                value: 99,
                history: vec![],
            },
            version: 0,
        };
        engine.checkpoint_with(&mut scratch, &mut rng, &first, meta());
        scratch.invalidate();
        let (snap, _) = engine.checkpoint_with(&mut scratch, &mut rng, &second, meta());
        let (restored, _): (VersionedCounter, _) = engine.restore(&mut rng, &snap).unwrap();
        assert_eq!(restored.inner.value, 99, "stale cache must not leak");
        assert_eq!(scratch.stats().encodes, 2);
    }

    #[test]
    fn versionless_process_never_caches() {
        let engine = SimCriuEngine::new();
        let mut rng = SmallRng::seed_from_u64(24);
        let mut scratch = CheckpointScratch::new();
        let process = Counter {
            value: 3,
            history: vec![],
        };
        engine.checkpoint_with(&mut scratch, &mut rng, &process, meta());
        engine.checkpoint_with(&mut scratch, &mut rng, &process, meta());
        assert_eq!(scratch.stats().encodes, 2);
        assert_eq!(scratch.stats().encode_skips, 0);
    }

    #[test]
    fn restore_from_shared_is_zero_copy() {
        let engine = SimCriuEngine::new();
        let mut rng = SmallRng::seed_from_u64(25);
        let process = Counter {
            value: 7,
            history: vec![4.0],
        };
        let (snap, _) = engine.checkpoint(&mut rng, &process, meta());
        let framed = snap.to_bytes();
        let (restored, snap2, _) = engine
            .restore_from_shared::<Counter, _>(&mut rng, &framed)
            .unwrap();
        assert_eq!(restored, process);
        assert_eq!(snap2, snap);
    }

    #[test]
    fn corrupt_payload_is_a_state_error() {
        let engine = SimCriuEngine::new();
        let mut rng = SmallRng::seed_from_u64(5);
        let process = Counter {
            value: 7,
            history: vec![1.0],
        };
        let (mut snap, _) = engine.checkpoint(&mut rng, &process, meta());
        // Truncate the payload: framing is fine, state is not.
        snap.payload = snap.payload.slice(..snap.payload.len() - 1);
        let err = engine.restore::<Counter, _>(&mut rng, &snap).unwrap_err();
        assert!(matches!(err, EngineError::State(_)));
    }

    #[test]
    fn trailing_state_bytes_are_rejected() {
        let engine = SimCriuEngine::new();
        let mut rng = SmallRng::seed_from_u64(6);
        let process = Counter {
            value: 7,
            history: vec![],
        };
        let (mut snap, _) = engine.checkpoint(&mut rng, &process, meta());
        let mut extended = snap.payload.to_vec();
        extended.push(0);
        snap.payload = Bytes::from(extended);
        let err = engine.restore::<Counter, _>(&mut rng, &snap).unwrap_err();
        assert!(matches!(
            err,
            EngineError::State(CodecError::TrailingBytes { remaining: 1 })
        ));
    }

    #[test]
    fn corrupt_transport_is_a_format_error() {
        let engine = SimCriuEngine::new();
        let mut rng = SmallRng::seed_from_u64(7);
        let err = engine
            .restore_from_bytes::<Counter, _>(&mut rng, b"junk")
            .unwrap_err();
        assert!(matches!(err, EngineError::Format(_)));
    }

    #[test]
    fn costs_scale_with_image_size() {
        #[derive(Debug)]
        struct Big;
        impl Checkpointable for Big {
            fn encode_state(&self, enc: &mut Encoder) {
                enc.put_u8(0);
            }
            fn decode_state(dec: &mut Decoder<'_>) -> Result<Self, CodecError> {
                dec.take_u8()?;
                Ok(Big)
            }
            fn image_size_bytes(&self) -> u64 {
                64 * 1024 * 1024
            }
        }
        let engine = SimCriuEngine::new();
        // Compare means across many samples to dodge jitter.
        let avg = |image: bool| -> f64 {
            let mut rng = SmallRng::seed_from_u64(8);
            let mut total = 0.0;
            for _ in 0..200 {
                let cost = if image {
                    let (_, c) = engine.checkpoint(&mut rng, &Big, meta());
                    c
                } else {
                    let (_, c) = engine.checkpoint(
                        &mut rng,
                        &Counter {
                            value: 0,
                            history: vec![],
                        },
                        meta(),
                    );
                    c
                };
                total += cost.as_micros() as f64;
            }
            total / 200.0
        };
        assert!(avg(true) > avg(false));
    }
}

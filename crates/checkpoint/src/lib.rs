//! Checkpoint engine — the paper's CRIU stand-in.
//!
//! Pronghorn "employed CRIU as a stand-in for any Checkpoint Engine due to
//! its maturity" while remaining "agnostic to the choice of Checkpoint
//! Engine" (§4). This crate provides that pluggable engine layer for the
//! reproduction:
//!
//! - [`codec`]: a from-scratch little-endian binary codec (no serde-format
//!   dependency) with explicit decode errors;
//! - [`Snapshot`]: a versioned, checksummed snapshot container carrying the
//!   serialized process state plus the *nominal* process-image size used
//!   for cost accounting (a real CRIU image is the process memory, tens of
//!   megabytes per Table 4; the simulated runtime state serializes to
//!   kilobytes, so sizes are modeled, not padded);
//! - [`Checkpointable`]: the contract a process must satisfy to be
//!   checkpointed and restored;
//! - [`SimCriuEngine`]: an engine whose checkpoint/restore *times* follow a
//!   `base + per-MB + jitter` model fitted to Table 4 (checkpoint 60–105 ms,
//!   restore 30–80 ms for 10–64 MB images).
//!
//! # Examples
//!
//! ```
//! use pronghorn_checkpoint::codec::{Decoder, Encoder};
//!
//! let mut enc = Encoder::new();
//! enc.put_u32(7);
//! enc.put_str("hot");
//! let bytes = enc.into_bytes();
//! let mut dec = Decoder::new(&bytes);
//! assert_eq!(dec.take_u32().unwrap(), 7);
//! assert_eq!(dec.take_str().unwrap(), "hot");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod cost;
pub mod delta;
pub mod engine;
pub mod snapshot;
pub mod stats;

pub use codec::{CodecError, Decoder, Encoder};
pub use cost::CheckpointCostModel;
pub use delta::{
    CheckpointOutcome, DeltaBase, DeltaFormatError, DeltaFrame, DeltaPolicy, EncodedDelta,
    SnapshotDelta, DELTA_MAGIC, PAYLOAD_DIFF_PAGE_SIZE,
};
pub use engine::{CheckpointScratch, Checkpointable, EngineError, SimCriuEngine};
pub use snapshot::{EncodedSnapshot, Snapshot, SnapshotId, SnapshotMeta};
pub use stats::CodecStats;

//! From-scratch little-endian binary codec.
//!
//! Snapshot payloads must round-trip the full JIT runtime state. Rather
//! than pulling in a serde format crate, the codec is ~200 lines of
//! explicit, bounds-checked primitives: fixed-width little-endian integers
//! and floats, length-prefixed byte strings, and composite helpers. Every
//! decode failure is a typed error, never a panic — a corrupted snapshot
//! must surface as a restore error, not abort the platform.

use pronghorn_sim::hash::Fnv1aWide;
use std::fmt;

/// Errors produced while decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the requested field.
    UnexpectedEof {
        /// Bytes needed by the read.
        needed: usize,
        /// Bytes remaining in the buffer.
        remaining: usize,
    },
    /// A length prefix exceeds the remaining buffer (corrupt or hostile).
    LengthOutOfBounds {
        /// The declared length.
        declared: u64,
        /// Bytes remaining in the buffer.
        remaining: usize,
    },
    /// A byte string declared as UTF-8 text is not valid UTF-8.
    InvalidUtf8,
    /// A tag byte has no corresponding variant.
    InvalidTag {
        /// The unexpected tag value.
        tag: u8,
        /// What was being decoded.
        context: &'static str,
    },
    /// Decoding finished but bytes remain (format drift detector).
    TrailingBytes {
        /// Count of unread bytes.
        remaining: usize,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof { needed, remaining } => {
                write!(
                    f,
                    "unexpected EOF: needed {needed} bytes, {remaining} remain"
                )
            }
            CodecError::LengthOutOfBounds {
                declared,
                remaining,
            } => {
                write!(
                    f,
                    "length {declared} out of bounds ({remaining} bytes remain)"
                )
            }
            CodecError::InvalidUtf8 => write!(f, "invalid UTF-8 in string field"),
            CodecError::InvalidTag { tag, context } => {
                write!(f, "invalid tag {tag} while decoding {context}")
            }
            CodecError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after decode")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Append-only binary encoder with an integrated streaming checksum.
///
/// The checksum ([`Fnv1aWide`]) is folded lazily: bytes are appended
/// freely, and [`Encoder::checksum`] absorbs only the bytes written since
/// the previous call, so checksumming the output costs a single pass that
/// overlaps encoding instead of a second full sweep over the buffer.
///
/// The encoder is built to be *reused* across checkpoints: [`Encoder::clear`]
/// drops the contents but keeps the allocation, and [`Encoder::take_buffer`]
/// hands the filled buffer out while leaving the encoder ready for the
/// next frame. A long-lived engine therefore amortizes one buffer
/// allocation across every checkpoint it takes.
#[derive(Debug, Default, Clone)]
pub struct Encoder {
    buf: Vec<u8>,
    hasher: Fnv1aWide,
    hashed: usize,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Encoder::default()
    }

    /// Creates an encoder with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Encoder {
            buf: Vec::with_capacity(capacity),
            hasher: Fnv1aWide::new(),
            hashed: 0,
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the encoder, returning the byte buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Borrow the bytes written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Discards contents and checksum state, keeping the allocation.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.hasher = Fnv1aWide::new();
        self.hashed = 0;
    }

    /// Reserves room for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Takes the filled buffer, leaving the encoder empty but with its
    /// checksum state reset — equivalent to `into_bytes` followed by
    /// re-creating the encoder, minus the allocation churn of the caller
    /// needing a fresh `Vec` next time.
    pub fn take_buffer(&mut self) -> Vec<u8> {
        self.hasher = Fnv1aWide::new();
        self.hashed = 0;
        std::mem::take(&mut self.buf)
    }

    /// Streaming [`Fnv1aWide`] checksum of everything written so far.
    ///
    /// Only bytes appended since the previous `checksum` call are folded
    /// in, so interleaving writes and checksum reads still hashes the
    /// buffer exactly once overall.
    pub fn checksum(&mut self) -> u64 {
        if self.hashed < self.buf.len() {
            self.hasher.write(&self.buf[self.hashed..]);
            self.hashed = self.buf.len();
        }
        self.hasher.finish()
    }

    /// Writes one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `bool` as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Writes a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian IEEE-754 `f64`.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Writes a length-prefixed `f64` slice.
    pub fn put_f64_slice(&mut self, v: &[f64]) {
        self.put_u64(v.len() as u64);
        for x in v {
            self.put_f64(*x);
        }
    }

    /// Writes an `Option` as a presence byte plus the value.
    pub fn put_option<T>(&mut self, v: &Option<T>, mut f: impl FnMut(&mut Self, &T)) {
        match v {
            None => self.put_u8(0),
            Some(x) => {
                self.put_u8(1);
                f(self, x);
            }
        }
    }

    /// Writes a length-prefixed sequence with a per-element closure.
    pub fn put_seq<T>(&mut self, items: &[T], mut f: impl FnMut(&mut Self, &T)) {
        self.put_u64(items.len() as u64);
        for item in items {
            f(self, item);
        }
    }
}

/// Bounds-checked binary decoder over a byte slice.
#[derive(Debug, Clone)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Creates a decoder at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Asserts the buffer was fully consumed.
    pub fn finish(&self) -> Result<(), CodecError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes {
                remaining: self.remaining(),
            })
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn take_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `bool`; any nonzero byte is `true`.
    pub fn take_bool(&mut self) -> Result<bool, CodecError> {
        Ok(self.take_u8()? != 0)
    }

    /// Reads a little-endian `u16`.
    pub fn take_u16(&mut self) -> Result<u16, CodecError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(b);
        Ok(u64::from_le_bytes(arr))
    }

    /// Reads a little-endian `f64`.
    pub fn take_f64(&mut self) -> Result<f64, CodecError> {
        let b = self.take(8)?;
        let mut arr = [0u8; 8];
        arr.copy_from_slice(b);
        Ok(f64::from_le_bytes(arr))
    }

    /// Reads a length prefix, validating it against the remaining buffer
    /// assuming each element needs at least `min_element_size` bytes.
    pub fn take_len(&mut self, min_element_size: usize) -> Result<usize, CodecError> {
        let declared = self.take_u64()?;
        let max = (self.remaining() / min_element_size.max(1)) as u64;
        if declared > max {
            return Err(CodecError::LengthOutOfBounds {
                declared,
                remaining: self.remaining(),
            });
        }
        Ok(declared as usize)
    }

    /// Reads a length-prefixed byte string.
    pub fn take_bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let len = self.take_len(1)?;
        self.take(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> Result<&'a str, CodecError> {
        std::str::from_utf8(self.take_bytes()?).map_err(|_| CodecError::InvalidUtf8)
    }

    /// Reads a length-prefixed `f64` vector.
    pub fn take_f64_vec(&mut self) -> Result<Vec<f64>, CodecError> {
        let len = self.take_len(8)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.take_f64()?);
        }
        Ok(out)
    }

    /// Reads an `Option` written by [`Encoder::put_option`].
    pub fn take_option<T>(
        &mut self,
        mut f: impl FnMut(&mut Self) -> Result<T, CodecError>,
    ) -> Result<Option<T>, CodecError> {
        match self.take_u8()? {
            0 => Ok(None),
            1 => Ok(Some(f(self)?)),
            tag => Err(CodecError::InvalidTag {
                tag,
                context: "Option",
            }),
        }
    }

    /// Reads a sequence written by [`Encoder::put_seq`]. Each element must
    /// occupy at least `min_element_size` bytes (for prefix validation).
    pub fn take_seq<T>(
        &mut self,
        min_element_size: usize,
        mut f: impl FnMut(&mut Self) -> Result<T, CodecError>,
    ) -> Result<Vec<T>, CodecError> {
        let len = self.take_len(min_element_size)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(f(self)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut e = Encoder::new();
        e.put_u8(0xab);
        e.put_bool(true);
        e.put_u16(0x1234);
        e.put_u32(0xdead_beef);
        e.put_u64(u64::MAX - 1);
        e.put_f64(-1234.5678);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.take_u8().unwrap(), 0xab);
        assert!(d.take_bool().unwrap());
        assert_eq!(d.take_u16().unwrap(), 0x1234);
        assert_eq!(d.take_u32().unwrap(), 0xdead_beef);
        assert_eq!(d.take_u64().unwrap(), u64::MAX - 1);
        assert_eq!(d.take_f64().unwrap(), -1234.5678);
        d.finish().unwrap();
    }

    #[test]
    fn strings_and_bytes_round_trip() {
        let mut e = Encoder::new();
        e.put_str("héllo ⚡");
        e.put_bytes(&[0, 1, 2]);
        e.put_str("");
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.take_str().unwrap(), "héllo ⚡");
        assert_eq!(d.take_bytes().unwrap(), &[0, 1, 2]);
        assert_eq!(d.take_str().unwrap(), "");
        d.finish().unwrap();
    }

    #[test]
    fn f64_slice_round_trips() {
        let values = [1.0, f64::NAN, f64::INFINITY, -0.0];
        let mut e = Encoder::new();
        e.put_f64_slice(&values);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        let out = d.take_f64_vec().unwrap();
        assert_eq!(out.len(), 4);
        assert_eq!(out[0], 1.0);
        assert!(out[1].is_nan());
        assert_eq!(out[2], f64::INFINITY);
    }

    #[test]
    fn option_round_trips() {
        let mut e = Encoder::new();
        e.put_option(&Some(42u32), |e, v| e.put_u32(*v));
        e.put_option(&None::<u32>, |e, v| e.put_u32(*v));
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.take_option(|d| d.take_u32()).unwrap(), Some(42));
        assert_eq!(d.take_option(|d| d.take_u32()).unwrap(), None);
    }

    #[test]
    fn seq_round_trips() {
        let items = vec!["a".to_string(), "bc".to_string()];
        let mut e = Encoder::new();
        e.put_seq(&items, |e, s| e.put_str(s));
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        let out = d.take_seq(8, |d| d.take_str().map(str::to_string)).unwrap();
        assert_eq!(out, items);
    }

    #[test]
    fn eof_is_detected() {
        let mut d = Decoder::new(&[1, 2]);
        assert!(matches!(
            d.take_u32(),
            Err(CodecError::UnexpectedEof {
                needed: 4,
                remaining: 2
            })
        ));
    }

    #[test]
    fn hostile_length_prefix_is_rejected() {
        // Declares u64::MAX elements — must fail fast, not try to allocate.
        let mut e = Encoder::new();
        e.put_u64(u64::MAX);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert!(matches!(
            d.take_bytes(),
            Err(CodecError::LengthOutOfBounds { .. })
        ));
    }

    #[test]
    fn invalid_utf8_is_rejected() {
        let mut e = Encoder::new();
        e.put_bytes(&[0xff, 0xfe]);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.take_str(), Err(CodecError::InvalidUtf8));
    }

    #[test]
    fn invalid_option_tag_is_rejected() {
        let mut d = Decoder::new(&[7]);
        assert!(matches!(
            d.take_option(|d| d.take_u8()),
            Err(CodecError::InvalidTag { tag: 7, .. })
        ));
    }

    #[test]
    fn streaming_checksum_matches_one_shot() {
        use pronghorn_sim::hash::fnv1a_wide;
        let mut e = Encoder::new();
        e.put_u64(0x1122_3344_5566_7788);
        // Interleave a checksum read mid-stream; the final value must
        // still equal a one-shot hash of the whole buffer.
        let _ = e.checksum();
        e.put_str("interleaved");
        e.put_bytes(&[9, 8, 7]);
        assert_eq!(e.checksum(), fnv1a_wide(e.as_bytes()));
    }

    #[test]
    fn clear_resets_contents_and_checksum() {
        let mut e = Encoder::with_capacity(256);
        e.put_str("first frame");
        let first = e.checksum();
        e.clear();
        assert!(e.is_empty());
        e.put_str("first frame");
        assert_eq!(e.checksum(), first);
    }

    #[test]
    fn take_buffer_leaves_encoder_reusable() {
        let mut e = Encoder::new();
        e.put_u32(1);
        let cks = e.checksum();
        let buf = e.take_buffer();
        assert_eq!(buf.len(), 4);
        assert!(e.is_empty());
        e.put_u32(1);
        assert_eq!(e.checksum(), cks, "fresh state after take_buffer");
    }

    #[test]
    fn trailing_bytes_are_detected() {
        let mut e = Encoder::new();
        e.put_u8(1);
        e.put_u8(2);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        d.take_u8().unwrap();
        assert_eq!(d.finish(), Err(CodecError::TrailingBytes { remaining: 1 }));
    }
}

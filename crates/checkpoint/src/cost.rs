//! Checkpoint/restore cost model, fitted to Table 4.
//!
//! Table 4 of the paper reports, per benchmark, mean ± std of CRIU 3.15
//! checkpoint and restore times against snapshot size:
//!
//! | runtime | snapshot | checkpoint | restore |
//! |---|---|---|---|
//! | JVM | 10.5–13.3 MB | 60.6–70.7 ms | 50.4–55.2 ms |
//! | PyPy | 54.1–64.0 MB | 74.4–105.0 ms | 30.2–80.5 ms |
//!
//! A `base + per-MB` affine model with multiplicative jitter reproduces
//! those ranges: checkpoint time is dominated by a fixed freeze/dump cost
//! plus page-out proportional to image size; restore similarly. The
//! defaults below put a 10.5 MB JVM image at ≈ 65 ms checkpoint / 51 ms
//! restore and a 55 MB PyPy image at ≈ 88 ms / 71 ms — inside the paper's
//! reported bands.

use rand::Rng;
use rand_distr_like::sample_gaussian;

/// Affine-plus-jitter cost model for one checkpoint engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckpointCostModel {
    /// Fixed checkpoint cost (freeze + dump setup), µs.
    pub checkpoint_base_us: f64,
    /// Checkpoint cost per megabyte of process image, µs/MB.
    pub checkpoint_per_mb_us: f64,
    /// Fixed restore cost (fork + map setup), µs.
    pub restore_base_us: f64,
    /// Restore cost per megabyte, µs/MB.
    pub restore_per_mb_us: f64,
    /// Relative standard deviation of the multiplicative jitter (Table 4's
    /// "±" columns are 10–30% of the mean).
    pub jitter_rel_std: f64,
    /// Fraction of the fixed checkpoint base a *delta* checkpoint still
    /// pays. Incremental capture skips most of the page-out but not the
    /// freeze/quiesce: CRIU's pre-dump measurements put the irreducible
    /// stop-the-world share at roughly 60% of a small image's dump time.
    pub delta_base_frac: f64,
}

impl Default for CheckpointCostModel {
    fn default() -> Self {
        CheckpointCostModel {
            checkpoint_base_us: 58_000.0,
            checkpoint_per_mb_us: 550.0,
            restore_base_us: 45_000.0,
            restore_per_mb_us: 480.0,
            jitter_rel_std: 0.18,
            delta_base_frac: 0.6,
        }
    }
}

impl CheckpointCostModel {
    /// Mean checkpoint time for an image of `size_bytes`, µs.
    pub fn mean_checkpoint_us(&self, size_bytes: u64) -> f64 {
        let mb = size_bytes as f64 / (1024.0 * 1024.0);
        self.checkpoint_base_us + self.checkpoint_per_mb_us * mb
    }

    /// Mean restore time for an image of `size_bytes`, µs.
    pub fn mean_restore_us(&self, size_bytes: u64) -> f64 {
        let mb = size_bytes as f64 / (1024.0 * 1024.0);
        self.restore_base_us + self.restore_per_mb_us * mb
    }

    /// Samples a jittered checkpoint time, µs (never below 20% of mean).
    pub fn sample_checkpoint_us<R: Rng + ?Sized>(&self, rng: &mut R, size_bytes: u64) -> f64 {
        jittered(
            rng,
            self.mean_checkpoint_us(size_bytes),
            self.jitter_rel_std,
        )
    }

    /// Samples a jittered restore time, µs (never below 20% of mean).
    pub fn sample_restore_us<R: Rng + ?Sized>(&self, rng: &mut R, size_bytes: u64) -> f64 {
        jittered(rng, self.mean_restore_us(size_bytes), self.jitter_rel_std)
    }

    /// Mean *delta* checkpoint time: the reduced fixed base plus page-out
    /// on only the dirty bytes, µs.
    pub fn mean_delta_checkpoint_us(&self, dirty_bytes: u64) -> f64 {
        let mb = dirty_bytes as f64 / (1024.0 * 1024.0);
        self.checkpoint_base_us * self.delta_base_frac + self.checkpoint_per_mb_us * mb
    }

    /// Samples a jittered delta checkpoint time, µs. Draws exactly as
    /// much randomness as [`Self::sample_checkpoint_us`] (one Gaussian),
    /// so full and delta arms of a paired-seed run stay in RNG lockstep.
    pub fn sample_delta_checkpoint_us<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        dirty_bytes: u64,
    ) -> f64 {
        jittered(
            rng,
            self.mean_delta_checkpoint_us(dirty_bytes),
            self.jitter_rel_std,
        )
    }
}

fn jittered<R: Rng + ?Sized>(rng: &mut R, mean: f64, rel_std: f64) -> f64 {
    let factor = 1.0 + sample_gaussian(rng) * rel_std;
    (mean * factor).max(mean * 0.2)
}

/// Minimal Gaussian sampling (Box–Muller), kept local so the crate needs
/// only the `rand` core traits.
mod rand_distr_like {
    use rand::Rng;

    /// Samples a standard normal via the Box–Muller transform.
    pub fn sample_gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // Avoid ln(0) by sampling the half-open interval away from zero.
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
        (-2.0 * u1.ln()).sqrt() * u2.cos()
    }
}

pub use rand_distr_like::sample_gaussian as gaussian;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    const MB: u64 = 1024 * 1024;

    #[test]
    fn jvm_image_costs_match_table4_band() {
        let m = CheckpointCostModel::default();
        let ckpt_ms = m.mean_checkpoint_us(10 * MB + MB / 2) / 1000.0;
        let rest_ms = m.mean_restore_us(10 * MB + MB / 2) / 1000.0;
        assert!((60.0..=71.0).contains(&ckpt_ms), "checkpoint {ckpt_ms} ms");
        assert!((45.0..=56.0).contains(&rest_ms), "restore {rest_ms} ms");
    }

    #[test]
    fn pypy_image_costs_match_table4_band() {
        let m = CheckpointCostModel::default();
        let ckpt_ms = m.mean_checkpoint_us(55 * MB) / 1000.0;
        let rest_ms = m.mean_restore_us(55 * MB) / 1000.0;
        assert!((74.0..=105.0).contains(&ckpt_ms), "checkpoint {ckpt_ms} ms");
        assert!((30.0..=81.0).contains(&rest_ms), "restore {rest_ms} ms");
    }

    #[test]
    fn sampled_costs_are_positive_and_near_mean() {
        let m = CheckpointCostModel::default();
        let mut rng = SmallRng::seed_from_u64(1);
        let mean = m.mean_checkpoint_us(55 * MB);
        let mut total = 0.0;
        for _ in 0..1000 {
            let s = m.sample_checkpoint_us(&mut rng, 55 * MB);
            assert!(s > 0.0);
            total += s;
        }
        let avg = total / 1000.0;
        assert!((avg - mean).abs() / mean < 0.05, "avg {avg} vs mean {mean}");
    }

    #[test]
    fn costs_grow_with_size() {
        let m = CheckpointCostModel::default();
        assert!(m.mean_checkpoint_us(64 * MB) > m.mean_checkpoint_us(10 * MB));
        assert!(m.mean_restore_us(64 * MB) > m.mean_restore_us(10 * MB));
    }

    #[test]
    fn delta_checkpoints_undercut_full_and_stay_in_rng_lockstep() {
        let m = CheckpointCostModel::default();
        // A 2 MB dirty set against a 55 MB PyPy image: the delta pays the
        // reduced freeze base plus page-out on just the dirty bytes.
        assert!(m.mean_delta_checkpoint_us(2 * MB) < m.mean_checkpoint_us(55 * MB));
        assert!(
            m.mean_delta_checkpoint_us(55 * MB) < m.mean_checkpoint_us(55 * MB),
            "even an all-dirty delta saves the base fraction"
        );
        // Both samplers draw exactly one Gaussian: after sampling either,
        // identically-seeded RNGs are at the same stream position.
        let mut a = SmallRng::seed_from_u64(3);
        let mut b = SmallRng::seed_from_u64(3);
        m.sample_checkpoint_us(&mut a, 55 * MB);
        m.sample_delta_checkpoint_us(&mut b, 2 * MB);
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn gaussian_moments_are_standard() {
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}

//! Encode-path performance counters.
//!
//! Counters are purely observational: they record real wall-clock time and
//! byte counts spent on the checkpoint fast path, and never feed back into
//! simulated behavior. A fixed-seed run therefore produces bit-identical
//! simulation results regardless of how fast the host encodes.

/// Wall-clock and byte accounting for the checkpoint encode path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CodecStats {
    /// Full state encodes performed.
    pub encodes: u64,
    /// Encodes skipped because the process state version was unchanged
    /// since the cached encode (dirty-tracking fast path).
    pub encode_skips: u64,
    /// Payload bytes produced by full encodes.
    pub bytes_encoded: u64,
    /// Payload re-encodes avoided, in bytes (the cached payload's size,
    /// counted once per skip).
    pub bytes_skipped: u64,
    /// Buffer allocations avoided via scratch reuse and cache hits.
    pub allocations_avoided: u64,
    /// Wall-clock nanoseconds spent encoding process state.
    pub encode_ns: u64,
    /// Wall-clock nanoseconds spent hashing payloads (checksum + content
    /// address, one fused pass).
    pub checksum_ns: u64,
    /// Checkpoints persisted as page deltas against a parent snapshot.
    pub delta_encodes: u64,
    /// Physical payload bytes written by delta checkpoints (changed pages
    /// only — compare `bytes_encoded` for the full-encode equivalent).
    pub delta_bytes_written: u64,
    /// Changed pages written across all delta checkpoints.
    pub delta_pages_written: u64,
    /// Total payload pages scanned while diffing (changed + unchanged);
    /// `delta_pages_written / delta_pages_total` is the dirty ratio.
    pub delta_pages_total: u64,
}

impl CodecStats {
    /// Folds another counter set into this one.
    pub fn merge(&mut self, other: &CodecStats) {
        self.encodes += other.encodes;
        self.encode_skips += other.encode_skips;
        self.bytes_encoded += other.bytes_encoded;
        self.bytes_skipped += other.bytes_skipped;
        self.allocations_avoided += other.allocations_avoided;
        self.encode_ns += other.encode_ns;
        self.checksum_ns += other.checksum_ns;
        self.delta_encodes += other.delta_encodes;
        self.delta_bytes_written += other.delta_bytes_written;
        self.delta_pages_written += other.delta_pages_written;
        self.delta_pages_total += other.delta_pages_total;
    }

    /// Fraction of checkpoint requests served from the encode cache.
    pub fn skip_ratio(&self) -> f64 {
        let total = self.encodes + self.encode_skips;
        if total == 0 {
            0.0
        } else {
            self.encode_skips as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates_every_field() {
        let mut a = CodecStats {
            encodes: 1,
            encode_skips: 2,
            bytes_encoded: 3,
            bytes_skipped: 4,
            allocations_avoided: 5,
            encode_ns: 6,
            checksum_ns: 7,
            delta_encodes: 8,
            delta_bytes_written: 9,
            delta_pages_written: 10,
            delta_pages_total: 11,
        };
        a.merge(&a.clone());
        assert_eq!(
            a,
            CodecStats {
                encodes: 2,
                encode_skips: 4,
                bytes_encoded: 6,
                bytes_skipped: 8,
                allocations_avoided: 10,
                encode_ns: 12,
                checksum_ns: 14,
                delta_encodes: 16,
                delta_bytes_written: 18,
                delta_pages_written: 20,
                delta_pages_total: 22,
            }
        );
    }

    #[test]
    fn skip_ratio_handles_empty_and_mixed() {
        assert_eq!(CodecStats::default().skip_ratio(), 0.0);
        let s = CodecStats {
            encodes: 1,
            encode_skips: 3,
            ..CodecStats::default()
        };
        assert!((s.skip_ratio() - 0.75).abs() < 1e-12);
    }
}

//! The snapshot container format.
//!
//! A snapshot is what the Checkpoint Engine produces and the Object Store
//! transports: the serialized process state, tagged with the function it
//! belongs to and the request number at which it was taken (the key input
//! to the request-centric policy), framed with a magic number, format
//! version, and an FNV-1a checksum so corruption surfaces as a typed error
//! on restore.

use crate::codec::{CodecError, Decoder, Encoder};
use bytes::Bytes;
use pronghorn_sim::hash::fnv1a;
use std::fmt;

/// Magic bytes opening every serialized snapshot.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"PRSNAP\x00\x01";

/// Current container format version.
pub const SNAPSHOT_VERSION: u16 = 1;

/// Unique identity of a snapshot within a deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SnapshotId(pub u64);

impl fmt::Display for SnapshotId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "snap-{:016x}", self.0)
    }
}

/// Descriptive metadata carried by a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotMeta {
    /// Function the snapshot belongs to, e.g. `"dynamic-html"`.
    pub function: String,
    /// Request number at which the checkpoint was taken — the policy's
    /// coordinate in the `[0, W)` search space.
    pub request_number: u32,
    /// Label of the runtime that produced the state, e.g. `"jvm"`.
    pub runtime: String,
}

/// A checkpointed process image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Snapshot identity (content-derived).
    pub id: SnapshotId,
    /// Descriptive metadata.
    pub meta: SnapshotMeta,
    /// Serialized process state.
    pub payload: Bytes,
    /// Modeled size in bytes of the (compressed) process image a real
    /// checkpoint engine would have produced; drives transfer/storage cost
    /// accounting (Tables 4 and 5).
    pub nominal_size: u64,
}

impl Snapshot {
    /// Builds a snapshot, deriving its id from content and metadata.
    ///
    /// Two checkpoints of byte-identical state get the same id; engines
    /// that may checkpoint identical states (identical lineages at the
    /// same request number occur routinely) should use
    /// [`Snapshot::with_nonce`] to keep ids unique.
    pub fn new(meta: SnapshotMeta, payload: Bytes, nominal_size: u64) -> Self {
        Snapshot::with_nonce(meta, payload, nominal_size, 0)
    }

    /// Builds a snapshot whose id additionally mixes in `nonce`.
    pub fn with_nonce(meta: SnapshotMeta, payload: Bytes, nominal_size: u64, nonce: u64) -> Self {
        let mut hasher = pronghorn_sim::hash::Fnv1a::new();
        hasher.write(meta.function.as_bytes());
        hasher.write_u64(u64::from(meta.request_number));
        hasher.write(&payload);
        hasher.write_u64(nominal_size);
        hasher.write_u64(nonce);
        Snapshot {
            id: SnapshotId(pronghorn_sim::hash::mix64(hasher.finish())),
            meta,
            payload,
            nominal_size,
        }
    }

    /// Nominal size in (binary) megabytes, as Table 4 reports it.
    pub fn nominal_size_mb(&self) -> f64 {
        self.nominal_size as f64 / (1024.0 * 1024.0)
    }

    /// Serializes the snapshot into its transport framing.
    pub fn to_bytes(&self) -> Bytes {
        let mut enc = Encoder::with_capacity(64 + self.payload.len());
        enc.put_bytes(SNAPSHOT_MAGIC); // length-prefixed magic keeps framing uniform
        enc.put_u16(SNAPSHOT_VERSION);
        enc.put_u64(self.id.0);
        enc.put_str(&self.meta.function);
        enc.put_u32(self.meta.request_number);
        enc.put_str(&self.meta.runtime);
        enc.put_u64(self.nominal_size);
        enc.put_bytes(&self.payload);
        let checksum = fnv1a(enc.as_bytes());
        enc.put_u64(checksum);
        Bytes::from(enc.into_bytes())
    }

    /// Deserializes and validates a snapshot produced by [`Self::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotFormatError> {
        if bytes.len() < 8 {
            return Err(SnapshotFormatError::Codec(CodecError::UnexpectedEof {
                needed: 8,
                remaining: bytes.len(),
            }));
        }
        let (body, checksum_bytes) = bytes.split_at(bytes.len() - 8);
        let mut arr = [0u8; 8];
        arr.copy_from_slice(checksum_bytes);
        let stored_checksum = u64::from_le_bytes(arr);
        let actual_checksum = fnv1a(body);
        if stored_checksum != actual_checksum {
            return Err(SnapshotFormatError::ChecksumMismatch {
                expected: stored_checksum,
                actual: actual_checksum,
            });
        }
        let mut dec = Decoder::new(body);
        let magic = dec.take_bytes()?;
        if magic != SNAPSHOT_MAGIC {
            return Err(SnapshotFormatError::BadMagic);
        }
        let version = dec.take_u16()?;
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotFormatError::UnsupportedVersion(version));
        }
        let id = SnapshotId(dec.take_u64()?);
        let function = dec.take_str()?.to_string();
        let request_number = dec.take_u32()?;
        let runtime = dec.take_str()?.to_string();
        let nominal_size = dec.take_u64()?;
        let payload = Bytes::copy_from_slice(dec.take_bytes()?);
        dec.finish()?;
        Ok(Snapshot {
            id,
            meta: SnapshotMeta {
                function,
                request_number,
                runtime,
            },
            payload,
            nominal_size,
        })
    }
}

/// Errors produced while parsing snapshot framing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotFormatError {
    /// The magic bytes do not open the buffer.
    BadMagic,
    /// A newer (or corrupt) format version.
    UnsupportedVersion(u16),
    /// The trailer checksum does not match the content.
    ChecksumMismatch {
        /// Checksum stored in the trailer.
        expected: u64,
        /// Checksum of the actual content.
        actual: u64,
    },
    /// Structural decode failure.
    Codec(CodecError),
}

impl fmt::Display for SnapshotFormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotFormatError::BadMagic => write!(f, "not a snapshot (bad magic)"),
            SnapshotFormatError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot version {v}")
            }
            SnapshotFormatError::ChecksumMismatch { expected, actual } => {
                write!(f, "snapshot checksum mismatch ({expected:#x} != {actual:#x})")
            }
            SnapshotFormatError::Codec(e) => write!(f, "snapshot decode error: {e}"),
        }
    }
}

impl std::error::Error for SnapshotFormatError {}

impl From<CodecError> for SnapshotFormatError {
    fn from(e: CodecError) -> Self {
        SnapshotFormatError::Codec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot::new(
            SnapshotMeta {
                function: "dynamic-html".into(),
                request_number: 137,
                runtime: "pypy".into(),
            },
            Bytes::from_static(b"jit-state-bytes"),
            55 * 1024 * 1024,
        )
    }

    #[test]
    fn round_trips_through_bytes() {
        let snap = sample();
        let restored = Snapshot::from_bytes(&snap.to_bytes()).unwrap();
        assert_eq!(restored, snap);
    }

    #[test]
    fn id_depends_on_content_and_meta() {
        let a = sample();
        let mut meta = a.meta.clone();
        meta.request_number = 138;
        let b = Snapshot::new(meta, a.payload.clone(), a.nominal_size);
        assert_ne!(a.id, b.id);
        let c = Snapshot::new(a.meta.clone(), Bytes::from_static(b"other"), a.nominal_size);
        assert_ne!(a.id, c.id);
    }

    #[test]
    fn nominal_size_mb_conversion() {
        assert!((sample().nominal_size_mb() - 55.0).abs() < 1e-9);
    }

    #[test]
    fn corruption_is_detected_by_checksum() {
        let mut bytes = sample().to_bytes().to_vec();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(SnapshotFormatError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = sample().to_bytes();
        assert!(Snapshot::from_bytes(&bytes[..bytes.len() - 3]).is_err());
        assert!(Snapshot::from_bytes(&[]).is_err());
    }

    #[test]
    fn bad_magic_is_detected() {
        let snap = sample();
        // Re-frame with wrong magic but a valid checksum.
        let mut enc = Encoder::new();
        enc.put_bytes(b"WRONGMG\x01");
        enc.put_u16(SNAPSHOT_VERSION);
        enc.put_u64(snap.id.0);
        enc.put_str(&snap.meta.function);
        enc.put_u32(snap.meta.request_number);
        enc.put_str(&snap.meta.runtime);
        enc.put_u64(snap.nominal_size);
        enc.put_bytes(&snap.payload);
        let checksum = fnv1a(enc.as_bytes());
        enc.put_u64(checksum);
        assert_eq!(
            Snapshot::from_bytes(&enc.into_bytes()),
            Err(SnapshotFormatError::BadMagic)
        );
    }

    #[test]
    fn future_version_is_rejected() {
        let snap = sample();
        let mut enc = Encoder::new();
        enc.put_bytes(SNAPSHOT_MAGIC);
        enc.put_u16(SNAPSHOT_VERSION + 1);
        enc.put_u64(snap.id.0);
        enc.put_str(&snap.meta.function);
        enc.put_u32(snap.meta.request_number);
        enc.put_str(&snap.meta.runtime);
        enc.put_u64(snap.nominal_size);
        enc.put_bytes(&snap.payload);
        let checksum = fnv1a(enc.as_bytes());
        enc.put_u64(checksum);
        assert_eq!(
            Snapshot::from_bytes(&enc.into_bytes()),
            Err(SnapshotFormatError::UnsupportedVersion(SNAPSHOT_VERSION + 1))
        );
    }

    #[test]
    fn display_formats_id() {
        let id = SnapshotId(0xabcd);
        assert_eq!(id.to_string(), "snap-000000000000abcd");
    }
}

//! The snapshot container format.
//!
//! A snapshot is what the Checkpoint Engine produces and the Object Store
//! transports: the serialized process state, tagged with the function it
//! belongs to and the request number at which it was taken (the key input
//! to the request-centric policy), framed with a magic number, format
//! version, and FNV-1a integrity hashes so corruption surfaces as a typed
//! error on restore.
//!
//! # Frame layout (version 2)
//!
//! Version 2 is built for a zero-copy fast path. The frame is three
//! independent chunks — header, payload, trailer — so the (large) payload
//! never has to be copied into a contiguous transport buffer:
//!
//! ```text
//! header  : magic, version, id, function, request#, runtime,
//!           nominal size, payload hash (Fnv1aWide), payload length
//! payload : the serialized process state, raw
//! trailer : u64 LE — Fnv1aWide checksum of the header bytes only
//! ```
//!
//! Payload integrity lives in the *header* (`payload hash`), computed once
//! when the snapshot is built and reused for both the snapshot id and the
//! frame — encoding a frame therefore touches only the ~100-byte header,
//! while version 1 re-copied and re-hashed the whole payload on every
//! [`Snapshot::to_bytes`] call.

use crate::codec::{CodecError, Decoder, Encoder};
use bytes::Bytes;
use pronghorn_sim::hash::{fnv1a_wide, Fnv1a};
use std::fmt;

/// Magic bytes opening every serialized snapshot.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"PRSNAP\x00\x01";

/// Current container format version.
pub const SNAPSHOT_VERSION: u16 = 2;

/// Unique identity of a snapshot within a deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SnapshotId(pub u64);

impl fmt::Display for SnapshotId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "snap-{:016x}", self.0)
    }
}

/// Descriptive metadata carried by a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotMeta {
    /// Function the snapshot belongs to, e.g. `"dynamic-html"`.
    pub function: String,
    /// Request number at which the checkpoint was taken — the policy's
    /// coordinate in the `[0, W)` search space.
    pub request_number: u32,
    /// Label of the runtime that produced the state, e.g. `"jvm"`.
    pub runtime: String,
}

/// A checkpointed process image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Snapshot identity (content-derived).
    pub id: SnapshotId,
    /// Descriptive metadata.
    pub meta: SnapshotMeta,
    /// Serialized process state.
    pub payload: Bytes,
    /// Modeled size in bytes of the (compressed) process image a real
    /// checkpoint engine would have produced; drives transfer/storage cost
    /// accounting (Tables 4 and 5).
    pub nominal_size: u64,
    /// Cached `Fnv1aWide` hash of `payload`, computed once at
    /// construction; doubles as the payload's content address for store
    /// dedup and as the integrity hash written into the frame header.
    payload_hash: u64,
}

/// A snapshot serialized as zero-copy transport chunks.
///
/// Produced by [`Snapshot::to_frame`]; the payload chunk shares the
/// snapshot's buffer (no copy). Consumers that need one contiguous buffer
/// call [`EncodedSnapshot::to_bytes`]; consumers that can scatter/gather
/// (the object store, network writers) iterate [`EncodedSnapshot::chunks`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedSnapshot {
    /// Frame header: magic through payload length.
    pub header: Bytes,
    /// The payload, shared with the source snapshot.
    pub payload: Bytes,
    /// Eight bytes: little-endian `Fnv1aWide` checksum of `header`.
    pub trailer: Bytes,
}

impl EncodedSnapshot {
    /// The frame as its three transport chunks, in wire order.
    pub fn chunks(&self) -> [Bytes; 3] {
        [
            self.header.clone(),
            self.payload.clone(),
            self.trailer.clone(),
        ]
    }

    /// Total frame size in bytes.
    pub fn total_len(&self) -> usize {
        self.header.len() + self.payload.len() + self.trailer.len()
    }

    /// Assembles one contiguous transport buffer (copies the payload —
    /// prefer [`Self::chunks`] on hot paths).
    pub fn to_bytes(&self) -> Bytes {
        let mut out = Vec::with_capacity(self.total_len());
        out.extend_from_slice(&self.header);
        out.extend_from_slice(&self.payload);
        out.extend_from_slice(&self.trailer);
        Bytes::from(out)
    }
}

/// Header fields plus payload location, produced by frame parsing.
struct ParsedFrame {
    id: SnapshotId,
    meta: SnapshotMeta,
    nominal_size: u64,
    payload_hash: u64,
    payload_start: usize,
    payload_end: usize,
}

/// Parses the header fields shared by every v2 frame variant, leaving the
/// decoder positioned just past the payload-length field.
fn parse_header_fields(
    dec: &mut Decoder<'_>,
) -> Result<(SnapshotId, SnapshotMeta, u64, u64, u64), SnapshotFormatError> {
    let magic = dec.take_bytes()?;
    if magic != SNAPSHOT_MAGIC {
        return Err(SnapshotFormatError::BadMagic);
    }
    let version = dec.take_u16()?;
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotFormatError::UnsupportedVersion(version));
    }
    let id = SnapshotId(dec.take_u64()?);
    let function = dec.take_str()?.to_string();
    let request_number = dec.take_u32()?;
    let runtime = dec.take_str()?.to_string();
    let nominal_size = dec.take_u64()?;
    let payload_hash = dec.take_u64()?;
    let payload_len = dec.take_u64()?;
    Ok((
        id,
        SnapshotMeta {
            function,
            request_number,
            runtime,
        },
        nominal_size,
        payload_hash,
        payload_len,
    ))
}

fn read_trailer(trailer: &[u8]) -> Result<u64, SnapshotFormatError> {
    if trailer.len() != 8 {
        return Err(SnapshotFormatError::Codec(CodecError::UnexpectedEof {
            needed: 8,
            remaining: trailer.len(),
        }));
    }
    let mut arr = [0u8; 8];
    arr.copy_from_slice(trailer);
    Ok(u64::from_le_bytes(arr))
}

fn check_trailer(header: &[u8], trailer: &[u8]) -> Result<(), SnapshotFormatError> {
    let stored = read_trailer(trailer)?;
    let actual = fnv1a_wide(header);
    if stored != actual {
        return Err(SnapshotFormatError::ChecksumMismatch {
            expected: stored,
            actual,
        });
    }
    Ok(())
}

impl Snapshot {
    /// Builds a snapshot, deriving its id from content and metadata.
    ///
    /// Two checkpoints of byte-identical state get the same id; engines
    /// that may checkpoint identical states (identical lineages at the
    /// same request number occur routinely) should use
    /// [`Snapshot::with_nonce`] to keep ids unique.
    pub fn new(meta: SnapshotMeta, payload: Bytes, nominal_size: u64) -> Self {
        Snapshot::with_nonce(meta, payload, nominal_size, 0)
    }

    /// Builds a snapshot whose id additionally mixes in `nonce`.
    ///
    /// The payload is hashed exactly once ([`fnv1a_wide`]); that hash
    /// feeds both the snapshot id and the frame's payload integrity field.
    pub fn with_nonce(meta: SnapshotMeta, payload: Bytes, nominal_size: u64, nonce: u64) -> Self {
        let payload_hash = fnv1a_wide(&payload);
        let mut hasher = Fnv1a::new();
        hasher.write(meta.function.as_bytes());
        hasher.write_u64(u64::from(meta.request_number));
        hasher.write_u64(payload_hash);
        hasher.write_u64(nominal_size);
        hasher.write_u64(nonce);
        Snapshot {
            id: SnapshotId(pronghorn_sim::hash::mix64(hasher.finish())),
            meta,
            payload,
            nominal_size,
            payload_hash,
        }
    }

    /// Rebuilds a snapshot from parts whose payload hash the caller has
    /// already verified against `payload` — the delta compose path, which
    /// checks the composed hash before construction and must reproduce
    /// the original snapshot's id exactly (ids mix in a nonce that is not
    /// persisted, so they cannot be re-derived here).
    pub(crate) fn from_verified_parts(
        id: SnapshotId,
        meta: SnapshotMeta,
        payload: Bytes,
        nominal_size: u64,
        payload_hash: u64,
    ) -> Self {
        debug_assert_eq!(fnv1a_wide(&payload), payload_hash);
        Snapshot {
            id,
            meta,
            payload,
            nominal_size,
            payload_hash,
        }
    }

    /// Content address of the payload: its cached [`fnv1a_wide`] hash.
    ///
    /// Byte-identical payloads (twin lineages checkpointed at the same
    /// request number) share a hash even when their snapshot ids differ
    /// by nonce — the property the store's dedup layer keys on.
    pub fn payload_hash(&self) -> u64 {
        self.payload_hash
    }

    /// Nominal size in (binary) megabytes, as Table 4 reports it.
    pub fn nominal_size_mb(&self) -> f64 {
        self.nominal_size as f64 / (1024.0 * 1024.0)
    }

    /// Serializes the snapshot into zero-copy frame chunks.
    pub fn to_frame(&self) -> EncodedSnapshot {
        let mut enc = Encoder::with_capacity(64);
        self.to_frame_with(&mut enc)
    }

    /// Like [`Self::to_frame`], reusing `scratch` for the header so a
    /// long-lived engine allocates nothing per frame beyond the two small
    /// chunk buffers. The scratch is cleared first; its prior contents do
    /// not leak into the frame.
    pub fn to_frame_with(&self, scratch: &mut Encoder) -> EncodedSnapshot {
        scratch.clear();
        scratch.put_bytes(SNAPSHOT_MAGIC); // length-prefixed magic keeps framing uniform
        scratch.put_u16(SNAPSHOT_VERSION);
        scratch.put_u64(self.id.0);
        scratch.put_str(&self.meta.function);
        scratch.put_u32(self.meta.request_number);
        scratch.put_str(&self.meta.runtime);
        scratch.put_u64(self.nominal_size);
        scratch.put_u64(self.payload_hash);
        scratch.put_u64(self.payload.len() as u64);
        let trailer = scratch.checksum();
        EncodedSnapshot {
            header: Bytes::copy_from_slice(scratch.as_bytes()),
            payload: self.payload.clone(),
            trailer: Bytes::from(trailer.to_le_bytes().to_vec()),
        }
    }

    /// Serializes the snapshot into one contiguous transport buffer.
    ///
    /// Compatibility wrapper over [`Self::to_frame`]; copies the payload.
    pub fn to_bytes(&self) -> Bytes {
        self.to_frame().to_bytes()
    }

    /// Parses a contiguous frame, validating lengths and the header
    /// checksum. Does *not* hash the payload — [`Self::from_parsed`] does
    /// that against the slice the caller materializes.
    fn parse_frame(bytes: &[u8]) -> Result<ParsedFrame, SnapshotFormatError> {
        let mut dec = Decoder::new(bytes);
        let (id, meta, nominal_size, payload_hash, payload_len) = parse_header_fields(&mut dec)?;
        let header_len = bytes.len() - dec.remaining();
        // The frame must hold exactly header + payload + 8-byte trailer.
        let expected_total = (header_len as u64)
            .checked_add(payload_len)
            .and_then(|n| n.checked_add(8))
            .ok_or(SnapshotFormatError::Codec(CodecError::LengthOutOfBounds {
                declared: payload_len,
                remaining: dec.remaining(),
            }))?;
        if (bytes.len() as u64) < expected_total {
            return Err(SnapshotFormatError::Codec(CodecError::UnexpectedEof {
                needed: (expected_total - bytes.len() as u64) as usize,
                remaining: 0,
            }));
        }
        if (bytes.len() as u64) > expected_total {
            return Err(SnapshotFormatError::Codec(CodecError::TrailingBytes {
                remaining: (bytes.len() as u64 - expected_total) as usize,
            }));
        }
        check_trailer(&bytes[..header_len], &bytes[bytes.len() - 8..])?;
        Ok(ParsedFrame {
            id,
            meta,
            nominal_size,
            payload_hash,
            payload_start: header_len,
            payload_end: header_len + payload_len as usize,
        })
    }

    fn from_parsed(parsed: ParsedFrame, payload: Bytes) -> Result<Self, SnapshotFormatError> {
        let actual = fnv1a_wide(&payload);
        if actual != parsed.payload_hash {
            return Err(SnapshotFormatError::ChecksumMismatch {
                expected: parsed.payload_hash,
                actual,
            });
        }
        Ok(Snapshot {
            id: parsed.id,
            meta: parsed.meta,
            payload,
            nominal_size: parsed.nominal_size,
            payload_hash: parsed.payload_hash,
        })
    }

    /// Deserializes and validates a snapshot produced by [`Self::to_bytes`].
    ///
    /// Copies the payload out of `bytes`; when the caller already holds
    /// the frame as [`Bytes`], prefer [`Self::from_shared`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotFormatError> {
        let parsed = Self::parse_frame(bytes)?;
        let payload = Bytes::copy_from_slice(&bytes[parsed.payload_start..parsed.payload_end]);
        Self::from_parsed(parsed, payload)
    }

    /// Zero-copy deserialization: the returned snapshot's payload is a
    /// slice of `bytes` (shared refcount, no allocation or copy).
    pub fn from_shared(bytes: &Bytes) -> Result<Self, SnapshotFormatError> {
        let parsed = Self::parse_frame(bytes)?;
        let payload = bytes.slice(parsed.payload_start..parsed.payload_end);
        Self::from_parsed(parsed, payload)
    }

    /// Reassembles a snapshot from frame chunks as produced by
    /// [`Self::to_frame`] (for example, a store that keeps the payload
    /// blob separately from the header). The payload chunk is shared,
    /// not copied; header and trailer are validated as in
    /// [`Self::from_shared`].
    pub fn from_chunks(
        header: &[u8],
        payload: &Bytes,
        trailer: &[u8],
    ) -> Result<Self, SnapshotFormatError> {
        let mut dec = Decoder::new(header);
        let (id, meta, nominal_size, payload_hash, payload_len) = parse_header_fields(&mut dec)?;
        dec.finish()?;
        if payload_len != payload.len() as u64 {
            return Err(SnapshotFormatError::Codec(CodecError::LengthOutOfBounds {
                declared: payload_len,
                remaining: payload.len(),
            }));
        }
        check_trailer(header, trailer)?;
        Self::from_parsed(
            ParsedFrame {
                id,
                meta,
                nominal_size,
                payload_hash,
                payload_start: 0,
                payload_end: payload.len(),
            },
            payload.clone(),
        )
    }
}

/// Errors produced while parsing snapshot framing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotFormatError {
    /// The magic bytes do not open the buffer.
    BadMagic,
    /// A newer (or corrupt) format version.
    UnsupportedVersion(u16),
    /// The trailer checksum or payload hash does not match the content.
    ChecksumMismatch {
        /// Checksum stored in the frame.
        expected: u64,
        /// Checksum of the actual content.
        actual: u64,
    },
    /// Structural decode failure.
    Codec(CodecError),
}

impl fmt::Display for SnapshotFormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotFormatError::BadMagic => write!(f, "not a snapshot (bad magic)"),
            SnapshotFormatError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot version {v}")
            }
            SnapshotFormatError::ChecksumMismatch { expected, actual } => {
                write!(
                    f,
                    "snapshot checksum mismatch ({expected:#x} != {actual:#x})"
                )
            }
            SnapshotFormatError::Codec(e) => write!(f, "snapshot decode error: {e}"),
        }
    }
}

impl std::error::Error for SnapshotFormatError {}

impl From<CodecError> for SnapshotFormatError {
    fn from(e: CodecError) -> Self {
        SnapshotFormatError::Codec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot::new(
            SnapshotMeta {
                function: "dynamic-html".into(),
                request_number: 137,
                runtime: "pypy".into(),
            },
            Bytes::from_static(b"jit-state-bytes"),
            55 * 1024 * 1024,
        )
    }

    /// Hand-builds a v2 frame from parts, with magic/version overridable —
    /// the rejection tests below need syntactically valid frames that fail
    /// exactly one check.
    fn build_frame(snap: &Snapshot, magic: &[u8], version: u16) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.put_bytes(magic);
        enc.put_u16(version);
        enc.put_u64(snap.id.0);
        enc.put_str(&snap.meta.function);
        enc.put_u32(snap.meta.request_number);
        enc.put_str(&snap.meta.runtime);
        enc.put_u64(snap.nominal_size);
        enc.put_u64(snap.payload_hash());
        enc.put_u64(snap.payload.len() as u64);
        let trailer = enc.checksum();
        let mut out = enc.into_bytes();
        out.extend_from_slice(&snap.payload);
        out.extend_from_slice(&trailer.to_le_bytes());
        out
    }

    #[test]
    fn round_trips_through_bytes() {
        let snap = sample();
        let restored = Snapshot::from_bytes(&snap.to_bytes()).unwrap();
        assert_eq!(restored, snap);
    }

    #[test]
    fn hand_built_frame_matches_to_bytes() {
        let snap = sample();
        assert_eq!(
            build_frame(&snap, SNAPSHOT_MAGIC, SNAPSHOT_VERSION),
            snap.to_bytes().to_vec()
        );
    }

    #[test]
    fn from_shared_is_zero_copy_and_equal() {
        let snap = sample();
        let framed = snap.to_bytes();
        let restored = Snapshot::from_shared(&framed).unwrap();
        assert_eq!(restored, snap);
        let header_len = framed.len() - snap.payload.len() - 8;
        assert_eq!(
            &framed[header_len..header_len + snap.payload.len()],
            &restored.payload[..]
        );
    }

    #[test]
    fn frame_chunks_round_trip() {
        let snap = sample();
        let frame = snap.to_frame();
        assert_eq!(frame.total_len(), snap.to_bytes().len());
        let [header, payload, trailer] = frame.chunks();
        assert_eq!(payload, snap.payload);
        let restored = Snapshot::from_chunks(&header, &payload, &trailer).unwrap();
        assert_eq!(restored, snap);
    }

    #[test]
    fn to_frame_with_reuses_scratch_identically() {
        let snap = sample();
        let mut scratch = Encoder::with_capacity(256);
        // Pollute the scratch, then reuse it twice: both frames must be
        // byte-identical to a fresh encode.
        scratch.put_str("stale contents");
        let fresh = snap.to_frame();
        for _ in 0..2 {
            let reused = snap.to_frame_with(&mut scratch);
            assert_eq!(reused, fresh);
            assert_eq!(reused.to_bytes(), fresh.to_bytes());
        }
    }

    #[test]
    fn id_depends_on_content_and_meta() {
        let a = sample();
        let mut meta = a.meta.clone();
        meta.request_number = 138;
        let b = Snapshot::new(meta, a.payload.clone(), a.nominal_size);
        assert_ne!(a.id, b.id);
        let c = Snapshot::new(a.meta.clone(), Bytes::from_static(b"other"), a.nominal_size);
        assert_ne!(a.id, c.id);
    }

    #[test]
    fn twin_payloads_share_a_content_address() {
        let a = sample();
        let b = Snapshot::with_nonce(a.meta.clone(), a.payload.clone(), a.nominal_size, 99);
        assert_ne!(a.id, b.id, "nonce keeps ids distinct");
        assert_eq!(
            a.payload_hash(),
            b.payload_hash(),
            "same bytes, same address"
        );
    }

    #[test]
    fn nominal_size_mb_conversion() {
        assert!((sample().nominal_size_mb() - 55.0).abs() < 1e-9);
    }

    #[test]
    fn payload_corruption_is_detected_by_hash() {
        let snap = sample();
        let mut bytes = snap.to_bytes().to_vec();
        // Flip a byte squarely inside the payload region.
        let payload_start = bytes.len() - 8 - snap.payload.len();
        bytes[payload_start + snap.payload.len() / 2] ^= 0xff;
        assert!(matches!(
            Snapshot::from_bytes(&bytes),
            Err(SnapshotFormatError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn header_corruption_is_detected() {
        let snap = sample();
        let frame = snap.to_bytes();
        let payload_start = frame.len() - 8 - snap.payload.len();
        // Flip every header byte in turn; each corrupt frame must fail
        // with *some* typed error — never parse as valid.
        for i in 0..payload_start {
            let mut bytes = frame.to_vec();
            bytes[i] ^= 0xff;
            assert!(Snapshot::from_bytes(&bytes).is_err(), "byte {i} accepted");
        }
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = sample().to_bytes();
        assert!(Snapshot::from_bytes(&bytes[..bytes.len() - 3]).is_err());
        assert!(Snapshot::from_bytes(&[]).is_err());
    }

    #[test]
    fn bad_magic_is_detected() {
        let snap = sample();
        let bytes = build_frame(&snap, b"WRONGMG\x01", SNAPSHOT_VERSION);
        assert_eq!(
            Snapshot::from_bytes(&bytes),
            Err(SnapshotFormatError::BadMagic)
        );
    }

    #[test]
    fn future_version_is_rejected() {
        let snap = sample();
        let bytes = build_frame(&snap, SNAPSHOT_MAGIC, SNAPSHOT_VERSION + 1);
        assert_eq!(
            Snapshot::from_bytes(&bytes),
            Err(SnapshotFormatError::UnsupportedVersion(
                SNAPSHOT_VERSION + 1
            ))
        );
    }

    #[test]
    fn display_formats_id() {
        let id = SnapshotId(0xabcd);
        assert_eq!(id.to_string(), "snap-000000000000abcd");
    }
}

//! Property-based tests for the codec and snapshot format.

#![forbid(unsafe_code)]

use bytes::Bytes;
use pronghorn_checkpoint::codec::{Decoder, Encoder};
use pronghorn_checkpoint::{Snapshot, SnapshotMeta};
use proptest::prelude::*;

/// One primitive value the codec can carry.
#[derive(Debug, Clone, PartialEq)]
enum Field {
    U8(u8),
    U16(u16),
    U32(u32),
    U64(u64),
    F64(f64),
    Bool(bool),
    Str(String),
    Bytes(Vec<u8>),
    F64Vec(Vec<f64>),
    OptU32(Option<u32>),
}

fn field_strategy() -> impl Strategy<Value = Field> {
    prop_oneof![
        any::<u8>().prop_map(Field::U8),
        any::<u16>().prop_map(Field::U16),
        any::<u32>().prop_map(Field::U32),
        any::<u64>().prop_map(Field::U64),
        any::<f64>().prop_map(Field::F64),
        any::<bool>().prop_map(Field::Bool),
        ".{0,64}".prop_map(Field::Str),
        prop::collection::vec(any::<u8>(), 0..128).prop_map(Field::Bytes),
        prop::collection::vec(any::<f64>(), 0..32).prop_map(Field::F64Vec),
        prop::option::of(any::<u32>()).prop_map(Field::OptU32),
    ]
}

fn encode_fields(fields: &[Field]) -> Vec<u8> {
    let mut enc = Encoder::new();
    for f in fields {
        match f {
            Field::U8(v) => enc.put_u8(*v),
            Field::U16(v) => enc.put_u16(*v),
            Field::U32(v) => enc.put_u32(*v),
            Field::U64(v) => enc.put_u64(*v),
            Field::F64(v) => enc.put_f64(*v),
            Field::Bool(v) => enc.put_bool(*v),
            Field::Str(v) => enc.put_str(v),
            Field::Bytes(v) => enc.put_bytes(v),
            Field::F64Vec(v) => enc.put_f64_slice(v),
            Field::OptU32(v) => enc.put_option(v, |e, x| e.put_u32(*x)),
        }
    }
    enc.into_bytes()
}

fn bits_equal(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits()
}

proptest! {
    /// Arbitrary field sequences decode back exactly, with nothing left.
    #[test]
    fn codec_round_trips_arbitrary_sequences(
        fields in prop::collection::vec(field_strategy(), 0..24)
    ) {
        let bytes = encode_fields(&fields);
        let mut dec = Decoder::new(&bytes);
        for f in &fields {
            match f {
                Field::U8(v) => prop_assert_eq!(dec.take_u8().unwrap(), *v),
                Field::U16(v) => prop_assert_eq!(dec.take_u16().unwrap(), *v),
                Field::U32(v) => prop_assert_eq!(dec.take_u32().unwrap(), *v),
                Field::U64(v) => prop_assert_eq!(dec.take_u64().unwrap(), *v),
                Field::F64(v) => prop_assert!(bits_equal(dec.take_f64().unwrap(), *v)),
                Field::Bool(v) => prop_assert_eq!(dec.take_bool().unwrap(), *v),
                Field::Str(v) => prop_assert_eq!(dec.take_str().unwrap(), v.as_str()),
                Field::Bytes(v) => prop_assert_eq!(dec.take_bytes().unwrap(), v.as_slice()),
                Field::F64Vec(v) => {
                    let out = dec.take_f64_vec().unwrap();
                    prop_assert_eq!(out.len(), v.len());
                    for (a, b) in out.iter().zip(v) {
                        prop_assert!(bits_equal(*a, *b));
                    }
                }
                Field::OptU32(v) => {
                    prop_assert_eq!(dec.take_option(|d| d.take_u32()).unwrap(), *v)
                }
            }
        }
        prop_assert!(dec.finish().is_ok());
    }

    /// The decoder never panics on arbitrary garbage.
    #[test]
    fn decoder_never_panics_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let mut dec = Decoder::new(&bytes);
        // Exercise every accessor; errors are fine, panics are not.
        let _ = dec.take_u8();
        let _ = dec.take_u16();
        let _ = dec.take_u64();
        let _ = dec.take_bytes();
        let _ = dec.take_str();
        let _ = dec.take_f64_vec();
        let _ = dec.take_option(|d| d.take_u32());
    }

    /// Snapshots round-trip their framing exactly.
    #[test]
    fn snapshot_framing_round_trips(
        function in "[a-zA-Z0-9_-]{1,32}",
        request_number in any::<u32>(),
        runtime in "[a-z]{1,8}",
        payload in prop::collection::vec(any::<u8>(), 0..512),
        nominal in any::<u64>(),
        nonce in any::<u64>(),
    ) {
        let snap = Snapshot::with_nonce(
            SnapshotMeta { function, request_number, runtime },
            Bytes::from(payload),
            nominal,
            nonce,
        );
        let decoded = Snapshot::from_bytes(&snap.to_bytes()).unwrap();
        prop_assert_eq!(decoded, snap);
    }

    /// Any single-byte corruption of the framing is detected.
    #[test]
    fn snapshot_corruption_is_detected(
        payload in prop::collection::vec(any::<u8>(), 1..128),
        flip_pos_frac in 0.0f64..1.0,
        flip_mask in 1u8..=255,
    ) {
        let snap = Snapshot::new(
            SnapshotMeta { function: "f".into(), request_number: 3, runtime: "jvm".into() },
            Bytes::from(payload),
            1 << 20,
        );
        let mut bytes = snap.to_bytes().to_vec();
        let pos = ((bytes.len() - 1) as f64 * flip_pos_frac) as usize;
        bytes[pos] ^= flip_mask;
        // Either the checksum or the structure catches it; silently
        // returning a *different* snapshot would be a bug.
        match Snapshot::from_bytes(&bytes) {
            Err(_) => {}
            Ok(decoded) => prop_assert_eq!(decoded, snap),
        }
    }
}

proptest! {
    /// Re-using one scratch `Encoder` across many encodes (clearing
    /// between them) produces bytes identical to a fresh encoder per
    /// encode — the fast path changes allocation behavior only.
    #[test]
    fn scratch_reuse_is_byte_identical_to_fresh_encode(
        sequences in prop::collection::vec(
            prop::collection::vec(field_strategy(), 0..24), 1..8,
        )
    ) {
        let mut scratch = Encoder::new();
        for fields in &sequences {
            scratch.clear();
            for f in fields {
                match f {
                    Field::U8(v) => scratch.put_u8(*v),
                    Field::U16(v) => scratch.put_u16(*v),
                    Field::U32(v) => scratch.put_u32(*v),
                    Field::U64(v) => scratch.put_u64(*v),
                    Field::F64(v) => scratch.put_f64(*v),
                    Field::Bool(v) => scratch.put_bool(*v),
                    Field::Str(v) => scratch.put_str(v),
                    Field::Bytes(v) => scratch.put_bytes(v),
                    Field::F64Vec(v) => scratch.put_f64_slice(v),
                    Field::OptU32(v) => scratch.put_option(v, |e, x| e.put_u32(*x)),
                }
            }
            let reused = scratch.take_buffer();
            prop_assert_eq!(reused, encode_fields(fields));
        }
    }
}

/// One mutation of a process payload between checkpoints.
#[derive(Debug, Clone)]
enum Mutation {
    /// Overwrite a run of bytes somewhere in the payload (offset taken
    /// modulo the payload length at apply time).
    Overwrite(u16, Vec<u8>),
    /// Grow the payload at the end.
    Append(Vec<u8>),
    /// Shrink the payload (length factor taken modulo at apply time,
    /// never to zero).
    Truncate(u16),
}

fn mutation_strategy() -> impl Strategy<Value = Mutation> {
    prop_oneof![
        (any::<u16>(), prop::collection::vec(any::<u8>(), 1..64))
            .prop_map(|(at, data)| Mutation::Overwrite(at, data)),
        prop::collection::vec(any::<u8>(), 1..128).prop_map(Mutation::Append),
        any::<u16>().prop_map(Mutation::Truncate),
    ]
}

fn mutate(current: &[u8], m: &Mutation) -> Vec<u8> {
    let mut next = current.to_vec();
    match m {
        Mutation::Overwrite(at, data) => {
            let start = usize::from(*at) % next.len().max(1);
            for (i, b) in data.iter().enumerate() {
                match next.get_mut(start + i) {
                    Some(slot) => *slot = *b,
                    None => next.push(*b),
                }
            }
        }
        Mutation::Append(data) => next.extend_from_slice(data),
        Mutation::Truncate(at) => {
            let keep = (usize::from(*at) % next.len().max(1)).max(1);
            next.truncate(keep);
        }
    }
    next
}

proptest! {
    /// Delta-chain correctness under arbitrary mutation sequences: for any
    /// consolidation depth K and diff page size, composing the stored
    /// chain — root payload plus each delta in order — reproduces the
    /// byte-exact payload an eager full encode of the final state would
    /// have produced. Consolidation points restart the chain mid-sequence,
    /// so the property also covers post-consolidation lineages.
    #[test]
    fn delta_chains_compose_to_the_eager_encode(
        root in prop::collection::vec(any::<u8>(), 1..4096),
        muts in prop::collection::vec(mutation_strategy(), 1..12),
        page_selector in any::<u8>(),
        k in 1u32..5,
    ) {
        use pronghorn_checkpoint::delta::{apply, diff_payload};
        use pronghorn_checkpoint::{SnapshotDelta, SnapshotId};

        let page_size = [1u64, 7, 64, 1024][usize::from(page_selector) % 4];
        let mut chain_root = Bytes::from(root);
        let mut deltas: Vec<SnapshotDelta> = Vec::new();
        let mut current = chain_root.clone();
        let compose = |root: &Bytes, deltas: &[SnapshotDelta]| -> Bytes {
            let mut acc = root.clone();
            for d in deltas {
                acc = apply(&acc, d).expect("chain delta applies");
            }
            acc
        };
        for (seq, m) in muts.iter().enumerate() {
            let next = Bytes::from(mutate(&current, m));
            if deltas.len() as u32 >= k {
                // Consolidation: the closing chain must compose exactly
                // before the lineage rebases onto a fresh full root.
                prop_assert_eq!(&compose(&chain_root, &deltas)[..], &current[..]);
                chain_root = next.clone();
                deltas.clear();
            } else {
                let pages = diff_payload(&current, &next, page_size);
                deltas.push(SnapshotDelta {
                    parent: SnapshotId(seq as u64),
                    parent_payload_hash: 0,
                    page_size,
                    total_len: next.len() as u64,
                    pages,
                    dirty_nominal_bytes: 0,
                });
            }
            current = next;
        }
        prop_assert_eq!(&compose(&chain_root, &deltas)[..], &current[..]);
    }
}

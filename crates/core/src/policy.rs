//! The orchestration-policy interface.
//!
//! §4: "we designed the Orchestrator to execute policies through a minimal
//! abstract interface ... the policy must implement interface functions
//! that dictate which snapshot to use when starting a new worker and when
//! to checkpoint a running worker." This trait is that interface, plus the
//! knowledge-update and pool-management hooks of Algorithm 1.

use crate::pool::PoolEntry;
use pronghorn_checkpoint::SnapshotId;
use rand::RngCore;

/// What a new worker should start from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StartDecision {
    /// Boot a fresh runtime (no snapshot).
    Cold,
    /// Restore from the identified pooled snapshot.
    Restore(SnapshotId),
}

/// Identifier of the built-in policies, for experiment configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// No checkpoint/restore at all.
    Cold,
    /// The state of the art: checkpoint once, immediately after the first
    /// request (Catalyzer, FireWorks, Prebaking, Groundhog, SnapStart).
    AfterFirst,
    /// Variant: checkpoint after initialization but *before* the first
    /// request (inferior because of lazy runtime initialization, §5.1).
    AfterInit,
    /// Pronghorn's request-centric policy (Algorithm 1).
    RequestCentric,
}

impl PolicyKind {
    /// Display label used in result tables.
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::Cold => "cold",
            PolicyKind::AfterFirst => "after-1st",
            PolicyKind::AfterInit => "after-init",
            PolicyKind::RequestCentric => "request-centric",
        }
    }
}

/// A checkpoint orchestration policy.
///
/// All randomness is drawn from the caller-provided RNG so policy behaviour
/// replays deterministically under a fixed seed.
pub trait Policy: Send {
    /// Which built-in policy this is.
    fn kind(&self) -> PolicyKind;

    /// `OnContainerInit`: decides what a new worker starts from.
    fn on_worker_start(&mut self, rng: &mut dyn RngCore) -> StartDecision;

    /// `OnContainerStart`: given the request number the worker starts at,
    /// returns the absolute request number at which to checkpoint it, or
    /// `None` to never checkpoint this worker.
    fn plan_checkpoint(&mut self, start_request: u32, rng: &mut dyn RngCore) -> Option<u32>;

    /// `OnRequest`: folds one end-to-end latency into the policy's
    /// knowledge.
    fn record_latency(&mut self, request_number: u32, latency_us: f64);

    /// Registers a snapshot that was just taken; returns the entries the
    /// pool evicted (whose blobs the orchestrator deletes from the store).
    fn on_snapshot_taken(&mut self, entry: PoolEntry, rng: &mut dyn RngCore) -> Vec<PoolEntry>;

    /// Request number a pooled snapshot was taken at (restores resume
    /// there), or `None` if unknown.
    fn snapshot_request_number(&self, id: SnapshotId) -> Option<u32>;

    /// Number of snapshots currently pooled.
    fn pool_len(&self) -> usize;

    /// Exports the policy's learned weights for persistence, if it has any.
    fn export_weights(&self) -> Option<Vec<f64>> {
        None
    }

    /// Restores previously persisted weights, if supported.
    fn import_weights(&mut self, _slots: &[f64]) {}

    /// Whether this policy persists weights to the Database at all. When
    /// `true` the orchestrator charges the weight-write overhead and
    /// persists after every request, preferring the single-slot delta from
    /// [`Self::take_weight_delta`] over a full [`Self::export_weights`]
    /// re-encode.
    fn persists_weights(&self) -> bool {
        false
    }

    /// Takes the single-slot weight change produced by the most recent
    /// [`Self::record_latency`] call, if any: `(request_number, new_value)`.
    /// Returns `None` when the sample was ignored or the policy does not
    /// track deltas; the orchestrator then falls back to a full export.
    fn take_weight_delta(&mut self) -> Option<(u32, f64)> {
        None
    }

    /// Marks a pooled snapshot as having a recorded working-set manifest
    /// (prefetch-ready). Policies that price restore cost into selection
    /// may stop penalizing it; the default ignores the hint.
    fn note_prefetch_ready(&mut self, _id: SnapshotId) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable() {
        assert_eq!(PolicyKind::Cold.label(), "cold");
        assert_eq!(PolicyKind::AfterFirst.label(), "after-1st");
        assert_eq!(PolicyKind::AfterInit.label(), "after-init");
        assert_eq!(PolicyKind::RequestCentric.label(), "request-centric");
    }
}

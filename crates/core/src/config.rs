//! Policy configuration — Table 2's notation.
//!
//! | symbol | field | paper default |
//! |---|---|---|
//! | `β` | [`PolicyConfig::beta`] | eviction rate (requests per worker) |
//! | `C` | [`PolicyConfig::capacity`] | 12 snapshots |
//! | `W` | [`PolicyConfig::w`] | 100 (PyPy) / 200 (JVM) |
//! | `α` | [`PolicyConfig::alpha`] | EWMA proportion |
//! | `p` | [`PolicyConfig::keep_top_frac`] | 40% |
//! | `γ` | [`PolicyConfig::keep_random_frac`] | 10% |
//! | `µ` | [`PolicyConfig::mu`] | tiny positive constant |

use crate::error::ConfigError;

/// How the policy picks a snapshot from the pool at worker start.
///
/// The paper uses softmax sampling (§3.4) so that "even snapshots that
/// have high lifetime latencies will still be restored from, albeit less
/// often"; the alternatives exist for the ablation study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelectionStrategy {
    /// Softmax over normalized lifetime weights (the paper's choice).
    #[default]
    Softmax,
    /// Always the highest-weight snapshot (pure exploitation).
    Greedy,
    /// Uniformly random (pure exploration).
    Uniform,
}

/// Parameters of the request-centric orchestration policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyConfig {
    /// `α`: proportion for the EWMA weight update (part 3 of Algorithm 1).
    pub alpha: f64,
    /// `β`: average requests a worker serves before eviction, precomputed
    /// by the cloud provider (§3.4 "Precomputed").
    pub beta: u32,
    /// `W`: largest request number at which checkpointing is permitted —
    /// the `[0, W)` search space.
    pub w: u32,
    /// `C`: maximum snapshot-pool capacity.
    pub capacity: usize,
    /// `p`: fraction of top snapshots retained when capacity is reached.
    pub keep_top_frac: f64,
    /// `γ`: fraction of randomly chosen snapshots also retained.
    pub keep_random_frac: f64,
    /// `µ`: the tiny positive constant in `Pr[i] = 1/(θ[i]+µ)`. Relative
    /// to latencies in µs, so unexplored slots (θ=0) get weight `1/µ`,
    /// orders of magnitude above any explored slot.
    pub mu: f64,
    /// Scale applied before the softmax over snapshot weights. Raw weights
    /// are inverse microseconds (~1e-4); a raw softmax over them would be
    /// uniform. Weights are normalized to `[0, softmax_scale]` first —
    /// the equivalent of the temperature the authors' implementation
    /// applies implicitly by working in seconds.
    pub softmax_scale: f64,
    /// Snapshot-selection strategy (softmax in the paper; greedy/uniform
    /// for ablations).
    pub selection: SelectionStrategy,
    /// Expected extra restore cost in µs for a snapshot whose working
    /// set has *not* been recorded yet (it must fault its pages in one
    /// by one instead of prefetching them). Zero — the default — leaves
    /// selection untouched; under a record-prefetch restore path the
    /// platform sets this so the softmax slightly favours
    /// prefetch-ready snapshots.
    pub restore_penalty_us: f64,
}

impl PolicyConfig {
    /// The paper's evaluation configuration for PyPy benchmarks
    /// (`p = 40%`, `γ = 10%`, `C = 12`, `W = 100`).
    pub fn paper_pypy() -> Self {
        PolicyConfig {
            alpha: 0.3,
            beta: 1,
            w: 100,
            capacity: 12,
            keep_top_frac: 0.40,
            keep_random_frac: 0.10,
            mu: 1e-3,
            softmax_scale: 6.0,
            selection: SelectionStrategy::Softmax,
            restore_penalty_us: 0.0,
        }
    }

    /// The paper's evaluation configuration for JVM benchmarks (`W = 200`,
    /// "since the JVM generally takes twice as long as PyPy to arrive at
    /// an optima").
    pub fn paper_jvm() -> Self {
        PolicyConfig {
            w: 200,
            ..PolicyConfig::paper_pypy()
        }
    }

    /// Sets `β` (the expected worker lifetime, i.e. the eviction rate).
    pub fn with_beta(mut self, beta: u32) -> Self {
        self.beta = beta.max(1);
        self
    }

    /// Sets the pool capacity `C`.
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity.max(1);
        self
    }

    /// Sets the EWMA proportion `α`, clamped to `(0, 1]`.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha.clamp(f64::MIN_POSITIVE, 1.0);
        self
    }

    /// Sets the search-space bound `W`.
    pub fn with_w(mut self, w: u32) -> Self {
        self.w = w.max(1);
        self
    }

    /// Sets the eviction fractions `p` and `γ`, clamped to `[0, 1]`.
    pub fn with_eviction_fracs(mut self, p: f64, gamma: f64) -> Self {
        self.keep_top_frac = p.clamp(0.0, 1.0);
        self.keep_random_frac = gamma.clamp(0.0, 1.0);
        self
    }

    /// Sets the snapshot-selection strategy.
    pub fn with_selection(mut self, selection: SelectionStrategy) -> Self {
        self.selection = selection;
        self
    }

    /// Sets the expected restore penalty (µs) for snapshots without a
    /// recorded working set, clamped to non-negative.
    pub fn with_restore_penalty(mut self, penalty_us: f64) -> Self {
        self.restore_penalty_us = if penalty_us.is_finite() {
            penalty_us.max(0.0)
        } else {
            0.0
        };
        self
    }

    /// Validates internal consistency; the orchestrator asserts this once
    /// at startup.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !(self.alpha > 0.0 && self.alpha <= 1.0) {
            return Err(ConfigError::AlphaOutOfRange { alpha: self.alpha });
        }
        if self.beta == 0 || self.w == 0 || self.capacity == 0 {
            return Err(ConfigError::NonPositiveDimension);
        }
        if !(self.mu > 0.0 && self.mu.is_finite()) {
            return Err(ConfigError::InvalidMu { mu: self.mu });
        }
        if !(self.softmax_scale > 0.0 && self.softmax_scale.is_finite()) {
            return Err(ConfigError::InvalidSoftmaxScale {
                scale: self.softmax_scale,
            });
        }
        if !(0.0..=1.0).contains(&self.keep_top_frac)
            || !(0.0..=1.0).contains(&self.keep_random_frac)
        {
            return Err(ConfigError::EvictionFracOutOfRange {
                p: self.keep_top_frac,
                gamma: self.keep_random_frac,
            });
        }
        if !(self.restore_penalty_us.is_finite() && self.restore_penalty_us >= 0.0) {
            return Err(ConfigError::InvalidRestorePenalty {
                penalty: self.restore_penalty_us,
            });
        }
        Ok(())
    }
}

impl Default for PolicyConfig {
    fn default() -> Self {
        PolicyConfig::paper_pypy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_5_1() {
        let pypy = PolicyConfig::paper_pypy();
        assert_eq!(pypy.w, 100);
        assert_eq!(pypy.capacity, 12);
        assert_eq!(pypy.keep_top_frac, 0.40);
        assert_eq!(pypy.keep_random_frac, 0.10);
        let jvm = PolicyConfig::paper_jvm();
        assert_eq!(jvm.w, 200);
        assert_eq!(jvm.capacity, 12);
    }

    #[test]
    fn builders_clamp() {
        let c = PolicyConfig::default()
            .with_beta(0)
            .with_capacity(0)
            .with_alpha(9.0)
            .with_w(0)
            .with_eviction_fracs(2.0, -1.0);
        assert_eq!(c.beta, 1);
        assert_eq!(c.capacity, 1);
        assert_eq!(c.alpha, 1.0);
        assert_eq!(c.w, 1);
        assert_eq!(c.keep_top_frac, 1.0);
        assert_eq!(c.keep_random_frac, 0.0);
        c.validate().unwrap();
    }

    #[test]
    fn validate_rejects_bad_values() {
        let c = PolicyConfig {
            mu: 0.0,
            ..PolicyConfig::default()
        };
        assert!(c.validate().is_err());
        let c = PolicyConfig {
            alpha: 0.0,
            ..PolicyConfig::default()
        };
        assert!(c.validate().is_err());
        let c = PolicyConfig {
            softmax_scale: f64::NAN,
            ..PolicyConfig::default()
        };
        assert!(c.validate().is_err());
        let c = PolicyConfig {
            restore_penalty_us: f64::NAN,
            ..PolicyConfig::default()
        };
        assert!(c.validate().is_err());
        let c = PolicyConfig {
            restore_penalty_us: -1.0,
            ..PolicyConfig::default()
        };
        assert!(c.validate().is_err());
        assert!(PolicyConfig::default().validate().is_ok());
    }

    #[test]
    fn restore_penalty_builder_clamps() {
        assert_eq!(
            PolicyConfig::default()
                .with_restore_penalty(-5.0)
                .restore_penalty_us,
            0.0
        );
        assert_eq!(
            PolicyConfig::default()
                .with_restore_penalty(f64::INFINITY)
                .restore_penalty_us,
            0.0
        );
        let c = PolicyConfig::default().with_restore_penalty(10_000.0);
        assert_eq!(c.restore_penalty_us, 10_000.0);
        c.validate().unwrap();
    }
}

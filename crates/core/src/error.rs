//! Typed errors for the policy crate's library paths.
//!
//! The pronglint `panic-path` rule (DESIGN.md §10, D3) forbids
//! `unwrap`/`expect`/`panic!` in non-test library code of the policy
//! crates: a malformed deployment configuration must surface as a value a
//! caller can match on and report, not as a process abort deep inside the
//! policy. This is the thiserror pattern written out by hand — the build
//! environment has no registry access, so the derive crate is not
//! available.

use std::fmt;

/// A [`crate::PolicyConfig`] that fails validation, one variant per
/// invariant of Table 2's parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConfigError {
    /// `α` must lie in `(0, 1]` for the EWMA update to converge.
    AlphaOutOfRange {
        /// The rejected proportion.
        alpha: f64,
    },
    /// `β`, `W`, and `C` must all be positive.
    NonPositiveDimension,
    /// `µ` must be a tiny positive finite constant: `Pr[i] = 1/(θ[i]+µ)`
    /// divides by it when a slot is unexplored.
    InvalidMu {
        /// The rejected constant.
        mu: f64,
    },
    /// The softmax temperature scale must be positive and finite.
    InvalidSoftmaxScale {
        /// The rejected scale.
        scale: f64,
    },
    /// The eviction fractions `p` and `γ` must lie in `[0, 1]`.
    EvictionFracOutOfRange {
        /// The rejected top fraction `p`.
        p: f64,
        /// The rejected random fraction `γ`.
        gamma: f64,
    },
    /// The restore penalty must be finite and non-negative µs.
    InvalidRestorePenalty {
        /// The rejected penalty.
        penalty: f64,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::AlphaOutOfRange { alpha } => {
                write!(f, "alpha {alpha} outside (0, 1]")
            }
            ConfigError::NonPositiveDimension => {
                write!(f, "beta, w and capacity must be positive")
            }
            ConfigError::InvalidMu { mu } => {
                write!(f, "mu {mu} must be a tiny positive constant")
            }
            ConfigError::InvalidSoftmaxScale { scale } => {
                write!(f, "softmax_scale {scale} invalid")
            }
            ConfigError::EvictionFracOutOfRange { p, gamma } => {
                write!(
                    f,
                    "eviction fractions p={p}, gamma={gamma} must lie in [0, 1]"
                )
            }
            ConfigError::InvalidRestorePenalty { penalty } => {
                write!(
                    f,
                    "restore penalty {penalty} must be finite and non-negative"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_offending_value() {
        let e = ConfigError::AlphaOutOfRange { alpha: 2.0 };
        assert_eq!(e.to_string(), "alpha 2 outside (0, 1]");
        let e = ConfigError::InvalidMu { mu: 0.0 };
        assert!(e.to_string().contains("mu 0"));
    }

    #[test]
    fn is_a_std_error() {
        fn takes_error(_: &dyn std::error::Error) {}
        takes_error(&ConfigError::NonPositiveDimension);
    }
}

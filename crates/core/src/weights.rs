//! The weight vector `θ` and its derived distributions.
//!
//! Part 3 of Algorithm 1: `θ` is zero-initialized with length `W`; each
//! request's end-to-end latency updates its slot — first sample directly,
//! then exponentially weighted. The probability map `D` assigns request
//! number `i` the unnormalized weight `1/(θ[i]+µ)`, so unexplored slots
//! dominate until the whole `[0, W)` range has been measured.

use rand::Rng;

/// Reusable buffers for the per-decision hot path.
///
/// Every start decision and checkpoint plan needs a candidate-weight array
/// and (for softmax selection) a probability array. Holding them here lets
/// a policy make every decision after the first without allocating: the
/// buffers are cleared and refilled in place. The float operations and RNG
/// draw counts are identical to the allocating variants, so fixed-seed
/// results do not change.
#[derive(Debug, Clone, Default)]
pub struct DecisionScratch {
    /// Per-candidate weight buffer.
    pub weights: Vec<f64>,
    /// Per-candidate probability buffer (softmax output).
    pub probs: Vec<f64>,
}

impl DecisionScratch {
    /// Creates empty scratch buffers.
    pub fn new() -> Self {
        DecisionScratch::default()
    }
}

/// EWMA latency estimates per request number.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightVector {
    theta: Vec<f64>,
    alpha: f64,
}

impl WeightVector {
    /// Creates a zero-initialized vector of length `w` with EWMA factor
    /// `alpha` (clamped to `(0, 1]`).
    pub fn new(w: u32, alpha: f64) -> Self {
        WeightVector {
            theta: vec![0.0; w as usize],
            alpha: alpha.clamp(f64::MIN_POSITIVE, 1.0),
        }
    }

    /// Reconstructs a vector from persisted slots (the Database round
    /// trip).
    pub fn from_slots(theta: Vec<f64>, alpha: f64) -> Self {
        WeightVector {
            theta,
            alpha: alpha.clamp(f64::MIN_POSITIVE, 1.0),
        }
    }

    /// The search-space bound `W`.
    pub fn w(&self) -> u32 {
        self.theta.len() as u32
    }

    /// Raw slots (for persistence).
    pub fn slots(&self) -> &[f64] {
        &self.theta
    }

    /// Latency estimate for request number `r` (0 = unexplored).
    pub fn get(&self, r: u32) -> f64 {
        self.theta.get(r as usize).copied().unwrap_or(0.0)
    }

    /// Number of explored slots.
    pub fn explored(&self) -> usize {
        self.theta.iter().filter(|&&x| x > 0.0).count()
    }

    /// Folds a latency sample into slot `r` (ignored when `r >= W` or the
    /// sample is not a positive finite value).
    ///
    /// Implements `OnRequest` exactly: first sample initializes, later
    /// samples blend with `θ[R] ← α·L + (1−α)·θ[R]`.
    ///
    /// Returns the slot's new value when the sample landed, `None` when it
    /// was ignored — the hook delta persistence uses to write a single
    /// Database slot instead of re-encoding all `W` of them.
    pub fn update(&mut self, r: u32, latency_us: f64) -> Option<f64> {
        if !(latency_us.is_finite() && latency_us > 0.0) {
            return None;
        }
        let slot = self.theta.get_mut(r as usize)?;
        if *slot == 0.0 {
            *slot = latency_us;
        } else {
            *slot = self.alpha * latency_us + (1.0 - self.alpha) * *slot;
        }
        Some(*slot)
    }

    /// The probability map `D`: `Pr[i] ∝ 1/(θ[i]+µ)` (unnormalized).
    pub fn prob_map(&self, mu: f64) -> Vec<f64> {
        let mut out = Vec::new();
        self.prob_map_into(mu, &mut out);
        out
    }

    /// [`Self::prob_map`] into a reusable buffer (cleared first).
    pub fn prob_map_into(&self, mu: f64, out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.theta.iter().map(|&t| 1.0 / (t + mu)));
    }

    /// Inverse weight of one slot, clamping `r` into `[0, W)` — used for
    /// lifetime windows that run past the end of the measured range.
    fn inv_weight_clamped(&self, r: u32, mu: f64) -> f64 {
        let idx = (r as usize).min(self.theta.len().saturating_sub(1));
        1.0 / (self.theta[idx] + mu)
    }

    /// Part 1 (`OnContainerStart`): draws the request number at which to
    /// checkpoint a worker that starts at request `start` and is expected
    /// to live `beta` requests. Returns `None` when the whole interval
    /// lies at or beyond `W` (checkpointing no longer permitted).
    pub fn sample_checkpoint_request<R: Rng + ?Sized>(
        &self,
        start: u32,
        beta: u32,
        mu: f64,
        rng: &mut R,
    ) -> Option<u32> {
        let mut scratch = DecisionScratch::new();
        self.sample_checkpoint_request_with(&mut scratch, start, beta, mu, rng)
    }

    /// [`Self::sample_checkpoint_request`] using caller-provided scratch
    /// buffers, so repeated decisions allocate nothing. Draws identically
    /// to the allocating variant under the same RNG state.
    pub fn sample_checkpoint_request_with<R: Rng + ?Sized>(
        &self,
        scratch: &mut DecisionScratch,
        start: u32,
        beta: u32,
        mu: f64,
        rng: &mut R,
    ) -> Option<u32> {
        if start >= self.w() {
            return None;
        }
        let end = start.saturating_add(beta).min(self.w().saturating_sub(1));
        scratch.weights.clear();
        scratch
            .weights
            .extend((start..=end).map(|r| self.inv_weight_clamped(r, mu)));
        let offset = weighted_draw(&scratch.weights, rng)?;
        Some(start + offset as u32)
    }

    /// Part 2 (`GetSnapshotWeights` line 15): the average lifetime weight
    /// of a snapshot taken at request `r0` — the mean of `1/(θ+µ)` over
    /// the **inclusive** window `[r0, r0+beta]` (`Σ_{i=R0}^{R0+β}` in the
    /// paper), indices clamped into the measured range.
    ///
    /// Inclusivity matters: the slot one past a frontier snapshot's
    /// lifetime keeps its weight enormous until that request number has
    /// been explored, which is what drives the policy's walk across the
    /// whole `[0, W)` search space.
    pub fn lifetime_weight(&self, r0: u32, beta: u32, mu: f64) -> f64 {
        let beta = beta.max(1);
        // pronglint: det-order — sums over the ascending range [r0, r0+beta].
        let total: f64 = (r0..=r0 + beta)
            .map(|r| self.inv_weight_clamped(r, mu))
            .sum();
        total / f64::from(beta + 1)
    }

    /// Estimated mean latency over a lifetime starting at `r0` — the
    /// "lifetime latency" of §3.4, over the same inclusive window as
    /// [`Self::lifetime_weight`], with unexplored slots contributing zero.
    pub fn lifetime_latency(&self, r0: u32, beta: u32) -> f64 {
        let beta = beta.max(1);
        // pronglint: det-order — sums over the ascending range [r0, r0+beta].
        let total: f64 = (r0..=r0 + beta)
            .map(|r| {
                let idx = (r as usize).min(self.theta.len().saturating_sub(1));
                self.theta[idx]
            })
            .sum();
        total / f64::from(beta + 1)
    }
}

/// Draws an index proportionally to `weights`. Returns `None` for empty or
/// degenerate (all-zero/non-finite) weights.
pub fn weighted_draw<R: Rng + ?Sized>(weights: &[f64], rng: &mut R) -> Option<usize> {
    // pronglint: det-order — sums in slice order, fixed by the caller.
    let total: f64 = weights
        .iter()
        .copied()
        .filter(|w| w.is_finite() && *w > 0.0)
        .sum();
    if total <= 0.0 || total.is_nan() || weights.is_empty() {
        return None;
    }
    let mut target = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if !(w.is_finite() && w > 0.0) {
            continue;
        }
        if target < w {
            return Some(i);
        }
        target -= w;
    }
    // Floating-point tail: return the last positive-weight index.
    weights.iter().rposition(|&w| w.is_finite() && w > 0.0)
}

/// The softmax of §3.4 footnote 2: `s = e / Σeᵢ` with `e = exp(v)`,
/// applied after normalizing `v` to `[0, scale]` so that inverse-µs
/// weights do not collapse to a uniform distribution.
pub fn scaled_softmax(values: &[f64], scale: f64) -> Vec<f64> {
    let mut out = Vec::new();
    scaled_softmax_into(values, scale, &mut out);
    out
}

/// [`scaled_softmax`] into a reusable buffer (cleared first). The float
/// operations run in the same order as the allocating variant, so the
/// resulting distribution is bit-identical.
pub fn scaled_softmax_into(values: &[f64], scale: f64, out: &mut Vec<f64>) {
    out.clear();
    if values.is_empty() {
        return;
    }
    // pronglint: det-order — max in slice order (and max is associative).
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if max <= 0.0 || max.is_nan() || !max.is_finite() {
        // Degenerate input: fall back to uniform.
        out.extend(std::iter::repeat_n(1.0 / values.len() as f64, values.len()));
        return;
    }
    out.extend(
        values
            .iter()
            .map(|&v| ((v / max).clamp(0.0, 1.0) * scale).exp()),
    );
    // pronglint: det-order — sums the exponentials in slice order.
    let total: f64 = out.iter().sum();
    for e in out.iter_mut() {
        *e /= total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn update_initializes_then_blends() {
        let mut w = WeightVector::new(10, 0.5);
        w.update(3, 100.0);
        assert_eq!(w.get(3), 100.0);
        w.update(3, 200.0);
        assert_eq!(w.get(3), 150.0);
        assert_eq!(w.explored(), 1);
    }

    #[test]
    fn update_ignores_out_of_range_and_invalid() {
        let mut w = WeightVector::new(4, 0.3);
        w.update(4, 100.0);
        w.update(9, 100.0);
        w.update(0, f64::NAN);
        w.update(0, -5.0);
        assert_eq!(w.explored(), 0);
    }

    #[test]
    fn prob_map_prefers_unexplored() {
        let mut w = WeightVector::new(4, 0.3);
        w.update(0, 10_000.0);
        let map = w.prob_map(1e-3);
        // Slot 0 is explored (weight ~1e-4); slots 1..3 unexplored (1e3).
        assert!(map[1] > map[0] * 1e5);
        assert_eq!(map[1], map[2]);
    }

    #[test]
    fn checkpoint_draw_hits_unexplored_first() {
        let mut w = WeightVector::new(50, 0.3);
        for r in 0..49 {
            w.update(r, 10_000.0);
        }
        // Only slot 49 unexplored: it should be drawn essentially always.
        let mut rng = SmallRng::seed_from_u64(1);
        let mut hits = 0;
        for _ in 0..200 {
            if w.sample_checkpoint_request(40, 20, 1e-3, &mut rng) == Some(49) {
                hits += 1;
            }
        }
        assert!(hits >= 198, "unexplored slot drawn only {hits}/200 times");
    }

    #[test]
    fn checkpoint_draw_respects_w_bound() {
        let w = WeightVector::new(10, 0.3);
        let mut rng = SmallRng::seed_from_u64(2);
        assert_eq!(w.sample_checkpoint_request(10, 5, 1e-3, &mut rng), None);
        assert_eq!(w.sample_checkpoint_request(500, 5, 1e-3, &mut rng), None);
        for _ in 0..100 {
            let r = w.sample_checkpoint_request(7, 10, 1e-3, &mut rng).unwrap();
            assert!((7..10).contains(&r));
        }
    }

    #[test]
    fn fully_explored_draw_prefers_fast_requests() {
        let mut w = WeightVector::new(10, 0.3);
        for r in 0..10 {
            // Slot 5 is 50x faster than the rest.
            w.update(r, if r == 5 { 1_000.0 } else { 50_000.0 });
        }
        let mut rng = SmallRng::seed_from_u64(3);
        let mut hits = 0;
        for _ in 0..1_000 {
            if w.sample_checkpoint_request(0, 9, 1e-3, &mut rng) == Some(5) {
                hits += 1;
            }
        }
        // Weight of slot 5 is ~50/59 of the mass.
        assert!(hits > 700, "fast slot drawn {hits}/1000");
    }

    #[test]
    fn lifetime_weight_averages_inverse_latency_inclusively() {
        let mut w = WeightVector::new(4, 0.3);
        for r in 0..4 {
            w.update(r, 1_000.0);
        }
        // Inclusive window [0, 3]: four slots, all at 1/1000.
        let lw = w.lifetime_weight(0, 3, 0.0);
        assert!((lw - 1e-3).abs() < 1e-12);
        // Window past the end clamps to the last slot.
        let lw_tail = w.lifetime_weight(3, 10, 0.0);
        assert!((lw_tail - 1e-3).abs() < 1e-12);
    }

    #[test]
    fn lifetime_weight_keeps_frontier_snapshots_hot() {
        // Slot 3 unexplored: a snapshot at r0=2 with beta=1 covers the
        // inclusive window [2, 3], so it still carries ~1/µ weight.
        let mut w = WeightVector::new(5, 0.3);
        for r in 0..3 {
            w.update(r, 1_000.0);
        }
        let frontier = w.lifetime_weight(2, 1, 1e-3);
        let interior = w.lifetime_weight(0, 1, 1e-3);
        assert!(frontier > interior * 1_000.0, "{frontier} vs {interior}");
    }

    #[test]
    fn lifetime_latency_is_mean_theta_inclusive() {
        let mut w = WeightVector::new(4, 0.3);
        w.update(0, 100.0);
        w.update(1, 300.0);
        w.update(2, 200.0);
        // Inclusive window [0, 2]: (100 + 300 + 200) / 3.
        assert_eq!(w.lifetime_latency(0, 2), 200.0);
    }

    #[test]
    fn weighted_draw_is_proportional() {
        let mut rng = SmallRng::seed_from_u64(4);
        let weights = [1.0, 3.0];
        let mut counts = [0usize; 2];
        for _ in 0..10_000 {
            counts[weighted_draw(&weights, &mut rng).unwrap()] += 1;
        }
        let frac = counts[1] as f64 / 10_000.0;
        assert!((frac - 0.75).abs() < 0.03, "frac {frac}");
    }

    #[test]
    fn weighted_draw_handles_degenerate_input() {
        let mut rng = SmallRng::seed_from_u64(5);
        assert_eq!(weighted_draw(&[], &mut rng), None);
        assert_eq!(weighted_draw(&[0.0, 0.0], &mut rng), None);
        assert_eq!(weighted_draw(&[f64::NAN], &mut rng), None);
        // Mixed: only positive-weight entries can be drawn.
        for _ in 0..50 {
            assert_eq!(weighted_draw(&[0.0, 2.0, f64::NAN], &mut rng), Some(1));
        }
    }

    #[test]
    fn softmax_is_a_distribution_favoring_the_max() {
        let probs = scaled_softmax(&[1e-4, 2e-4, 5e-5], 6.0);
        let sum: f64 = probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(probs[1] > probs[0] && probs[0] > probs[2]);
        // Meaningful discrimination despite tiny raw weights.
        assert!(probs[1] / probs[2] > 5.0);
    }

    #[test]
    fn softmax_handles_degenerate_input() {
        assert!(scaled_softmax(&[], 6.0).is_empty());
        let uniform = scaled_softmax(&[0.0, 0.0], 6.0);
        assert_eq!(uniform, vec![0.5, 0.5]);
        let with_inf = scaled_softmax(&[f64::INFINITY, 1.0], 6.0);
        assert_eq!(with_inf, vec![0.5, 0.5]);
    }

    #[test]
    fn scratch_variants_match_allocating_variants() {
        let mut w = WeightVector::new(64, 0.3);
        for r in 0..40 {
            w.update(r, 1_000.0 + (r as f64) * 37.0);
        }
        // prob_map.
        let mut buf = vec![99.0; 3]; // polluted scratch
        w.prob_map_into(1e-3, &mut buf);
        assert_eq!(buf, w.prob_map(1e-3));
        // softmax, including the degenerate branches.
        for values in [vec![1e-4, 2e-4, 5e-5], vec![0.0, 0.0], vec![]] {
            let mut out = vec![7.0];
            scaled_softmax_into(&values, 6.0, &mut out);
            assert_eq!(out, scaled_softmax(&values, 6.0));
        }
        // checkpoint draw: identical RNG stream, identical draws.
        let mut scratch = DecisionScratch::new();
        let mut rng_a = SmallRng::seed_from_u64(77);
        let mut rng_b = SmallRng::seed_from_u64(77);
        for start in 0..60 {
            let a = w.sample_checkpoint_request(start, 10, 1e-3, &mut rng_a);
            let b = w.sample_checkpoint_request_with(&mut scratch, start, 10, 1e-3, &mut rng_b);
            assert_eq!(a, b, "diverged at start {start}");
        }
    }

    #[test]
    fn update_reports_the_new_slot_value() {
        let mut w = WeightVector::new(4, 0.5);
        assert_eq!(w.update(1, 100.0), Some(100.0));
        assert_eq!(w.update(1, 200.0), Some(150.0));
        assert_eq!(w.update(9, 100.0), None);
        assert_eq!(w.update(0, f64::NAN), None);
    }

    #[test]
    fn softmax_sends_unexplored_weight_to_one() {
        // An unexplored snapshot (weight 1/µ = 1e3) against explored ones
        // (~1e-4): softmax must overwhelmingly prefer the unexplored.
        let probs = scaled_softmax(&[1e-4, 1e3, 9e-5], 6.0);
        assert!(probs[1] > 0.98, "unexplored prob {}", probs[1]);
    }
}

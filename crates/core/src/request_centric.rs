//! Algorithm 1: the request-centric orchestration policy.

use crate::config::{PolicyConfig, SelectionStrategy};
use crate::error::ConfigError;
use crate::policy::{Policy, PolicyKind, StartDecision};
use crate::pool::{PoolEntry, SnapshotPool};
use crate::weights::{scaled_softmax_into, weighted_draw, DecisionScratch, WeightVector};
use pronghorn_checkpoint::SnapshotId;
use rand::RngCore;

/// Pronghorn's request-centric policy (see the crate docs for the
/// algorithm walk-through).
#[derive(Debug, Clone)]
pub struct RequestCentricPolicy {
    config: PolicyConfig,
    weights: WeightVector,
    pool: SnapshotPool,
    /// Reused across decisions: no per-draw allocation on the hot path.
    scratch: DecisionScratch,
    /// Slot updated by the latest `record_latency`, for delta persistence.
    pending_delta: Option<(u32, f64)>,
    /// Pooled snapshots with a recorded working-set manifest; only
    /// consulted when `config.restore_penalty_us > 0`.
    prefetch_ready: std::collections::BTreeSet<u64>,
}

impl RequestCentricPolicy {
    /// Creates the policy with zero knowledge and an empty pool.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails validation — a deployment configuration
    /// bug that must fail at startup. Callers that want to surface the
    /// [`ConfigError`] instead should use [`Self::try_new`].
    pub fn new(config: PolicyConfig) -> Self {
        match Self::try_new(config) {
            Ok(policy) => policy,
            // pronglint: allow(panic-path): documented fail-at-startup
            // contract; fallible construction is Self::try_new.
            Err(e) => panic!("invalid policy config: {e}"),
        }
    }

    /// Fallible construction: validates `config` and returns the typed
    /// error instead of panicking.
    pub fn try_new(config: PolicyConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        Ok(RequestCentricPolicy {
            weights: WeightVector::new(config.w, config.alpha),
            pool: SnapshotPool::new(config.capacity),
            scratch: DecisionScratch::new(),
            pending_delta: None,
            prefetch_ready: std::collections::BTreeSet::new(),
            config,
        })
    }

    /// The configuration in force.
    pub fn config(&self) -> &PolicyConfig {
        &self.config
    }

    /// The learned weight vector.
    pub fn weights(&self) -> &WeightVector {
        &self.weights
    }

    /// The snapshot pool.
    pub fn pool(&self) -> &SnapshotPool {
        &self.pool
    }

    /// `GetSnapshotWeights`: average lifetime weight per pooled snapshot,
    /// written into the reusable scratch buffer.
    ///
    /// Weights are inverse expected latency (`1/(θ̄+µ)`), so a restore
    /// penalty `P` µs for snapshots without a recorded working set folds
    /// in *harmonically*: `w → w / (1 + P·w) = 1/(θ̄+µ+P)`. Penalizing a
    /// snapshot only relative to prefetch-ready peers keeps the zero-
    /// penalty configuration bit-identical to the unpenalized policy.
    fn fill_snapshot_weights(
        weights: &WeightVector,
        pool: &SnapshotPool,
        config: &PolicyConfig,
        prefetch_ready: &std::collections::BTreeSet<u64>,
        out: &mut Vec<f64>,
    ) {
        out.clear();
        out.extend(pool.entries().iter().map(|e| {
            let w = weights.lifetime_weight(e.request_number, config.beta, config.mu);
            if config.restore_penalty_us > 0.0 && !prefetch_ready.contains(&e.id.0) {
                w / (1.0 + config.restore_penalty_us * w)
            } else {
                w
            }
        }));
    }
}

impl Policy for RequestCentricPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::RequestCentric
    }

    fn on_worker_start(&mut self, rng: &mut dyn RngCore) -> StartDecision {
        if self.pool.is_empty() {
            return StartDecision::Cold;
        }
        // Split borrows: scratch is refilled while weights/pool are read.
        let RequestCentricPolicy {
            config,
            weights,
            pool,
            scratch,
            prefetch_ready,
            ..
        } = self;
        Self::fill_snapshot_weights(weights, pool, config, prefetch_ready, &mut scratch.weights);
        let picked = match config.selection {
            // Part 2 (the paper): softmax over snapshot weights, then draw.
            SelectionStrategy::Softmax => {
                scaled_softmax_into(&scratch.weights, config.softmax_scale, &mut scratch.probs);
                weighted_draw(&scratch.probs, rng)
            }
            // Ablation: pure exploitation.
            SelectionStrategy::Greedy => scratch
                .weights
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(i, _)| i),
            // Ablation: pure exploration.
            SelectionStrategy::Uniform => {
                use rand::Rng as _;
                Some(rng.gen_range(0..pool.len()))
            }
        };
        match picked {
            Some(idx) => StartDecision::Restore(self.pool.entries()[idx].id),
            None => StartDecision::Cold,
        }
    }

    fn plan_checkpoint(&mut self, start_request: u32, rng: &mut dyn RngCore) -> Option<u32> {
        // Part 1: draw from the clipped probability map over the worker's
        // expected lifetime.
        self.weights.sample_checkpoint_request_with(
            &mut self.scratch,
            start_request,
            self.config.beta,
            self.config.mu,
            rng,
        )
    }

    fn record_latency(&mut self, request_number: u32, latency_us: f64) {
        // Part 3: EWMA knowledge update. The touched slot is remembered so
        // the orchestrator can persist a single-slot delta.
        self.pending_delta = self
            .weights
            .update(request_number, latency_us)
            .map(|v| (request_number, v));
    }

    fn on_snapshot_taken(&mut self, entry: PoolEntry, rng: &mut dyn RngCore) -> Vec<PoolEntry> {
        // Part 4 fires inside insert when capacity is exceeded.
        let weights = &self.weights;
        let (beta, mu) = (self.config.beta, self.config.mu);
        let evicted = self.pool.insert(
            entry,
            self.config.keep_top_frac,
            self.config.keep_random_frac,
            |e| weights.lifetime_weight(e.request_number, beta, mu),
            rng,
        );
        for e in &evicted {
            self.prefetch_ready.remove(&e.id.0);
        }
        evicted
    }

    fn snapshot_request_number(&self, id: SnapshotId) -> Option<u32> {
        self.pool.get(id).map(|e| e.request_number)
    }

    fn pool_len(&self) -> usize {
        self.pool.len()
    }

    fn export_weights(&self) -> Option<Vec<f64>> {
        Some(self.weights.slots().to_vec())
    }

    fn import_weights(&mut self, slots: &[f64]) {
        if slots.len() == self.config.w as usize {
            self.weights = WeightVector::from_slots(slots.to_vec(), self.config.alpha);
        }
    }

    fn persists_weights(&self) -> bool {
        true
    }

    fn take_weight_delta(&mut self) -> Option<(u32, f64)> {
        self.pending_delta.take()
    }

    fn note_prefetch_ready(&mut self, id: SnapshotId) {
        if self.pool.get(id).is_some() {
            self.prefetch_ready.insert(id.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn config() -> PolicyConfig {
        PolicyConfig::paper_pypy().with_beta(4)
    }

    fn entry(id: u64, r: u32) -> PoolEntry {
        PoolEntry {
            id: SnapshotId(id),
            request_number: r,
            size_bytes: 1024,
        }
    }

    #[test]
    fn empty_pool_cold_starts() {
        let mut p = RequestCentricPolicy::new(config());
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(p.on_worker_start(&mut rng), StartDecision::Cold);
    }

    #[test]
    fn restores_once_pool_has_snapshots() {
        let mut p = RequestCentricPolicy::new(config());
        let mut rng = SmallRng::seed_from_u64(2);
        p.on_snapshot_taken(entry(1, 0), &mut rng);
        match p.on_worker_start(&mut rng) {
            StartDecision::Restore(id) => assert_eq!(id, SnapshotId(1)),
            other => panic!("expected restore, got {other:?}"),
        }
        assert_eq!(p.snapshot_request_number(SnapshotId(1)), Some(0));
    }

    #[test]
    fn checkpoint_plan_explores_the_request_range() {
        let mut p = RequestCentricPolicy::new(config());
        let mut rng = SmallRng::seed_from_u64(3);
        // With all slots unexplored, draws must cover [0, beta] uniformly-ish.
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(p.plan_checkpoint(0, &mut rng).unwrap());
        }
        assert!(seen.len() >= 4, "draws {seen:?}");
        assert!(seen.iter().all(|&r| r <= 4));
    }

    #[test]
    fn no_checkpoint_beyond_w() {
        let mut p = RequestCentricPolicy::new(config());
        let mut rng = SmallRng::seed_from_u64(4);
        assert_eq!(p.plan_checkpoint(100, &mut rng), None);
        assert_eq!(p.plan_checkpoint(5_000, &mut rng), None);
    }

    #[test]
    fn converged_policy_prefers_best_snapshot() {
        let mut p = RequestCentricPolicy::new(config());
        let mut rng = SmallRng::seed_from_u64(5);
        // Fully explore: requests 0..99, with [40, 44) the fast region.
        for r in 0..100 {
            let lat = if (40..44).contains(&r) {
                1_000.0
            } else {
                60_000.0
            };
            p.record_latency(r, lat);
        }
        p.on_snapshot_taken(entry(1, 0), &mut rng);
        p.on_snapshot_taken(entry(2, 40), &mut rng);
        p.on_snapshot_taken(entry(3, 90), &mut rng);
        let mut hits = 0;
        for _ in 0..500 {
            if p.on_worker_start(&mut rng) == StartDecision::Restore(SnapshotId(2)) {
                hits += 1;
            }
        }
        assert!(hits > 400, "best snapshot chosen {hits}/500");
        // But exploration persists: other snapshots are still chosen
        // occasionally ("even snapshots that have high lifetime latencies
        // will still be restored from, albeit less often").
        assert!(hits < 500, "softmax degenerated to argmax");
    }

    #[test]
    fn pool_capacity_is_enforced_with_eviction() {
        let mut p = RequestCentricPolicy::new(config().with_capacity(3));
        let mut rng = SmallRng::seed_from_u64(6);
        let mut evicted_total = 0;
        for i in 0..10 {
            evicted_total += p
                .on_snapshot_taken(entry(100 + i, i as u32 * 7), &mut rng)
                .len();
        }
        assert!(p.pool_len() <= 3);
        assert_eq!(evicted_total + p.pool_len(), 10);
    }

    #[test]
    fn weights_round_trip_through_export_import() {
        let mut p = RequestCentricPolicy::new(config());
        p.record_latency(5, 1234.0);
        let exported = p.export_weights().unwrap();
        let mut q = RequestCentricPolicy::new(config());
        q.import_weights(&exported);
        assert_eq!(q.weights().get(5), 1234.0);
        // Mismatched length is ignored.
        q.import_weights(&[1.0, 2.0]);
        assert_eq!(q.weights().get(5), 1234.0);
    }

    #[test]
    fn greedy_selection_always_picks_the_best() {
        let mut p = RequestCentricPolicy::new(config().with_selection(SelectionStrategy::Greedy));
        let mut rng = SmallRng::seed_from_u64(7);
        for r in 0..100 {
            let lat = if r == 50 { 1_000.0 } else { 80_000.0 };
            p.record_latency(r, lat);
        }
        p.on_snapshot_taken(entry(1, 10), &mut rng);
        p.on_snapshot_taken(entry(2, 50), &mut rng);
        for _ in 0..50 {
            assert_eq!(
                p.on_worker_start(&mut rng),
                StartDecision::Restore(SnapshotId(2))
            );
        }
    }

    #[test]
    fn uniform_selection_spreads_over_the_pool() {
        let mut p = RequestCentricPolicy::new(config().with_selection(SelectionStrategy::Uniform));
        let mut rng = SmallRng::seed_from_u64(8);
        for r in 0..100 {
            p.record_latency(r, 10_000.0);
        }
        for i in 0..4 {
            p.on_snapshot_taken(entry(i, i as u32 * 10), &mut rng);
        }
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            if let StartDecision::Restore(id) = p.on_worker_start(&mut rng) {
                seen.insert(id);
            }
        }
        assert_eq!(seen.len(), 4, "uniform selection missed pool entries");
    }

    #[test]
    fn restore_penalty_prefers_prefetch_ready_snapshots() {
        // Two snapshots at the same request number have identical lifetime
        // weights; under a restore penalty, the one with a recorded
        // working set must win a greedy selection.
        let mut p = RequestCentricPolicy::new(
            config()
                .with_selection(SelectionStrategy::Greedy)
                .with_restore_penalty(50_000.0),
        );
        let mut rng = SmallRng::seed_from_u64(9);
        for r in 0..100 {
            p.record_latency(r, 20_000.0);
        }
        p.on_snapshot_taken(entry(1, 10), &mut rng);
        p.on_snapshot_taken(entry(2, 10), &mut rng);
        p.note_prefetch_ready(SnapshotId(2));
        assert_eq!(
            p.on_worker_start(&mut rng),
            StartDecision::Restore(SnapshotId(2))
        );
        // Marking an unpooled snapshot is a no-op.
        p.note_prefetch_ready(SnapshotId(99));
        // Zero penalty ignores readiness entirely: both weights are equal
        // again, and greedy max_by returns the last maximal entry either way.
        let mut q = RequestCentricPolicy::new(config().with_selection(SelectionStrategy::Greedy));
        for r in 0..100 {
            q.record_latency(r, 20_000.0);
        }
        q.on_snapshot_taken(entry(1, 10), &mut rng);
        q.on_snapshot_taken(entry(2, 10), &mut rng);
        q.note_prefetch_ready(SnapshotId(2));
        assert!(matches!(
            q.on_worker_start(&mut rng),
            StartDecision::Restore(_)
        ));
    }

    #[test]
    #[should_panic(expected = "invalid policy config")]
    fn invalid_config_panics_at_construction() {
        let mut c = config();
        c.mu = -1.0;
        let _ = RequestCentricPolicy::new(c);
    }

    #[test]
    fn try_new_surfaces_the_typed_error() {
        let mut c = config();
        c.mu = -1.0;
        assert_eq!(
            RequestCentricPolicy::try_new(c).err(),
            Some(ConfigError::InvalidMu { mu: -1.0 })
        );
        assert!(RequestCentricPolicy::try_new(config()).is_ok());
    }
}

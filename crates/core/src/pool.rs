//! The fixed-capacity snapshot pool (part 4 of Algorithm 1).
//!
//! "We implement an exploration-exploitation tradeoff by fixing a maximum
//! capacity for our snapshot pool, and whenever that capacity is reached,
//! evicting the worst-performing snapshots while also keeping a random
//! subset" (§3.4). The random subset enables hill-climbing across local
//! optima.

use pronghorn_checkpoint::SnapshotId;
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::BTreeSet;

/// One pooled snapshot's metadata (the blob itself lives in the Object
/// Store).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolEntry {
    /// Snapshot identity.
    pub id: SnapshotId,
    /// Request number the snapshot was taken at.
    pub request_number: u32,
    /// Nominal (process-image) size in bytes, for storage accounting.
    pub size_bytes: u64,
}

/// Fixed-capacity pool of snapshot metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotPool {
    entries: Vec<PoolEntry>,
    capacity: usize,
}

impl SnapshotPool {
    /// Creates an empty pool with capacity `C >= 1`.
    pub fn new(capacity: usize) -> Self {
        SnapshotPool {
            entries: Vec::new(),
            capacity: capacity.max(1),
        }
    }

    /// Capacity `C`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of pooled snapshots.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Pooled entries, insertion order.
    pub fn entries(&self) -> &[PoolEntry] {
        &self.entries
    }

    /// Looks up an entry by id.
    pub fn get(&self, id: SnapshotId) -> Option<&PoolEntry> {
        self.entries.iter().find(|e| e.id == id)
    }

    /// Total nominal bytes pooled (Table 5's storage numerator).
    pub fn total_bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.size_bytes).sum()
    }

    /// Inserts a snapshot. If the pool exceeds capacity, runs
    /// `OnCapacityReached`: keeps the top `keep_top_frac` by `weight_of`
    /// plus `keep_random_frac` chosen uniformly at random, discarding (and
    /// returning) the rest.
    pub fn insert<R, F>(
        &mut self,
        entry: PoolEntry,
        keep_top_frac: f64,
        keep_random_frac: f64,
        weight_of: F,
        rng: &mut R,
    ) -> Vec<PoolEntry>
    where
        R: Rng + ?Sized,
        F: Fn(&PoolEntry) -> f64,
    {
        // An id can only appear once: re-inserting replaces the old entry
        // (otherwise eviction of one twin would delete the blob out from
        // under the other).
        self.entries.retain(|e| e.id != entry.id);
        self.entries.push(entry);
        if self.entries.len() <= self.capacity {
            return Vec::new();
        }
        self.prune(keep_top_frac, keep_random_frac, weight_of, rng)
    }

    /// `OnCapacityReached` (Algorithm 1 part 4): retains the top `p` of
    /// snapshots by weight plus `γ` random ones, returning the evicted
    /// entries.
    pub fn prune<R, F>(
        &mut self,
        keep_top_frac: f64,
        keep_random_frac: f64,
        weight_of: F,
        rng: &mut R,
    ) -> Vec<PoolEntry>
    where
        R: Rng + ?Sized,
        F: Fn(&PoolEntry) -> f64,
    {
        let n = self.entries.len();
        if n == 0 {
            return Vec::new();
        }
        let k_top = ((keep_top_frac * n as f64).round() as usize).clamp(1, n);
        let k_rand = (keep_random_frac * n as f64).round() as usize;

        // Rank by weight, descending; ties broken by recency (later entries
        // first) so a fresh snapshot of equal merit survives.
        let mut ranked: Vec<usize> = (0..n).collect();
        ranked.sort_by(|&a, &b| {
            let (wa, wb) = (weight_of(&self.entries[a]), weight_of(&self.entries[b]));
            wb.partial_cmp(&wa)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(b.cmp(&a))
        });
        let mut keep: BTreeSet<usize> = ranked[..k_top].iter().copied().collect();

        // "Add γ% of snapshots in P chosen uniformly at random" — drawn
        // from the whole pool, so overlap with the top set is possible.
        let mut all: Vec<usize> = (0..n).collect();
        all.shuffle(rng);
        for idx in all.into_iter().take(k_rand) {
            keep.insert(idx);
        }

        // Degenerate fractions (p + γ near 1) could retain more than the
        // pool's capacity; trim the keep set in rank order so the capacity
        // bound always holds.
        if keep.len() > self.capacity {
            let mut trimmed = BTreeSet::new();
            for &idx in ranked.iter() {
                if keep.contains(&idx) {
                    trimmed.insert(idx);
                    if trimmed.len() == self.capacity {
                        break;
                    }
                }
            }
            keep = trimmed;
        }

        let mut kept = Vec::with_capacity(keep.len());
        let mut evicted = Vec::new();
        for (i, entry) in self.entries.drain(..).enumerate() {
            if keep.contains(&i) {
                kept.push(entry);
            } else {
                evicted.push(entry);
            }
        }
        self.entries = kept;
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn entry(n: u32) -> PoolEntry {
        PoolEntry {
            id: SnapshotId(u64::from(n) + 1000),
            request_number: n,
            size_bytes: 10 * 1024 * 1024,
        }
    }

    /// Weight = request number (later snapshots "better").
    fn by_request(e: &PoolEntry) -> f64 {
        f64::from(e.request_number)
    }

    #[test]
    fn insert_below_capacity_evicts_nothing() {
        let mut pool = SnapshotPool::new(3);
        let mut rng = SmallRng::seed_from_u64(1);
        for i in 0..3 {
            let evicted = pool.insert(entry(i), 0.4, 0.1, by_request, &mut rng);
            assert!(evicted.is_empty());
        }
        assert_eq!(pool.len(), 3);
        assert_eq!(pool.total_bytes(), 3 * 10 * 1024 * 1024);
    }

    #[test]
    fn overflow_triggers_capacity_pruning() {
        let mut pool = SnapshotPool::new(10);
        let mut rng = SmallRng::seed_from_u64(2);
        for i in 0..10 {
            pool.insert(entry(i), 0.4, 0.1, by_request, &mut rng);
        }
        let evicted = pool.insert(entry(10), 0.4, 0.1, by_request, &mut rng);
        assert!(!evicted.is_empty());
        assert!(pool.len() <= 10);
        // Top 40% of 11 ≈ 4 best (highest request numbers) must survive.
        for want in [10, 9, 8, 7] {
            assert!(
                pool.entries().iter().any(|e| e.request_number == want),
                "top snapshot {want} was evicted"
            );
        }
        // Pool + evicted partition the inserted set.
        assert_eq!(pool.len() + evicted.len(), 11);
    }

    #[test]
    fn random_keep_can_rescue_low_weight_snapshots() {
        // With γ = 50%, some bottom-half snapshot survives in most seeds.
        let mut rescued = 0;
        for seed in 0..20 {
            let mut pool = SnapshotPool::new(10);
            let mut rng = SmallRng::seed_from_u64(seed);
            for i in 0..11 {
                pool.insert(entry(i), 0.2, 0.5, by_request, &mut rng);
            }
            if pool.entries().iter().any(|e| e.request_number < 5) {
                rescued += 1;
            }
        }
        assert!(rescued >= 15, "rescued in only {rescued}/20 seeds");
    }

    #[test]
    fn gamma_zero_is_pure_exploitation() {
        let mut pool = SnapshotPool::new(4);
        let mut rng = SmallRng::seed_from_u64(3);
        for i in 0..5 {
            pool.insert(entry(i), 0.5, 0.0, by_request, &mut rng);
        }
        // round(0.5 * 5) = 3 survivors (round half away from zero):
        // exactly the three best.
        let survivors: Vec<u32> = pool.entries().iter().map(|e| e.request_number).collect();
        assert_eq!(pool.len(), 3);
        assert!(survivors.contains(&4) && survivors.contains(&3) && survivors.contains(&2));
    }

    #[test]
    fn prune_always_keeps_at_least_one() {
        let mut pool = SnapshotPool::new(1);
        let mut rng = SmallRng::seed_from_u64(4);
        for i in 0..2 {
            pool.insert(entry(i), 0.0, 0.0, by_request, &mut rng);
        }
        assert_eq!(pool.len(), 1);
        assert_eq!(pool.entries()[0].request_number, 1);
    }

    #[test]
    fn lookup_by_id() {
        let mut pool = SnapshotPool::new(4);
        let mut rng = SmallRng::seed_from_u64(5);
        pool.insert(entry(7), 0.4, 0.1, by_request, &mut rng);
        assert!(pool.get(SnapshotId(1007)).is_some());
        assert!(pool.get(SnapshotId(9)).is_none());
    }

    #[test]
    fn nan_weights_do_not_panic() {
        let mut pool = SnapshotPool::new(2);
        let mut rng = SmallRng::seed_from_u64(6);
        for i in 0..3 {
            pool.insert(entry(i), 0.4, 0.1, |_| f64::NAN, &mut rng);
        }
        assert!(pool.len() <= 2);
    }
}

//! Baseline orchestration policies (§5.1 "Orchestration policies").
//!
//! - [`ColdStartPolicy`]: "starting the workload anew each time a worker
//!   is initialized (no checkpoint-restore)";
//! - [`CheckpointAfterFirstPolicy`]: the state of the art — "checkpointing
//!   immediately after the first request is complete, and resuming from
//!   that snapshot hereafter" (Catalyzer, FireWorks, Prebaking, Groundhog,
//!   Lambda SnapStart);
//! - [`CheckpointAfterInitPolicy`]: the after-initialization variant the
//!   paper notes "results in inferior performance as runtimes lazily
//!   initialize many internal data structures" — kept as an ablation.

use crate::policy::{Policy, PolicyKind, StartDecision};
use crate::pool::PoolEntry;
use pronghorn_checkpoint::SnapshotId;
use rand::RngCore;

/// No checkpoint/restore: every worker cold-starts.
#[derive(Debug, Clone, Default)]
pub struct ColdStartPolicy;

impl Policy for ColdStartPolicy {
    fn kind(&self) -> PolicyKind {
        PolicyKind::Cold
    }

    fn on_worker_start(&mut self, _rng: &mut dyn RngCore) -> StartDecision {
        StartDecision::Cold
    }

    fn plan_checkpoint(&mut self, _start: u32, _rng: &mut dyn RngCore) -> Option<u32> {
        None
    }

    fn record_latency(&mut self, _r: u32, _latency_us: f64) {}

    fn on_snapshot_taken(&mut self, entry: PoolEntry, _rng: &mut dyn RngCore) -> Vec<PoolEntry> {
        // A cold policy never asks for snapshots; drop any handed to it.
        vec![entry]
    }

    fn snapshot_request_number(&self, _id: SnapshotId) -> Option<u32> {
        None
    }

    fn pool_len(&self) -> usize {
        0
    }
}

/// Checkpoint once at a fixed request number, restore forever after.
#[derive(Debug, Clone)]
struct FixedPointPolicy {
    kind: PolicyKind,
    /// Request number at which the single snapshot is taken.
    checkpoint_at: u32,
    snapshot: Option<PoolEntry>,
}

impl FixedPointPolicy {
    fn new(kind: PolicyKind, checkpoint_at: u32) -> Self {
        FixedPointPolicy {
            kind,
            checkpoint_at,
            snapshot: None,
        }
    }
}

impl Policy for FixedPointPolicy {
    fn kind(&self) -> PolicyKind {
        self.kind
    }

    fn on_worker_start(&mut self, _rng: &mut dyn RngCore) -> StartDecision {
        match &self.snapshot {
            Some(entry) => StartDecision::Restore(entry.id),
            None => StartDecision::Cold,
        }
    }

    fn plan_checkpoint(&mut self, start: u32, _rng: &mut dyn RngCore) -> Option<u32> {
        // Only the first (cold) worker, and only if the snapshot has not
        // been taken yet.
        if self.snapshot.is_none() && start <= self.checkpoint_at {
            Some(self.checkpoint_at)
        } else {
            None
        }
    }

    fn record_latency(&mut self, _r: u32, _latency_us: f64) {}

    fn on_snapshot_taken(&mut self, entry: PoolEntry, _rng: &mut dyn RngCore) -> Vec<PoolEntry> {
        match &self.snapshot {
            // Keep the first snapshot forever; discard any extras.
            Some(_) => vec![entry],
            None => {
                self.snapshot = Some(entry);
                Vec::new()
            }
        }
    }

    fn snapshot_request_number(&self, id: SnapshotId) -> Option<u32> {
        self.snapshot
            .as_ref()
            .filter(|e| e.id == id)
            .map(|e| e.request_number)
    }

    fn pool_len(&self) -> usize {
        usize::from(self.snapshot.is_some())
    }
}

/// The state-of-the-art policy: snapshot right after request 1.
#[derive(Debug, Clone)]
pub struct CheckpointAfterFirstPolicy(FixedPointPolicy);

impl CheckpointAfterFirstPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        CheckpointAfterFirstPolicy(FixedPointPolicy::new(PolicyKind::AfterFirst, 1))
    }
}

impl Default for CheckpointAfterFirstPolicy {
    fn default() -> Self {
        CheckpointAfterFirstPolicy::new()
    }
}

impl Policy for CheckpointAfterFirstPolicy {
    fn kind(&self) -> PolicyKind {
        self.0.kind()
    }
    fn on_worker_start(&mut self, rng: &mut dyn RngCore) -> StartDecision {
        self.0.on_worker_start(rng)
    }
    fn plan_checkpoint(&mut self, start: u32, rng: &mut dyn RngCore) -> Option<u32> {
        self.0.plan_checkpoint(start, rng)
    }
    fn record_latency(&mut self, r: u32, latency_us: f64) {
        self.0.record_latency(r, latency_us);
    }
    fn on_snapshot_taken(&mut self, entry: PoolEntry, rng: &mut dyn RngCore) -> Vec<PoolEntry> {
        self.0.on_snapshot_taken(entry, rng)
    }
    fn snapshot_request_number(&self, id: SnapshotId) -> Option<u32> {
        self.0.snapshot_request_number(id)
    }
    fn pool_len(&self) -> usize {
        self.0.pool_len()
    }
}

/// The after-initialization variant: snapshot before the first request.
#[derive(Debug, Clone)]
pub struct CheckpointAfterInitPolicy(FixedPointPolicy);

impl CheckpointAfterInitPolicy {
    /// Creates the policy.
    pub fn new() -> Self {
        CheckpointAfterInitPolicy(FixedPointPolicy::new(PolicyKind::AfterInit, 0))
    }
}

impl Default for CheckpointAfterInitPolicy {
    fn default() -> Self {
        CheckpointAfterInitPolicy::new()
    }
}

impl Policy for CheckpointAfterInitPolicy {
    fn kind(&self) -> PolicyKind {
        self.0.kind()
    }
    fn on_worker_start(&mut self, rng: &mut dyn RngCore) -> StartDecision {
        self.0.on_worker_start(rng)
    }
    fn plan_checkpoint(&mut self, start: u32, rng: &mut dyn RngCore) -> Option<u32> {
        self.0.plan_checkpoint(start, rng)
    }
    fn record_latency(&mut self, r: u32, latency_us: f64) {
        self.0.record_latency(r, latency_us);
    }
    fn on_snapshot_taken(&mut self, entry: PoolEntry, rng: &mut dyn RngCore) -> Vec<PoolEntry> {
        self.0.on_snapshot_taken(entry, rng)
    }
    fn snapshot_request_number(&self, id: SnapshotId) -> Option<u32> {
        self.0.snapshot_request_number(id)
    }
    fn pool_len(&self) -> usize {
        self.0.pool_len()
    }
}

/// Constructs any built-in policy by kind, with the given request-centric
/// configuration.
pub fn make_policy(kind: PolicyKind, config: crate::PolicyConfig) -> Box<dyn Policy> {
    match kind {
        PolicyKind::Cold => Box::new(ColdStartPolicy),
        PolicyKind::AfterFirst => Box::new(CheckpointAfterFirstPolicy::new()),
        PolicyKind::AfterInit => Box::new(CheckpointAfterInitPolicy::new()),
        PolicyKind::RequestCentric => Box::new(crate::RequestCentricPolicy::new(config)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn entry(id: u64, r: u32) -> PoolEntry {
        PoolEntry {
            id: SnapshotId(id),
            request_number: r,
            size_bytes: 1,
        }
    }

    #[test]
    fn cold_policy_never_checkpoints_or_restores() {
        let mut p = ColdStartPolicy;
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(p.on_worker_start(&mut rng), StartDecision::Cold);
        assert_eq!(p.plan_checkpoint(0, &mut rng), None);
        assert_eq!(p.pool_len(), 0);
        // Unsolicited snapshots are discarded.
        assert_eq!(p.on_snapshot_taken(entry(1, 0), &mut rng).len(), 1);
    }

    #[test]
    fn after_first_checkpoints_once_at_request_one() {
        let mut p = CheckpointAfterFirstPolicy::new();
        let mut rng = SmallRng::seed_from_u64(2);
        assert_eq!(p.on_worker_start(&mut rng), StartDecision::Cold);
        assert_eq!(p.plan_checkpoint(0, &mut rng), Some(1));
        assert!(p.on_snapshot_taken(entry(9, 1), &mut rng).is_empty());
        // From now on: always restore the single snapshot, never checkpoint.
        assert_eq!(
            p.on_worker_start(&mut rng),
            StartDecision::Restore(SnapshotId(9))
        );
        assert_eq!(p.plan_checkpoint(1, &mut rng), None);
        assert_eq!(p.snapshot_request_number(SnapshotId(9)), Some(1));
        assert_eq!(p.pool_len(), 1);
        // Extra snapshots are rejected back for deletion.
        assert_eq!(p.on_snapshot_taken(entry(10, 2), &mut rng).len(), 1);
        assert_eq!(
            p.on_worker_start(&mut rng),
            StartDecision::Restore(SnapshotId(9))
        );
    }

    #[test]
    fn after_init_checkpoints_before_first_request() {
        let mut p = CheckpointAfterInitPolicy::new();
        let mut rng = SmallRng::seed_from_u64(3);
        assert_eq!(p.plan_checkpoint(0, &mut rng), Some(0));
        p.on_snapshot_taken(entry(5, 0), &mut rng);
        assert_eq!(p.snapshot_request_number(SnapshotId(5)), Some(0));
    }

    #[test]
    fn after_first_does_not_plan_for_warm_workers() {
        let mut p = CheckpointAfterFirstPolicy::new();
        let mut rng = SmallRng::seed_from_u64(4);
        // A worker starting past the checkpoint point gets no plan.
        assert_eq!(p.plan_checkpoint(5, &mut rng), None);
    }

    #[test]
    fn factory_builds_each_kind() {
        for kind in [
            PolicyKind::Cold,
            PolicyKind::AfterFirst,
            PolicyKind::AfterInit,
            PolicyKind::RequestCentric,
        ] {
            let p = make_policy(kind, crate::PolicyConfig::paper_pypy());
            assert_eq!(p.kind(), kind);
        }
    }
}

//! The per-function Orchestrator: policy + Database + Object Store.
//!
//! Figure 2's execution steps live here. At worker start the Orchestrator
//! reads the shared policy state from the Database, asks the policy for a
//! start decision, and downloads the chosen snapshot from the Object Store
//! (steps 3–4 plus the restore path). After each request it folds the
//! end-to-end latency into the Database-persisted weight vector (step 3).
//! When the policy schedules a checkpoint, the Orchestrator uploads the
//! snapshot and records its metadata (steps 5–8), deleting any blobs the
//! pool evicted.
//!
//! Every operation's virtual cost is accumulated into [`OverheadTotals`] —
//! the per-worker-startup / per-request / per-checkpoint decomposition of
//! Figure 7. All of these costs are off the user-visible critical path
//! (§5.3); the platform charges them to worker downtime, not to request
//! latency.

use crate::policy::{Policy, PolicyKind, StartDecision};
use crate::pool::PoolEntry;
use pronghorn_checkpoint::delta::is_delta_frame;
use pronghorn_checkpoint::{CheckpointOutcome, DeltaFrame, Encoder, Snapshot, SnapshotId};
use pronghorn_kv::{types as kvtypes, KvCosts, KvStore};
use pronghorn_restore::{PageMap, PagedSnapshotStore};
use pronghorn_sim::SimDuration;
use pronghorn_store::{
    saturating_accumulate, ChainIndex, ChainStats, DownloadPrice, DownloadRequest, ObjectStore,
    StoragePolicy, StorageStats, StorageTier, StoreError, TransferModel,
};
use rand::RngCore;
use std::collections::BTreeMap;

/// Object-store bucket holding snapshot blobs.
pub const SNAPSHOT_BUCKET: &str = "snapshots";

/// Upper bound on a download's parent walk — chains are consolidated at
/// depth K (≤ 16 in the sweeps), so anything past this is a corrupt or
/// cyclic parent reference and degrades to a cold start.
const MAX_CHAIN_WALK: usize = 64;

/// Accumulated orchestration overheads (Figure 7's three components).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OverheadTotals {
    /// Total worker-startup overhead, µs (decision + state reads +
    /// snapshot download).
    pub startup_us: f64,
    /// Worker startups observed.
    pub startups: u64,
    /// Total per-request overhead, µs (latency recording + weight write).
    pub request_us: f64,
    /// Requests observed.
    pub requests: u64,
    /// Total per-checkpoint overhead, µs (engine downtime + upload +
    /// metadata writes + pool maintenance).
    pub checkpoint_us: f64,
    /// Checkpoints taken.
    pub checkpoints: u64,
    /// Nominal snapshot bytes uploaded (Table 5 network accounting).
    pub nominal_bytes_uploaded: u64,
    /// Nominal snapshot bytes downloaded.
    pub nominal_bytes_downloaded: u64,
    /// Peak nominal bytes pooled (Table 5 storage accounting).
    pub peak_pool_nominal_bytes: u64,
}

impl OverheadTotals {
    /// Mean startup overhead per worker, µs.
    pub fn per_startup_us(&self) -> f64 {
        if self.startups == 0 {
            0.0
        } else {
            self.startup_us / self.startups as f64
        }
    }

    /// Mean per-request overhead, µs.
    pub fn per_request_us(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.request_us / self.requests as f64
        }
    }

    /// Mean per-checkpoint overhead, µs.
    pub fn per_checkpoint_us(&self) -> f64 {
        if self.checkpoints == 0 {
            0.0
        } else {
            self.checkpoint_us / self.checkpoints as f64
        }
    }
}

/// What the platform should do with a new worker.
#[derive(Debug, Clone)]
pub struct WorkerPlan {
    /// Cold start or restore.
    pub start: StartDecision,
    /// The downloaded snapshot when restoring.
    pub snapshot: Option<Snapshot>,
    /// Request number the worker resumes at (0 for cold).
    pub resume_request: u32,
    /// Absolute request number at which to checkpoint, if any.
    pub checkpoint_at: Option<u32>,
    /// Orchestrator-side startup overhead (off the critical path).
    pub startup_overhead: SimDuration,
    /// Nominal bytes the snapshot download actually moved: the full image
    /// for a root, the chain sum of stored forms for a composed restore
    /// (what `RestoreInfo.bytes_transferred` must report). Zero for cold.
    pub download_nominal: u64,
}

/// Per-function orchestrator instance.
///
/// # Examples
///
/// ```
/// use pronghorn_core::{CheckpointAfterFirstPolicy, Orchestrator, StartDecision};
/// use pronghorn_kv::KvStore;
/// use pronghorn_store::ObjectStore;
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
///
/// let mut orch = Orchestrator::new(
///     Box::new(CheckpointAfterFirstPolicy::new()),
///     KvStore::new(),
///     ObjectStore::new(),
///     "dynamic-html",
/// );
/// let mut rng = SmallRng::seed_from_u64(1);
/// let plan = orch.begin_worker(&mut rng);
/// // No snapshot exists yet: the first worker cold-starts and is told to
/// // checkpoint right after its first request.
/// assert_eq!(plan.start, StartDecision::Cold);
/// assert_eq!(plan.checkpoint_at, Some(1));
/// ```
pub struct Orchestrator {
    policy: Box<dyn Policy>,
    kv: KvStore,
    store: ObjectStore,
    function: String,
    kv_costs: KvCosts,
    transfer: TransferModel,
    overheads: OverheadTotals,
    /// Reusable frame-encoding scratch: one allocation amortized over every
    /// snapshot upload instead of a fresh buffer per checkpoint.
    frame_scratch: Encoder,
    /// Nominal size of each pooled snapshot, maintained incrementally on
    /// record/evict so the Table 5 peak is O(pool) bookkeeping rather than
    /// a download-and-decode scan of every blob.
    pool_sizes: BTreeMap<SnapshotId, u64>,
    /// Page-granular publication state; present only when a lazy restore
    /// strategy is active (eager runs never touch the page buckets).
    paging: Option<PagingState>,
    /// Delta-chain lineage index; present only when delta checkpointing
    /// is enabled (the full-snapshot path never consults it).
    chains: Option<ChainIndex>,
    /// Tiered-storage pricing (SSD cache / compression / composed
    /// prefetch); absent when the storage policy is disabled, keeping the
    /// flat-store path byte-identical.
    storage: Option<StorageTier>,
    /// Snapshots recorded into the pool since the last
    /// [`Self::drain_pool_events`] call, with their stored nominal bytes.
    /// Single-node runners never drain (growth is bounded by checkpoint
    /// count); the cluster layer drains after every provision/serve to
    /// mirror blob residency per node.
    recorded_log: Vec<(SnapshotId, u64)>,
    /// Snapshots pool-evicted since the last drain.
    evicted_log: Vec<SnapshotId>,
}

/// Bookkeeping for page-granular snapshot publication.
struct PagingState {
    pages: PagedSnapshotStore,
    /// Published page count per snapshot, for exact unpublish on evict.
    published: BTreeMap<SnapshotId, u32>,
}

/// Result of a (possibly composed) snapshot download.
struct Download {
    snapshot: Snapshot,
    /// Nominal bytes moved: chain sum of stored forms.
    nominal: u64,
    /// Blobs fetched (1 for a plain full snapshot).
    chain_len: usize,
}

impl Orchestrator {
    /// Creates an orchestrator for `function`.
    pub fn new(
        policy: Box<dyn Policy>,
        kv: KvStore,
        store: ObjectStore,
        function: impl Into<String>,
    ) -> Self {
        Orchestrator {
            policy,
            kv,
            store,
            function: function.into(),
            kv_costs: KvCosts::default(),
            transfer: TransferModel::default(),
            overheads: OverheadTotals::default(),
            frame_scratch: Encoder::new(),
            pool_sizes: BTreeMap::new(),
            paging: None,
            chains: None,
            storage: None,
            recorded_log: Vec::new(),
            evicted_log: Vec::new(),
        }
    }

    /// Overrides the Database cost model.
    pub fn with_kv_costs(mut self, costs: KvCosts) -> Self {
        self.kv_costs = costs;
        self
    }

    /// Overrides the Object Store transfer model.
    pub fn with_transfer(mut self, transfer: TransferModel) -> Self {
        self.transfer = transfer;
        self
    }

    /// Enables page-granular snapshot publication at `page_size`: every
    /// recorded snapshot additionally publishes its page map into the
    /// store's page bucket (deduplicated per page), and evictions
    /// unpublish the pages and drop any recorded working-set manifest.
    pub fn with_paging(mut self, page_size: u64) -> Self {
        self.paging = Some(PagingState {
            pages: PagedSnapshotStore::new(self.store.clone(), page_size),
            published: BTreeMap::new(),
        });
        self
    }

    /// The paged store view, when paging is enabled — the platform's
    /// handle for prefetching and demand-faulting pages.
    pub fn paged_store(&self) -> Option<PagedSnapshotStore> {
        self.paging.as_ref().map(|p| p.pages.clone())
    }

    /// Enables delta-chain bookkeeping: recorded snapshots register in a
    /// lineage index, deltas persist only their changed pages, evicted
    /// parents stay pinned while live descendants reference them, and
    /// composed downloads are accounted chain-aware.
    pub fn with_delta_chains(mut self) -> Self {
        self.chains = Some(ChainIndex::new());
        self
    }

    /// Whether delta-chain bookkeeping is enabled.
    pub fn delta_enabled(&self) -> bool {
        self.chains.is_some()
    }

    /// Enables tiered snapshot storage (local-SSD cache, modeled
    /// compression, composed-chain prefetch) per `policy`. A disabled
    /// policy is a no-op, leaving the flat-store path untouched. Apply
    /// after [`Self::with_transfer`] — the tier prices misses on the
    /// orchestrator's object-store link.
    pub fn with_storage(mut self, policy: StoragePolicy) -> Self {
        if policy.enabled() {
            self.storage = Some(StorageTier::new(policy, self.transfer));
        }
        self
    }

    /// The storage tier, when enabled.
    pub fn storage(&self) -> Option<&StorageTier> {
        self.storage.as_ref()
    }

    /// Mutable storage tier, when enabled — the platform's hook for
    /// pricing prefetches and demand faults through the hierarchy.
    pub fn storage_mut(&mut self) -> Option<&mut StorageTier> {
        self.storage.as_mut()
    }

    /// Accumulated storage-hierarchy counters (zeroes when disabled).
    pub fn storage_stats(&self) -> StorageStats {
        self.storage
            .as_ref()
            .map(|t| *t.stats())
            .unwrap_or_default()
    }

    /// The θ-weight the policy has learned for checkpoints taken at
    /// `request_number` (0.0 for policies without exported weights) —
    /// the cache tier's admission priority.
    pub fn theta_weight(&self, request_number: u32) -> f64 {
        self.policy
            .export_weights()
            .and_then(|w| w.get(request_number as usize).copied())
            .unwrap_or(0.0)
    }

    /// The θ-weight of pooled snapshot `id` (0.0 when untracked).
    pub fn snapshot_weight(&self, id: SnapshotId) -> f64 {
        self.policy
            .snapshot_request_number(id)
            .map(|r| self.theta_weight(r))
            .unwrap_or(0.0)
    }

    /// Whether `id` is still a valid delta parent: pooled (or at least
    /// tracked) and not evicted. A worker restored from `id` must fall
    /// back to a full checkpoint when this turns false.
    pub fn chain_live(&self, id: SnapshotId) -> bool {
        self.chains.as_ref().is_some_and(|c| c.is_live(id.0))
    }

    /// Delta-chain depth of `id` (0 for a root), when tracked.
    pub fn chain_depth(&self, id: SnapshotId) -> Option<u32> {
        self.chains.as_ref().and_then(|c| c.depth(id.0))
    }

    /// Records that a lineage hit its depth bound and was rebased onto a
    /// fresh full snapshot instead of extending the chain.
    pub fn note_consolidation(&mut self) {
        if let Some(chains) = &mut self.chains {
            chains.note_consolidation();
        }
    }

    /// The accumulated chain counters (zeroes when delta is disabled).
    pub fn chain_stats(&self) -> ChainStats {
        self.chains.as_ref().map(|c| *c.stats()).unwrap_or_default()
    }

    /// Tells the policy a working-set manifest now exists for `id` (the
    /// recording restore persisted it): selection may stop charging that
    /// snapshot the unrecorded-restore penalty.
    pub fn note_manifest_recorded(&mut self, id: SnapshotId) {
        self.policy.note_prefetch_ready(id);
    }

    /// The policy being orchestrated.
    pub fn policy(&self) -> &dyn Policy {
        self.policy.as_ref()
    }

    /// Which built-in policy is running.
    pub fn policy_kind(&self) -> PolicyKind {
        self.policy.kind()
    }

    /// Accumulated overheads.
    pub fn overheads(&self) -> &OverheadTotals {
        &self.overheads
    }

    fn theta_key(&self) -> String {
        format!("fn/{}/theta", self.function)
    }

    fn blob_key(&self, id: SnapshotId) -> String {
        format!("{}/{id}", self.function)
    }

    /// Fixed compute cost of the start decision, per policy kind. The
    /// request-centric policy reads the weight vector and pool metadata
    /// and evaluates a softmax; the baselines make a trivial choice —
    /// Figure 7 reports the resulting ≤2.5× startup-overhead gap.
    fn decision_cost_us(&self) -> f64 {
        match self.policy.kind() {
            PolicyKind::Cold => 2_000.0,
            PolicyKind::AfterFirst | PolicyKind::AfterInit => 9_000.0,
            PolicyKind::RequestCentric => 16_000.0,
        }
    }

    /// Worker start: Figure 2 steps 3–4 plus the snapshot download.
    pub fn begin_worker(&mut self, rng: &mut dyn RngCore) -> WorkerPlan {
        let mut overhead_us = self.decision_cost_us();

        // Refresh policy knowledge from the Database (step 4). Other
        // workers may have updated it concurrently.
        if let Some(stored) = self.kv.get(&self.theta_key()) {
            overhead_us += self.kv_costs.read_us;
            if let Ok(slots) = kvtypes::decode_f64_vec(&stored.value) {
                self.policy.import_weights(&slots);
            }
        } else {
            overhead_us += self.kv_costs.read_us;
        }

        let start = self.policy.on_worker_start(rng);
        // Blob transfer is provisioning work (charged to the worker plan
        // and the Table 5 byte accounting), not orchestrator decision
        // overhead — Figure 7's startup component is the decision cost.
        let mut transfer_us = 0.0;
        let mut download_nominal = 0u64;
        let (snapshot, resume_request) = match start {
            StartDecision::Cold => (None, 0),
            StartDecision::Restore(id) => match self.download_snapshot(id) {
                Ok(dl) => {
                    let price = self.price_download(id, &dl);
                    transfer_us += price.transfer_us;
                    saturating_accumulate(
                        "nominal_bytes_downloaded",
                        &mut self.overheads.nominal_bytes_downloaded,
                        price.accounted_nominal,
                    );
                    download_nominal = price.accounted_nominal;
                    if dl.chain_len > 1 {
                        if let Some(chains) = &mut self.chains {
                            chains.note_composed_restore(price.accounted_nominal);
                        }
                    }
                    let resume = dl.snapshot.meta.request_number;
                    (Some(dl.snapshot), resume)
                }
                // A missing/corrupt blob degrades to a cold start rather
                // than failing the worker.
                Err(_) => (None, 0),
            },
        };
        let start = if snapshot.is_some() {
            start
        } else {
            StartDecision::Cold
        };

        let checkpoint_at = self.policy.plan_checkpoint(resume_request, rng);

        self.overheads.startup_us += overhead_us;
        self.overheads.startups += 1;

        WorkerPlan {
            start,
            snapshot,
            resume_request,
            checkpoint_at,
            startup_overhead: SimDuration::from_micros_f64(overhead_us + transfer_us),
            download_nominal,
        }
    }

    fn download_snapshot(&self, id: SnapshotId) -> Result<Download, StoreError> {
        // Walk parent references child-first until a full frame (the
        // chain root) is found; a full snapshot is a chain of length 1.
        let mut frames: Vec<DeltaFrame> = Vec::new();
        let mut cursor = id;
        let mut nominal = 0u64;
        loop {
            let chunks = self
                .store
                .get_chunks(SNAPSHOT_BUCKET, &self.blob_key(cursor))?;
            let root = match chunks.as_slice() {
                [head, payload, tail] if is_delta_frame(head) => {
                    let frame = DeltaFrame::from_chunks(head, payload, tail)
                        .map_err(|_| StoreError::NotFound)?;
                    nominal += frame.delta.dirty_nominal_bytes;
                    cursor = frame.delta.parent;
                    frames.push(frame);
                    if frames.len() > MAX_CHAIN_WALK {
                        return Err(StoreError::NotFound);
                    }
                    continue;
                }
                // Chunked upload: parse the frame without reassembling it;
                // the payload Bytes still shares the store's buffer.
                [head, payload, tail] => {
                    Snapshot::from_chunks(head, payload, tail).map_err(|_| StoreError::NotFound)?
                }
                [whole] => Snapshot::from_shared(whole).map_err(|_| StoreError::NotFound)?,
                _ => return Err(StoreError::NotFound),
            };
            nominal += root.nominal_size;
            let chain_len = frames.len() + 1;
            // Compose root-first: `frames` is child-first, so apply in
            // reverse. Each step verifies the composed payload hash.
            let mut snapshot = root;
            for frame in frames.iter().rev() {
                snapshot = frame
                    .compose(&snapshot.payload)
                    .map_err(|_| StoreError::NotFound)?;
            }
            return Ok(Download {
                snapshot,
                nominal,
                chain_len,
            });
        }
    }

    /// Prices the provisioning-path transfer of a downloaded snapshot.
    /// Without a storage tier this is exactly the legacy serial chain
    /// walk; with one, the tier routes the read through SSD/compression
    /// and — when a working-set manifest exists under the composed-
    /// prefetch policy — fetches only the composed chain's touched pages
    /// in one batched request.
    fn price_download(&mut self, id: SnapshotId, dl: &Download) -> DownloadPrice {
        let Some(composed_wanted) = self.storage.as_ref().map(|t| t.policy().composed_prefetch)
        else {
            return DownloadPrice {
                transfer_us: self
                    .transfer
                    .chained_transfer_time(dl.nominal, dl.chain_len)
                    .as_micros() as f64,
                accounted_nominal: dl.nominal,
                cache_hit: false,
                composed: false,
            };
        };
        let weight = self.snapshot_weight(id);
        let working_set = if composed_wanted {
            self.working_set_of(id, &dl.snapshot)
        } else {
            None
        };
        // Pin the chain under the leaf: a composed image on SSD is only
        // restorable while its ancestor deltas survive.
        let ancestors: Vec<u64> = self
            .chains
            .as_ref()
            .map(|c| c.chain_to_root(id.0).into_iter().skip(1).collect())
            .unwrap_or_default();
        let Some(tier) = self.storage.as_mut() else {
            // Unreachable in practice (`storage` was `Some` above and
            // nothing in between clears it), but priced legacy rather
            // than panicking on the policy decision path.
            return DownloadPrice {
                transfer_us: self
                    .transfer
                    .chained_transfer_time(dl.nominal, dl.chain_len)
                    .as_micros() as f64,
                accounted_nominal: dl.nominal,
                cache_hit: false,
                composed: false,
            };
        };
        tier.price_restore_download(DownloadRequest {
            id: id.0,
            chain_nominal: dl.nominal,
            chain_len: dl.chain_len,
            seed: dl.snapshot.payload_hash(),
            weight,
            working_set,
            ancestors: &ancestors,
        })
    }

    /// The recorded working set of `id` as `(nominal_bytes, pages)`, when
    /// paging is active and a manifest has been persisted — the composed
    /// chain's per-page newest-writer resolution is already baked into
    /// the leaf's page map, so sizing the touched pages against it prices
    /// the composed fetch without walking the chain.
    fn working_set_of(&self, id: SnapshotId, snapshot: &Snapshot) -> Option<(u64, usize)> {
        let paging = self.paging.as_ref()?;
        let manifest = paging.pages.load_manifest(&self.function, id.0)?;
        if manifest.is_empty() {
            return None;
        }
        let map = PageMap::for_snapshot(
            &self.function,
            snapshot.payload_hash(),
            snapshot.nominal_size,
            paging.pages.page_size(),
        );
        let pages = manifest.to_sorted_vec();
        Some((map.bytes_for(&pages), pages.len()))
    }

    /// Request completion: Figure 2 step 3 — fold the end-to-end latency
    /// into the policy and persist the updated weight vector.
    pub fn complete_request(&mut self, request_number: u32, latency_us: f64) -> SimDuration {
        self.policy.record_latency(request_number, latency_us);
        // One Database round trip for either policy family; the
        // request-centric policy additionally folds the sample into the
        // weight vector (a few array operations, §5.3: "some extra array
        // read-write operations, whose computation time is outweighed by
        // network latency").
        let mut overhead_us = 200.0 + self.kv_costs.write_us;
        if self.policy.persists_weights() {
            let key = self.theta_key();
            // Delta path: a single latency sample touches one θ slot, so
            // persist 8 bytes at a fixed offset instead of re-encoding all
            // W slots. The virtual cost charged is the same round trip —
            // only host-side work shrinks.
            let patched = match self.policy.take_weight_delta() {
                Some((r, v)) => self
                    .kv
                    .patch(&key, |buf| kvtypes::patch_f64_slot(buf, r as usize, v)),
                // Sample was ignored (out of range / invalid): the stored
                // vector is already current if it exists at all.
                None => self.kv.contains(&key),
            };
            if !patched {
                // First write for this function, or a stored vector of the
                // wrong shape: fall back to the full encode.
                if let Some(slots) = self.policy.export_weights() {
                    self.kv.put(&key, kvtypes::encode_f64_vec(&slots));
                }
            }
            overhead_us += 150.0;
        }
        self.overheads.request_us += overhead_us;
        self.overheads.requests += 1;
        SimDuration::from_micros_f64(overhead_us)
    }

    /// Snapshot recording: Figure 2 steps 7–8 — upload the blob, register
    /// metadata, and delete whatever the pool evicted. `engine_downtime`
    /// is the checkpoint cost reported by the Checkpoint Engine.
    pub fn record_snapshot(
        &mut self,
        snapshot: &Snapshot,
        engine_downtime: SimDuration,
        rng: &mut dyn RngCore,
    ) -> SimDuration {
        self.record_snapshot_with(snapshot, &CheckpointOutcome::Full, engine_downtime, rng)
    }

    /// Like [`Self::record_snapshot`], but persisting what the engine's
    /// [`CheckpointOutcome`] says to store: the whole payload for a full
    /// snapshot, or only the changed pages plus a parent reference for a
    /// delta. Deltas upload (and charge transfer on) their dirty nominal
    /// bytes; the pool entry handed to the policy still carries the full
    /// image size, so eviction decisions are unchanged.
    pub fn record_snapshot_with(
        &mut self,
        snapshot: &Snapshot,
        outcome: &CheckpointOutcome,
        engine_downtime: SimDuration,
        rng: &mut dyn RngCore,
    ) -> SimDuration {
        let mut overhead_us = engine_downtime.as_micros() as f64;

        // A delta outcome is only persistable while its parent is tracked
        // and un-evicted; otherwise fall back to storing the full frame
        // (the snapshot itself is always complete in memory).
        let delta = match outcome {
            CheckpointOutcome::Delta(d)
                if self.chains.as_ref().is_some_and(|c| c.is_live(d.parent.0)) =>
            {
                Some(d)
            }
            _ => None,
        };

        // The nominal bytes this checkpoint's *stored form* occupies and
        // moves over the network: dirty pages for a delta, the full image
        // for a root.
        let stored_nominal = match delta {
            Some(d) => d.dirty_nominal_bytes.min(snapshot.nominal_size),
            None => snapshot.nominal_size,
        };

        // Frame into the reusable scratch encoder and upload as chunks, so
        // byte-identical payloads (twin lineages) dedup in the store.
        let upload_ok = match delta {
            Some(d) => {
                let frame = d.to_frame_with(snapshot, &mut self.frame_scratch);
                let [head, payload, tail] = frame.chunks();
                self.store
                    .put_chunked(
                        SNAPSHOT_BUCKET,
                        &self.blob_key(snapshot.id),
                        head,
                        payload,
                        tail,
                    )
                    .is_ok()
            }
            None => {
                let frame = snapshot.to_frame_with(&mut self.frame_scratch);
                let [head, payload, tail] = frame.chunks();
                self.store
                    .put_chunked(
                        SNAPSHOT_BUCKET,
                        &self.blob_key(snapshot.id),
                        head,
                        payload,
                        tail,
                    )
                    .is_ok()
            }
        };
        overhead_us += match &mut self.storage {
            // Tiered path: compression CPU + wire bytes over the link,
            // write-through admission to the local SSD. Nominal upload
            // accounting below is unchanged either way.
            Some(tier) => {
                let weight = self
                    .policy
                    .export_weights()
                    .and_then(|w| w.get(snapshot.meta.request_number as usize).copied())
                    .unwrap_or(0.0);
                tier.price_upload(
                    snapshot.id.0,
                    stored_nominal,
                    snapshot.payload_hash(),
                    weight,
                )
            }
            None => self.transfer.transfer_time(stored_nominal).as_micros() as f64,
        };
        saturating_accumulate(
            "nominal_bytes_uploaded",
            &mut self.overheads.nominal_bytes_uploaded,
            stored_nominal,
        );

        if upload_ok {
            if let Some(chains) = &mut self.chains {
                let registered = match delta {
                    Some(d) => chains
                        .insert_delta(snapshot.id.0, d.parent.0, stored_nominal)
                        .is_some(),
                    None => false,
                };
                if !registered {
                    chains.insert_root(snapshot.id.0, stored_nominal);
                }
            }
            self.pool_sizes.insert(snapshot.id, stored_nominal);
            self.recorded_log.push((snapshot.id, stored_nominal));
            if let Some(paging) = &mut self.paging {
                // Publish the page map alongside the blob. Page descriptors
                // are content-addressed, so base-region pages dedup across
                // snapshots and twin heaps share blobs (one extra metadata
                // write's worth of orchestration cost).
                let map = PageMap::for_snapshot(
                    &self.function,
                    snapshot.payload_hash(),
                    snapshot.nominal_size,
                    paging.pages.page_size(),
                );
                if let Ok(count) = paging.pages.publish(&self.function, snapshot.id.0, &map) {
                    paging.published.insert(snapshot.id, count);
                    overhead_us += self.kv_costs.write_us;
                }
            }
            let evicted = self.policy.on_snapshot_taken(
                PoolEntry {
                    id: snapshot.id,
                    request_number: snapshot.meta.request_number,
                    size_bytes: snapshot.nominal_size,
                },
                rng,
            );
            // Pool metadata write (step 8).
            overhead_us += self.kv_costs.write_us;
            for entry in evicted {
                // Chain-aware release: the blob may only be deleted
                // when no live delta child references it; the index
                // returns what is actually free now (possibly pinned
                // ancestors this eviction was the last holdout for).
                let freed: Vec<SnapshotId> = match &mut self.chains {
                    Some(chains) => chains
                        .evict(entry.id.0)
                        .into_iter()
                        .map(SnapshotId)
                        .collect(),
                    None => vec![entry.id],
                };
                for fid in freed {
                    let _ = self.store.delete(SNAPSHOT_BUCKET, &self.blob_key(fid));
                    // SSD residency must not outlive the backing blob.
                    if let Some(tier) = &mut self.storage {
                        tier.release(fid.0);
                    }
                }
                self.pool_sizes.remove(&entry.id);
                self.evicted_log.push(entry.id);
                if let Some(paging) = &mut self.paging {
                    if let Some(count) = paging.published.remove(&entry.id) {
                        paging.pages.unpublish(&self.function, entry.id.0, count);
                    }
                    paging.pages.delete_manifest(&self.function, entry.id.0);
                }
                overhead_us += self.kv_costs.write_us;
            }
        }

        // Track the peak nominal footprint of the pool (Table 5).
        let pooled: u64 = self.pool_nominal_bytes();
        self.overheads.peak_pool_nominal_bytes = self.overheads.peak_pool_nominal_bytes.max(pooled);

        self.overheads.checkpoint_us += overhead_us;
        self.overheads.checkpoints += 1;
        SimDuration::from_micros_f64(overhead_us)
    }

    /// Current nominal bytes held by pooled snapshots — stored forms
    /// (dirty bytes for deltas), plus any evicted-but-pinned ancestors
    /// whose blobs the store genuinely still holds for live descendants.
    ///
    /// Maintained incrementally from record/evict events; the previous
    /// implementation listed the bucket and downloaded + decoded every
    /// blob on each checkpoint just to sum sizes.
    pub fn pool_nominal_bytes(&self) -> u64 {
        let pooled: u64 = self.pool_sizes.values().sum();
        pooled + self.chains.as_ref().map_or(0, |c| c.pinned_nominal_bytes())
    }

    /// Drains the pool-event logs accumulated since the last call:
    /// snapshots recorded into the pool (with the nominal bytes of their
    /// stored form) and snapshots evicted from it, each in occurrence
    /// order. The cluster layer consumes these to keep per-node blob
    /// residency in sync with pool membership; single-node runners never
    /// call it.
    pub fn drain_pool_events(&mut self) -> (Vec<(SnapshotId, u64)>, Vec<SnapshotId>) {
        (
            std::mem::take(&mut self.recorded_log),
            std::mem::take(&mut self.evicted_log),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::CheckpointAfterFirstPolicy;
    use crate::config::PolicyConfig;
    use crate::request_centric::RequestCentricPolicy;
    use bytes::Bytes;
    use pronghorn_checkpoint::{SnapshotDelta, SnapshotMeta};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn snapshot(request_number: u32, tag: u8) -> Snapshot {
        Snapshot::new(
            SnapshotMeta {
                function: "f".into(),
                request_number,
                runtime: "jvm".into(),
            },
            Bytes::from(vec![tag; 8]),
            12 * 1024 * 1024,
        )
    }

    fn orchestrator(policy: Box<dyn Policy>) -> Orchestrator {
        Orchestrator::new(policy, KvStore::new(), ObjectStore::new(), "f")
    }

    #[test]
    fn first_worker_cold_starts_and_plans() {
        let mut orch = orchestrator(Box::new(CheckpointAfterFirstPolicy::new()));
        let mut rng = SmallRng::seed_from_u64(1);
        let plan = orch.begin_worker(&mut rng);
        assert_eq!(plan.start, StartDecision::Cold);
        assert_eq!(plan.resume_request, 0);
        assert_eq!(plan.checkpoint_at, Some(1));
        assert!(plan.startup_overhead > SimDuration::ZERO);
    }

    #[test]
    fn snapshot_round_trips_through_store() {
        let mut orch = orchestrator(Box::new(CheckpointAfterFirstPolicy::new()));
        let mut rng = SmallRng::seed_from_u64(2);
        orch.begin_worker(&mut rng);
        let snap = snapshot(1, 7);
        let overhead = orch.record_snapshot(&snap, SimDuration::from_millis(65), &mut rng);
        assert!(overhead >= SimDuration::from_millis(65));
        // Next worker restores it, resuming at request 1.
        let plan = orch.begin_worker(&mut rng);
        assert_eq!(plan.start, StartDecision::Restore(snap.id));
        assert_eq!(plan.resume_request, 1);
        assert_eq!(plan.snapshot.as_ref().unwrap().id, snap.id);
        assert_eq!(plan.checkpoint_at, None);
    }

    #[test]
    fn missing_blob_degrades_to_cold_start() {
        let mut orch = orchestrator(Box::new(CheckpointAfterFirstPolicy::new()));
        let mut rng = SmallRng::seed_from_u64(3);
        orch.begin_worker(&mut rng);
        let snap = snapshot(1, 7);
        orch.record_snapshot(&snap, SimDuration::from_millis(65), &mut rng);
        // Sabotage: delete the blob behind the policy's back.
        orch.store
            .delete(SNAPSHOT_BUCKET, &format!("f/{}", snap.id))
            .unwrap();
        let plan = orch.begin_worker(&mut rng);
        assert_eq!(plan.start, StartDecision::Cold);
        assert!(plan.snapshot.is_none());
        assert_eq!(plan.resume_request, 0);
    }

    #[test]
    fn weights_persist_through_the_database() {
        let kv = KvStore::new();
        let store = ObjectStore::new();
        let config = PolicyConfig::paper_pypy();
        let mut orch = Orchestrator::new(
            Box::new(RequestCentricPolicy::new(config)),
            kv.clone(),
            store.clone(),
            "f",
        );
        let mut rng = SmallRng::seed_from_u64(4);
        orch.begin_worker(&mut rng);
        orch.complete_request(0, 50_000.0);
        // A second orchestrator (another worker's view) sees the update.
        let mut orch2 =
            Orchestrator::new(Box::new(RequestCentricPolicy::new(config)), kv, store, "f");
        orch2.begin_worker(&mut rng);
        let weights = orch2.policy().export_weights().unwrap();
        assert_eq!(weights[0], 50_000.0);
    }

    #[test]
    fn delta_persistence_matches_full_reencode() {
        let kv = KvStore::new();
        let config = PolicyConfig::paper_pypy();
        let mut orch = Orchestrator::new(
            Box::new(RequestCentricPolicy::new(config)),
            kv.clone(),
            ObjectStore::new(),
            "f",
        );
        let mut rng = SmallRng::seed_from_u64(21);
        orch.begin_worker(&mut rng);
        // A mix of fresh slots, EWMA re-blends, ignored out-of-range and
        // invalid samples: after every request the persisted bytes must be
        // exactly what a full re-encode of the live weights would produce.
        let samples = [
            (0, 50_000.0),
            (3, 20_000.0),
            (0, 10_000.0),
            (9_999, 5_000.0),
            (2, f64::NAN),
            (7, 42_000.0),
        ];
        for (r, lat) in samples {
            orch.complete_request(r, lat);
            let stored = kv.get("fn/f/theta").unwrap().value;
            let full = kvtypes::encode_f64_vec(&orch.policy().export_weights().unwrap());
            assert_eq!(stored, full, "divergence after sample ({r}, {lat})");
        }
    }

    #[test]
    fn twin_snapshots_dedup_in_the_store() {
        let mut orch = orchestrator(Box::new(CheckpointAfterFirstPolicy::new()));
        let mut rng = SmallRng::seed_from_u64(22);
        orch.begin_worker(&mut rng);
        // Two snapshots with byte-identical payloads (twin lineages) but
        // distinct nonces: the ids differ while the payload blob is stored
        // once.
        let meta = |r| SnapshotMeta {
            function: "f".into(),
            request_number: r,
            runtime: "jvm".into(),
        };
        let payload = Bytes::from(vec![7u8; 8]);
        let a = Snapshot::with_nonce(meta(1), payload.clone(), 12 << 20, 1);
        let b = Snapshot::with_nonce(meta(1), payload, 12 << 20, 2);
        assert_ne!(a.id, b.id, "nonce must keep twin ids distinct");
        orch.record_snapshot(&a, SimDuration::from_millis(65), &mut rng);
        orch.record_snapshot(&b, SimDuration::from_millis(65), &mut rng);
        let stats = orch.store.stats();
        assert!(stats.bytes_deduped > 0, "twin payload was not deduped");
        // The after-first policy pools exactly one snapshot, so one twin
        // was evicted — dropping a reference to the shared blob. The §7.2
        // guard means the surviving twin must still download intact.
        assert_eq!(stats.objects, 1);
        let plan = orch.begin_worker(&mut rng);
        assert!(matches!(plan.start, StartDecision::Restore(id) if id == a.id || id == b.id));
        assert_eq!(plan.snapshot.unwrap().payload, a.payload);
    }

    #[test]
    fn eviction_deletes_blobs_from_store() {
        let config = PolicyConfig::paper_pypy().with_capacity(2).with_beta(4);
        let store = ObjectStore::new();
        let mut orch = Orchestrator::new(
            Box::new(RequestCentricPolicy::new(config)),
            KvStore::new(),
            store.clone(),
            "f",
        );
        let mut rng = SmallRng::seed_from_u64(5);
        for i in 0..6 {
            let snap = snapshot(i, i as u8);
            orch.record_snapshot(&snap, SimDuration::from_millis(70), &mut rng);
        }
        assert!(
            store.stats().objects <= 2,
            "{} blobs",
            store.stats().objects
        );
        assert_eq!(orch.policy().pool_len(), store.stats().objects as usize);
    }

    #[test]
    fn paging_publishes_and_evicts_pages_and_manifests() {
        use pronghorn_restore::{WorkingSetManifest, DEFAULT_PAGE_SIZE, PAGES_BUCKET};
        let config = PolicyConfig::paper_pypy().with_capacity(2).with_beta(4);
        let store = ObjectStore::new();
        let mut orch = Orchestrator::new(
            Box::new(RequestCentricPolicy::new(config)),
            KvStore::new(),
            store.clone(),
            "f",
        )
        .with_paging(DEFAULT_PAGE_SIZE);
        let paged = orch.paged_store().unwrap();
        let mut rng = SmallRng::seed_from_u64(31);
        let first = snapshot(0, 0);
        orch.record_snapshot(&first, SimDuration::from_millis(70), &mut rng);
        // 12 MiB at 256 KiB pages = 48 page objects.
        assert_eq!(store.list(PAGES_BUCKET).len(), 48);
        // Record a manifest for the first snapshot, then force evictions.
        let mut manifest = WorkingSetManifest::new("f", first.id.0, DEFAULT_PAGE_SIZE);
        manifest.record_all(&[0, 1, 5]);
        paged.store_manifest(&manifest).unwrap();
        orch.note_manifest_recorded(first.id);
        for i in 1..8 {
            let snap = snapshot(i, i as u8);
            orch.record_snapshot(&snap, SimDuration::from_millis(70), &mut rng);
        }
        // Pages of evicted snapshots are unpublished; at most two
        // snapshots' worth of page objects remain.
        assert!(store.list(PAGES_BUCKET).len() <= 2 * 48);
        // If the first snapshot was evicted, its manifest went with it.
        if orch.policy().snapshot_request_number(first.id).is_none() {
            assert!(paged.load_manifest("f", first.id.0).is_none());
        }
    }

    #[test]
    fn eager_orchestrator_never_touches_page_buckets() {
        use pronghorn_restore::{MANIFESTS_BUCKET, PAGES_BUCKET};
        let store = ObjectStore::new();
        let mut orch = Orchestrator::new(
            Box::new(CheckpointAfterFirstPolicy::new()),
            KvStore::new(),
            store.clone(),
            "f",
        );
        assert!(orch.paged_store().is_none());
        let mut rng = SmallRng::seed_from_u64(32);
        orch.record_snapshot(&snapshot(1, 1), SimDuration::from_millis(65), &mut rng);
        assert!(store.list(PAGES_BUCKET).is_empty());
        assert!(store.list(MANIFESTS_BUCKET).is_empty());
    }

    /// Pools only the newest snapshot, evicting the previous one — the
    /// shape that exercises parent pinning (a delta child evicting the
    /// root it still references).
    struct LatestOnlyPolicy {
        pooled: Option<PoolEntry>,
    }

    impl Policy for LatestOnlyPolicy {
        fn kind(&self) -> PolicyKind {
            PolicyKind::AfterFirst
        }
        fn on_worker_start(&mut self, _rng: &mut dyn RngCore) -> StartDecision {
            match &self.pooled {
                Some(entry) => StartDecision::Restore(entry.id),
                None => StartDecision::Cold,
            }
        }
        fn plan_checkpoint(&mut self, _start_request: u32, _rng: &mut dyn RngCore) -> Option<u32> {
            None
        }
        fn record_latency(&mut self, _request_number: u32, _latency_us: f64) {}
        fn on_snapshot_taken(
            &mut self,
            entry: PoolEntry,
            _rng: &mut dyn RngCore,
        ) -> Vec<PoolEntry> {
            self.pooled.replace(entry).into_iter().collect()
        }
        fn snapshot_request_number(&self, id: SnapshotId) -> Option<u32> {
            self.pooled
                .as_ref()
                .filter(|e| e.id == id)
                .map(|e| e.request_number)
        }
        fn pool_len(&self) -> usize {
            usize::from(self.pooled.is_some())
        }
    }

    fn delta_between(parent: &Snapshot, child: &Snapshot, dirty_nominal: u64) -> SnapshotDelta {
        use pronghorn_checkpoint::delta::{diff_payload, PAYLOAD_DIFF_PAGE_SIZE};
        SnapshotDelta {
            parent: parent.id,
            parent_payload_hash: parent.payload_hash(),
            page_size: PAYLOAD_DIFF_PAGE_SIZE,
            total_len: child.payload.len() as u64,
            pages: diff_payload(&parent.payload, &child.payload, PAYLOAD_DIFF_PAGE_SIZE),
            dirty_nominal_bytes: dirty_nominal,
        }
    }

    #[test]
    fn delta_record_pins_evicted_parent_and_composes_on_restore() {
        let mut orch =
            orchestrator(Box::new(LatestOnlyPolicy { pooled: None })).with_delta_chains();
        let mut rng = SmallRng::seed_from_u64(41);
        orch.begin_worker(&mut rng);
        let root = snapshot(1, 7);
        orch.record_snapshot(&root, SimDuration::from_millis(65), &mut rng);
        assert_eq!(orch.chain_depth(root.id), Some(0));
        // Child of the root: same payload with one byte flipped.
        let mut child_bytes = root.payload.to_vec();
        child_bytes[3] ^= 0xff;
        let child = Snapshot::with_nonce(
            SnapshotMeta {
                function: "f".into(),
                request_number: 2,
                runtime: "jvm".into(),
            },
            Bytes::from(child_bytes),
            12 * 1024 * 1024,
            9,
        );
        let dirty = 2 * 1024 * 1024;
        let delta = delta_between(&root, &child, dirty);
        // The after-first pool holds one snapshot: recording the child
        // evicts the root — which must stay pinned, not deleted, because
        // the child's delta references it.
        orch.record_snapshot_with(
            &child,
            &CheckpointOutcome::Delta(delta),
            SimDuration::from_millis(30),
            &mut rng,
        );
        assert_eq!(orch.chain_depth(child.id), Some(1));
        let stats = orch.chain_stats();
        assert_eq!(stats.roots, 1);
        assert_eq!(stats.deltas, 1);
        assert_eq!(stats.deferred_releases, 1, "root release must defer");
        assert_eq!(stats.delta_nominal_bytes, dirty);
        // Upload accounting: full image once, then only the dirty bytes.
        assert_eq!(
            orch.overheads().nominal_bytes_uploaded,
            root.nominal_size + dirty
        );
        // Pinned root still counts toward pool storage.
        assert_eq!(orch.pool_nominal_bytes(), dirty + root.nominal_size);
        // The next worker restores the child by composing the chain.
        let plan = orch.begin_worker(&mut rng);
        assert_eq!(plan.start, StartDecision::Restore(child.id));
        let restored = plan.snapshot.unwrap();
        assert_eq!(restored.payload, child.payload);
        assert_eq!(restored.id, child.id);
        assert_eq!(plan.download_nominal, root.nominal_size + dirty);
        let stats = orch.chain_stats();
        assert_eq!(stats.composed_restores, 1);
        assert_eq!(stats.composed_nominal_downloaded, root.nominal_size + dirty);
    }

    #[test]
    fn delta_outcome_with_dead_parent_falls_back_to_full() {
        let mut orch =
            orchestrator(Box::new(CheckpointAfterFirstPolicy::new())).with_delta_chains();
        let mut rng = SmallRng::seed_from_u64(42);
        orch.begin_worker(&mut rng);
        let root = snapshot(1, 7);
        // Root was never recorded: its id is unknown to the chain index.
        let mut child_bytes = root.payload.to_vec();
        child_bytes[0] ^= 1;
        let child = Snapshot::new(
            SnapshotMeta {
                function: "f".into(),
                request_number: 2,
                runtime: "jvm".into(),
            },
            Bytes::from(child_bytes),
            12 * 1024 * 1024,
        );
        let delta = delta_between(&root, &child, 1024);
        orch.record_snapshot_with(
            &child,
            &CheckpointOutcome::Delta(delta),
            SimDuration::from_millis(30),
            &mut rng,
        );
        // Stored as a full root: full nominal uploaded, restorable alone.
        assert_eq!(orch.chain_depth(child.id), Some(0));
        assert_eq!(orch.overheads().nominal_bytes_uploaded, child.nominal_size);
        let plan = orch.begin_worker(&mut rng);
        assert_eq!(plan.start, StartDecision::Restore(child.id));
        assert_eq!(plan.snapshot.unwrap().payload, child.payload);
        assert_eq!(plan.download_nominal, child.nominal_size);
    }

    #[test]
    fn full_path_accounting_is_unchanged_by_delta_bookkeeping() {
        // Identical seeds, with and without chains: recording only full
        // snapshots must produce identical overheads and plans.
        let run = |chains: bool| {
            let orch = orchestrator(Box::new(CheckpointAfterFirstPolicy::new()));
            let mut orch = if chains {
                orch.with_delta_chains()
            } else {
                orch
            };
            let mut rng = SmallRng::seed_from_u64(43);
            orch.begin_worker(&mut rng);
            orch.record_snapshot(&snapshot(1, 1), SimDuration::from_millis(65), &mut rng);
            orch.record_snapshot(&snapshot(2, 2), SimDuration::from_millis(65), &mut rng);
            let plan = orch.begin_worker(&mut rng);
            (
                *orch.overheads(),
                plan.download_nominal,
                plan.startup_overhead,
            )
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn overheads_decompose_by_operation() {
        let mut orch = orchestrator(Box::new(CheckpointAfterFirstPolicy::new()));
        let mut rng = SmallRng::seed_from_u64(6);
        orch.begin_worker(&mut rng);
        orch.complete_request(0, 10_000.0);
        orch.complete_request(1, 9_000.0);
        orch.record_snapshot(&snapshot(1, 1), SimDuration::from_millis(65), &mut rng);
        let o = orch.overheads();
        assert_eq!(o.startups, 1);
        assert_eq!(o.requests, 2);
        assert_eq!(o.checkpoints, 1);
        assert!(o.per_startup_us() > 0.0);
        assert!(o.per_request_us() > 0.0);
        assert!(o.per_checkpoint_us() >= 65_000.0);
        assert_eq!(o.nominal_bytes_uploaded, 12 * 1024 * 1024);
    }

    #[test]
    fn cost_models_scale_reported_overheads() {
        let run_with = |kv_costs: KvCosts| -> f64 {
            let mut orch = Orchestrator::new(
                Box::new(CheckpointAfterFirstPolicy::new()),
                KvStore::new(),
                ObjectStore::new(),
                "f",
            )
            .with_kv_costs(kv_costs);
            let mut rng = SmallRng::seed_from_u64(11);
            orch.begin_worker(&mut rng);
            orch.complete_request(0, 10_000.0);
            orch.overheads().per_request_us()
        };
        let cheap = run_with(KvCosts::free());
        let pricey = run_with(KvCosts::default().scaled(4.0));
        assert!(pricey > cheap, "pricey {pricey} <= cheap {cheap}");
    }

    #[test]
    fn transfer_model_affects_startup_plan_not_decision_overhead() {
        use pronghorn_store::TransferModel;
        let build = |transfer: TransferModel| {
            let mut orch = Orchestrator::new(
                Box::new(CheckpointAfterFirstPolicy::new()),
                KvStore::new(),
                ObjectStore::new(),
                "f",
            )
            .with_transfer(transfer);
            let mut rng = SmallRng::seed_from_u64(12);
            orch.begin_worker(&mut rng);
            orch.record_snapshot(&snapshot(1, 1), SimDuration::from_millis(65), &mut rng);
            let plan = orch.begin_worker(&mut rng);
            (plan.startup_overhead, orch.overheads().per_startup_us())
        };
        let fast = build(TransferModel::from_gbps(10.0, 100.0));
        let slow = build(TransferModel::from_gbps(10.0, 0.1));
        // The worker plan (provisioning time) reflects the slower link ...
        assert!(slow.0 > fast.0);
        // ... but the Figure 7 decision overhead does not.
        assert!((slow.1 - fast.1).abs() < 1e-6);
    }

    #[test]
    fn request_centric_startup_costs_more_than_baseline() {
        let mut rc = orchestrator(Box::new(RequestCentricPolicy::new(
            PolicyConfig::paper_pypy(),
        )));
        let mut base = orchestrator(Box::new(CheckpointAfterFirstPolicy::new()));
        let mut rng = SmallRng::seed_from_u64(7);
        rc.begin_worker(&mut rng);
        base.begin_worker(&mut rng);
        let (a, b) = (
            rc.overheads().per_startup_us(),
            base.overheads().per_startup_us(),
        );
        assert!(a > b, "request-centric {a} <= baseline {b}");
        assert!(a / b < 2.6, "ratio {} exceeds Figure 7's 2.5x", a / b);
    }
}

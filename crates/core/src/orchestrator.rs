//! The per-function Orchestrator: policy + Database + Object Store.
//!
//! Figure 2's execution steps live here. At worker start the Orchestrator
//! reads the shared policy state from the Database, asks the policy for a
//! start decision, and downloads the chosen snapshot from the Object Store
//! (steps 3–4 plus the restore path). After each request it folds the
//! end-to-end latency into the Database-persisted weight vector (step 3).
//! When the policy schedules a checkpoint, the Orchestrator uploads the
//! snapshot and records its metadata (steps 5–8), deleting any blobs the
//! pool evicted.
//!
//! Every operation's virtual cost is accumulated into [`OverheadTotals`] —
//! the per-worker-startup / per-request / per-checkpoint decomposition of
//! Figure 7. All of these costs are off the user-visible critical path
//! (§5.3); the platform charges them to worker downtime, not to request
//! latency.

use crate::policy::{Policy, PolicyKind, StartDecision};
use crate::pool::PoolEntry;
use pronghorn_checkpoint::{Encoder, Snapshot, SnapshotId};
use pronghorn_kv::{types as kvtypes, KvCosts, KvStore};
use pronghorn_restore::{PageMap, PagedSnapshotStore};
use pronghorn_sim::SimDuration;
use pronghorn_store::{ObjectStore, StoreError, TransferModel};
use rand::RngCore;
use std::collections::BTreeMap;

/// Object-store bucket holding snapshot blobs.
pub const SNAPSHOT_BUCKET: &str = "snapshots";

/// Accumulated orchestration overheads (Figure 7's three components).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OverheadTotals {
    /// Total worker-startup overhead, µs (decision + state reads +
    /// snapshot download).
    pub startup_us: f64,
    /// Worker startups observed.
    pub startups: u64,
    /// Total per-request overhead, µs (latency recording + weight write).
    pub request_us: f64,
    /// Requests observed.
    pub requests: u64,
    /// Total per-checkpoint overhead, µs (engine downtime + upload +
    /// metadata writes + pool maintenance).
    pub checkpoint_us: f64,
    /// Checkpoints taken.
    pub checkpoints: u64,
    /// Nominal snapshot bytes uploaded (Table 5 network accounting).
    pub nominal_bytes_uploaded: u64,
    /// Nominal snapshot bytes downloaded.
    pub nominal_bytes_downloaded: u64,
    /// Peak nominal bytes pooled (Table 5 storage accounting).
    pub peak_pool_nominal_bytes: u64,
}

impl OverheadTotals {
    /// Mean startup overhead per worker, µs.
    pub fn per_startup_us(&self) -> f64 {
        if self.startups == 0 {
            0.0
        } else {
            self.startup_us / self.startups as f64
        }
    }

    /// Mean per-request overhead, µs.
    pub fn per_request_us(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.request_us / self.requests as f64
        }
    }

    /// Mean per-checkpoint overhead, µs.
    pub fn per_checkpoint_us(&self) -> f64 {
        if self.checkpoints == 0 {
            0.0
        } else {
            self.checkpoint_us / self.checkpoints as f64
        }
    }
}

/// What the platform should do with a new worker.
#[derive(Debug, Clone)]
pub struct WorkerPlan {
    /// Cold start or restore.
    pub start: StartDecision,
    /// The downloaded snapshot when restoring.
    pub snapshot: Option<Snapshot>,
    /// Request number the worker resumes at (0 for cold).
    pub resume_request: u32,
    /// Absolute request number at which to checkpoint, if any.
    pub checkpoint_at: Option<u32>,
    /// Orchestrator-side startup overhead (off the critical path).
    pub startup_overhead: SimDuration,
}

/// Per-function orchestrator instance.
///
/// # Examples
///
/// ```
/// use pronghorn_core::{CheckpointAfterFirstPolicy, Orchestrator, StartDecision};
/// use pronghorn_kv::KvStore;
/// use pronghorn_store::ObjectStore;
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
///
/// let mut orch = Orchestrator::new(
///     Box::new(CheckpointAfterFirstPolicy::new()),
///     KvStore::new(),
///     ObjectStore::new(),
///     "dynamic-html",
/// );
/// let mut rng = SmallRng::seed_from_u64(1);
/// let plan = orch.begin_worker(&mut rng);
/// // No snapshot exists yet: the first worker cold-starts and is told to
/// // checkpoint right after its first request.
/// assert_eq!(plan.start, StartDecision::Cold);
/// assert_eq!(plan.checkpoint_at, Some(1));
/// ```
pub struct Orchestrator {
    policy: Box<dyn Policy>,
    kv: KvStore,
    store: ObjectStore,
    function: String,
    kv_costs: KvCosts,
    transfer: TransferModel,
    overheads: OverheadTotals,
    /// Reusable frame-encoding scratch: one allocation amortized over every
    /// snapshot upload instead of a fresh buffer per checkpoint.
    frame_scratch: Encoder,
    /// Nominal size of each pooled snapshot, maintained incrementally on
    /// record/evict so the Table 5 peak is O(pool) bookkeeping rather than
    /// a download-and-decode scan of every blob.
    pool_sizes: BTreeMap<SnapshotId, u64>,
    /// Page-granular publication state; present only when a lazy restore
    /// strategy is active (eager runs never touch the page buckets).
    paging: Option<PagingState>,
}

/// Bookkeeping for page-granular snapshot publication.
struct PagingState {
    pages: PagedSnapshotStore,
    /// Published page count per snapshot, for exact unpublish on evict.
    published: BTreeMap<SnapshotId, u32>,
}

impl Orchestrator {
    /// Creates an orchestrator for `function`.
    pub fn new(
        policy: Box<dyn Policy>,
        kv: KvStore,
        store: ObjectStore,
        function: impl Into<String>,
    ) -> Self {
        Orchestrator {
            policy,
            kv,
            store,
            function: function.into(),
            kv_costs: KvCosts::default(),
            transfer: TransferModel::default(),
            overheads: OverheadTotals::default(),
            frame_scratch: Encoder::new(),
            pool_sizes: BTreeMap::new(),
            paging: None,
        }
    }

    /// Overrides the Database cost model.
    pub fn with_kv_costs(mut self, costs: KvCosts) -> Self {
        self.kv_costs = costs;
        self
    }

    /// Overrides the Object Store transfer model.
    pub fn with_transfer(mut self, transfer: TransferModel) -> Self {
        self.transfer = transfer;
        self
    }

    /// Enables page-granular snapshot publication at `page_size`: every
    /// recorded snapshot additionally publishes its page map into the
    /// store's page bucket (deduplicated per page), and evictions
    /// unpublish the pages and drop any recorded working-set manifest.
    pub fn with_paging(mut self, page_size: u64) -> Self {
        self.paging = Some(PagingState {
            pages: PagedSnapshotStore::new(self.store.clone(), page_size),
            published: BTreeMap::new(),
        });
        self
    }

    /// The paged store view, when paging is enabled — the platform's
    /// handle for prefetching and demand-faulting pages.
    pub fn paged_store(&self) -> Option<PagedSnapshotStore> {
        self.paging.as_ref().map(|p| p.pages.clone())
    }

    /// Tells the policy a working-set manifest now exists for `id` (the
    /// recording restore persisted it): selection may stop charging that
    /// snapshot the unrecorded-restore penalty.
    pub fn note_manifest_recorded(&mut self, id: SnapshotId) {
        self.policy.note_prefetch_ready(id);
    }

    /// The policy being orchestrated.
    pub fn policy(&self) -> &dyn Policy {
        self.policy.as_ref()
    }

    /// Which built-in policy is running.
    pub fn policy_kind(&self) -> PolicyKind {
        self.policy.kind()
    }

    /// Accumulated overheads.
    pub fn overheads(&self) -> &OverheadTotals {
        &self.overheads
    }

    fn theta_key(&self) -> String {
        format!("fn/{}/theta", self.function)
    }

    fn blob_key(&self, id: SnapshotId) -> String {
        format!("{}/{id}", self.function)
    }

    /// Fixed compute cost of the start decision, per policy kind. The
    /// request-centric policy reads the weight vector and pool metadata
    /// and evaluates a softmax; the baselines make a trivial choice —
    /// Figure 7 reports the resulting ≤2.5× startup-overhead gap.
    fn decision_cost_us(&self) -> f64 {
        match self.policy.kind() {
            PolicyKind::Cold => 2_000.0,
            PolicyKind::AfterFirst | PolicyKind::AfterInit => 9_000.0,
            PolicyKind::RequestCentric => 16_000.0,
        }
    }

    /// Worker start: Figure 2 steps 3–4 plus the snapshot download.
    pub fn begin_worker(&mut self, rng: &mut dyn RngCore) -> WorkerPlan {
        let mut overhead_us = self.decision_cost_us();

        // Refresh policy knowledge from the Database (step 4). Other
        // workers may have updated it concurrently.
        if let Some(stored) = self.kv.get(&self.theta_key()) {
            overhead_us += self.kv_costs.read_us;
            if let Ok(slots) = kvtypes::decode_f64_vec(&stored.value) {
                self.policy.import_weights(&slots);
            }
        } else {
            overhead_us += self.kv_costs.read_us;
        }

        let start = self.policy.on_worker_start(rng);
        // Blob transfer is provisioning work (charged to the worker plan
        // and the Table 5 byte accounting), not orchestrator decision
        // overhead — Figure 7's startup component is the decision cost.
        let mut transfer_us = 0.0;
        let (snapshot, resume_request) = match start {
            StartDecision::Cold => (None, 0),
            StartDecision::Restore(id) => match self.download_snapshot(id) {
                Ok(snapshot) => {
                    transfer_us += self
                        .transfer
                        .transfer_time(snapshot.nominal_size)
                        .as_micros() as f64;
                    self.overheads.nominal_bytes_downloaded += snapshot.nominal_size;
                    let resume = snapshot.meta.request_number;
                    (Some(snapshot), resume)
                }
                // A missing/corrupt blob degrades to a cold start rather
                // than failing the worker.
                Err(_) => (None, 0),
            },
        };
        let start = if snapshot.is_some() {
            start
        } else {
            StartDecision::Cold
        };

        let checkpoint_at = self.policy.plan_checkpoint(resume_request, rng);

        self.overheads.startup_us += overhead_us;
        self.overheads.startups += 1;

        WorkerPlan {
            start,
            snapshot,
            resume_request,
            checkpoint_at,
            startup_overhead: SimDuration::from_micros_f64(overhead_us + transfer_us),
        }
    }

    fn download_snapshot(&self, id: SnapshotId) -> Result<Snapshot, StoreError> {
        let chunks = self.store.get_chunks(SNAPSHOT_BUCKET, &self.blob_key(id))?;
        match chunks.as_slice() {
            // Chunked upload: parse the frame without reassembling it; the
            // payload Bytes still shares the store's buffer.
            [head, payload, tail] => {
                Snapshot::from_chunks(head, payload, tail).map_err(|_| StoreError::NotFound)
            }
            [whole] => Snapshot::from_shared(whole).map_err(|_| StoreError::NotFound),
            _ => Err(StoreError::NotFound),
        }
    }

    /// Request completion: Figure 2 step 3 — fold the end-to-end latency
    /// into the policy and persist the updated weight vector.
    pub fn complete_request(&mut self, request_number: u32, latency_us: f64) -> SimDuration {
        self.policy.record_latency(request_number, latency_us);
        // One Database round trip for either policy family; the
        // request-centric policy additionally folds the sample into the
        // weight vector (a few array operations, §5.3: "some extra array
        // read-write operations, whose computation time is outweighed by
        // network latency").
        let mut overhead_us = 200.0 + self.kv_costs.write_us;
        if self.policy.persists_weights() {
            let key = self.theta_key();
            // Delta path: a single latency sample touches one θ slot, so
            // persist 8 bytes at a fixed offset instead of re-encoding all
            // W slots. The virtual cost charged is the same round trip —
            // only host-side work shrinks.
            let patched = match self.policy.take_weight_delta() {
                Some((r, v)) => self
                    .kv
                    .patch(&key, |buf| kvtypes::patch_f64_slot(buf, r as usize, v)),
                // Sample was ignored (out of range / invalid): the stored
                // vector is already current if it exists at all.
                None => self.kv.contains(&key),
            };
            if !patched {
                // First write for this function, or a stored vector of the
                // wrong shape: fall back to the full encode.
                if let Some(slots) = self.policy.export_weights() {
                    self.kv.put(&key, kvtypes::encode_f64_vec(&slots));
                }
            }
            overhead_us += 150.0;
        }
        self.overheads.request_us += overhead_us;
        self.overheads.requests += 1;
        SimDuration::from_micros_f64(overhead_us)
    }

    /// Snapshot recording: Figure 2 steps 7–8 — upload the blob, register
    /// metadata, and delete whatever the pool evicted. `engine_downtime`
    /// is the checkpoint cost reported by the Checkpoint Engine.
    pub fn record_snapshot(
        &mut self,
        snapshot: &Snapshot,
        engine_downtime: SimDuration,
        rng: &mut dyn RngCore,
    ) -> SimDuration {
        let mut overhead_us = engine_downtime.as_micros() as f64;

        // Frame into the reusable scratch encoder and upload as chunks, so
        // byte-identical payloads (twin lineages) dedup in the store.
        let frame = snapshot.to_frame_with(&mut self.frame_scratch);
        let [head, payload, tail] = frame.chunks();
        let upload_ok = self
            .store
            .put_chunked(
                SNAPSHOT_BUCKET,
                &self.blob_key(snapshot.id),
                head,
                payload,
                tail,
            )
            .is_ok();
        overhead_us += self
            .transfer
            .transfer_time(snapshot.nominal_size)
            .as_micros() as f64;
        self.overheads.nominal_bytes_uploaded += snapshot.nominal_size;

        if upload_ok {
            self.pool_sizes.insert(snapshot.id, snapshot.nominal_size);
            if let Some(paging) = &mut self.paging {
                // Publish the page map alongside the blob. Page descriptors
                // are content-addressed, so base-region pages dedup across
                // snapshots and twin heaps share blobs (one extra metadata
                // write's worth of orchestration cost).
                let map = PageMap::for_snapshot(
                    &self.function,
                    snapshot.payload_hash(),
                    snapshot.nominal_size,
                    paging.pages.page_size(),
                );
                if let Ok(count) = paging.pages.publish(&self.function, snapshot.id.0, &map) {
                    paging.published.insert(snapshot.id, count);
                    overhead_us += self.kv_costs.write_us;
                }
            }
            let evicted = self.policy.on_snapshot_taken(
                PoolEntry {
                    id: snapshot.id,
                    request_number: snapshot.meta.request_number,
                    size_bytes: snapshot.nominal_size,
                },
                rng,
            );
            // Pool metadata write (step 8).
            overhead_us += self.kv_costs.write_us;
            for entry in evicted {
                let _ = self.store.delete(SNAPSHOT_BUCKET, &self.blob_key(entry.id));
                self.pool_sizes.remove(&entry.id);
                if let Some(paging) = &mut self.paging {
                    if let Some(count) = paging.published.remove(&entry.id) {
                        paging.pages.unpublish(&self.function, entry.id.0, count);
                    }
                    paging.pages.delete_manifest(&self.function, entry.id.0);
                }
                overhead_us += self.kv_costs.write_us;
            }
        }

        // Track the peak nominal footprint of the pool (Table 5).
        let pooled: u64 = self.pool_nominal_bytes();
        self.overheads.peak_pool_nominal_bytes = self.overheads.peak_pool_nominal_bytes.max(pooled);

        self.overheads.checkpoint_us += overhead_us;
        self.overheads.checkpoints += 1;
        SimDuration::from_micros_f64(overhead_us)
    }

    /// Current nominal bytes held by pooled snapshots.
    ///
    /// Maintained incrementally from record/evict events; the previous
    /// implementation listed the bucket and downloaded + decoded every
    /// blob on each checkpoint just to sum sizes.
    pub fn pool_nominal_bytes(&self) -> u64 {
        self.pool_sizes.values().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::CheckpointAfterFirstPolicy;
    use crate::config::PolicyConfig;
    use crate::request_centric::RequestCentricPolicy;
    use bytes::Bytes;
    use pronghorn_checkpoint::SnapshotMeta;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn snapshot(request_number: u32, tag: u8) -> Snapshot {
        Snapshot::new(
            SnapshotMeta {
                function: "f".into(),
                request_number,
                runtime: "jvm".into(),
            },
            Bytes::from(vec![tag; 8]),
            12 * 1024 * 1024,
        )
    }

    fn orchestrator(policy: Box<dyn Policy>) -> Orchestrator {
        Orchestrator::new(policy, KvStore::new(), ObjectStore::new(), "f")
    }

    #[test]
    fn first_worker_cold_starts_and_plans() {
        let mut orch = orchestrator(Box::new(CheckpointAfterFirstPolicy::new()));
        let mut rng = SmallRng::seed_from_u64(1);
        let plan = orch.begin_worker(&mut rng);
        assert_eq!(plan.start, StartDecision::Cold);
        assert_eq!(plan.resume_request, 0);
        assert_eq!(plan.checkpoint_at, Some(1));
        assert!(plan.startup_overhead > SimDuration::ZERO);
    }

    #[test]
    fn snapshot_round_trips_through_store() {
        let mut orch = orchestrator(Box::new(CheckpointAfterFirstPolicy::new()));
        let mut rng = SmallRng::seed_from_u64(2);
        orch.begin_worker(&mut rng);
        let snap = snapshot(1, 7);
        let overhead = orch.record_snapshot(&snap, SimDuration::from_millis(65), &mut rng);
        assert!(overhead >= SimDuration::from_millis(65));
        // Next worker restores it, resuming at request 1.
        let plan = orch.begin_worker(&mut rng);
        assert_eq!(plan.start, StartDecision::Restore(snap.id));
        assert_eq!(plan.resume_request, 1);
        assert_eq!(plan.snapshot.as_ref().unwrap().id, snap.id);
        assert_eq!(plan.checkpoint_at, None);
    }

    #[test]
    fn missing_blob_degrades_to_cold_start() {
        let mut orch = orchestrator(Box::new(CheckpointAfterFirstPolicy::new()));
        let mut rng = SmallRng::seed_from_u64(3);
        orch.begin_worker(&mut rng);
        let snap = snapshot(1, 7);
        orch.record_snapshot(&snap, SimDuration::from_millis(65), &mut rng);
        // Sabotage: delete the blob behind the policy's back.
        orch.store
            .delete(SNAPSHOT_BUCKET, &format!("f/{}", snap.id))
            .unwrap();
        let plan = orch.begin_worker(&mut rng);
        assert_eq!(plan.start, StartDecision::Cold);
        assert!(plan.snapshot.is_none());
        assert_eq!(plan.resume_request, 0);
    }

    #[test]
    fn weights_persist_through_the_database() {
        let kv = KvStore::new();
        let store = ObjectStore::new();
        let config = PolicyConfig::paper_pypy();
        let mut orch = Orchestrator::new(
            Box::new(RequestCentricPolicy::new(config)),
            kv.clone(),
            store.clone(),
            "f",
        );
        let mut rng = SmallRng::seed_from_u64(4);
        orch.begin_worker(&mut rng);
        orch.complete_request(0, 50_000.0);
        // A second orchestrator (another worker's view) sees the update.
        let mut orch2 =
            Orchestrator::new(Box::new(RequestCentricPolicy::new(config)), kv, store, "f");
        orch2.begin_worker(&mut rng);
        let weights = orch2.policy().export_weights().unwrap();
        assert_eq!(weights[0], 50_000.0);
    }

    #[test]
    fn delta_persistence_matches_full_reencode() {
        let kv = KvStore::new();
        let config = PolicyConfig::paper_pypy();
        let mut orch = Orchestrator::new(
            Box::new(RequestCentricPolicy::new(config)),
            kv.clone(),
            ObjectStore::new(),
            "f",
        );
        let mut rng = SmallRng::seed_from_u64(21);
        orch.begin_worker(&mut rng);
        // A mix of fresh slots, EWMA re-blends, ignored out-of-range and
        // invalid samples: after every request the persisted bytes must be
        // exactly what a full re-encode of the live weights would produce.
        let samples = [
            (0, 50_000.0),
            (3, 20_000.0),
            (0, 10_000.0),
            (9_999, 5_000.0),
            (2, f64::NAN),
            (7, 42_000.0),
        ];
        for (r, lat) in samples {
            orch.complete_request(r, lat);
            let stored = kv.get("fn/f/theta").unwrap().value;
            let full = kvtypes::encode_f64_vec(&orch.policy().export_weights().unwrap());
            assert_eq!(stored, full, "divergence after sample ({r}, {lat})");
        }
    }

    #[test]
    fn twin_snapshots_dedup_in_the_store() {
        let mut orch = orchestrator(Box::new(CheckpointAfterFirstPolicy::new()));
        let mut rng = SmallRng::seed_from_u64(22);
        orch.begin_worker(&mut rng);
        // Two snapshots with byte-identical payloads (twin lineages) but
        // distinct nonces: the ids differ while the payload blob is stored
        // once.
        let meta = |r| SnapshotMeta {
            function: "f".into(),
            request_number: r,
            runtime: "jvm".into(),
        };
        let payload = Bytes::from(vec![7u8; 8]);
        let a = Snapshot::with_nonce(meta(1), payload.clone(), 12 << 20, 1);
        let b = Snapshot::with_nonce(meta(1), payload, 12 << 20, 2);
        assert_ne!(a.id, b.id, "nonce must keep twin ids distinct");
        orch.record_snapshot(&a, SimDuration::from_millis(65), &mut rng);
        orch.record_snapshot(&b, SimDuration::from_millis(65), &mut rng);
        let stats = orch.store.stats();
        assert!(stats.bytes_deduped > 0, "twin payload was not deduped");
        // The after-first policy pools exactly one snapshot, so one twin
        // was evicted — dropping a reference to the shared blob. The §7.2
        // guard means the surviving twin must still download intact.
        assert_eq!(stats.objects, 1);
        let plan = orch.begin_worker(&mut rng);
        assert!(matches!(plan.start, StartDecision::Restore(id) if id == a.id || id == b.id));
        assert_eq!(plan.snapshot.unwrap().payload, a.payload);
    }

    #[test]
    fn eviction_deletes_blobs_from_store() {
        let config = PolicyConfig::paper_pypy().with_capacity(2).with_beta(4);
        let store = ObjectStore::new();
        let mut orch = Orchestrator::new(
            Box::new(RequestCentricPolicy::new(config)),
            KvStore::new(),
            store.clone(),
            "f",
        );
        let mut rng = SmallRng::seed_from_u64(5);
        for i in 0..6 {
            let snap = snapshot(i, i as u8);
            orch.record_snapshot(&snap, SimDuration::from_millis(70), &mut rng);
        }
        assert!(
            store.stats().objects <= 2,
            "{} blobs",
            store.stats().objects
        );
        assert_eq!(orch.policy().pool_len(), store.stats().objects as usize);
    }

    #[test]
    fn paging_publishes_and_evicts_pages_and_manifests() {
        use pronghorn_restore::{WorkingSetManifest, DEFAULT_PAGE_SIZE, PAGES_BUCKET};
        let config = PolicyConfig::paper_pypy().with_capacity(2).with_beta(4);
        let store = ObjectStore::new();
        let mut orch = Orchestrator::new(
            Box::new(RequestCentricPolicy::new(config)),
            KvStore::new(),
            store.clone(),
            "f",
        )
        .with_paging(DEFAULT_PAGE_SIZE);
        let paged = orch.paged_store().unwrap();
        let mut rng = SmallRng::seed_from_u64(31);
        let first = snapshot(0, 0);
        orch.record_snapshot(&first, SimDuration::from_millis(70), &mut rng);
        // 12 MiB at 256 KiB pages = 48 page objects.
        assert_eq!(store.list(PAGES_BUCKET).len(), 48);
        // Record a manifest for the first snapshot, then force evictions.
        let mut manifest = WorkingSetManifest::new("f", first.id.0, DEFAULT_PAGE_SIZE);
        manifest.record_all(&[0, 1, 5]);
        paged.store_manifest(&manifest).unwrap();
        orch.note_manifest_recorded(first.id);
        for i in 1..8 {
            let snap = snapshot(i, i as u8);
            orch.record_snapshot(&snap, SimDuration::from_millis(70), &mut rng);
        }
        // Pages of evicted snapshots are unpublished; at most two
        // snapshots' worth of page objects remain.
        assert!(store.list(PAGES_BUCKET).len() <= 2 * 48);
        // If the first snapshot was evicted, its manifest went with it.
        if orch.policy().snapshot_request_number(first.id).is_none() {
            assert!(paged.load_manifest("f", first.id.0).is_none());
        }
    }

    #[test]
    fn eager_orchestrator_never_touches_page_buckets() {
        use pronghorn_restore::{MANIFESTS_BUCKET, PAGES_BUCKET};
        let store = ObjectStore::new();
        let mut orch = Orchestrator::new(
            Box::new(CheckpointAfterFirstPolicy::new()),
            KvStore::new(),
            store.clone(),
            "f",
        );
        assert!(orch.paged_store().is_none());
        let mut rng = SmallRng::seed_from_u64(32);
        orch.record_snapshot(&snapshot(1, 1), SimDuration::from_millis(65), &mut rng);
        assert!(store.list(PAGES_BUCKET).is_empty());
        assert!(store.list(MANIFESTS_BUCKET).is_empty());
    }

    #[test]
    fn overheads_decompose_by_operation() {
        let mut orch = orchestrator(Box::new(CheckpointAfterFirstPolicy::new()));
        let mut rng = SmallRng::seed_from_u64(6);
        orch.begin_worker(&mut rng);
        orch.complete_request(0, 10_000.0);
        orch.complete_request(1, 9_000.0);
        orch.record_snapshot(&snapshot(1, 1), SimDuration::from_millis(65), &mut rng);
        let o = orch.overheads();
        assert_eq!(o.startups, 1);
        assert_eq!(o.requests, 2);
        assert_eq!(o.checkpoints, 1);
        assert!(o.per_startup_us() > 0.0);
        assert!(o.per_request_us() > 0.0);
        assert!(o.per_checkpoint_us() >= 65_000.0);
        assert_eq!(o.nominal_bytes_uploaded, 12 * 1024 * 1024);
    }

    #[test]
    fn cost_models_scale_reported_overheads() {
        let run_with = |kv_costs: KvCosts| -> f64 {
            let mut orch = Orchestrator::new(
                Box::new(CheckpointAfterFirstPolicy::new()),
                KvStore::new(),
                ObjectStore::new(),
                "f",
            )
            .with_kv_costs(kv_costs);
            let mut rng = SmallRng::seed_from_u64(11);
            orch.begin_worker(&mut rng);
            orch.complete_request(0, 10_000.0);
            orch.overheads().per_request_us()
        };
        let cheap = run_with(KvCosts::free());
        let pricey = run_with(KvCosts::default().scaled(4.0));
        assert!(pricey > cheap, "pricey {pricey} <= cheap {cheap}");
    }

    #[test]
    fn transfer_model_affects_startup_plan_not_decision_overhead() {
        use pronghorn_store::TransferModel;
        let build = |transfer: TransferModel| {
            let mut orch = Orchestrator::new(
                Box::new(CheckpointAfterFirstPolicy::new()),
                KvStore::new(),
                ObjectStore::new(),
                "f",
            )
            .with_transfer(transfer);
            let mut rng = SmallRng::seed_from_u64(12);
            orch.begin_worker(&mut rng);
            orch.record_snapshot(&snapshot(1, 1), SimDuration::from_millis(65), &mut rng);
            let plan = orch.begin_worker(&mut rng);
            (plan.startup_overhead, orch.overheads().per_startup_us())
        };
        let fast = build(TransferModel::from_gbps(10.0, 100.0));
        let slow = build(TransferModel::from_gbps(10.0, 0.1));
        // The worker plan (provisioning time) reflects the slower link ...
        assert!(slow.0 > fast.0);
        // ... but the Figure 7 decision overhead does not.
        assert!((slow.1 - fast.1).abs() < 1e-6);
    }

    #[test]
    fn request_centric_startup_costs_more_than_baseline() {
        let mut rc = orchestrator(Box::new(RequestCentricPolicy::new(
            PolicyConfig::paper_pypy(),
        )));
        let mut base = orchestrator(Box::new(CheckpointAfterFirstPolicy::new()));
        let mut rng = SmallRng::seed_from_u64(7);
        rc.begin_worker(&mut rng);
        base.begin_worker(&mut rng);
        let (a, b) = (
            rc.overheads().per_startup_us(),
            base.overheads().per_startup_us(),
        );
        assert!(a > b, "request-centric {a} <= baseline {b}");
        assert!(a / b < 2.6, "ratio {} exceeds Figure 7's 2.5x", a / b);
    }
}

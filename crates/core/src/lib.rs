//! Pronghorn's contribution: request-centric checkpoint orchestration.
//!
//! This crate implements §3 of the paper — the snapshot orchestration
//! policy that decides (1) *when* to checkpoint a live worker, (2) *which*
//! snapshot to restore a new worker from, (3) *how many and which*
//! snapshots to keep, and (4) *how* to update the orchestrator's knowledge
//! on every request — plus the baseline policies it is evaluated against
//! and the per-worker Orchestrator that wires a policy to the Checkpoint
//! Engine, Object Store, and Database (Figure 2).
//!
//! The request-centric policy is Algorithm 1, faithfully:
//!
//! - a weight vector `θ` of length `W` holds an EWMA latency estimate per
//!   request number, zero meaning *unexplored* (`OnRequest`, part 3);
//! - the probability map `Pr[i] ∝ 1/(θ[i]+µ)` puts "enormous weight on
//!   checkpointing at unexplored requests" (§3.4) — `OnContainerStart`
//!   draws the worker's checkpoint point from the map clipped to the
//!   worker's expected lifetime (part 1);
//! - new workers restore from a snapshot sampled by `softmax` over mean
//!   inverse lifetime latency (`OnContainerInit` + `GetSnapshotWeights`,
//!   part 2);
//! - when the fixed-capacity pool fills, the top `p%` of snapshots plus a
//!   random `γ%` survive (`OnCapacityReached`, part 4).
//!
//! # Examples
//!
//! ```
//! use pronghorn_core::{PolicyConfig, RequestCentricPolicy, Policy, StartDecision};
//! use rand::rngs::SmallRng;
//! use rand::SeedableRng;
//!
//! let mut policy = RequestCentricPolicy::new(PolicyConfig::paper_pypy());
//! let mut rng = SmallRng::seed_from_u64(1);
//! // Empty pool: the first worker cold-starts ...
//! assert_eq!(policy.on_worker_start(&mut rng), StartDecision::Cold);
//! // ... and is told when to checkpoint.
//! assert!(policy.plan_checkpoint(0, &mut rng).is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod config;
pub mod error;
pub mod orchestrator;
pub mod policy;
pub mod pool;
pub mod request_centric;
pub mod weights;

pub use baselines::{CheckpointAfterFirstPolicy, CheckpointAfterInitPolicy, ColdStartPolicy};
pub use config::{PolicyConfig, SelectionStrategy};
pub use error::ConfigError;
pub use orchestrator::{Orchestrator, OverheadTotals, WorkerPlan};
pub use policy::{Policy, PolicyKind, StartDecision};
pub use pool::{PoolEntry, SnapshotPool};
pub use request_centric::RequestCentricPolicy;
pub use weights::WeightVector;

//! Property-based tests for the policy's data structures.

#![forbid(unsafe_code)]

use pronghorn_checkpoint::SnapshotId;
use pronghorn_core::pool::{PoolEntry, SnapshotPool};
use pronghorn_core::weights::{scaled_softmax, weighted_draw, WeightVector};
use pronghorn_core::{Policy, PolicyConfig, RequestCentricPolicy, StartDecision};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    /// θ slots always stay within the hull of the samples folded into them.
    #[test]
    fn theta_stays_in_sample_hull(
        samples in prop::collection::vec((0u32..50, 1.0f64..1e6), 1..300),
        alpha in 0.01f64..1.0,
    ) {
        let mut w = WeightVector::new(50, alpha);
        let mut lo = vec![f64::INFINITY; 50];
        let mut hi = vec![0.0f64; 50];
        for (r, lat) in samples {
            w.update(r, lat);
            let r = r as usize;
            lo[r] = lo[r].min(lat);
            hi[r] = hi[r].max(lat);
        }
        for r in 0..50u32 {
            let v = w.get(r);
            if hi[r as usize] > 0.0 {
                prop_assert!(v >= lo[r as usize] * (1.0 - 1e-12));
                prop_assert!(v <= hi[r as usize] * (1.0 + 1e-12));
            } else {
                prop_assert_eq!(v, 0.0);
            }
        }
    }

    /// Checkpoint draws always land inside the permitted window.
    #[test]
    fn checkpoint_draws_stay_in_window(
        explored in prop::collection::vec((0u32..100, 1.0f64..1e6), 0..120),
        start in 0u32..120,
        beta in 1u32..40,
        seed in any::<u64>(),
    ) {
        let mut w = WeightVector::new(100, 0.3);
        for (r, lat) in explored {
            w.update(r, lat);
        }
        let mut rng = SmallRng::seed_from_u64(seed);
        match w.sample_checkpoint_request(start, beta, 1e-3, &mut rng) {
            None => prop_assert!(start >= 100),
            Some(r) => {
                prop_assert!(r >= start);
                prop_assert!(r <= start.saturating_add(beta));
                prop_assert!(r < 100);
            }
        }
    }

    /// The softmax is always a probability distribution.
    #[test]
    fn softmax_is_normalized(values in prop::collection::vec(0.0f64..1e9, 1..64), scale in 0.5f64..12.0) {
        let probs = scaled_softmax(&values, scale);
        prop_assert_eq!(probs.len(), values.len());
        let sum: f64 = probs.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
        prop_assert!(probs.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    /// Weighted draws only return indices with positive weight.
    #[test]
    fn weighted_draw_respects_support(
        weights in prop::collection::vec(prop_oneof![Just(0.0), 0.001f64..100.0], 1..64),
        seed in any::<u64>(),
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        match weighted_draw(&weights, &mut rng) {
            None => prop_assert!(weights.iter().all(|&w| w == 0.0)),
            Some(i) => prop_assert!(weights[i] > 0.0),
        }
    }

    /// The pool never exceeds capacity and never loses the globally best
    /// snapshot (the top-p retention always includes the maximum weight).
    #[test]
    fn pool_keeps_best_and_respects_capacity(
        requests in prop::collection::vec(0u32..200, 1..60),
        capacity in 1usize..16,
        p in 0.05f64..1.0,
        gamma in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let mut pool = SnapshotPool::new(capacity);
        let mut rng = SmallRng::seed_from_u64(seed);
        for (i, &r) in requests.iter().enumerate() {
            let entry = PoolEntry {
                id: SnapshotId(i as u64),
                request_number: r,
                size_bytes: 1,
            };
            // Weight = request number: "later is better".
            let best_before = pool
                .entries()
                .iter()
                .map(|e| e.request_number)
                .chain(std::iter::once(r))
                .max()
                .unwrap();
            pool.insert(entry, p, gamma, |e| f64::from(e.request_number), &mut rng);
            prop_assert!(pool.len() <= capacity);
            let best_after = pool.entries().iter().map(|e| e.request_number).max().unwrap();
            prop_assert_eq!(best_after, best_before, "best snapshot evicted");
        }
    }

    /// End-to-end policy liveness: under any latency feedback, a policy
    /// with snapshots keeps restoring (never deadlocks into cold starts),
    /// and its checkpoint plans stay legal.
    #[test]
    fn policy_stays_live_under_arbitrary_feedback(
        latencies in prop::collection::vec(1.0f64..1e7, 30..120),
        seed in any::<u64>(),
        beta in 1u32..8,
    ) {
        let mut policy = RequestCentricPolicy::new(
            PolicyConfig::paper_pypy().with_beta(beta).with_capacity(6),
        );
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut next_id = 0u64;
        let mut lineage = 0u32;
        for lat in latencies {
            let start = policy.on_worker_start(&mut rng);
            let resume = match start {
                StartDecision::Cold => 0,
                StartDecision::Restore(id) => {
                    let r = policy.snapshot_request_number(id);
                    prop_assert!(r.is_some(), "restored unknown snapshot");
                    r.unwrap()
                }
            };
            let plan = policy.plan_checkpoint(resume, &mut rng);
            if let Some(at) = plan {
                prop_assert!(at >= resume && at <= resume + beta);
            }
            policy.record_latency(resume, lat);
            lineage = lineage.max(resume + 1);
            if let Some(at) = plan {
                let snap_at = at.clamp(resume, resume + 1);
                policy.on_snapshot_taken(
                    PoolEntry { id: SnapshotId(next_id), request_number: snap_at, size_bytes: 1 },
                    &mut rng,
                );
                next_id += 1;
            }
            prop_assert!(policy.pool_len() <= 6);
        }
        // After the first checkpoint the pool is never empty again.
        if next_id > 0 {
            prop_assert!(policy.pool_len() >= 1);
            prop_assert!(matches!(
                policy.on_worker_start(&mut rng),
                StartDecision::Restore(_)
            ));
        }
    }
}

proptest! {
    /// Persisting θ as single-slot deltas (`patch_f64_slot` on the slot
    /// reported by `WeightVector::update`) keeps the stored bytes equal
    /// to a full re-encode of the live vector after every observation.
    #[test]
    fn delta_persistence_equals_full_reencode(
        w in 4u32..64,
        alpha in 0.05f64..0.95,
        samples in prop::collection::vec((any::<u32>(), 1.0f64..1e7), 1..64),
    ) {
        let mut weights = WeightVector::new(w, alpha);
        let mut stored = pronghorn_kv::types::encode_f64_vec(weights.slots());
        for (slot, latency) in samples {
            if let Some(value) = weights.update(slot, latency) {
                prop_assert!(pronghorn_kv::types::patch_f64_slot(
                    &mut stored,
                    slot as usize,
                    value,
                ));
            }
            prop_assert_eq!(
                &stored,
                &pronghorn_kv::types::encode_f64_vec(weights.slots())
            );
        }
    }
}

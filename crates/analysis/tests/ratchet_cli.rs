//! End-to-end tests of the `pronglint` binary: exit codes, the ratcheted
//! baseline lifecycle, and the real workspace staying clean.

#![forbid(unsafe_code)]

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .unwrap()
        .to_path_buf()
}

fn pronglint(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_pronglint"))
        .args(args)
        .output()
        .expect("spawn pronglint")
}

/// A scratch workspace seeded with one D1 violation in a sim-visible crate.
struct SeededWorkspace {
    root: PathBuf,
}

impl SeededWorkspace {
    fn new(tag: &str) -> Self {
        let root = std::env::temp_dir().join(format!("pronglint-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        let src = root.join("crates").join("core").join("src");
        fs::create_dir_all(&src).unwrap();
        fs::write(
            src.join("lib.rs"),
            "#![forbid(unsafe_code)]\n\
             #![warn(missing_docs)]\n\
             //! Seeded fixture crate.\n\
             use std::collections::HashMap;\n\
             /// Violates unordered-iter.\n\
             pub struct Bad(pub HashMap<u32, u32>);\n",
        )
        .unwrap();
        SeededWorkspace { root }
    }

    fn root(&self) -> &str {
        self.root.to_str().unwrap()
    }

    fn baseline(&self) -> PathBuf {
        self.root.join("analysis").join("baseline.toml")
    }
}

impl Drop for SeededWorkspace {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

#[test]
fn real_workspace_is_clean_under_checked_in_baseline() {
    let root = workspace_root();
    let start = std::time::Instant::now();
    let out = pronglint(&["--root", root.to_str().unwrap()]);
    let elapsed = start.elapsed();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "pronglint must pass on the workspace; output:\n{stdout}"
    );
    assert!(stdout.contains("pronglint: OK"));
    // The full pipeline (walk, parse, call graph, T1/C1/P1/K1, audit)
    // must stay cheap enough to run on every CI push.
    assert!(
        elapsed < std::time::Duration::from_secs(10),
        "workspace analysis took {elapsed:?}, budget is 10s"
    );
}

#[test]
fn seeded_violation_fails_with_exit_code_one() {
    let ws = SeededWorkspace::new("seeded");
    let out = pronglint(&["--root", ws.root(), "--json"]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"rule\": \"unordered-iter\""));
    assert!(stdout.contains("\"passed\": false"));
}

#[test]
fn update_baseline_then_clean_then_ratchet_blocks_new_findings() {
    let ws = SeededWorkspace::new("ratchet");

    // 1. Capture the debt into the baseline; the run itself still fails
    //    (the finding was new when the run started).
    let out = pronglint(&["--root", ws.root(), "--update-baseline"]);
    assert_eq!(out.status.code(), Some(1));
    let baseline = fs::read_to_string(ws.baseline()).unwrap();
    // Two findings: the `use` line and the struct field.
    assert!(baseline.contains("unordered-iter"));
    assert!(baseline.contains("count = 2"));

    // 2. With the debt baselined, the same tree passes.
    let out = pronglint(&["--root", ws.root()]);
    assert_eq!(out.status.code(), Some(0));

    // 3. A second violation exceeds the baselined count and fails again.
    let lib = ws.root.join("crates/core/src/lib.rs");
    let mut src = fs::read_to_string(&lib).unwrap();
    src.push_str("/// A second violation.\npub struct Worse(pub HashMap<u64, u64>);\n");
    fs::write(&lib, src).unwrap();
    let out = pronglint(&["--root", ws.root()]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("FAILED — 1 new finding"));

    // 4. Fixing everything turns the stale entry into an improvement, and
    //    --update-baseline prunes it.
    fs::write(
        &lib,
        "#![forbid(unsafe_code)]\n#![warn(missing_docs)]\n//! Clean now.\n",
    )
    .unwrap();
    let out = pronglint(&["--root", ws.root()]);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&out.stdout).contains("--update-baseline"));
    let out = pronglint(&["--root", ws.root(), "--update-baseline"]);
    assert_eq!(out.status.code(), Some(0));
    let baseline = fs::read_to_string(ws.baseline()).unwrap();
    assert!(!baseline.contains("[[finding]]"), "entry must be pruned");
}

#[test]
fn interprocedural_findings_ratchet_like_d_rules() {
    let ws = SeededWorkspace::new("xratchet");
    // Replace the D1 seed with a C1 one: an unchecked `+=` on a byte
    // counter plus a declaration no test pins down.
    let lib = ws.root.join("crates/core/src/lib.rs");
    fs::write(
        &lib,
        "#![forbid(unsafe_code)]\n\
         #![warn(missing_docs)]\n\
         //! Byte-counter fixture crate.\n\
         /// Accounting state.\n\
         pub struct Meter {\n\
             /// Bytes moved so far.\n\
             pub bytes_transferred: u64,\n\
         }\n\
         impl Meter {\n\
             /// Records a transfer.\n\
             pub fn add(&mut self, n: u64) {\n\
                 self.bytes_transferred += n;\n\
             }\n\
         }\n",
    )
    .unwrap();
    let out = pronglint(&["--root", ws.root(), "--json"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stdout).contains("\"rule\": \"byte-conservation\""));

    // The debt baselines and ratchets exactly like the per-file rules.
    let out = pronglint(&["--root", ws.root(), "--update-baseline"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(fs::read_to_string(ws.baseline())
        .unwrap()
        .contains("byte-conservation"));
    let out = pronglint(&["--root", ws.root()]);
    assert_eq!(out.status.code(), Some(0));

    // Fixing the mutation and pinning the field flips both findings to
    // improvements; --update-baseline prunes the entries.
    fs::write(
        &lib,
        "#![forbid(unsafe_code)]\n\
         #![warn(missing_docs)]\n\
         //! Byte-counter fixture crate.\n\
         /// Accounting state.\n\
         pub struct Meter {\n\
             /// Bytes moved so far.\n\
             pub bytes_transferred: u64,\n\
         }\n\
         impl Meter {\n\
             /// Records a transfer.\n\
             pub fn add(&mut self, n: u64) {\n\
                 self.bytes_transferred = self.bytes_transferred.saturating_add(n);\n\
             }\n\
         }\n\
         #[cfg(test)]\n\
         mod tests {\n\
             #[test]\n\
             fn conserves() {\n\
                 let mut m = super::Meter { bytes_transferred: 0 };\n\
                 m.add(7);\n\
                 assert_eq!(m.bytes_transferred, 7);\n\
             }\n\
         }\n",
    )
    .unwrap();
    let out = pronglint(&["--root", ws.root(), "--update-baseline"]);
    assert_eq!(out.status.code(), Some(0));
    assert!(!fs::read_to_string(ws.baseline())
        .unwrap()
        .contains("[[finding]]"));
}

#[test]
fn explain_prints_rule_rationale() {
    let out = pronglint(&["--explain", "determinism-taint"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("determinism-taint"));
    // Unknown rules are a usage error and list the valid ids.
    let out = pronglint(&["--explain", "no-such-rule"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unordered-iter"));
}

#[test]
fn validate_json_gates_the_artifact() {
    let ws = SeededWorkspace::new("valjson");
    let out = pronglint(&["--root", ws.root(), "--json"]);
    let artifact = ws.root.join("findings.json");
    fs::write(&artifact, &out.stdout).unwrap();
    let out = pronglint(&["--validate-json", artifact.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "emitted JSON must validate: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("schema v2"));

    fs::write(&artifact, "{\"schema_version\": 99}").unwrap();
    let out = pronglint(&["--validate-json", artifact.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("off-schema"));
}

#[test]
fn malformed_baseline_is_a_usage_error() {
    let ws = SeededWorkspace::new("badbase");
    fs::create_dir_all(ws.baseline().parent().unwrap()).unwrap();
    fs::write(ws.baseline(), "rule = \"dangling\"\n").unwrap();
    let out = pronglint(&["--root", ws.root()]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("baseline"));
}

#[test]
fn unknown_flag_is_a_usage_error() {
    let out = pronglint(&["--bogus"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}

//! Property tests for the hand-rolled lexer: totality and span fidelity.
//!
//! The rule engine trusts two lexer invariants — it must never panic on
//! any input (pronglint walks files it did not write), and the returned
//! token spans must tile the source exactly (suppression and statement
//! scans index into the source by span).

#![forbid(unsafe_code)]

use analysis::lexer::lex;
use proptest::prelude::*;

proptest! {
    /// Arbitrary bytes (lossily decoded) never panic the lexer, and the
    /// token spans are contiguous, in order, and cover the whole input.
    #[test]
    fn lex_is_total_and_spans_tile(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let tokens = lex(&src);
        let mut cursor = 0usize;
        for t in &tokens {
            prop_assert_eq!(t.start, cursor, "gap or overlap before token");
            prop_assert!(t.end > t.start, "empty token span");
            cursor = t.end;
        }
        prop_assert_eq!(cursor, src.len(), "spans do not cover the input");
    }

    /// Concatenating every token's text round-trips the source exactly.
    #[test]
    fn token_texts_round_trip(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let joined: String = lex(&src).iter().map(|t| t.text(&src)).collect();
        prop_assert_eq!(joined, src);
    }

    /// Rust-looking inputs (printable ASCII with lexer-relevant
    /// punctuation) keep line numbers monotonic and 1-based.
    #[test]
    fn line_numbers_are_monotonic(src in "[a-z0-9/*'\"# \\n{}().!]{0,256}") {
        let tokens = lex(&src);
        let mut last = 1u32;
        for t in &tokens {
            prop_assert!(t.line >= last, "line numbers must not decrease");
            last = t.line;
        }
    }
}

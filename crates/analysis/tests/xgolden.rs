//! Golden tests for the interprocedural T1/C1/P1/K1 rules: each fixture
//! under `tests/fixtures/x/` is a miniature multi-file workspace. Files
//! are separated by `//@ file: <repo-relative path>` headers; each
//! section is classified exactly as the workspace walker would classify
//! the same path on disk, then the whole set runs through
//! [`analyze_units`] — call graph, suppression pass, audit and all.
//!
//! The paired `*.expected` file lists `path:line rule` per finding (or
//! the single word `none`), in the engine's sorted output order.

#![forbid(unsafe_code)]

use analysis::{analyze_units, Finding, SourceUnit};
use std::path::{Path, PathBuf};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("x")
}

/// Splits a fixture into source units on its `//@ file:` headers.
fn units_of(fixture: &str) -> Vec<SourceUnit> {
    let mut units = Vec::new();
    let mut path: Option<String> = None;
    let mut body = String::new();
    let flush = |units: &mut Vec<SourceUnit>, path: Option<String>, body: &mut String| {
        if let Some(p) = path {
            let crate_name = match *p.split('/').collect::<Vec<_>>().as_slice() {
                ["crates", name, ..] => name.to_string(),
                _ => "pronghorn".to_string(),
            };
            units.push(SourceUnit {
                ctx: analysis::classify(&crate_name, &p),
                src: std::mem::take(body),
            });
        }
    };
    for line in fixture.lines() {
        if let Some(p) = line.strip_prefix("//@ file:") {
            flush(&mut units, path.take(), &mut body);
            path = Some(p.trim().to_string());
        } else {
            body.push_str(line);
            body.push('\n');
        }
    }
    flush(&mut units, path, &mut body);
    assert!(!units.is_empty(), "fixture has no `//@ file:` sections");
    units
}

fn parse_expected(text: &str) -> Vec<String> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && *l != "none")
        .map(str::to_string)
        .collect()
}

/// Runs a fixture through the engine, checks findings against the golden
/// file, and returns them for case-specific assertions (chains etc.).
fn check_fixture(stem: &str) -> Vec<Finding> {
    let dir = fixtures_dir();
    let src = std::fs::read_to_string(dir.join(format!("{stem}.rs.txt"))).unwrap();
    let expected =
        parse_expected(&std::fs::read_to_string(dir.join(format!("{stem}.expected"))).unwrap());
    let findings = analyze_units(&units_of(&src));
    let got: Vec<String> = findings
        .iter()
        .map(|f| format!("{}:{} {}", f.file, f.line, f.rule))
        .collect();
    assert_eq!(
        got, expected,
        "fixture `{stem}` findings diverge from golden file"
    );
    findings
}

#[test]
fn t1_taint_crosses_the_crate_boundary_with_chain() {
    let findings = check_fixture("t1_taint_chain");
    // The finding sits on the crossing edge and carries the full chain
    // down to the unordered iteration; the det-order-marked sibling
    // produced nothing.
    let chain: Vec<&str> = findings[0].chain.iter().map(|c| c.func.as_str()).collect();
    assert_eq!(chain, ["decide", "pick_any"]);
    assert_eq!(findings[0].chain[1].file, "crates/workloads/src/helper.rs");
}

#[test]
fn c1_flags_bare_mutation_and_uncovered_field_only() {
    let findings = check_fixture("c1_byte_counters");
    // Line 5 is the coverage gap (`pinned_nominal_bytes` never pinned by
    // a test), line 10 the unchecked `+=`; the `saturating_add` sites
    // and the test-covered fields are clean.
    assert!(findings[0].message.contains("pinned_nominal_bytes"));
    assert!(findings[1].message.contains("bytes_transferred"));
}

#[test]
fn p1_reaches_a_panic_across_crates() {
    let findings = check_fixture("p1_panic_reach");
    let chain: Vec<&str> = findings[0].chain.iter().map(|c| c.func.as_str()).collect();
    assert_eq!(chain, ["plan", "fetch_len"]);
    assert!(findings[0].message.contains("core::plan"));
}

#[test]
fn k1_flags_schedule_ord_and_heap_misuse() {
    check_fixture("k1_kernel_misuse");
}

#[test]
fn interprocedural_findings_are_suppressible_and_audited() {
    // The allow on the crossing line swallows the T1 finding; the
    // dormant wall-clock allow is reported by the audit.
    let findings = check_fixture("suppression_audit");
    assert!(findings[0].message.contains("wall-clock"));
}

#[test]
fn every_x_fixture_has_a_test() {
    let mut stems: Vec<String> = std::fs::read_dir(fixtures_dir())
        .unwrap()
        .filter_map(|e| e.ok())
        .filter_map(|e| {
            e.file_name()
                .to_str()?
                .strip_suffix(".rs.txt")
                .map(str::to_string)
        })
        .collect();
    stems.sort();
    assert_eq!(
        stems,
        [
            "c1_byte_counters",
            "k1_kernel_misuse",
            "p1_panic_reach",
            "suppression_audit",
            "t1_taint_chain",
        ]
    );
}

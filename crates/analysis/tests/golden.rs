//! Golden-file tests: each fixture under `tests/fixtures/` pairs a
//! `*.rs.txt` source (the `.txt` suffix keeps it out of the workspace
//! walk, rustfmt, and clippy) with a `*.expected` file listing
//! `line rule` per finding, or the single word `none`.
//!
//! The fixture's first lines carry `//@ crate:` and `//@ path:` headers
//! that build the [`FileContext`] the rule engine sees.

#![forbid(unsafe_code)]

use analysis::rules::{analyze_source, FileContext};
use std::path::{Path, PathBuf};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
}

fn header<'a>(src: &'a str, key: &str) -> &'a str {
    src.lines()
        .find_map(|l| l.strip_prefix(&format!("//@ {key}:")))
        .unwrap_or_else(|| panic!("fixture missing `//@ {key}:` header"))
        .trim()
}

fn context_of(src: &str) -> FileContext {
    // Use the workspace walker's own classification so a fixture behaves
    // exactly as the same file would on disk (harness files are test
    // scope *and* their own crate roots, `src/benches/` is library code).
    analysis::classify(header(src, "crate"), header(src, "path"))
}

fn parse_expected(text: &str) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line == "none" {
            continue;
        }
        let (no, rule) = line
            .split_once(' ')
            .unwrap_or_else(|| panic!("bad expected line `{line}`"));
        out.push((no.parse().unwrap(), rule.trim().to_string()));
    }
    out
}

fn check_fixture(stem: &str) {
    let dir = fixtures_dir();
    let src = std::fs::read_to_string(dir.join(format!("{stem}.rs.txt"))).unwrap();
    let expected =
        parse_expected(&std::fs::read_to_string(dir.join(format!("{stem}.expected"))).unwrap());
    let ctx = context_of(&src);
    let got: Vec<(u32, String)> = analyze_source(&ctx, &src)
        .into_iter()
        .map(|f| (f.line, f.rule.to_string()))
        .collect();
    assert_eq!(
        got, expected,
        "fixture `{stem}` findings diverge from golden file"
    );
}

#[test]
fn d1_unordered_containers() {
    check_fixture("d1_unordered");
}

#[test]
fn d2_wall_clock_and_entropy() {
    check_fixture("d2_wall_clock");
}

#[test]
fn d2_measurement_crates_are_exempt() {
    check_fixture("d2_exempt_crate");
}

#[test]
fn d3_panic_paths() {
    check_fixture("d3_panic");
}

#[test]
fn d4_crate_hygiene_missing_attrs() {
    check_fixture("d4_hygiene_missing");
}

#[test]
fn d4_crate_hygiene_compliant_root() {
    check_fixture("d4_hygiene_ok");
}

#[test]
fn d4_extends_to_harness_roots() {
    // An integration-test file compiles as its own crate, so it needs
    // `#![forbid(unsafe_code)]` even though it is test scope for every
    // determinism rule.
    check_fixture("d4_harness_root");
}

#[test]
fn d5_float_accumulation() {
    check_fixture("d5_float");
}

#[test]
fn every_fixture_has_a_test() {
    // Guards against adding a fixture and forgetting to wire it up.
    let mut stems: Vec<String> = std::fs::read_dir(fixtures_dir())
        .unwrap()
        .filter_map(|e| e.ok())
        .filter_map(|e| {
            e.file_name()
                .to_str()?
                .strip_suffix(".rs.txt")
                .map(str::to_string)
        })
        .collect();
    stems.sort();
    assert_eq!(
        stems,
        [
            "d1_unordered",
            "d2_exempt_crate",
            "d2_wall_clock",
            "d3_panic",
            "d4_harness_root",
            "d4_hygiene_missing",
            "d4_hygiene_ok",
            "d5_float",
        ]
    );
}

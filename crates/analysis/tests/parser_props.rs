//! Property tests for the item parser: totality and span tiling.
//!
//! The interprocedural rules index into the parse (`sig` token view,
//! `body_sig` ranges, item spans) on files pronglint did not write, so
//! the parser must never panic and its spans must stay in bounds — on
//! arbitrary bytes, not just well-formed Rust.

#![forbid(unsafe_code)]

use analysis::parser::parse_file;
use proptest::prelude::*;

proptest! {
    /// Arbitrary bytes (lossily decoded) never panic the parser, and the
    /// top-level item spans tile the file exactly: contiguous, in order,
    /// first at 0, last ending at `src.len()`.
    #[test]
    fn parse_is_total_and_item_spans_tile(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let parsed = parse_file(&src);
        let mut cursor = 0usize;
        for item in &parsed.items {
            prop_assert_eq!(item.start, cursor, "gap or overlap before item");
            prop_assert!(item.end >= item.start, "negative item span");
            cursor = item.end;
        }
        prop_assert_eq!(cursor, src.len(), "item spans do not cover the input");
        // `sig` is a strictly increasing view over valid token indices.
        for w in parsed.sig.windows(2) {
            prop_assert!(w[0] < w[1], "sig indices must be strictly increasing");
        }
        for &i in &parsed.sig {
            prop_assert!(i < parsed.tokens.len(), "sig index out of range");
        }
    }

    /// Function definitions carry in-bounds byte spans and well-formed
    /// `body_sig` ranges, even on keyword soup with unbalanced braces.
    #[test]
    fn fn_spans_and_body_ranges_stay_in_bounds(
        src in "(pub |fn |impl |mod |use |struct |\\{|\\}|\\(|\\)|;|->|[a-z]{1,8}|[0-9]| |\\n|//x|\"s\"){0,128}"
    ) {
        let parsed = parse_file(&src);
        for f in &parsed.fns {
            prop_assert!(f.span.0 <= f.span.1, "inverted fn span");
            prop_assert!(f.span.1 <= src.len(), "fn span past end of input");
            prop_assert!(f.line >= 1, "token lines are 1-based");
            if let Some((lo, hi)) = f.body_sig {
                prop_assert!(lo <= hi, "inverted body_sig range");
                prop_assert!(lo <= parsed.sig.len(), "body_sig start out of range");
            }
        }
    }

    /// Comments, raw strings, and lifetimes — the lexer states that most
    /// often confuse hand-rolled scanners — never panic the item parser.
    #[test]
    fn trivia_heavy_inputs_never_panic(
        src in "(/\\*|\\*/|//|///|//!|r#\"|\"|'a|'\\\\''|#\\[|\\]|fn f|\\{|\\}|\\n| ){0,96}"
    ) {
        let _ = parse_file(&src);
    }
}

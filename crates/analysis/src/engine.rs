//! The analysis engine: drives the full v2 pipeline over a set of
//! source units.
//!
//! ```text
//! units ──lex/parse──▶ ParsedFile ─┬─ per-file D rules (unsuppressed)
//!                                  ├─ CallGraph::build ──▶ T1 / P1
//!                                  ├─ C1 / K1 (token scans over all files)
//!                                  ▼
//!                     global suppression pass (allows marked used)
//!                                  ▼
//!                     unused-suppression audit ──▶ final findings
//! ```
//!
//! Suppression is applied *after* every rule has produced raw findings,
//! so the engine knows exactly which `allow` comments earned their keep;
//! the rest are findings themselves (`unused-suppression`) — a stale
//! allow is a hole a future regression walks through unseen.

use crate::graph::{CallGraph, GraphFile};
use crate::parser::{parse_file, ParsedFile};
use crate::rules::{FileAnalysis, FileContext, Finding, ALL_RULES};
use crate::xrules::{self, XFile};
use std::collections::{BTreeMap, BTreeSet};

/// One source file queued for analysis.
pub struct SourceUnit {
    /// Crate name, repo-relative path, scope flags.
    pub ctx: FileContext,
    /// Full source text.
    pub src: String,
}

/// Runs the whole v2 pipeline over `units`, returning the final
/// (suppression-filtered, sorted, deduplicated) findings.
pub fn analyze_units(units: &[SourceUnit]) -> Vec<Finding> {
    let parsed: Vec<ParsedFile> = units.iter().map(|u| parse_file(&u.src)).collect();
    let fas: Vec<FileAnalysis<'_>> = units
        .iter()
        .zip(&parsed)
        .map(|(u, p)| FileAnalysis::new(&u.ctx, &u.src, &p.tokens))
        .collect();
    let xfiles: Vec<XFile<'_>> = units
        .iter()
        .zip(&parsed)
        .zip(&fas)
        .map(|((u, p), fa)| XFile {
            ctx: &u.ctx,
            src: &u.src,
            parsed: p,
            fa,
        })
        .collect();
    let gfiles: Vec<GraphFile<'_>> = xfiles
        .iter()
        .map(|x| GraphFile {
            ctx: x.ctx,
            src: x.src,
            parsed: x.parsed,
            test_regions: x.fa.test_regions(),
        })
        .collect();
    let graph = CallGraph::build(&gfiles);

    let mut findings: Vec<Finding> = Vec::new();
    for fa in &fas {
        findings.extend(fa.raw_d_findings());
    }
    findings.extend(xrules::determinism_taint(&xfiles, &graph));
    findings.extend(xrules::byte_conservation(&xfiles));
    findings.extend(xrules::panic_reach(&xfiles, &graph));
    findings.extend(xrules::kernel_misuse(&xfiles));

    // Global suppression pass: drop suppressed findings, remembering
    // which allow comments actually fired.
    let fa_by_path: BTreeMap<&str, usize> = units
        .iter()
        .enumerate()
        .map(|(i, u)| (u.ctx.path.as_str(), i))
        .collect();
    let mut used: BTreeSet<(usize, u32, String)> = BTreeSet::new();
    let suppress = |findings: &mut Vec<Finding>, used: &mut BTreeSet<(usize, u32, String)>| {
        findings.retain(|f| {
            let Some(&fi) = fa_by_path.get(f.file.as_str()) else {
                return true;
            };
            let mut hit = false;
            for a in fas[fi].allows() {
                if a.rule == f.rule && a.target_line == f.line {
                    used.insert((fi, a.comment_line, a.rule.clone()));
                    hit = true;
                }
            }
            !hit
        });
    };
    suppress(&mut findings, &mut used);

    // Unused-suppression audit: every allow that suppressed nothing is
    // itself a finding (reported at the comment's own line). The audit
    // findings are one-level suppressible: an
    // `allow(unused-suppression)` covering the dormant allow's comment
    // line *or* its target line keeps an intentionally-dormant allow
    // (stacked suppression comments all resolve to the same code line).
    let mut audit: Vec<Finding> = Vec::new();
    for (fi, fa) in fas.iter().enumerate() {
        for a in fa.allows() {
            if a.rule == "unused-suppression"
                || used.contains(&(fi, a.comment_line, a.rule.clone()))
            {
                continue;
            }
            if let Some(keeper) = fa.allows().iter().find(|b| {
                b.rule == "unused-suppression"
                    && (b.target_line == a.comment_line || b.target_line == a.target_line)
            }) {
                used.insert((fi, keeper.comment_line, keeper.rule.clone()));
                continue;
            }
            let known = ALL_RULES.contains(&a.rule.as_str());
            audit.push(Finding::new(
                units[fi].ctx.path.clone(),
                a.comment_line,
                "unused-suppression",
                if known {
                    format!(
                        "`pronglint: allow({})` suppresses nothing (no `{}` finding \
                         targets line {}): delete it — stale suppressions are holes \
                         future regressions walk through unseen",
                        a.rule, a.rule, a.target_line
                    )
                } else {
                    format!(
                        "`pronglint: allow({})` names a rule pronglint does not \
                         have: fix the rule id (see `pronglint --explain`) or \
                         delete the comment",
                        a.rule
                    )
                },
            ));
        }
    }
    // …and a keeper that kept nothing is itself dormant (one level
    // deep; keepers of keepers are not modeled).
    for (fi, fa) in fas.iter().enumerate() {
        for a in fa.allows() {
            if a.rule == "unused-suppression"
                && !used.contains(&(fi, a.comment_line, a.rule.clone()))
            {
                audit.push(Finding::new(
                    units[fi].ctx.path.clone(),
                    a.comment_line,
                    "unused-suppression",
                    "`pronglint: allow(unused-suppression)` keeps no dormant allow: \
                     delete it"
                        .to_string(),
                ));
            }
        }
    }
    findings.extend(audit);

    findings.sort();
    findings.dedup();
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit(crate_name: &str, path: &str, src: &str) -> SourceUnit {
        SourceUnit {
            ctx: FileContext {
                crate_name: crate_name.to_string(),
                path: path.to_string(),
                is_test_file: false,
                is_crate_root: false,
                is_lib_root: false,
            },
            src: src.to_string(),
        }
    }

    #[test]
    fn cross_crate_taint_is_reported_with_chain() {
        let units = [
            unit(
                "core",
                "crates/core/src/lib.rs",
                "use pronghorn_util::shuffle_like;\n\
                 pub fn decide() { shuffle_like(); }\n",
            ),
            unit(
                "util",
                "crates/util/src/lib.rs",
                "use std::collections::HashMap;\n\
                 pub fn shuffle_like() { let m: HashMap<u32, u32> = HashMap::new(); \
                 for k in m.keys() { let _ = k; } }\n",
            ),
        ];
        let findings = analyze_units(&units);
        let taint: Vec<&Finding> = findings
            .iter()
            .filter(|f| f.rule == "determinism-taint")
            .collect();
        assert_eq!(taint.len(), 1, "findings: {findings:?}");
        assert_eq!(taint[0].file, "crates/core/src/lib.rs");
        assert_eq!(taint[0].chain.len(), 2);
        assert_eq!(taint[0].chain[0].func, "decide");
        assert_eq!(taint[0].chain[1].func, "shuffle_like");
    }

    #[test]
    fn unused_allow_is_audited_and_auditable() {
        let units = [unit(
            "util",
            "crates/util/src/lib.rs",
            "// pronglint: allow(wall-clock): nothing here reads a clock\n\
             pub fn quiet() {}\n",
        )];
        let findings = analyze_units(&units);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "unused-suppression");
        assert_eq!(findings[0].line, 1);

        // …and the audit finding is itself suppressible.
        let units = [unit(
            "util",
            "crates/util/src/lib.rs",
            "// pronglint: allow(unused-suppression): kept for the next refactor\n\
             // pronglint: allow(wall-clock): nothing here reads a clock\n\
             pub fn quiet() {}\n",
        )];
        let findings = analyze_units(&units);
        assert!(
            findings.is_empty(),
            "allow(unused-suppression) must cover the audit: {findings:?}"
        );
    }

    #[test]
    fn used_allow_is_not_audited() {
        let units = [unit(
            "sim",
            "crates/sim/src/lib.rs",
            "use std::collections::HashMap; // pronglint: allow(unordered-iter): scratch map\n\
             // pronglint: allow(unordered-iter): count is order-independent\n\
             pub fn f(m: &HashMap<u32, u32>) -> usize {\n\
             m.iter().count()\n\
             }\n",
        )];
        let findings = analyze_units(&units);
        assert!(findings.is_empty(), "findings: {findings:?}");
    }
}

//! A minimal JSON reader — just enough to validate and round-trip the
//! pronglint findings report (no registry crates, same spirit as the
//! hand-rolled lexer).
//!
//! Supports the full JSON value grammar with two deliberate
//! simplifications that are fine for validating our own encoder's
//! output: numbers are parsed as `f64`, and `\uXXXX` escapes outside the
//! BMP (surrogate pairs) are rejected rather than combined.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (always carried as `f64`).
    Number(f64),
    /// A string, unescaped.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; key order is normalized (sorted) — fine for
    /// validation, which never re-serializes.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The value as an object, if it is one.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Member `key` of an object value (`None` for non-objects).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses `src` as a single JSON document (trailing whitespace allowed).
pub fn parse(src: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            at: self.pos,
            message: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected byte `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            if map.insert(key, val).is_some() {
                return Err(self.err("duplicate object key"));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape outside BMP scalar range"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        other => return Err(self.err(format!("bad escape `\\{}`", other as char))),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control byte in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (src came in as &str, so
                    // boundaries are valid by construction).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a": [1, 2.5, -3], "b": {"c": true, "d": null}, "s": "x\ny"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[1].as_f64(),
            Some(2.5)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Value::Null));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "\"unterminated",
            "{\"a\": 1} trailing",
            "{\"dup\": 1, \"dup\": 2}",
            "\"bad \\q escape\"",
        ] {
            assert!(parse(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn unescapes_strings() {
        let v = parse(r#""quote \" slash \\ tab \t unicode é""#).unwrap();
        assert_eq!(v.as_str(), Some("quote \" slash \\ tab \t unicode é"));
    }
}

//! A lightweight recursive-descent *item* parser on top of [`crate::lexer`].
//!
//! pronglint v2's interprocedural rules need more structure than a token
//! stream: which function a token belongs to, what that function is
//! called, what the file imports from sibling crates. This parser
//! extracts exactly that — no types, no expressions, no trait solving —
//! while keeping the two guarantees the property tests pin:
//!
//! 1. **Totality** — parsing never panics, whatever the input (the lexer
//!    is total and the parser only walks its token indices);
//! 2. **Item tiling** — the top-level [`Item`] spans tile the file
//!    exactly: the first item starts at byte 0, each item starts where
//!    the previous ended, and the last ends at `src.len()`. (An empty
//!    file parses to zero items.)
//!
//! What is extracted:
//!
//! - every `fn` at any nesting depth (free, inherent/trait `impl`
//!   methods, nested fns, fns inside `mod` blocks), with its body's
//!   significant-token range so rules can scan "inside this function";
//! - `use` declarations, flattened to *imported name → source crate* for
//!   the workspace's own `pronghorn_*` crates (the call-graph resolver's
//!   cross-crate evidence);
//! - `impl` blocks, so methods get a `Type::method` qualified name.
//!
//! The parser is deliberately approximate where Rust grammar is hairy
//! (const generics, `Fn(..)` bounds in generic parameter lists): it
//! resolves function bodies by scanning for the first `{` at parenthesis
//! depth zero, which is correct for every signature shape in this
//! workspace and degrades to "no body" (never a panic) elsewhere.

use crate::lexer::{lex, Token, TokenKind};

/// What a top-level item is, judged by its first significant keyword.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// A `fn` item.
    Fn,
    /// An `impl` block.
    Impl,
    /// A `mod` block or declaration.
    Mod,
    /// A `use` declaration.
    Use,
    /// Anything else (`struct`, `enum`, `const`, attributes-only, trailing
    /// trivia, unparseable text, …).
    Other,
}

/// One top-level item; spans tile the file (see module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Item {
    /// Classification by leading keyword.
    pub kind: ItemKind,
    /// Byte offset of the item's first byte (including leading trivia
    /// attached to it), inclusive.
    pub start: usize,
    /// Byte offset one past the item's last byte, exclusive.
    pub end: usize,
}

/// One function definition, at any nesting depth.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnDef {
    /// The bare function name (`word_count`).
    pub name: String,
    /// `Type::name` for impl methods, `name` for free functions.
    pub qual_name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Whether a `pub` token directly precedes the `fn` (visibility
    /// modifiers such as `pub(crate)` also count).
    pub is_pub: bool,
    /// Whether the `fn` sits inside an `impl` block (method position).
    pub is_method: bool,
    /// Range of *significant-token indices* (see [`ParsedFile::sig`])
    /// covering the body `{ … }`, braces included. `None` for bodyless
    /// trait-method declarations.
    pub body_sig: Option<(usize, usize)>,
    /// Byte span of the whole definition (from `fn` keyword to the end of
    /// the body or the `;`).
    pub span: (usize, usize),
}

/// One name imported by a `use` declaration from a workspace crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseImport {
    /// Source crate, with the `pronghorn_` prefix stripped (`store`,
    /// `workloads`, …).
    pub from_crate: String,
    /// The imported identifier (every path segment and alias in the use
    /// tree below the crate root — an over-approximation that is safe
    /// for the resolver, which only uses it as *evidence* of linkage).
    pub name: String,
}

/// The parse of one file: top-level items plus the flat fn/import tables.
#[derive(Debug, Clone, Default)]
pub struct ParsedFile {
    /// Top-level items, tiling the file.
    pub items: Vec<Item>,
    /// Every function definition, in source order, any nesting depth.
    pub fns: Vec<FnDef>,
    /// Workspace-crate imports, flattened.
    pub uses: Vec<UseImport>,
    /// The token stream the parse was built from.
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of significant tokens (everything except
    /// whitespace and comments). `FnDef::body_sig` indexes into this.
    pub sig: Vec<usize>,
}

impl ParsedFile {
    /// The significant token at sig-index `i`, if in range.
    pub fn sig_tok(&self, i: usize) -> Option<&Token> {
        self.sig.get(i).map(|&ti| &self.tokens[ti])
    }
}

/// Keywords that are never call-expression heads or item names.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "fn", "let",
    "mut", "ref", "move", "unsafe", "async", "await", "dyn", "impl", "where", "as", "in", "pub",
    "use", "mod", "struct", "enum", "trait", "type", "const", "static", "crate", "super", "self",
    "Self", "true", "false",
];

/// Whether `name` may head a call expression.
pub fn is_callable_name(name: &str) -> bool {
    !NON_CALL_KEYWORDS.contains(&name)
}

struct Parser<'a> {
    src: &'a str,
    tokens: &'a [Token],
    /// Significant token indices.
    sig: &'a [usize],
    fns: Vec<FnDef>,
    uses: Vec<UseImport>,
}

impl<'a> Parser<'a> {
    fn tok(&self, i: usize) -> &Token {
        &self.tokens[self.sig[i]]
    }

    fn text(&self, i: usize) -> &str {
        self.tok(i).text(self.src)
    }

    fn is_punct(&self, i: usize, ch: &str) -> bool {
        i < self.sig.len() && self.tok(i).kind == TokenKind::Punct && self.text(i) == ch
    }

    fn is_ident(&self, i: usize, name: &str) -> bool {
        i < self.sig.len() && self.tok(i).kind == TokenKind::Ident && self.text(i) == name
    }

    fn ident_at(&self, i: usize) -> Option<&str> {
        (i < self.sig.len() && self.tok(i).kind == TokenKind::Ident).then(|| self.text(i))
    }

    /// Skips a balanced `open…close` group starting at `i` (which must be
    /// the opener); returns the index one past the closer. Total: returns
    /// `sig.len()` on unbalanced input.
    fn skip_group(&self, i: usize, open: &str, close: &str) -> usize {
        debug_assert!(self.is_punct(i, open));
        let mut depth = 0usize;
        let mut j = i;
        while j < self.sig.len() {
            if self.is_punct(j, open) {
                depth += 1;
            } else if self.is_punct(j, close) {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            j += 1;
        }
        self.sig.len()
    }

    /// Parses one `fn` starting at sig-index `i` (the `fn` keyword),
    /// inside `impl_type` if in an impl block. Returns the index one past
    /// the definition.
    fn parse_fn(&mut self, i: usize, impl_type: Option<&str>) -> usize {
        let n = self.sig.len();
        let fn_tok_start = self.tok(i).start;
        let line = self.tok(i).line;
        let is_pub = i > 0 && {
            // `pub fn`, `pub(crate) fn`, `pub(in path) fn`.
            self.is_ident(i - 1, "pub")
                || (self.is_punct(i - 1, ")") && {
                    // Walk back over the visibility parens to a `pub`.
                    let mut k = i - 1;
                    let mut depth = 0usize;
                    loop {
                        if self.is_punct(k, ")") {
                            depth += 1;
                        } else if self.is_punct(k, "(") {
                            depth -= 1;
                            if depth == 0 {
                                break k > 0 && self.is_ident(k - 1, "pub");
                            }
                        }
                        if k == 0 {
                            break false;
                        }
                        k -= 1;
                    }
                })
        };
        let Some(name) = self.ident_at(i + 1).map(str::to_string) else {
            return i + 1; // `fn` not followed by a name: skip the keyword.
        };
        // Scan for the body `{` at paren depth 0, or a `;` (no body).
        let mut j = i + 2;
        let mut paren = 0usize;
        let mut body_sig = None;
        let mut end_sig = None;
        while j < n {
            if self.is_punct(j, "(") || self.is_punct(j, "[") {
                paren += 1;
            } else if self.is_punct(j, ")") || self.is_punct(j, "]") {
                paren = paren.saturating_sub(1);
            } else if paren == 0 {
                if self.is_punct(j, ";") {
                    end_sig = Some(j);
                    break;
                }
                if self.is_punct(j, "{") {
                    let close = self.skip_group(j, "{", "}");
                    body_sig = Some((j, close.min(n.saturating_sub(0))));
                    end_sig = Some(close.saturating_sub(1).max(j));
                    break;
                }
            }
            j += 1;
        }
        let end_idx = end_sig.unwrap_or(n.saturating_sub(1).max(i));
        let span_end = if end_idx < n {
            self.tok(end_idx).end
        } else {
            self.src.len()
        };
        let qual_name = match impl_type {
            Some(t) => format!("{t}::{name}"),
            None => name.clone(),
        };
        let after = match body_sig {
            Some((body_open, body_close)) => {
                // Recurse into the body for nested fns (rare, but closures
                // aside, `fn` inside `fn` exists in tests/helpers).
                self.parse_region(body_open + 1, body_close.saturating_sub(1), impl_type);
                body_close
            }
            None => end_idx + 1,
        };
        self.fns.push(FnDef {
            name,
            qual_name,
            line,
            is_pub,
            is_method: impl_type.is_some(),
            body_sig,
            span: (fn_tok_start, span_end),
        });
        after.max(i + 1)
    }

    /// Parses an `impl` block header at `i`, returning `(type_name,
    /// body_open_sig)`; `None` body for `impl Trait for Type;` shapes.
    fn parse_impl_header(&self, i: usize) -> (Option<String>, Option<usize>) {
        let n = self.sig.len();
        let mut j = i + 1;
        // Skip the generic parameter list directly after `impl`.
        if self.is_punct(j, "<") {
            let mut depth = 0usize;
            while j < n {
                if self.is_punct(j, "<") {
                    depth += 1;
                } else if self.is_punct(j, ">") {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        // Collect path idents until `{`, `;`, `for`, or `where`; on `for`,
        // restart collection (the type is on the right of `for`).
        let mut segment: Vec<String> = Vec::new();
        let mut body_open = None;
        while j < n {
            if self.is_punct(j, "{") {
                body_open = Some(j);
                break;
            }
            if self.is_punct(j, ";") {
                break;
            }
            if self.is_ident(j, "for") {
                segment.clear();
            } else if self.is_ident(j, "where") {
                // Type segment is complete; scan on for the `{`.
                while j < n && !self.is_punct(j, "{") && !self.is_punct(j, ";") {
                    j += 1;
                }
                continue;
            } else if self.is_punct(j, "<") {
                // Generic arguments of the type: skip to the matching `>`
                // so `Wrapper<T>` yields `Wrapper`, not `T`.
                let mut depth = 0usize;
                while j < n {
                    if self.is_punct(j, "<") {
                        depth += 1;
                    } else if self.is_punct(j, ">") {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    j += 1;
                }
            } else if let Some(id) = self.ident_at(j) {
                segment.push(id.to_string());
            }
            j += 1;
        }
        (segment.last().cloned(), body_open)
    }

    /// Parses a `use` declaration at `i`, recording workspace imports;
    /// returns the index one past the terminating `;`.
    fn parse_use(&mut self, i: usize) -> usize {
        let n = self.sig.len();
        let mut j = i + 1;
        let mut idents: Vec<String> = Vec::new();
        while j < n && !self.is_punct(j, ";") {
            if let Some(id) = self.ident_at(j) {
                idents.push(id.to_string());
            }
            j += 1;
        }
        if let Some(root) = idents.first() {
            if let Some(from) = root.strip_prefix("pronghorn_") {
                for name in idents.iter().skip(1) {
                    if name != "self" && name != "as" {
                        self.uses.push(UseImport {
                            from_crate: from.to_string(),
                            name: name.clone(),
                        });
                    }
                }
            }
        }
        (j + 1).min(n)
    }

    /// Walks sig indices `[lo, hi)` collecting fns/uses; `impl_type` is
    /// the enclosing impl block's type, if any.
    fn parse_region(&mut self, lo: usize, hi: usize, impl_type: Option<&str>) {
        let hi = hi.min(self.sig.len());
        let mut i = lo;
        while i < hi {
            if self.is_ident(i, "fn") {
                i = self.parse_fn(i, impl_type);
                continue;
            }
            if self.is_ident(i, "use") {
                i = self.parse_use(i);
                continue;
            }
            if self.is_ident(i, "impl") {
                let (ty, body_open) = self.parse_impl_header(i);
                if let Some(open) = body_open {
                    let close = self.skip_group(open, "{", "}");
                    let ty_ref = ty.as_deref();
                    self.parse_region(open + 1, close.saturating_sub(1), ty_ref);
                    i = close;
                    continue;
                }
                i += 1;
                continue;
            }
            if self.is_ident(i, "mod") && i + 2 < hi && self.is_punct(i + 2, "{") {
                // Descend into inline modules with the same impl context
                // (always `None` at module boundaries).
                let close = self.skip_group(i + 2, "{", "}");
                self.parse_region(i + 3, close.saturating_sub(1), None);
                i = close;
                continue;
            }
            i += 1;
        }
    }
}

/// Parses `src` into items, functions, and imports. Total; see module
/// docs for the tiling guarantee.
pub fn parse_file(src: &str) -> ParsedFile {
    let tokens = lex(src);
    let sig: Vec<usize> = tokens
        .iter()
        .enumerate()
        .filter(|(_, t)| {
            !matches!(
                t.kind,
                TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
            )
        })
        .map(|(i, _)| i)
        .collect();
    let mut p = Parser {
        src,
        tokens: &tokens,
        sig: &sig,
        fns: Vec::new(),
        uses: Vec::new(),
    };
    p.parse_region(0, sig.len(), None);
    let fns = std::mem::take(&mut p.fns);
    let uses = std::mem::take(&mut p.uses);
    let items = tile_items(src, &tokens, &sig);
    ParsedFile {
        items,
        fns,
        uses,
        tokens,
        sig,
    }
}

/// Splits the top level into items whose spans tile the file: an item
/// ends at a `;` or the `}` closing a depth-0 brace group; leading trivia
/// and attributes attach to the item that follows; trailing trivia after
/// the last boundary forms a final `Other` item.
fn tile_items(src: &str, tokens: &[Token], sig: &[usize]) -> Vec<Item> {
    if src.is_empty() {
        return Vec::new();
    }
    let mut items = Vec::new();
    let mut start = 0usize; // byte offset where the current item began
    let mut kind: Option<ItemKind> = None;
    let mut depth = 0usize; // brace depth
    let mut parens = 0usize;
    let n = sig.len();
    let mut i = 0usize;
    while i < n {
        let t = &tokens[sig[i]];
        let text = t.text(src);
        if kind.is_none() && t.kind == TokenKind::Ident {
            kind = Some(match text {
                "fn" => ItemKind::Fn,
                "impl" => ItemKind::Impl,
                "mod" => ItemKind::Mod,
                "use" => ItemKind::Use,
                _ => ItemKind::Other,
            });
        }
        if t.kind == TokenKind::Punct {
            match text {
                "{" => depth += 1,
                "}" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 && parens == 0 {
                        items.push(Item {
                            kind: kind.take().unwrap_or(ItemKind::Other),
                            start,
                            end: t.end,
                        });
                        start = t.end;
                    }
                }
                "(" | "[" => parens += 1,
                ")" | "]" => parens = parens.saturating_sub(1),
                ";" if depth == 0 && parens == 0 => {
                    items.push(Item {
                        kind: kind.take().unwrap_or(ItemKind::Other),
                        start,
                        end: t.end,
                    });
                    start = t.end;
                }
                _ => {}
            }
        }
        i += 1;
    }
    if start < src.len() || items.is_empty() {
        items.push(Item {
            kind: kind.unwrap_or(ItemKind::Other),
            start,
            end: src.len(),
        });
    }
    items
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_free_fns_and_methods() {
        let src = "pub fn free(x: u8) -> u8 { x }\n\
                   impl Foo { fn method(&self) {} pub fn public(&self) {} }\n\
                   impl fmt::Display for Bar { fn fmt(&self) {} }\n";
        let p = parse_file(src);
        let names: Vec<&str> = p.fns.iter().map(|f| f.qual_name.as_str()).collect();
        assert_eq!(names, ["free", "Foo::method", "Foo::public", "Bar::fmt"]);
        assert!(p.fns[0].is_pub && !p.fns[0].is_method);
        assert!(!p.fns[1].is_pub && p.fns[1].is_method);
        assert!(p.fns[2].is_pub);
    }

    #[test]
    fn generic_impls_resolve_the_type_not_the_parameter() {
        let src = "impl<'a, T: Clone> Wrapper<T> { fn get(&self) {} }\n\
                   impl<T> Iterator for Chunks<T> where T: Copy { fn next(&mut self) {} }\n";
        let p = parse_file(src);
        let names: Vec<&str> = p.fns.iter().map(|f| f.qual_name.as_str()).collect();
        assert_eq!(names, ["Wrapper::get", "Chunks::next"]);
    }

    #[test]
    fn use_trees_map_names_to_workspace_crates() {
        let src = "use pronghorn_store::{TransferModel, chain::ChainIndex};\n\
                   use pronghorn_sim::SimTime;\n\
                   use std::collections::BTreeMap;\n";
        let p = parse_file(src);
        let got: Vec<(&str, &str)> = p
            .uses
            .iter()
            .map(|u| (u.from_crate.as_str(), u.name.as_str()))
            .collect();
        assert!(got.contains(&("store", "TransferModel")));
        assert!(got.contains(&("store", "ChainIndex")));
        assert!(got.contains(&("sim", "SimTime")));
        assert!(!got.iter().any(|(c, _)| *c == "std"));
    }

    #[test]
    fn items_tile_the_file() {
        let src = "// leading comment\nuse a::b;\n\nfn f() { g(); }\nstruct S;\n// trailing\n";
        let p = parse_file(src);
        assert_eq!(p.items.first().unwrap().start, 0);
        assert_eq!(p.items.last().unwrap().end, src.len());
        for w in p.items.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
        let kinds: Vec<ItemKind> = p.items.iter().map(|i| i.kind).collect();
        assert_eq!(
            kinds,
            [
                ItemKind::Use,
                ItemKind::Fn,
                ItemKind::Other,
                ItemKind::Other
            ]
        );
    }

    #[test]
    fn bodyless_trait_methods_have_no_body_sig() {
        let src = "trait T { fn required(&self); fn provided(&self) {} }\n";
        let p = parse_file(src);
        assert_eq!(p.fns.len(), 2);
        assert!(p.fns[0].body_sig.is_none());
        assert!(p.fns[1].body_sig.is_some());
    }

    #[test]
    fn nested_fns_are_found() {
        let src = "fn outer() { fn inner() {} inner(); }\n";
        let p = parse_file(src);
        let names: Vec<&str> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert!(names.contains(&"outer") && names.contains(&"inner"));
    }

    #[test]
    fn degenerate_inputs_do_not_panic() {
        for src in ["", "fn", "fn (", "impl", "impl {", "use ;", "}{;", "fn f("] {
            let p = parse_file(src);
            if !src.is_empty() {
                assert_eq!(p.items.first().unwrap().start, 0);
                assert_eq!(p.items.last().unwrap().end, src.len());
            }
        }
    }
}

//! The interprocedural v2 rule families, evaluated over the workspace
//! call graph (see DESIGN.md §15):
//!
//! | rule id | invariant |
//! |---|---|
//! | `determinism-taint` (T1) | no unordered-iteration / entropy / wall-clock taint may flow into a sim-visible crate through a call chain |
//! | `byte-conservation` (C1) | byte-accounting counters mutate only via `checked_`/`saturating_` arithmetic, and every accounting field is pinned by at least one assertion or test |
//! | `panic-reach` (P1) | no `unwrap`/`expect`/`panic!` reachable from a policy entry point, wherever the panic site lives |
//! | `kernel-misuse` (K1) | kernel events are never scheduled with subtraction-derived (possibly past) timestamps, and hand-rolled event orderings must carry the `(at, seq)` tie-break |
//!
//! T1 and P1 are what the per-file D rules structurally cannot see: a
//! hazard *in one function* reaching a contract surface *in another*,
//! possibly across crates. Their findings carry the full call chain as
//! [`ChainFrame`] evidence.
//!
//! Suppression works exactly like the D rules (`pronglint:
//! allow(<rule>)` trailing or above the reported line). A
//! `pronglint: det-order` marker anywhere inside a function body clears
//! that function as an *unordered-iteration* taint source (the author
//! asserts the fold is order-independent or the order is fixed);
//! entropy and wall-clock sources are only clearable by `allow`.

use crate::graph::{CallGraph, NodeId};
use crate::lexer::TokenKind;
use crate::parser::ParsedFile;
use crate::rules::{
    ChainFrame, FileAnalysis, FileContext, Finding, POLICY_CRATES, SIM_VISIBLE_CRATES,
};
use std::collections::{BTreeMap, BTreeSet};

/// The byte-accounting fields whose conservation the C1 rule enforces:
/// the `restore_bytes == nominal + remote` decomposition (DESIGN.md §14)
/// and the Table 5 transfer pricing are computed from exactly these
/// counters, so a silent wrap in any of them corrupts a headline number.
pub const BYTE_ACCOUNTING_FIELDS: &[&str] = &[
    "bytes_transferred",
    "remote_bytes",
    "nominal_bytes_downloaded",
    "nominal_bytes_uploaded",
    "pinned_nominal_bytes",
    "replicated_bytes",
    "wire_bytes_downloaded",
    "wire_bytes_uploaded",
    "cache_hit_bytes",
];

/// What made a function a determinism-taint source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TaintKind {
    UnorderedIter,
    Entropy,
    WallClock,
}

impl TaintKind {
    fn describe(self) -> &'static str {
        match self {
            TaintKind::UnorderedIter => "iterates an unordered container",
            TaintKind::Entropy => "draws OS entropy",
            TaintKind::WallClock => "reads the wall clock",
        }
    }
}

/// One analyzed file, as the engine hands it to the interprocedural
/// rules.
pub struct XFile<'a> {
    /// File context.
    pub ctx: &'a FileContext,
    /// Source text.
    pub src: &'a str,
    /// Item parse.
    pub parsed: &'a ParsedFile,
    /// Per-file lexical analysis (test regions, markers, suppressions).
    pub fa: &'a FileAnalysis<'a>,
}

impl<'a> XFile<'a> {
    fn tok(&self, sig_idx: usize) -> &crate::lexer::Token {
        &self.parsed.tokens[self.parsed.sig[sig_idx]]
    }

    fn text(&self, sig_idx: usize) -> &str {
        self.tok(sig_idx).text(self.src)
    }

    fn is_punct(&self, sig_idx: usize, ch: &str) -> bool {
        sig_idx < self.parsed.sig.len()
            && self.tok(sig_idx).kind == TokenKind::Punct
            && self.text(sig_idx) == ch
    }

    fn is_ident_kind(&self, sig_idx: usize) -> bool {
        sig_idx < self.parsed.sig.len() && self.tok(sig_idx).kind == TokenKind::Ident
    }
}

/// Iteration-method names that, combined with a `HashMap`/`HashSet`
/// mention in the same body, mark a function as order-dependent.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
];

/// Scans a fn body (sig-index range) for direct taint sources; returns
/// `(kind, evidence_line)` for the strongest hit, or `None`.
fn direct_taint(file: &XFile<'_>, lo: usize, hi: usize) -> Option<(TaintKind, u32)> {
    let hi = hi.min(file.parsed.sig.len());
    let mut hash_container = false;
    let mut iter_line = None;
    for i in lo..hi {
        if !file.is_ident_kind(i) {
            continue;
        }
        let name = file.text(i);
        match name {
            "thread_rng" | "OsRng" | "from_entropy" => {
                return Some((TaintKind::Entropy, file.tok(i).line));
            }
            "Instant" | "SystemTime" => {
                if file.is_punct(i + 1, ":")
                    && file.is_punct(i + 2, ":")
                    && i + 3 < hi
                    && file.is_ident_kind(i + 3)
                    && file.text(i + 3) == "now"
                {
                    return Some((TaintKind::WallClock, file.tok(i).line));
                }
            }
            "HashMap" | "HashSet" => hash_container = true,
            _ => {
                if ITER_METHODS.contains(&name)
                    && i > lo
                    && file.is_punct(i - 1, ".")
                    && file.is_punct(i + 1, "(")
                    && iter_line.is_none()
                {
                    iter_line = Some(file.tok(i).line);
                }
            }
        }
    }
    match (hash_container, iter_line) {
        (true, Some(line)) => Some((TaintKind::UnorderedIter, line)),
        _ => None,
    }
}

/// Whether a det-order marker sits inside the fn's line range (decl line
/// or anywhere in the body), clearing it as an unordered-iter source.
fn det_order_clears(file: &XFile<'_>, def_idx: usize) -> bool {
    let def = &file.parsed.fns[def_idx];
    let (lo, hi) = match def.body_sig {
        Some(r) => r,
        None => return false,
    };
    let hi = hi.min(file.parsed.sig.len());
    if lo >= hi {
        return false;
    }
    let first = def.line.saturating_sub(1); // marker directly above the fn
    let last = file.tok(hi - 1).line;
    file.fa
        .det_order_lines()
        .iter()
        .any(|&m| m >= first && m <= last)
}

/// T1 — determinism taint crossing into sim-visible crates.
pub fn determinism_taint(files: &[XFile<'_>], graph: &CallGraph) -> Vec<Finding> {
    // 1. Direct sources, with det-order clearing for unordered-iter.
    let mut source_info: BTreeMap<NodeId, (TaintKind, u32)> = BTreeMap::new();
    for (id, node) in graph.nodes.iter().enumerate() {
        if node.in_test_scope {
            continue;
        }
        let file = &files[node.file_idx];
        let def = &file.parsed.fns[node.fn_idx];
        let Some((lo, hi)) = def.body_sig else {
            continue;
        };
        let Some((kind, line)) = direct_taint(file, lo, hi) else {
            continue;
        };
        if kind == TaintKind::UnorderedIter && det_order_clears(file, node.fn_idx) {
            continue;
        }
        source_info.insert(id, (kind, line));
    }
    let sources: Vec<NodeId> = source_info.keys().copied().collect();
    if sources.is_empty() {
        return Vec::new();
    }
    // 2. Everything that reaches a source carries taint.
    let carriers = graph.reaching(&sources);
    let source_set: BTreeSet<NodeId> = sources.iter().copied().collect();
    // 3. Report each crossing edge: sim-visible caller -> tainted callee
    //    outside the sim-visible set.
    let mut out = Vec::new();
    let mut reported: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();
    for (f_id, f_node) in graph.nodes.iter().enumerate() {
        if f_node.in_test_scope || !SIM_VISIBLE_CRATES.contains(&f_node.crate_name.as_str()) {
            continue;
        }
        for edge in &graph.calls[f_id] {
            let g_id = edge.to;
            let g_node = &graph.nodes[g_id];
            if g_node.in_test_scope
                || SIM_VISIBLE_CRATES.contains(&g_node.crate_name.as_str())
                || !carriers.contains(&g_id)
                || !reported.insert((f_id, g_id))
            {
                continue;
            }
            let Some(path) = graph.chain_to(g_id, &source_set) else {
                continue;
            };
            let src_id = *path.last().expect("chain_to returns non-empty paths");
            let (kind, src_line) = source_info[&src_id];
            let mut chain = vec![ChainFrame {
                func: f_node.qual_name.clone(),
                file: f_node.file.clone(),
                line: edge.line,
            }];
            for (i, &nid) in path.iter().enumerate() {
                let n = &graph.nodes[nid];
                chain.push(ChainFrame {
                    func: n.qual_name.clone(),
                    file: n.file.clone(),
                    line: if i + 1 == path.len() {
                        src_line
                    } else {
                        n.line
                    },
                });
            }
            let src_node = &graph.nodes[src_id];
            out.push(Finding {
                file: f_node.file.clone(),
                line: edge.line,
                rule: "determinism-taint",
                message: format!(
                    "`{}` in sim-visible crate `{}` calls `{}`, which (transitively) \
                     reaches `{}` ({} at {}:{}): nondeterminism a function boundary \
                     away still shifts fixed-seed results; fix the source, mark it \
                     `// pronglint: det-order — <why>` if the order is provably \
                     fixed, or annotate `// pronglint: allow(determinism-taint): <why>`",
                    f_node.qual_name,
                    f_node.crate_name,
                    g_node.qual_name,
                    src_node.qual_name,
                    kind.describe(),
                    src_node.file,
                    src_line,
                ),
                chain,
            });
        }
    }
    out
}

/// C1 — byte-counter mutations must be overflow-safe, and every
/// accounting field must be pinned by an assertion or test somewhere in
/// the workspace.
pub fn byte_conservation(files: &[XFile<'_>]) -> Vec<Finding> {
    let mut out = Vec::new();
    // Workspace-wide evidence that a field is covered by an invariant:
    // the name appears in test scope, or on a line that also asserts.
    let mut covered: BTreeSet<&str> = BTreeSet::new();
    // First declaration site per field: (file order, line, path).
    let mut decls: BTreeMap<&str, (usize, u32, String)> = BTreeMap::new();
    for (file_order, file) in files.iter().enumerate() {
        let n = file.parsed.sig.len();
        // Lines in this file that carry an assert-family macro.
        let assert_lines: BTreeSet<u32> = (0..n)
            .filter(|&i| {
                file.is_ident_kind(i)
                    && (file.text(i).starts_with("assert")
                        || file.text(i).starts_with("debug_assert"))
            })
            .map(|i| file.tok(i).line)
            .collect();
        for i in 0..n {
            if !file.is_ident_kind(i) {
                continue;
            }
            let name = file.text(i);
            let Some(&field) = BYTE_ACCOUNTING_FIELDS.iter().find(|&&f| f == name) else {
                continue;
            };
            let t = file.tok(i);
            let in_test = file.fa.in_test_scope(t.start);
            if in_test || assert_lines.contains(&t.line) {
                covered.insert(field);
            }
            if in_test {
                continue;
            }
            // Declaration site: `field: u64`.
            if file.is_punct(i + 1, ":")
                && !file.is_punct(i + 2, ":")
                && i + 2 < n
                && file.is_ident_kind(i + 2)
                && matches!(file.text(i + 2), "u64" | "usize")
            {
                decls
                    .entry(field)
                    .or_insert((file_order, t.line, file.ctx.path.clone()));
            }
            // Compound mutation: `field += …` / `field -= …`.
            if (file.is_punct(i + 1, "+") || file.is_punct(i + 1, "-")) && file.is_punct(i + 2, "=")
            {
                let op = if file.is_punct(i + 1, "+") {
                    "+="
                } else {
                    "-="
                };
                out.push(Finding::new(
                    file.ctx.path.clone(),
                    t.line,
                    "byte-conservation",
                    format!(
                        "`{field} {op} …` mutates a byte-accounting counter with \
                         unchecked arithmetic: a silent wrap corrupts the Table 5 \
                         byte decomposition; use `{field} = {field}.saturating_add(…)` \
                         (or `checked_add` with a typed error), or annotate \
                         `// pronglint: allow(byte-conservation): <why>`"
                    ),
                ));
                continue;
            }
            // Plain assignment with bare arithmetic on the RHS:
            // `field = <expr with + or - and no checked_/saturating_>`.
            if file.is_punct(i + 1, "=")
                && !file.is_punct(i + 2, "=")
                && !(i > 0
                    && (file.is_punct(i - 1, "=")
                        || file.is_punct(i - 1, "!")
                        || file.is_punct(i - 1, "<")
                        || file.is_punct(i - 1, ">")))
            {
                let mut j = i + 2;
                let mut bare_arith = false;
                let mut guarded = false;
                while j < n && !file.is_punct(j, ";") && !file.is_punct(j, "}") {
                    if file.is_punct(j, "+") || file.is_punct(j, "-") {
                        // `->` in a closure/return type is not arithmetic.
                        if !(file.is_punct(j, "-") && file.is_punct(j + 1, ">")) {
                            bare_arith = true;
                        }
                    }
                    if file.is_ident_kind(j) {
                        let t2 = file.text(j);
                        if t2.starts_with("checked_") || t2.starts_with("saturating_") {
                            guarded = true;
                        }
                    }
                    j += 1;
                }
                if bare_arith && !guarded {
                    out.push(Finding::new(
                        file.ctx.path.clone(),
                        t.line,
                        "byte-conservation",
                        format!(
                            "`{field} = …` assigns a byte-accounting counter from bare \
                             `+`/`-` arithmetic: use `saturating_add`/`checked_add` so \
                             an overflow cannot silently wrap the Table 5 accounting, \
                             or annotate `// pronglint: allow(byte-conservation): <why>`"
                        ),
                    ));
                }
            }
        }
    }
    // Coverage: every declared accounting field must be pinned somewhere.
    for (field, (_, line, path)) in &decls {
        if !covered.contains(field) {
            out.push(Finding::new(
                path.clone(),
                *line,
                "byte-conservation",
                format!(
                    "accounting field `{field}` is not referenced by any invariant \
                     assertion or test in the workspace: add a conservation check \
                     (e.g. to a proptest or an integration test) so regressions in \
                     the byte decomposition are caught"
                ),
            ));
        }
    }
    out
}

/// P1 — panic sites reachable from policy entry points, wherever they
/// live.
pub fn panic_reach(files: &[XFile<'_>], graph: &CallGraph) -> Vec<Finding> {
    let entries: Vec<NodeId> = graph
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| {
            n.is_pub && !n.in_test_scope && POLICY_CRATES.contains(&n.crate_name.as_str())
        })
        .map(|(id, _)| id)
        .collect();
    if entries.is_empty() {
        return Vec::new();
    }
    let reach = graph.reachable_from(&entries);
    let entry_set: BTreeSet<NodeId> = entries.iter().copied().collect();
    let mut out = Vec::new();
    for &h_id in &reach {
        let h = &graph.nodes[h_id];
        if h.in_test_scope
            || POLICY_CRATES.contains(&h.crate_name.as_str()) // D3's beat
            || !SIM_VISIBLE_CRATES.contains(&h.crate_name.as_str())
        {
            continue;
        }
        let file = &files[h.file_idx];
        let def = &file.parsed.fns[h.fn_idx];
        let Some((lo, hi)) = def.body_sig else {
            continue;
        };
        let hi = hi.min(file.parsed.sig.len());
        for i in lo..hi {
            if !file.is_ident_kind(i) {
                continue;
            }
            let name = file.text(i);
            let hit = match name {
                "unwrap" | "expect" => {
                    i > lo && file.is_punct(i - 1, ".") && file.is_punct(i + 1, "(")
                }
                "panic" | "unreachable" | "todo" | "unimplemented" => file.is_punct(i + 1, "!"),
                _ => false,
            };
            if !hit || file.fa.in_test_scope(file.tok(i).start) {
                continue;
            }
            let line = file.tok(i).line;
            // Shortest chain from any entry point down to this function.
            let chain_ids = graph
                .chain_between(&entry_set, h_id)
                .unwrap_or_else(|| vec![h_id]);
            let mut chain: Vec<ChainFrame> = chain_ids
                .iter()
                .map(|&nid| {
                    let n = &graph.nodes[nid];
                    ChainFrame {
                        func: n.qual_name.clone(),
                        file: n.file.clone(),
                        line: n.line,
                    }
                })
                .collect();
            if let Some(last) = chain.last_mut() {
                last.line = line;
            }
            let entry = &graph.nodes[chain_ids[0]];
            out.push(Finding {
                file: h.file.clone(),
                line,
                rule: "panic-reach",
                message: format!(
                    "`{name}` in `{}` is reachable from policy entry point \
                     `{}::{}` ({} call{}): a panic here aborts the policy decision \
                     path; surface a typed error, prove the invariant locally, or \
                     annotate `// pronglint: allow(panic-reach): <why>`",
                    h.qual_name,
                    entry.crate_name,
                    entry.qual_name,
                    chain_ids.len() - 1,
                    if chain_ids.len() == 2 { "" } else { "s" },
                ),
                chain,
            });
        }
    }
    out
}

/// K1 — kernel-API misuse: subtraction-derived schedule timestamps, and
/// hand-rolled event orderings missing the `(at, seq)` tie-break.
pub fn kernel_misuse(files: &[XFile<'_>]) -> Vec<Finding> {
    let mut out = Vec::new();
    for file in files {
        if !SIM_VISIBLE_CRATES.contains(&file.ctx.crate_name.as_str()) {
            continue;
        }
        let n = file.parsed.sig.len();
        let is_sim_crate = file.ctx.crate_name == "sim";
        for i in 0..n {
            if !file.is_ident_kind(i) || file.fa.in_test_scope(file.tok(i).start) {
                continue;
            }
            let name = file.text(i);
            // K1a: `.schedule(<expr with '-'>, …)` — a subtraction-derived
            // timestamp can land in the past, where the kernel silently
            // clamps to `now` and reorders the event against its peers.
            if name == "schedule" && i > 0 && file.is_punct(i - 1, ".") && file.is_punct(i + 1, "(")
            {
                let mut j = i + 2;
                let mut depth = 1usize;
                let mut minus = false;
                let mut guarded = false;
                while j < n && depth > 0 {
                    if file.is_punct(j, "(") {
                        depth += 1;
                    } else if file.is_punct(j, ")") {
                        depth -= 1;
                    } else if depth == 1 && file.is_punct(j, ",") {
                        break; // first argument only
                    } else if file.is_punct(j, "-") && !file.is_punct(j + 1, ">") {
                        minus = true;
                    } else if file.is_ident_kind(j) {
                        let t2 = file.text(j);
                        if t2.starts_with("saturating_")
                            || t2.starts_with("checked_")
                            || t2 == "max"
                        {
                            guarded = true;
                        }
                    }
                    j += 1;
                }
                if minus && !guarded {
                    out.push(Finding::new(
                        file.ctx.path.clone(),
                        file.tok(i).line,
                        "kernel-misuse",
                        "`.schedule(…)` with a subtraction-derived timestamp: if the \
                         expression underflows past `now`, the kernel clamps it and \
                         the event silently reorders against same-instant peers; use \
                         `saturating_sub`/`max(now)` so the clamp is explicit, or \
                         annotate `// pronglint: allow(kernel-misuse): <why>`"
                            .to_string(),
                    ));
                }
            }
            // K1b: `impl Ord`/`impl PartialOrd` over event-like state
            // (mentions `at`/`SimTime`) without the `seq` tie-break.
            if name == "impl" {
                let mut j = i + 1;
                let mut is_ord = false;
                while j < n && !file.is_punct(j, "{") && !file.is_punct(j, ";") {
                    if file.is_ident_kind(j) && matches!(file.text(j), "Ord" | "PartialOrd") {
                        is_ord = true;
                    }
                    j += 1;
                }
                if is_ord && j < n && file.is_punct(j, "{") {
                    let mut depth = 0usize;
                    let mut k = j;
                    let (mut has_time, mut has_seq) = (false, false);
                    while k < n {
                        if file.is_punct(k, "{") {
                            depth += 1;
                        } else if file.is_punct(k, "}") {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        } else if file.is_ident_kind(k) {
                            match file.text(k) {
                                "at" | "SimTime" => has_time = true,
                                "seq" => has_seq = true,
                                _ => {}
                            }
                        }
                        k += 1;
                    }
                    if has_time && !has_seq {
                        out.push(Finding::new(
                            file.ctx.path.clone(),
                            file.tok(i).line,
                            "kernel-misuse",
                            "`Ord`/`PartialOrd` over event time without a `seq` \
                             tie-break: same-instant events would compare equal and \
                             pop in container order, breaking the kernel's \
                             `(at, seq)` determinism contract; compare \
                             `(at, seq)` tuples, or annotate \
                             `// pronglint: allow(kernel-misuse): <why>`"
                                .to_string(),
                        ));
                    }
                }
            }
            // K1c: a hand-rolled `BinaryHeap` future-event list outside
            // the sim crate (enum-variant references `Kind::BinaryHeap`
            // are path-prefixed and skipped).
            if name == "BinaryHeap"
                && !is_sim_crate
                && !(i >= 2 && file.is_punct(i - 1, ":") && file.is_punct(i - 2, ":"))
            {
                let mentions_simtime = (0..n).any(|k| {
                    file.is_ident_kind(k)
                        && file.text(k) == "SimTime"
                        && !file.fa.in_test_scope(file.tok(k).start)
                });
                if mentions_simtime {
                    out.push(Finding::new(
                        file.ctx.path.clone(),
                        file.tok(i).line,
                        "kernel-misuse",
                        "hand-rolled `BinaryHeap` event list in a crate that handles \
                         `SimTime`: the pop order of a bare heap has no `(at, seq)` \
                         FIFO tie-break; drive events through `pronghorn_sim::Kernel`, \
                         or annotate `// pronglint: allow(kernel-misuse): <why>`"
                            .to_string(),
                    ));
                }
            }
        }
    }
    out
}

//! Human and JSON rendering of a pronglint run.

use crate::baseline::Ratchet;
use crate::json::{self, Value};
use crate::rules::{Finding, ALL_RULES};
use std::fmt::Write as _;

/// Version tag of the machine-readable findings schema. Bump only with a
/// breaking change; CI validates every `--json` artifact against it.
pub const SCHEMA_VERSION: u32 = 2;

/// Renders the human-readable report: one `file:line: [rule] message` per
/// finding (regressions first, interprocedural call chains indented
/// below), then the improvement notes and a summary.
pub fn human(r: &Ratchet) -> String {
    let mut out = String::new();
    for f in &r.regressions {
        let _ = writeln!(out, "{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
        for (i, frame) in f.chain.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {} {} ({}:{})",
                if i == 0 { "chain:" } else { "    ->" },
                frame.func,
                frame.file,
                frame.line
            );
        }
    }
    if !r.baselined.is_empty() {
        let _ = writeln!(
            out,
            "note: {} baselined finding(s) tolerated (see analysis/baseline.toml)",
            r.baselined.len()
        );
    }
    for (rule, file, was, now) in &r.improvements {
        let _ = writeln!(
            out,
            "note: {file} [{rule}] improved {was} -> {now}; run with --update-baseline to ratchet"
        );
    }
    if r.passed() {
        let _ = writeln!(out, "pronglint: OK");
    } else {
        let _ = writeln!(
            out,
            "pronglint: FAILED — {} new finding(s) beyond the baseline",
            r.regressions.len()
        );
    }
    out
}

/// Renders the machine-readable JSON report (schema
/// [`SCHEMA_VERSION`]; validated by [`validate`]).
pub fn json(r: &Ratchet) -> String {
    let mut out = format!("{{\n  \"schema_version\": {SCHEMA_VERSION},\n  \"regressions\": [");
    append_findings(&mut out, &r.regressions);
    out.push_str("],\n  \"baselined\": [");
    append_findings(&mut out, &r.baselined);
    out.push_str("],\n  \"improvements\": [");
    for (i, (rule, file, was, now)) in r.improvements.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"baselined\": {}, \"current\": {}}}",
            escape(rule),
            escape(file),
            was,
            now
        );
    }
    if !r.improvements.is_empty() {
        out.push_str("\n  ");
    }
    let _ = write!(out, "],\n  \"passed\": {}\n}}\n", r.passed());
    out
}

fn append_findings(out: &mut String, findings: &[Finding]) {
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\", \"chain\": [",
            escape(f.rule),
            escape(&f.file),
            f.line,
            escape(&f.message)
        );
        for (j, frame) in f.chain.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "{{\"func\": \"{}\", \"file\": \"{}\", \"line\": {}}}",
                escape(&frame.func),
                escape(&frame.file),
                frame.line
            );
        }
        out.push_str("]}");
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
}

/// Validates `text` against the findings schema: parses as JSON and
/// checks every structural requirement of schema [`SCHEMA_VERSION`].
/// Returns a description of the first violation.
pub fn validate(text: &str) -> Result<(), String> {
    let doc = json::parse(text).map_err(|e| e.to_string())?;
    let obj = doc.as_object().ok_or("top level must be an object")?;
    match doc.get("schema_version").and_then(Value::as_f64) {
        Some(v) if v == f64::from(SCHEMA_VERSION) => {}
        Some(v) => return Err(format!("schema_version {v} != {SCHEMA_VERSION}")),
        None => return Err("missing numeric `schema_version`".into()),
    }
    doc.get("passed")
        .and_then(Value::as_bool)
        .ok_or("missing boolean `passed`")?;
    for key in ["regressions", "baselined"] {
        let items = doc
            .get(key)
            .and_then(Value::as_array)
            .ok_or_else(|| format!("missing array `{key}`"))?;
        for (i, f) in items.iter().enumerate() {
            let at = |msg: &str| format!("{key}[{i}]: {msg}");
            let rule = f
                .get("rule")
                .and_then(Value::as_str)
                .ok_or_else(|| at("missing string `rule`"))?;
            if !ALL_RULES.contains(&rule) {
                return Err(at(&format!("unknown rule `{rule}`")));
            }
            f.get("file")
                .and_then(Value::as_str)
                .ok_or_else(|| at("missing string `file`"))?;
            let line = f
                .get("line")
                .and_then(Value::as_f64)
                .ok_or_else(|| at("missing numeric `line`"))?;
            if line < 1.0 || line.fract() != 0.0 {
                return Err(at("`line` must be a positive integer"));
            }
            f.get("message")
                .and_then(Value::as_str)
                .ok_or_else(|| at("missing string `message`"))?;
            let chain = f
                .get("chain")
                .and_then(Value::as_array)
                .ok_or_else(|| at("missing array `chain`"))?;
            for (j, frame) in chain.iter().enumerate() {
                let fat = |msg: &str| format!("{key}[{i}].chain[{j}]: {msg}");
                frame
                    .get("func")
                    .and_then(Value::as_str)
                    .ok_or_else(|| fat("missing string `func`"))?;
                frame
                    .get("file")
                    .and_then(Value::as_str)
                    .ok_or_else(|| fat("missing string `file`"))?;
                frame
                    .get("line")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| fat("missing numeric `line`"))?;
            }
        }
    }
    let improvements = doc
        .get("improvements")
        .and_then(Value::as_array)
        .ok_or("missing array `improvements`")?;
    for (i, imp) in improvements.iter().enumerate() {
        for key in ["rule", "file"] {
            imp.get(key)
                .and_then(Value::as_str)
                .ok_or_else(|| format!("improvements[{i}]: missing string `{key}`"))?;
        }
        for key in ["baselined", "current"] {
            imp.get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("improvements[{i}]: missing numeric `{key}`"))?;
        }
    }
    // No unexpected top-level keys: the schema is closed by design so
    // consumers can rely on exhaustive knowledge of it.
    for key in obj.keys() {
        if !matches!(
            key.as_str(),
            "schema_version" | "regressions" | "baselined" | "improvements" | "passed"
        ) {
            return Err(format!("unexpected top-level key `{key}`"));
        }
    }
    Ok(())
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::{ratchet, Baseline};

    fn sample() -> Ratchet {
        let findings = vec![Finding::new(
            "crates/core/src/x.rs".into(),
            4,
            "panic-path",
            "say \"no\" to panics".into(),
        )];
        ratchet(&findings, &Baseline::empty())
    }

    #[test]
    fn human_report_names_file_line_rule() {
        let text = human(&sample());
        assert!(text.contains("crates/core/src/x.rs:4: [panic-path]"));
        assert!(text.contains("FAILED"));
        let ok = human(&ratchet(&[], &Baseline::empty()));
        assert_eq!(ok, "pronglint: OK\n");
    }

    #[test]
    fn json_report_escapes_and_flags() {
        let text = json(&sample());
        assert!(text.contains("\\\"no\\\""));
        assert!(text.contains("\"passed\": false"));
        assert!(json(&ratchet(&[], &Baseline::empty())).contains("\"passed\": true"));
    }

    #[test]
    fn json_schema_round_trips_with_chains() {
        let mut finding = Finding::new(
            "crates/core/src/x.rs".into(),
            4,
            "determinism-taint",
            "taint \"flows\" here".into(),
        );
        finding.chain = vec![
            crate::rules::ChainFrame {
                func: "Orchestrator::decide".into(),
                file: "crates/core/src/x.rs".into(),
                line: 4,
            },
            crate::rules::ChainFrame {
                func: "shuffle_like".into(),
                file: "crates/util/src/lib.rs".into(),
                line: 9,
            },
        ];
        let r = ratchet(&[finding.clone()], &Baseline::empty());
        let text = json(&r);
        validate(&text).expect("schema-valid");
        // Field-level round trip through the JSON reader.
        let doc = json::parse(&text).unwrap();
        let f = &doc.get("regressions").unwrap().as_array().unwrap()[0];
        assert_eq!(f.get("rule").unwrap().as_str(), Some("determinism-taint"));
        assert_eq!(f.get("file").unwrap().as_str(), Some(finding.file.as_str()));
        assert_eq!(f.get("line").unwrap().as_f64(), Some(4.0));
        assert_eq!(
            f.get("message").unwrap().as_str(),
            Some(finding.message.as_str())
        );
        let chain = f.get("chain").unwrap().as_array().unwrap();
        assert_eq!(chain.len(), 2);
        assert_eq!(chain[1].get("func").unwrap().as_str(), Some("shuffle_like"));
        assert_eq!(chain[1].get("line").unwrap().as_f64(), Some(9.0));
        // The empty report is valid too.
        validate(&json(&ratchet(&[], &Baseline::empty()))).expect("empty report valid");
    }

    #[test]
    fn validate_rejects_off_schema_documents() {
        for (bad, why) in [
            ("{}", "missing everything"),
            (
                "{\"schema_version\": 1, \"regressions\": [], \"baselined\": [], \
                 \"improvements\": [], \"passed\": true}",
                "wrong version",
            ),
            (
                "{\"schema_version\": 2, \"regressions\": [{\"rule\": \"nope\", \
                 \"file\": \"f\", \"line\": 1, \"message\": \"m\", \"chain\": []}], \
                 \"baselined\": [], \"improvements\": [], \"passed\": true}",
                "unknown rule",
            ),
            (
                "{\"schema_version\": 2, \"regressions\": [], \"baselined\": [], \
                 \"improvements\": [], \"passed\": true, \"extra\": 1}",
                "unexpected key",
            ),
        ] {
            assert!(validate(bad).is_err(), "accepted {why}: {bad}");
        }
    }

    #[test]
    fn human_report_renders_chains_indented() {
        let mut finding = Finding::new("a.rs".into(), 1, "panic-reach", "m".into());
        finding.chain = vec![
            crate::rules::ChainFrame {
                func: "entry".into(),
                file: "a.rs".into(),
                line: 1,
            },
            crate::rules::ChainFrame {
                func: "leaf".into(),
                file: "b.rs".into(),
                line: 7,
            },
        ];
        let text = human(&ratchet(&[finding], &Baseline::empty()));
        assert!(text.contains("chain: entry (a.rs:1)"));
        assert!(text.contains("-> leaf (b.rs:7)"));
    }
}

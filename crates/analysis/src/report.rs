//! Human and JSON rendering of a pronglint run.

use crate::baseline::Ratchet;
use crate::rules::Finding;
use std::fmt::Write as _;

/// Renders the human-readable report: one `file:line: [rule] message` per
/// finding (regressions first), then the improvement notes and a summary.
pub fn human(r: &Ratchet) -> String {
    let mut out = String::new();
    for f in &r.regressions {
        let _ = writeln!(out, "{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
    }
    if !r.baselined.is_empty() {
        let _ = writeln!(
            out,
            "note: {} baselined finding(s) tolerated (see analysis/baseline.toml)",
            r.baselined.len()
        );
    }
    for (rule, file, was, now) in &r.improvements {
        let _ = writeln!(
            out,
            "note: {file} [{rule}] improved {was} -> {now}; run with --update-baseline to ratchet"
        );
    }
    if r.passed() {
        let _ = writeln!(out, "pronglint: OK");
    } else {
        let _ = writeln!(
            out,
            "pronglint: FAILED — {} new finding(s) beyond the baseline",
            r.regressions.len()
        );
    }
    out
}

/// Renders the machine-readable JSON report.
pub fn json(r: &Ratchet) -> String {
    let mut out = String::from("{\n  \"regressions\": [");
    append_findings(&mut out, &r.regressions);
    out.push_str("],\n  \"baselined\": [");
    append_findings(&mut out, &r.baselined);
    out.push_str("],\n  \"improvements\": [");
    for (i, (rule, file, was, now)) in r.improvements.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"baselined\": {}, \"current\": {}}}",
            escape(rule),
            escape(file),
            was,
            now
        );
    }
    if !r.improvements.is_empty() {
        out.push_str("\n  ");
    }
    let _ = write!(out, "],\n  \"passed\": {}\n}}\n", r.passed());
    out
}

fn append_findings(out: &mut String, findings: &[Finding]) {
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
            escape(f.rule),
            escape(&f.file),
            f.line,
            escape(&f.message)
        );
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::{ratchet, Baseline};

    fn sample() -> Ratchet {
        let findings = vec![Finding {
            file: "crates/core/src/x.rs".into(),
            line: 4,
            rule: "panic-path",
            message: "say \"no\" to panics".into(),
        }];
        ratchet(&findings, &Baseline::empty())
    }

    #[test]
    fn human_report_names_file_line_rule() {
        let text = human(&sample());
        assert!(text.contains("crates/core/src/x.rs:4: [panic-path]"));
        assert!(text.contains("FAILED"));
        let ok = human(&ratchet(&[], &Baseline::empty()));
        assert_eq!(ok, "pronglint: OK\n");
    }

    #[test]
    fn json_report_escapes_and_flags() {
        let text = json(&sample());
        assert!(text.contains("\\\"no\\\""));
        assert!(text.contains("\"passed\": false"));
        assert!(json(&ratchet(&[], &Baseline::empty())).contains("\"passed\": true"));
    }
}

//! The Pronghorn invariant rules (D1–D5) and the context engine that
//! evaluates them over a lexed file.
//!
//! Every rule guards the determinism contract the evaluation grid depends
//! on (see DESIGN.md §10): fixed-seed runs must replay bit-identically, so
//! nothing order-sensitive, clock-sensitive, or panicky may sit on a
//! sim-visible path. Rules are line/context aware, not purely textual:
//! comments and string literals are opaque (the lexer classifies them),
//! test code is exempt where the rule says so, and per-line suppressions
//! plus the `det-order` marker are honored.
//!
//! | rule id | invariant |
//! |---|---|
//! | `unordered-iter` | no `HashMap`/`HashSet` in sim-visible crates |
//! | `wall-clock` | no `Instant::now`/`SystemTime::now`/`thread_rng` outside bench/experiments |
//! | `panic-path` | no `unwrap()`/`expect()`/`panic!` in policy-crate library code |
//! | `crate-hygiene` | crate roots carry `#![forbid(unsafe_code)]` (+ missing-docs lint for libs) |
//! | `float-accum` | f64 reductions in core/metrics carry the `det-order` marker |
//!
//! Suppression syntax, trailing the offending line or in a comment
//! (possibly multi-line) directly above it:
//!
//! ```text
//! // pronglint: allow(unordered-iter): justification here
//! ```
//!
//! Deterministic-order marker (rule `float-accum` only), anywhere in the
//! statement or on the line above it:
//!
//! ```text
//! // pronglint: det-order — slice iteration, fixed order
//! ```

use crate::lexer::{lex, Token, TokenKind};
use std::collections::BTreeSet;

/// Crates whose state or RNG draws are visible to the deterministic
/// simulation: any iteration-order dependence here can shift fixed-seed
/// results (rule `unordered-iter`, and the taint sink set of rule
/// `determinism-taint`). `cluster` and `restore` joined in v2 — their
/// locality and paging decisions feed the policy streams just as directly
/// as the original eight.
pub const SIM_VISIBLE_CRATES: &[&str] = &[
    "core",
    "sim",
    "checkpoint",
    "store",
    "kv",
    "jit",
    "platform",
    "metrics",
    "cluster",
    "restore",
];

/// Crates allowed to read wall clocks and OS entropy (rule `wall-clock`):
/// the host-side measurement harnesses, never the simulation itself.
pub const CLOCK_EXEMPT_CRATES: &[&str] = &["bench", "experiments"];

/// Policy crates whose library paths must surface typed errors instead of
/// panicking (rule `panic-path`).
pub const POLICY_CRATES: &[&str] = &["core", "checkpoint"];

/// Crates whose f64 reductions must be marked order-deterministic (rule
/// `float-accum`): the policy math and the statistics it feeds.
pub const FLOAT_ORDER_CRATES: &[&str] = &["core", "metrics"];

/// All rule identifiers, in catalog order: the per-file D family
/// (lexical, one file at a time), the interprocedural v2 family
/// (evaluated over the workspace call graph — see [`crate::xrules`]),
/// and the suppression audit.
pub const ALL_RULES: &[&str] = &[
    "unordered-iter",
    "wall-clock",
    "panic-path",
    "crate-hygiene",
    "float-accum",
    "determinism-taint",
    "byte-conservation",
    "panic-reach",
    "kernel-misuse",
    "unused-suppression",
];

/// The long-form explanation of a rule (the `--explain <rule>` text), or
/// `None` for an unknown rule id. Every id in [`ALL_RULES`] has one —
/// pinned by a test.
pub fn explain(rule: &str) -> Option<&'static str> {
    Some(match rule {
        "unordered-iter" => {
            "unordered-iter (D1, per-file)\n\
             No `HashMap`/`HashSet` in sim-visible crates.\n\n\
             Pronghorn's headline numbers come from fixed-seed deterministic\n\
             simulation: the same seed must replay the same decision stream\n\
             byte for byte. `std` hash containers randomize iteration order\n\
             per process, so any fold, selection, or tie-break over one can\n\
             differ run to run without failing a single test. Use\n\
             `BTreeMap`/`BTreeSet` (or another ordered container), or — if\n\
             the use is provably order-independent — suppress with\n\
             `// pronglint: allow(unordered-iter): <why>`."
        }
        "wall-clock" => {
            "wall-clock (D2, per-file)\n\
             No `Instant::now`/`SystemTime::now`/`thread_rng`/`from_entropy`\n\
             outside the clock-exempt harness crates (bench, experiments).\n\n\
             Simulated components must take time from `SimTime` and\n\
             randomness from the seeded `RngFactory` streams; a host clock\n\
             or OS entropy read anywhere else leaks nondeterminism into the\n\
             replay. Measurement harnesses that time the *host* are exempt\n\
             by crate."
        }
        "panic-path" => {
            "panic-path (D3, per-file)\n\
             No `unwrap()`/`expect()`/`panic!` in policy-crate library code\n\
             (core, checkpoint).\n\n\
             The policy crates decide checkpoint/restore orchestration; a\n\
             panic there aborts the whole simulated fleet instead of\n\
             degrading one decision. Return typed errors or prove the\n\
             invariant locally; tests are exempt."
        }
        "crate-hygiene" => {
            "crate-hygiene (D4, per-file)\n\
             Every crate root carries `#![forbid(unsafe_code)]`; library\n\
             roots also carry a missing-docs lint.\n\n\
             \"Crate root\" includes every integration-test, bench, and\n\
             example file: each one compiles as its own crate, so a root\n\
             attribute in `src/lib.rs` does not cover them. `forbid` (not\n\
             `deny`) so no downstream `allow` can reopen the hole."
        }
        "float-accum" => {
            "float-accum (D5, per-file)\n\
             f64 reductions in core/metrics carry the\n\
             `// pronglint: det-order` marker.\n\n\
             Float addition is not associative: summing in a different\n\
             order changes the low bits, which compound through EWMA and\n\
             softmax weights into different decisions. The marker is an\n\
             auditable claim that the reduction order is fixed."
        }
        "determinism-taint" => {
            "determinism-taint (T1, interprocedural)\n\
             No call chain from a sim-visible crate may reach a function\n\
             that iterates an unordered container, draws OS entropy, or\n\
             reads a wall clock.\n\n\
             D1/D2 check single files; this rule runs on the workspace call\n\
             graph, so nondeterminism one function boundary away (in a\n\
             helper crate the per-file rules exempt) is still caught. The\n\
             finding is reported at the crossing call site in the\n\
             sim-visible crate and carries the full call chain down to the\n\
             taint source. Clear an unordered-iteration source with a\n\
             `// pronglint: det-order — <why>` marker inside the source\n\
             function if its result is provably order-independent; entropy\n\
             and clock sources need a per-site allow."
        }
        "byte-conservation" => {
            "byte-conservation (C1, workspace)\n\
             Byte-accounting counters (`bytes_transferred`, `remote_bytes`,\n\
             `nominal_bytes_downloaded`, `nominal_bytes_uploaded`,\n\
             `pinned_nominal_bytes`, `replicated_bytes`) mutate only\n\
             through `checked_`/`saturating_` arithmetic, and every such\n\
             field is pinned by at least one assertion or test.\n\n\
             The Table 5 byte decomposition is summed across millions of\n\
             simulated events; a silent u64 wrap corrupts a headline number\n\
             while every test stays green. Use\n\
             `pronghorn_store::saturating_accumulate` (or\n\
             `checked_accumulate` where an error channel exists)."
        }
        "panic-reach" => {
            "panic-reach (P1, interprocedural)\n\
             No `unwrap`/`expect`/`panic!` reachable from a public policy\n\
             entry point (core, checkpoint), wherever the panic site\n\
             lives.\n\n\
             D3 covers panic sites *inside* the policy crates; this rule\n\
             walks the call graph from policy entry points outward, so a\n\
             panicky helper in store/kv/restore that a policy decision\n\
             path calls is caught too. The finding carries the\n\
             entry-to-panic call chain."
        }
        "kernel-misuse" => {
            "kernel-misuse (K1, per-file over sim-visible crates)\n\
             Kernel events are scheduled safely: (a) no\n\
             `.schedule(<subtraction-derived time>, ..)` — underflow past\n\
             `now` makes the kernel clamp silently and reorder the event\n\
             against same-instant peers; use `saturating_sub`/`max(now)`\n\
             so the clamp is explicit; (b) any `Ord`/`PartialOrd` over\n\
             event time must include the `seq` tie-break the kernel's\n\
             `(at, seq)` FIFO contract requires; (c) no hand-rolled\n\
             `BinaryHeap` future-event lists outside `pronghorn_sim`."
        }
        "unused-suppression" => {
            "unused-suppression (audit, workspace)\n\
             Every `// pronglint: allow(<rule>): <why>` must suppress at\n\
             least one live finding.\n\n\
             A stale allow is a hole a future regression walks through\n\
             unseen — the comment reads like protection while suppressing\n\
             nothing (wrong line, fixed code, or a rule the crate is\n\
             already exempt from). Delete it, or keep a deliberately\n\
             dormant one alive with\n\
             `// pronglint: allow(unused-suppression): <why>`."
        }
        _ => return None,
    })
}

/// One frame of an interprocedural evidence chain: caller to callee,
/// down to the line of the actual hazard.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct ChainFrame {
    /// Qualified function name (`Type::method` or bare fn).
    pub func: String,
    /// Repo-relative file of the function.
    pub file: String,
    /// 1-based line (the call site, or the hazard itself for the last
    /// frame).
    pub line: u32,
}

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Repo-relative path, forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Rule identifier (one of [`ALL_RULES`]).
    pub rule: &'static str,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
    /// Interprocedural evidence (empty for per-file rules): the call
    /// chain from the flagged function down to the hazard.
    pub chain: Vec<ChainFrame>,
}

impl Finding {
    /// A finding with no interprocedural chain.
    pub fn new(file: String, line: u32, rule: &'static str, message: String) -> Self {
        Finding {
            file,
            line,
            rule,
            message,
            chain: Vec::new(),
        }
    }
}

/// What kind of file is being analyzed, derived from its path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileContext {
    /// Crate the file belongs to (`core`, `sim`, …; the workspace facade
    /// is `pronghorn`).
    pub crate_name: String,
    /// Repo-relative path, forward slashes.
    pub path: String,
    /// Whole file is test/bench scope (`tests/` or `benches/` directory).
    pub is_test_file: bool,
    /// File is a crate root (`src/lib.rs`, `src/main.rs`, `src/bin/*.rs`).
    pub is_crate_root: bool,
    /// Crate root is a library root (`src/lib.rs`), which additionally
    /// requires a missing-docs lint level.
    pub is_lib_root: bool,
}

/// Analyzes one file's source with the per-file D rules only, returning
/// its findings sorted by line. The interprocedural v2 rules need the
/// whole workspace — see [`crate::engine::analyze_units`].
pub fn analyze_source(ctx: &FileContext, src: &str) -> Vec<Finding> {
    let tokens = lex(src);
    let file = FileAnalysis::new(ctx, src, &tokens);
    let mut findings = file.raw_d_findings();
    findings.retain(|f| !file.is_suppressed(f.rule, f.line));
    findings.sort();
    findings
}

/// One `pronglint: allow(rule)` suppression comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// The rule the comment names.
    pub rule: String,
    /// The code line the suppression covers (its own line for a trailing
    /// comment, the next code line for a comment block above).
    pub target_line: u32,
    /// The line the comment itself sits on (where the unused-suppression
    /// audit reports).
    pub comment_line: u32,
}

/// Pre-computed per-file context shared by all rules.
pub struct FileAnalysis<'a> {
    ctx: &'a FileContext,
    src: &'a str,
    tokens: &'a [Token],
    /// Indices (into `tokens`) of significant tokens: everything except
    /// whitespace and comments.
    sig: Vec<usize>,
    /// Byte ranges of test scope (`#[cfg(test)]` / `#[test]` item bodies).
    test_regions: Vec<(usize, usize)>,
    /// Every `pronglint: allow(rule)` suppression in the file.
    allows: Vec<Allow>,
    /// Lines carrying the `pronglint: det-order` marker.
    det_order_lines: BTreeSet<u32>,
}

impl<'a> FileAnalysis<'a> {
    /// Builds the per-file context: significant tokens, test regions,
    /// suppressions, and det-order markers.
    pub fn new(ctx: &'a FileContext, src: &'a str, tokens: &'a [Token]) -> Self {
        let sig: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                !matches!(
                    t.kind,
                    TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
                )
            })
            .map(|(i, _)| i)
            .collect();
        // Lines holding code, for resolving which line a suppression
        // comment targets: a trailing comment covers its own line, a
        // comment-only line (or block of them) covers the next code line.
        let code_lines: BTreeSet<u32> = sig.iter().map(|&i| tokens[i].line).collect();
        let target_of = |line: u32| -> u32 {
            if code_lines.contains(&line) {
                line
            } else {
                code_lines.range(line..).next().copied().unwrap_or(line)
            }
        };
        let mut allows = Vec::new();
        let mut det_order_lines = BTreeSet::new();
        for t in tokens {
            if !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment) {
                continue;
            }
            let text = t.text(src);
            // Doc comments *describe* the directive syntax (rustdoc, rule
            // explanations); only regular comments carry live directives.
            if text.starts_with("///")
                || text.starts_with("//!")
                || text.starts_with("/**")
                || text.starts_with("/*!")
            {
                continue;
            }
            let Some(rest) = text.split("pronglint:").nth(1) else {
                continue;
            };
            let rest = rest.trim_start();
            if rest.starts_with("det-order") {
                det_order_lines.insert(t.line);
            } else if let Some(inner) = rest.strip_prefix("allow(") {
                if let Some(end) = inner.find(')') {
                    for rule in inner[..end].split(',') {
                        allows.push(Allow {
                            rule: rule.trim().to_string(),
                            target_line: target_of(t.line),
                            comment_line: t.line,
                        });
                    }
                }
            }
        }
        let mut analysis = FileAnalysis {
            ctx,
            src,
            tokens,
            sig,
            test_regions: Vec::new(),
            allows,
            det_order_lines,
        };
        analysis.test_regions = analysis.find_test_regions();
        analysis
    }

    fn tok(&self, sig_idx: usize) -> &Token {
        &self.tokens[self.sig[sig_idx]]
    }

    fn text(&self, sig_idx: usize) -> &str {
        self.tok(sig_idx).text(self.src)
    }

    fn is_punct(&self, sig_idx: usize, ch: &str) -> bool {
        let t = self.tok(sig_idx);
        t.kind == TokenKind::Punct && t.text(self.src) == ch
    }

    fn is_ident(&self, sig_idx: usize, name: &str) -> bool {
        let t = self.tok(sig_idx);
        t.kind == TokenKind::Ident && t.text(self.src) == name
    }

    /// Scans for `#[cfg(test)]` / `#[test]` attributes and records the byte
    /// range of the brace-block of the item that follows (skipping any
    /// further attributes in between). An item ended by `;` before any `{`
    /// yields no region.
    fn find_test_regions(&self) -> Vec<(usize, usize)> {
        let mut regions = Vec::new();
        let n = self.sig.len();
        let mut i = 0;
        while i < n {
            if !(self.is_punct(i, "#") && i + 1 < n && self.is_punct(i + 1, "[")) {
                i += 1;
                continue;
            }
            // Collect the attribute's tokens up to the matching `]`.
            let mut j = i + 2;
            let mut depth = 1usize;
            let mut attr_idents: Vec<&str> = Vec::new();
            while j < n && depth > 0 {
                if self.is_punct(j, "[") {
                    depth += 1;
                } else if self.is_punct(j, "]") {
                    depth -= 1;
                } else if self.tok(j).kind == TokenKind::Ident {
                    attr_idents.push(self.text(j));
                }
                j += 1;
            }
            let is_test_attr = match attr_idents.first() {
                Some(&"test") => true,
                Some(&"cfg") => attr_idents.contains(&"test"),
                _ => false,
            };
            if !is_test_attr {
                i = j;
                continue;
            }
            // Find the item body: the next `{` at attribute level, skipping
            // further `#[…]` attributes; `;` first means no body.
            let mut k = j;
            while k < n {
                if self.is_punct(k, "#") && k + 1 < n && self.is_punct(k + 1, "[") {
                    let mut d = 1usize;
                    k += 2;
                    while k < n && d > 0 {
                        if self.is_punct(k, "[") {
                            d += 1;
                        } else if self.is_punct(k, "]") {
                            d -= 1;
                        }
                        k += 1;
                    }
                    continue;
                }
                if self.is_punct(k, ";") {
                    break;
                }
                if self.is_punct(k, "{") {
                    let start = self.tok(k).start;
                    let mut d = 1usize;
                    let mut m = k + 1;
                    while m < n && d > 0 {
                        if self.is_punct(m, "{") {
                            d += 1;
                        } else if self.is_punct(m, "}") {
                            d -= 1;
                        }
                        m += 1;
                    }
                    let end = if m > 0 && m <= n {
                        self.tok(m - 1).end
                    } else {
                        self.src.len()
                    };
                    regions.push((start, end));
                    break;
                }
                k += 1;
            }
            i = j;
        }
        regions
    }

    /// Whether the byte offset falls in test scope (test file, or a
    /// `#[cfg(test)]` / `#[test]` item body).
    pub fn in_test_scope(&self, byte: usize) -> bool {
        self.ctx.is_test_file
            || self
                .test_regions
                .iter()
                .any(|&(s, e)| byte >= s && byte < e)
    }

    /// Whether an `allow(rule)` comment covers `line`. Targets were
    /// resolved at parse time: a trailing comment covers its own line, a
    /// comment block covers the code line that follows.
    pub fn is_suppressed(&self, rule: &str, line: u32) -> bool {
        self.allows
            .iter()
            .any(|a| a.rule == rule && a.target_line == line)
    }

    /// The file's suppression comments.
    pub fn allows(&self) -> &[Allow] {
        &self.allows
    }

    /// The file's `det-order` marker lines.
    pub fn det_order_lines(&self) -> &BTreeSet<u32> {
        &self.det_order_lines
    }

    /// The file's test-scope byte ranges.
    pub fn test_regions(&self) -> &[(usize, usize)] {
        &self.test_regions
    }

    /// Runs every per-file D rule, returning findings **before**
    /// suppression (the engine applies suppressions globally so it can
    /// audit unused ones).
    pub fn raw_d_findings(&self) -> Vec<Finding> {
        let mut findings = Vec::new();
        self.rule_unordered_iter(&mut findings);
        self.rule_wall_clock(&mut findings);
        self.rule_panic_path(&mut findings);
        self.rule_crate_hygiene(&mut findings);
        self.rule_float_accum(&mut findings);
        findings.sort();
        findings
    }

    fn finding(&self, rule: &'static str, line: u32, message: String) -> Finding {
        Finding::new(self.ctx.path.clone(), line, rule, message)
    }

    /// D1: unordered containers in sim-visible crates.
    fn rule_unordered_iter(&self, out: &mut Vec<Finding>) {
        if !SIM_VISIBLE_CRATES.contains(&self.ctx.crate_name.as_str()) {
            return;
        }
        for idx in 0..self.sig.len() {
            let t = self.tok(idx);
            if t.kind != TokenKind::Ident {
                continue;
            }
            let name = t.text(self.src);
            if (name == "HashMap" || name == "HashSet") && !self.in_test_scope(t.start) {
                out.push(self.finding(
                    "unordered-iter",
                    t.line,
                    format!(
                        "`{name}` in sim-visible crate `{}`: iteration order is \
                         nondeterministic and can shift fixed-seed results; use \
                         `BTreeMap`/`BTreeSet` (or another ordered container), or \
                         annotate `// pronglint: allow(unordered-iter): <why>`",
                        self.ctx.crate_name
                    ),
                ));
            }
        }
    }

    /// D2: wall clocks and OS entropy outside the measurement harnesses.
    fn rule_wall_clock(&self, out: &mut Vec<Finding>) {
        if CLOCK_EXEMPT_CRATES.contains(&self.ctx.crate_name.as_str()) {
            return;
        }
        for idx in 0..self.sig.len() {
            let t = self.tok(idx);
            if t.kind != TokenKind::Ident || self.in_test_scope(t.start) {
                continue;
            }
            let name = t.text(self.src);
            let call = match name {
                "Instant" | "SystemTime" => {
                    // Only flag the `::now` call, not the import.
                    idx + 3 < self.sig.len()
                        && self.is_punct(idx + 1, ":")
                        && self.is_punct(idx + 2, ":")
                        && self.is_ident(idx + 3, "now")
                }
                "thread_rng" => true,
                _ => false,
            };
            if call {
                out.push(self.finding(
                    "wall-clock",
                    t.line,
                    format!(
                        "`{name}` reads the host clock/entropy in crate `{}`: \
                         sim-visible time must come from `pronghorn_sim` virtual \
                         time and seeded RNGs; move measurement into bench/\
                         experiments or annotate `// pronglint: allow(wall-clock): <why>`",
                        self.ctx.crate_name
                    ),
                ));
            }
        }
    }

    /// D3: panicky library code in the policy crates.
    fn rule_panic_path(&self, out: &mut Vec<Finding>) {
        if !POLICY_CRATES.contains(&self.ctx.crate_name.as_str()) {
            return;
        }
        for idx in 0..self.sig.len() {
            let t = self.tok(idx);
            if t.kind != TokenKind::Ident || self.in_test_scope(t.start) {
                continue;
            }
            let name = t.text(self.src);
            let hit = match name {
                // `.unwrap()` / `.expect(` — method position only, so
                // `unwrap_or` and friends (distinct idents) never match.
                "unwrap" | "expect" => {
                    idx > 0
                        && self.is_punct(idx - 1, ".")
                        && idx + 1 < self.sig.len()
                        && self.is_punct(idx + 1, "(")
                }
                "panic" | "unreachable" | "todo" | "unimplemented" => {
                    idx + 1 < self.sig.len() && self.is_punct(idx + 1, "!")
                }
                _ => false,
            };
            if hit {
                out.push(self.finding(
                    "panic-path",
                    t.line,
                    format!(
                        "`{name}` on a library path of policy crate `{}`: surface a \
                         typed error (see `pronghorn_core::ConfigError` for the \
                         in-tree pattern) or annotate \
                         `// pronglint: allow(panic-path): <why>`",
                        self.ctx.crate_name
                    ),
                ));
            }
        }
    }

    /// D4: crate-root hygiene attributes.
    fn rule_crate_hygiene(&self, out: &mut Vec<Finding>) {
        if !self.ctx.is_crate_root {
            return;
        }
        let mut has_forbid_unsafe = false;
        let mut has_missing_docs = false;
        let n = self.sig.len();
        for i in 0..n {
            // Inner attribute: `# ! [ level ( lint ) ]`.
            if !(self.is_punct(i, "#")
                && i + 2 < n
                && self.is_punct(i + 1, "!")
                && self.is_punct(i + 2, "["))
            {
                continue;
            }
            let mut idents: Vec<&str> = Vec::new();
            let mut j = i + 3;
            let mut depth = 1usize;
            while j < n && depth > 0 {
                if self.is_punct(j, "[") {
                    depth += 1;
                } else if self.is_punct(j, "]") {
                    depth -= 1;
                } else if self.tok(j).kind == TokenKind::Ident {
                    idents.push(self.text(j));
                }
                j += 1;
            }
            if idents.first() == Some(&"forbid") && idents.contains(&"unsafe_code") {
                has_forbid_unsafe = true;
            }
            if matches!(idents.first(), Some(&"deny") | Some(&"warn"))
                && idents.contains(&"missing_docs")
            {
                has_missing_docs = true;
            }
        }
        if !has_forbid_unsafe {
            out.push(self.finding(
                "crate-hygiene",
                1,
                format!(
                    "crate root `{}` lacks `#![forbid(unsafe_code)]`",
                    self.ctx.path
                ),
            ));
        }
        if self.ctx.is_lib_root && !has_missing_docs {
            out.push(self.finding(
                "crate-hygiene",
                1,
                format!(
                    "library root `{}` lacks `#![deny(missing_docs)]` or \
                     `#![warn(missing_docs)]`",
                    self.ctx.path
                ),
            ));
        }
    }

    /// D5: f64 reductions without the deterministic-order marker.
    fn rule_float_accum(&self, out: &mut Vec<Finding>) {
        if !FLOAT_ORDER_CRATES.contains(&self.ctx.crate_name.as_str()) {
            return;
        }
        let n = self.sig.len();
        for idx in 0..n {
            let t = self.tok(idx);
            if t.kind != TokenKind::Ident || self.in_test_scope(t.start) {
                continue;
            }
            let name = t.text(self.src);
            if !matches!(name, "sum" | "product" | "fold") {
                continue;
            }
            // Method position: preceded by `.`, followed by `(` or `::`.
            if !(idx > 0 && self.is_punct(idx - 1, ".")) {
                continue;
            }
            let called = idx + 1 < n
                && (self.is_punct(idx + 1, "(")
                    || (self.is_punct(idx + 1, ":") && self.is_punct(idx + 2, ":")));
            if !called {
                continue;
            }
            // Statement span: back to the previous `;`/`{`/`}`, forward to
            // the next `;` (or `}`), inclusive.
            let mut lo = idx;
            while lo > 0 {
                let p = lo - 1;
                if self.is_punct(p, ";") || self.is_punct(p, "{") || self.is_punct(p, "}") {
                    break;
                }
                lo = p;
            }
            let mut hi = idx;
            while hi + 1 < n && !(self.is_punct(hi, ";") || self.is_punct(hi, "}")) {
                hi += 1;
            }
            // `f64` evidence: the type ident, or a float literal with an
            // `f64` suffix (`0.0_f64` lexes as one Number token).
            let about_f64 = (lo..=hi).any(|k| {
                self.is_ident(k, "f64")
                    || (self.tok(k).kind == TokenKind::Number && self.text(k).ends_with("f64"))
            });
            if !about_f64 {
                continue;
            }
            let stmt_first_line = self.tok(lo).line;
            let marked = self
                .det_order_lines
                .iter()
                .any(|&m| m + 1 >= stmt_first_line && m <= t.line);
            if !marked {
                out.push(self.finding(
                    "float-accum",
                    t.line,
                    format!(
                        "f64 `{name}` reduction in crate `{}` without the \
                         deterministic-order marker: float addition is not \
                         associative, so the reduction order is part of the \
                         determinism contract; verify the iteration order is \
                         fixed and annotate `// pronglint: det-order — <why>`",
                        self.ctx.crate_name
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(crate_name: &str) -> FileContext {
        FileContext {
            crate_name: crate_name.to_string(),
            path: format!("crates/{crate_name}/src/x.rs"),
            is_test_file: false,
            is_crate_root: false,
            is_lib_root: false,
        }
    }

    #[test]
    fn hashmap_flagged_only_in_sim_visible_crates() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(analyze_source(&ctx("store"), src).len(), 1);
        assert_eq!(analyze_source(&ctx("workloads"), src).len(), 0);
    }

    #[test]
    fn strings_and_comments_do_not_trip_rules() {
        let src = "// HashMap in prose\nlet s = \"HashMap\";\n";
        assert!(analyze_source(&ctx("store"), src).is_empty());
    }

    #[test]
    fn cfg_test_module_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    fn f() { x.unwrap(); }\n}\n";
        assert!(analyze_source(&ctx("core"), src).is_empty());
    }

    #[test]
    fn suppression_on_line_or_line_above() {
        let same = "use std::collections::HashMap; // pronglint: allow(unordered-iter): test\n";
        let above = "// pronglint: allow(unordered-iter): keyed lookups only\nuse std::collections::HashMap;\n";
        let wrong_rule = "// pronglint: allow(wall-clock): nope\nuse std::collections::HashMap;\n";
        assert!(analyze_source(&ctx("store"), same).is_empty());
        assert!(analyze_source(&ctx("store"), above).is_empty());
        assert_eq!(analyze_source(&ctx("store"), wrong_rule).len(), 1);
    }

    #[test]
    fn unwrap_or_is_not_unwrap() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }\n";
        assert!(analyze_source(&ctx("core"), src).is_empty());
        let bad = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert_eq!(analyze_source(&ctx("core"), bad).len(), 1);
    }

    #[test]
    fn instant_import_ok_now_call_flagged() {
        let src = "use std::time::Instant;\nfn f() { let t = Instant::now(); }\n";
        let findings = analyze_source(&ctx("checkpoint"), src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 2);
        assert!(analyze_source(&ctx("experiments"), src).is_empty());
    }

    #[test]
    fn float_sum_needs_marker() {
        let bad = "fn f(xs: &[f64]) -> f64 { let t: f64 = xs.iter().sum(); t }\n";
        assert_eq!(analyze_source(&ctx("core"), bad).len(), 1);
        let good =
            "fn f(xs: &[f64]) -> f64 {\n    // pronglint: det-order — slice order\n    let t: f64 = xs.iter().sum();\n    t\n}\n";
        assert!(analyze_source(&ctx("core"), good).is_empty());
        // usize sums are not float reductions.
        let usize_sum = "fn f(xs: &[usize]) -> usize { xs.iter().sum::<usize>() }\n";
        assert!(analyze_source(&ctx("metrics"), usize_sum).is_empty());
    }

    #[test]
    fn crate_root_hygiene() {
        let root = FileContext {
            crate_name: "kv".into(),
            path: "crates/kv/src/lib.rs".into(),
            is_test_file: false,
            is_crate_root: true,
            is_lib_root: true,
        };
        let good = "#![forbid(unsafe_code)]\n#![warn(missing_docs)]\n";
        assert!(analyze_source(&root, good).is_empty());
        let missing = "#![forbid(unsafe_code)]\n";
        let findings = analyze_source(&root, missing);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("missing_docs"));
        let neither = "pub fn f() {}\n";
        assert_eq!(analyze_source(&root, neither).len(), 2);
    }

    #[test]
    fn every_rule_has_an_explanation() {
        for rule in ALL_RULES {
            let text = explain(rule).unwrap_or_else(|| panic!("no --explain text for {rule}"));
            assert!(
                text.starts_with(rule),
                "explanation for {rule} must lead with its id"
            );
        }
        assert!(explain("no-such-rule").is_none());
    }
}

//! The Pronghorn invariant rules (D1–D5) and the context engine that
//! evaluates them over a lexed file.
//!
//! Every rule guards the determinism contract the evaluation grid depends
//! on (see DESIGN.md §10): fixed-seed runs must replay bit-identically, so
//! nothing order-sensitive, clock-sensitive, or panicky may sit on a
//! sim-visible path. Rules are line/context aware, not purely textual:
//! comments and string literals are opaque (the lexer classifies them),
//! test code is exempt where the rule says so, and per-line suppressions
//! plus the `det-order` marker are honored.
//!
//! | rule id | invariant |
//! |---|---|
//! | `unordered-iter` | no `HashMap`/`HashSet` in sim-visible crates |
//! | `wall-clock` | no `Instant::now`/`SystemTime::now`/`thread_rng` outside bench/experiments |
//! | `panic-path` | no `unwrap()`/`expect()`/`panic!` in policy-crate library code |
//! | `crate-hygiene` | crate roots carry `#![forbid(unsafe_code)]` (+ missing-docs lint for libs) |
//! | `float-accum` | f64 reductions in core/metrics carry the `det-order` marker |
//!
//! Suppression syntax, trailing the offending line or in a comment
//! (possibly multi-line) directly above it:
//!
//! ```text
//! // pronglint: allow(unordered-iter): justification here
//! ```
//!
//! Deterministic-order marker (rule `float-accum` only), anywhere in the
//! statement or on the line above it:
//!
//! ```text
//! // pronglint: det-order — slice iteration, fixed order
//! ```

use crate::lexer::{lex, Token, TokenKind};
use std::collections::BTreeSet;

/// Crates whose state or RNG draws are visible to the deterministic
/// simulation: any iteration-order dependence here can shift fixed-seed
/// results (rule `unordered-iter`).
pub const SIM_VISIBLE_CRATES: &[&str] = &[
    "core",
    "sim",
    "checkpoint",
    "store",
    "kv",
    "jit",
    "platform",
    "metrics",
];

/// Crates allowed to read wall clocks and OS entropy (rule `wall-clock`):
/// the host-side measurement harnesses, never the simulation itself.
pub const CLOCK_EXEMPT_CRATES: &[&str] = &["bench", "experiments"];

/// Policy crates whose library paths must surface typed errors instead of
/// panicking (rule `panic-path`).
pub const POLICY_CRATES: &[&str] = &["core", "checkpoint"];

/// Crates whose f64 reductions must be marked order-deterministic (rule
/// `float-accum`): the policy math and the statistics it feeds.
pub const FLOAT_ORDER_CRATES: &[&str] = &["core", "metrics"];

/// All rule identifiers, in catalog order.
pub const ALL_RULES: &[&str] = &[
    "unordered-iter",
    "wall-clock",
    "panic-path",
    "crate-hygiene",
    "float-accum",
];

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Repo-relative path, forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Rule identifier (one of [`ALL_RULES`]).
    pub rule: &'static str,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
}

/// What kind of file is being analyzed, derived from its path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileContext {
    /// Crate the file belongs to (`core`, `sim`, …; the workspace facade
    /// is `pronghorn`).
    pub crate_name: String,
    /// Repo-relative path, forward slashes.
    pub path: String,
    /// Whole file is test/bench scope (`tests/` or `benches/` directory).
    pub is_test_file: bool,
    /// File is a crate root (`src/lib.rs`, `src/main.rs`, `src/bin/*.rs`).
    pub is_crate_root: bool,
    /// Crate root is a library root (`src/lib.rs`), which additionally
    /// requires a missing-docs lint level.
    pub is_lib_root: bool,
}

/// Analyzes one file's source, returning its findings sorted by line.
pub fn analyze_source(ctx: &FileContext, src: &str) -> Vec<Finding> {
    let tokens = lex(src);
    let file = FileAnalysis::new(ctx, src, &tokens);
    let mut findings = Vec::new();
    file.rule_unordered_iter(&mut findings);
    file.rule_wall_clock(&mut findings);
    file.rule_panic_path(&mut findings);
    file.rule_crate_hygiene(&mut findings);
    file.rule_float_accum(&mut findings);
    findings.retain(|f| !file.is_suppressed(f.rule, f.line));
    findings.sort();
    findings
}

/// Pre-computed per-file context shared by all rules.
struct FileAnalysis<'a> {
    ctx: &'a FileContext,
    src: &'a str,
    tokens: &'a [Token],
    /// Indices (into `tokens`) of significant tokens: everything except
    /// whitespace and comments.
    sig: Vec<usize>,
    /// Byte ranges of test scope (`#[cfg(test)]` / `#[test]` item bodies).
    test_regions: Vec<(usize, usize)>,
    /// Lines *covered by* a `pronglint: allow(rule)` comment, per rule:
    /// the comment's own line for trailing comments, else the next code
    /// line after the comment (block).
    allows: Vec<(String, u32)>,
    /// Lines carrying the `pronglint: det-order` marker.
    det_order_lines: BTreeSet<u32>,
}

impl<'a> FileAnalysis<'a> {
    fn new(ctx: &'a FileContext, src: &'a str, tokens: &'a [Token]) -> Self {
        let sig: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                !matches!(
                    t.kind,
                    TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
                )
            })
            .map(|(i, _)| i)
            .collect();
        // Lines holding code, for resolving which line a suppression
        // comment targets: a trailing comment covers its own line, a
        // comment-only line (or block of them) covers the next code line.
        let code_lines: BTreeSet<u32> = sig.iter().map(|&i| tokens[i].line).collect();
        let target_of = |line: u32| -> u32 {
            if code_lines.contains(&line) {
                line
            } else {
                code_lines.range(line..).next().copied().unwrap_or(line)
            }
        };
        let mut allows = Vec::new();
        let mut det_order_lines = BTreeSet::new();
        for t in tokens {
            if !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment) {
                continue;
            }
            let text = t.text(src);
            let Some(rest) = text.split("pronglint:").nth(1) else {
                continue;
            };
            let rest = rest.trim_start();
            if rest.starts_with("det-order") {
                det_order_lines.insert(t.line);
            } else if let Some(inner) = rest.strip_prefix("allow(") {
                if let Some(end) = inner.find(')') {
                    for rule in inner[..end].split(',') {
                        allows.push((rule.trim().to_string(), target_of(t.line)));
                    }
                }
            }
        }
        let mut analysis = FileAnalysis {
            ctx,
            src,
            tokens,
            sig,
            test_regions: Vec::new(),
            allows,
            det_order_lines,
        };
        analysis.test_regions = analysis.find_test_regions();
        analysis
    }

    fn tok(&self, sig_idx: usize) -> &Token {
        &self.tokens[self.sig[sig_idx]]
    }

    fn text(&self, sig_idx: usize) -> &str {
        self.tok(sig_idx).text(self.src)
    }

    fn is_punct(&self, sig_idx: usize, ch: &str) -> bool {
        let t = self.tok(sig_idx);
        t.kind == TokenKind::Punct && t.text(self.src) == ch
    }

    fn is_ident(&self, sig_idx: usize, name: &str) -> bool {
        let t = self.tok(sig_idx);
        t.kind == TokenKind::Ident && t.text(self.src) == name
    }

    /// Scans for `#[cfg(test)]` / `#[test]` attributes and records the byte
    /// range of the brace-block of the item that follows (skipping any
    /// further attributes in between). An item ended by `;` before any `{`
    /// yields no region.
    fn find_test_regions(&self) -> Vec<(usize, usize)> {
        let mut regions = Vec::new();
        let n = self.sig.len();
        let mut i = 0;
        while i < n {
            if !(self.is_punct(i, "#") && i + 1 < n && self.is_punct(i + 1, "[")) {
                i += 1;
                continue;
            }
            // Collect the attribute's tokens up to the matching `]`.
            let mut j = i + 2;
            let mut depth = 1usize;
            let mut attr_idents: Vec<&str> = Vec::new();
            while j < n && depth > 0 {
                if self.is_punct(j, "[") {
                    depth += 1;
                } else if self.is_punct(j, "]") {
                    depth -= 1;
                } else if self.tok(j).kind == TokenKind::Ident {
                    attr_idents.push(self.text(j));
                }
                j += 1;
            }
            let is_test_attr = match attr_idents.first() {
                Some(&"test") => true,
                Some(&"cfg") => attr_idents.contains(&"test"),
                _ => false,
            };
            if !is_test_attr {
                i = j;
                continue;
            }
            // Find the item body: the next `{` at attribute level, skipping
            // further `#[…]` attributes; `;` first means no body.
            let mut k = j;
            while k < n {
                if self.is_punct(k, "#") && k + 1 < n && self.is_punct(k + 1, "[") {
                    let mut d = 1usize;
                    k += 2;
                    while k < n && d > 0 {
                        if self.is_punct(k, "[") {
                            d += 1;
                        } else if self.is_punct(k, "]") {
                            d -= 1;
                        }
                        k += 1;
                    }
                    continue;
                }
                if self.is_punct(k, ";") {
                    break;
                }
                if self.is_punct(k, "{") {
                    let start = self.tok(k).start;
                    let mut d = 1usize;
                    let mut m = k + 1;
                    while m < n && d > 0 {
                        if self.is_punct(m, "{") {
                            d += 1;
                        } else if self.is_punct(m, "}") {
                            d -= 1;
                        }
                        m += 1;
                    }
                    let end = if m > 0 && m <= n {
                        self.tok(m - 1).end
                    } else {
                        self.src.len()
                    };
                    regions.push((start, end));
                    break;
                }
                k += 1;
            }
            i = j;
        }
        regions
    }

    fn in_test_scope(&self, byte: usize) -> bool {
        self.ctx.is_test_file
            || self
                .test_regions
                .iter()
                .any(|&(s, e)| byte >= s && byte < e)
    }

    fn is_suppressed(&self, rule: &str, line: u32) -> bool {
        // Targets were resolved at parse time: a trailing comment covers
        // its own line, a comment block covers the code line that follows.
        self.allows.iter().any(|(r, l)| r == rule && *l == line)
    }

    fn finding(&self, rule: &'static str, line: u32, message: String) -> Finding {
        Finding {
            file: self.ctx.path.clone(),
            line,
            rule,
            message,
        }
    }

    /// D1: unordered containers in sim-visible crates.
    fn rule_unordered_iter(&self, out: &mut Vec<Finding>) {
        if !SIM_VISIBLE_CRATES.contains(&self.ctx.crate_name.as_str()) {
            return;
        }
        for idx in 0..self.sig.len() {
            let t = self.tok(idx);
            if t.kind != TokenKind::Ident {
                continue;
            }
            let name = t.text(self.src);
            if (name == "HashMap" || name == "HashSet") && !self.in_test_scope(t.start) {
                out.push(self.finding(
                    "unordered-iter",
                    t.line,
                    format!(
                        "`{name}` in sim-visible crate `{}`: iteration order is \
                         nondeterministic and can shift fixed-seed results; use \
                         `BTreeMap`/`BTreeSet` (or another ordered container), or \
                         annotate `// pronglint: allow(unordered-iter): <why>`",
                        self.ctx.crate_name
                    ),
                ));
            }
        }
    }

    /// D2: wall clocks and OS entropy outside the measurement harnesses.
    fn rule_wall_clock(&self, out: &mut Vec<Finding>) {
        if CLOCK_EXEMPT_CRATES.contains(&self.ctx.crate_name.as_str()) {
            return;
        }
        for idx in 0..self.sig.len() {
            let t = self.tok(idx);
            if t.kind != TokenKind::Ident || self.in_test_scope(t.start) {
                continue;
            }
            let name = t.text(self.src);
            let call = match name {
                "Instant" | "SystemTime" => {
                    // Only flag the `::now` call, not the import.
                    idx + 3 < self.sig.len()
                        && self.is_punct(idx + 1, ":")
                        && self.is_punct(idx + 2, ":")
                        && self.is_ident(idx + 3, "now")
                }
                "thread_rng" => true,
                _ => false,
            };
            if call {
                out.push(self.finding(
                    "wall-clock",
                    t.line,
                    format!(
                        "`{name}` reads the host clock/entropy in crate `{}`: \
                         sim-visible time must come from `pronghorn_sim` virtual \
                         time and seeded RNGs; move measurement into bench/\
                         experiments or annotate `// pronglint: allow(wall-clock): <why>`",
                        self.ctx.crate_name
                    ),
                ));
            }
        }
    }

    /// D3: panicky library code in the policy crates.
    fn rule_panic_path(&self, out: &mut Vec<Finding>) {
        if !POLICY_CRATES.contains(&self.ctx.crate_name.as_str()) {
            return;
        }
        for idx in 0..self.sig.len() {
            let t = self.tok(idx);
            if t.kind != TokenKind::Ident || self.in_test_scope(t.start) {
                continue;
            }
            let name = t.text(self.src);
            let hit = match name {
                // `.unwrap()` / `.expect(` — method position only, so
                // `unwrap_or` and friends (distinct idents) never match.
                "unwrap" | "expect" => {
                    idx > 0
                        && self.is_punct(idx - 1, ".")
                        && idx + 1 < self.sig.len()
                        && self.is_punct(idx + 1, "(")
                }
                "panic" | "unreachable" | "todo" | "unimplemented" => {
                    idx + 1 < self.sig.len() && self.is_punct(idx + 1, "!")
                }
                _ => false,
            };
            if hit {
                out.push(self.finding(
                    "panic-path",
                    t.line,
                    format!(
                        "`{name}` on a library path of policy crate `{}`: surface a \
                         typed error (see `pronghorn_core::ConfigError` for the \
                         in-tree pattern) or annotate \
                         `// pronglint: allow(panic-path): <why>`",
                        self.ctx.crate_name
                    ),
                ));
            }
        }
    }

    /// D4: crate-root hygiene attributes.
    fn rule_crate_hygiene(&self, out: &mut Vec<Finding>) {
        if !self.ctx.is_crate_root {
            return;
        }
        let mut has_forbid_unsafe = false;
        let mut has_missing_docs = false;
        let n = self.sig.len();
        for i in 0..n {
            // Inner attribute: `# ! [ level ( lint ) ]`.
            if !(self.is_punct(i, "#")
                && i + 2 < n
                && self.is_punct(i + 1, "!")
                && self.is_punct(i + 2, "["))
            {
                continue;
            }
            let mut idents: Vec<&str> = Vec::new();
            let mut j = i + 3;
            let mut depth = 1usize;
            while j < n && depth > 0 {
                if self.is_punct(j, "[") {
                    depth += 1;
                } else if self.is_punct(j, "]") {
                    depth -= 1;
                } else if self.tok(j).kind == TokenKind::Ident {
                    idents.push(self.text(j));
                }
                j += 1;
            }
            if idents.first() == Some(&"forbid") && idents.contains(&"unsafe_code") {
                has_forbid_unsafe = true;
            }
            if matches!(idents.first(), Some(&"deny") | Some(&"warn"))
                && idents.contains(&"missing_docs")
            {
                has_missing_docs = true;
            }
        }
        if !has_forbid_unsafe {
            out.push(self.finding(
                "crate-hygiene",
                1,
                format!(
                    "crate root `{}` lacks `#![forbid(unsafe_code)]`",
                    self.ctx.path
                ),
            ));
        }
        if self.ctx.is_lib_root && !has_missing_docs {
            out.push(self.finding(
                "crate-hygiene",
                1,
                format!(
                    "library root `{}` lacks `#![deny(missing_docs)]` or \
                     `#![warn(missing_docs)]`",
                    self.ctx.path
                ),
            ));
        }
    }

    /// D5: f64 reductions without the deterministic-order marker.
    fn rule_float_accum(&self, out: &mut Vec<Finding>) {
        if !FLOAT_ORDER_CRATES.contains(&self.ctx.crate_name.as_str()) {
            return;
        }
        let n = self.sig.len();
        for idx in 0..n {
            let t = self.tok(idx);
            if t.kind != TokenKind::Ident || self.in_test_scope(t.start) {
                continue;
            }
            let name = t.text(self.src);
            if !matches!(name, "sum" | "product" | "fold") {
                continue;
            }
            // Method position: preceded by `.`, followed by `(` or `::`.
            if !(idx > 0 && self.is_punct(idx - 1, ".")) {
                continue;
            }
            let called = idx + 1 < n
                && (self.is_punct(idx + 1, "(")
                    || (self.is_punct(idx + 1, ":") && self.is_punct(idx + 2, ":")));
            if !called {
                continue;
            }
            // Statement span: back to the previous `;`/`{`/`}`, forward to
            // the next `;` (or `}`), inclusive.
            let mut lo = idx;
            while lo > 0 {
                let p = lo - 1;
                if self.is_punct(p, ";") || self.is_punct(p, "{") || self.is_punct(p, "}") {
                    break;
                }
                lo = p;
            }
            let mut hi = idx;
            while hi + 1 < n && !(self.is_punct(hi, ";") || self.is_punct(hi, "}")) {
                hi += 1;
            }
            // `f64` evidence: the type ident, or a float literal with an
            // `f64` suffix (`0.0_f64` lexes as one Number token).
            let about_f64 = (lo..=hi).any(|k| {
                self.is_ident(k, "f64")
                    || (self.tok(k).kind == TokenKind::Number && self.text(k).ends_with("f64"))
            });
            if !about_f64 {
                continue;
            }
            let stmt_first_line = self.tok(lo).line;
            let marked = self
                .det_order_lines
                .iter()
                .any(|&m| m + 1 >= stmt_first_line && m <= t.line);
            if !marked {
                out.push(self.finding(
                    "float-accum",
                    t.line,
                    format!(
                        "f64 `{name}` reduction in crate `{}` without the \
                         deterministic-order marker: float addition is not \
                         associative, so the reduction order is part of the \
                         determinism contract; verify the iteration order is \
                         fixed and annotate `// pronglint: det-order — <why>`",
                        self.ctx.crate_name
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(crate_name: &str) -> FileContext {
        FileContext {
            crate_name: crate_name.to_string(),
            path: format!("crates/{crate_name}/src/x.rs"),
            is_test_file: false,
            is_crate_root: false,
            is_lib_root: false,
        }
    }

    #[test]
    fn hashmap_flagged_only_in_sim_visible_crates() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(analyze_source(&ctx("store"), src).len(), 1);
        assert_eq!(analyze_source(&ctx("workloads"), src).len(), 0);
    }

    #[test]
    fn strings_and_comments_do_not_trip_rules() {
        let src = "// HashMap in prose\nlet s = \"HashMap\";\n";
        assert!(analyze_source(&ctx("store"), src).is_empty());
    }

    #[test]
    fn cfg_test_module_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    fn f() { x.unwrap(); }\n}\n";
        assert!(analyze_source(&ctx("core"), src).is_empty());
    }

    #[test]
    fn suppression_on_line_or_line_above() {
        let same = "use std::collections::HashMap; // pronglint: allow(unordered-iter): test\n";
        let above = "// pronglint: allow(unordered-iter): keyed lookups only\nuse std::collections::HashMap;\n";
        let wrong_rule = "// pronglint: allow(wall-clock): nope\nuse std::collections::HashMap;\n";
        assert!(analyze_source(&ctx("store"), same).is_empty());
        assert!(analyze_source(&ctx("store"), above).is_empty());
        assert_eq!(analyze_source(&ctx("store"), wrong_rule).len(), 1);
    }

    #[test]
    fn unwrap_or_is_not_unwrap() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }\n";
        assert!(analyze_source(&ctx("core"), src).is_empty());
        let bad = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert_eq!(analyze_source(&ctx("core"), bad).len(), 1);
    }

    #[test]
    fn instant_import_ok_now_call_flagged() {
        let src = "use std::time::Instant;\nfn f() { let t = Instant::now(); }\n";
        let findings = analyze_source(&ctx("checkpoint"), src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 2);
        assert!(analyze_source(&ctx("experiments"), src).is_empty());
    }

    #[test]
    fn float_sum_needs_marker() {
        let bad = "fn f(xs: &[f64]) -> f64 { let t: f64 = xs.iter().sum(); t }\n";
        assert_eq!(analyze_source(&ctx("core"), bad).len(), 1);
        let good =
            "fn f(xs: &[f64]) -> f64 {\n    // pronglint: det-order — slice order\n    let t: f64 = xs.iter().sum();\n    t\n}\n";
        assert!(analyze_source(&ctx("core"), good).is_empty());
        // usize sums are not float reductions.
        let usize_sum = "fn f(xs: &[usize]) -> usize { xs.iter().sum::<usize>() }\n";
        assert!(analyze_source(&ctx("metrics"), usize_sum).is_empty());
    }

    #[test]
    fn crate_root_hygiene() {
        let root = FileContext {
            crate_name: "kv".into(),
            path: "crates/kv/src/lib.rs".into(),
            is_test_file: false,
            is_crate_root: true,
            is_lib_root: true,
        };
        let good = "#![forbid(unsafe_code)]\n#![warn(missing_docs)]\n";
        assert!(analyze_source(&root, good).is_empty());
        let missing = "#![forbid(unsafe_code)]\n";
        let findings = analyze_source(&root, missing);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("missing_docs"));
        let neither = "pub fn f() {}\n";
        assert_eq!(analyze_source(&root, neither).len(), 2);
    }
}

//! Workspace walker: finds the Rust sources pronglint analyzes and
//! classifies each one into a [`FileContext`].
//!
//! Scope: `crates/<name>/{src,tests,benches}` plus the workspace facade's
//! `src/` and `tests/`. The `compat/` stubs (API-subset stand-ins for
//! registry crates) and generated `target/` output are deliberately out of
//! scope — they model *other* crates' surfaces, not Pronghorn invariants.
//! Walk order is sorted by path so output and baselines are deterministic.

use crate::rules::FileContext;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One file to analyze: its context plus absolute path on disk.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Rule-engine context (crate, repo-relative path, scopes).
    pub ctx: FileContext,
    /// Absolute path for reading.
    pub abs_path: PathBuf,
}

/// Recursively collects `.rs` files under `dir`, sorted.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Builds the [`FileContext`] for a file at `rel` (repo-relative, forward
/// slashes) belonging to `crate_name`.
///
/// Harness files — anything under `tests/`, `benches/`, or `examples/` —
/// are *test scope* (the determinism rules guard the sim contract, not
/// demo/driver code) but each file sitting directly in such a directory
/// is **its own crate root**, so the D4 hygiene rule
/// (`#![forbid(unsafe_code)]`) applies to every one of them.
pub fn classify(crate_name: &str, rel: &str) -> FileContext {
    let parts: Vec<&str> = rel.split('/').collect();
    // Test scope = a crate-level (or workspace-root) harness directory.
    // `src/benches/` and friends are ordinary library modules — code the
    // simulation really runs — and get no test exemption.
    let harness_dir = match parts.as_slice() {
        ["crates", _, d, ..] => Some(*d),
        [d, ..] if *d != "crates" => Some(*d),
        _ => None,
    }
    .filter(|d| matches!(*d, "tests" | "benches" | "examples"));
    let is_test_file = harness_dir.is_some();
    let is_lib_root = rel.ends_with("src/lib.rs");
    let is_bin_root = rel.ends_with("src/main.rs") || rel.contains("/src/bin/");
    // `crates/<c>/tests/f.rs` (likewise benches/examples) and the root
    // `tests/f.rs` / `examples/f.rs` each compile as a separate crate;
    // deeper files (`tests/common/mod.rs`) are modules of some root.
    let is_harness_root =
        harness_dir.is_some() && parts.len() == 2 + 2 * (parts[0] == "crates") as usize;
    FileContext {
        crate_name: crate_name.to_string(),
        path: rel.to_string(),
        is_test_file,
        is_crate_root: is_lib_root || is_bin_root || is_harness_root,
        is_lib_root,
    }
}

/// Walks the workspace rooted at `root`, returning every source file in
/// pronglint's scope, sorted by repo-relative path.
pub fn workspace_sources(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = if crates_dir.is_dir() {
        fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect()
    } else {
        Vec::new()
    };
    crate_dirs.sort();
    for crate_dir in crate_dirs {
        let Some(name) = crate_dir.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let name = name.to_string();
        for sub in ["src", "tests", "benches", "examples"] {
            let mut paths = Vec::new();
            rust_files(&crate_dir.join(sub), &mut paths)?;
            for abs in paths {
                if let Some(rel) = relativize(root, &abs) {
                    files.push(SourceFile {
                        ctx: classify(&name, &rel),
                        abs_path: abs,
                    });
                }
            }
        }
    }
    // The workspace facade crate (`pronghorn`) at the root.
    for sub in ["src", "tests", "examples"] {
        let mut paths = Vec::new();
        rust_files(&root.join(sub), &mut paths)?;
        for abs in paths {
            if let Some(rel) = relativize(root, &abs) {
                files.push(SourceFile {
                    ctx: classify("pronghorn", &rel),
                    abs_path: abs,
                });
            }
        }
    }
    files.sort_by(|a, b| a.ctx.path.cmp(&b.ctx.path));
    Ok(files)
}

fn relativize(root: &Path, abs: &Path) -> Option<String> {
    let rel = abs.strip_prefix(root).ok()?;
    Some(
        rel.components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_scopes() {
        let lib = classify("core", "crates/core/src/lib.rs");
        assert!(lib.is_crate_root && lib.is_lib_root && !lib.is_test_file);
        // Integration-test files are test scope AND their own crate root.
        let tests = classify("core", "crates/core/tests/props.rs");
        assert!(tests.is_test_file && tests.is_crate_root && !tests.is_lib_root);
        let bench = classify("bench", "crates/bench/benches/ablations.rs");
        assert!(bench.is_test_file && bench.is_crate_root);
        let example = classify("pronghorn", "examples/quickstart.rs");
        assert!(example.is_test_file && example.is_crate_root);
        let root_test = classify("pronghorn", "tests/end_to_end.rs");
        assert!(root_test.is_test_file && root_test.is_crate_root);
        let bin = classify("analysis", "crates/analysis/src/bin/pronglint.rs");
        assert!(bin.is_crate_root && !bin.is_lib_root);
        let module = classify("core", "crates/core/src/pool.rs");
        assert!(!module.is_crate_root && !module.is_test_file);
        // Modules *under* a harness dir are not separate roots.
        let helper = classify("core", "crates/core/tests/common/mod.rs");
        assert!(helper.is_test_file && !helper.is_crate_root);
        // `src/benches/` is ordinary library code, not a harness dir.
        let src_bench = classify("workloads", "crates/workloads/src/benches/java.rs");
        assert!(!src_bench.is_crate_root && !src_bench.is_test_file);
    }

    #[test]
    fn walks_this_workspace() {
        // CARGO_MANIFEST_DIR = crates/analysis; the workspace root is two up.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .unwrap()
            .to_path_buf();
        let files = workspace_sources(&root).unwrap();
        let paths: Vec<&str> = files.iter().map(|f| f.ctx.path.as_str()).collect();
        assert!(paths.contains(&"crates/core/src/pool.rs"));
        assert!(paths.contains(&"src/lib.rs"));
        assert!(paths.contains(&"examples/quickstart.rs"));
        assert!(paths.contains(&"crates/analysis/tests/golden.rs"));
        assert!(!paths.iter().any(|p| p.starts_with("compat/")));
        assert!(!paths.iter().any(|p| p.starts_with("target/")));
        // Sorted and unique.
        let mut sorted = paths.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(paths, sorted);
    }
}
